#include "bfs/top_down.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class TopDownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = fixtures::small_graph();
    partition_ = VertexPartition{edges_.vertex_count(), 2};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
  }

  ThreadPool pool_{4};
  NumaTopology topology_{2, 2};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
};

TEST_F(TopDownTest, FirstLevelClaimsRootNeighbors) {
  BfsStatus status{8};
  status.reset(0);
  const StepResult r =
      top_down_step(forward_, status, 1, topology_, pool_, 64);
  EXPECT_EQ(r.claimed, 2);  // 1 and 3
  EXPECT_EQ(r.scanned_edges, 2);
  EXPECT_TRUE(status.is_visited(1));
  EXPECT_TRUE(status.is_visited(3));
  EXPECT_EQ(status.parent(1), 0);
  EXPECT_EQ(status.parent(3), 0);
  EXPECT_EQ(status.level(1), 1);
  const std::set<Vertex> next(status.next().begin(), status.next().end());
  EXPECT_EQ(next, (std::set<Vertex>{1, 3}));
}

TEST_F(TopDownTest, SecondLevelContinues) {
  BfsStatus status{8};
  status.reset(0);
  top_down_step(forward_, status, 1, topology_, pool_, 64);
  status.advance();
  const StepResult r =
      top_down_step(forward_, status, 2, topology_, pool_, 64);
  // From {1,3}: neighbors are 0,2,4 (0 visited) -> claims 2 and 4.
  EXPECT_EQ(r.claimed, 2);
  EXPECT_TRUE(status.is_visited(2));
  EXPECT_TRUE(status.is_visited(4));
  // parents must come from the frontier
  EXPECT_TRUE(status.parent(4) == 1 || status.parent(4) == 3);
}

TEST_F(TopDownTest, ScannedEdgesEqualsFrontierDegreeSum) {
  BfsStatus status{8};
  status.reset(1);  // degree 3
  const StepResult r =
      top_down_step(forward_, status, 1, topology_, pool_, 64);
  EXPECT_EQ(r.scanned_edges, 3);
}

TEST_F(TopDownTest, BatchSizeOneStillCorrect) {
  BfsStatus status{8};
  status.reset(0);
  const StepResult r = top_down_step(forward_, status, 1, topology_, pool_, 1);
  EXPECT_EQ(r.claimed, 2);
}

TEST_F(TopDownTest, NoRevisits) {
  BfsStatus status{8};
  status.reset(0);
  top_down_step(forward_, status, 1, topology_, pool_, 64);
  status.advance();
  top_down_step(forward_, status, 2, topology_, pool_, 64);
  status.advance();
  const StepResult r =
      top_down_step(forward_, status, 3, topology_, pool_, 64);
  EXPECT_EQ(r.claimed, 0);  // component exhausted
  EXPECT_EQ(status.parent(5), kNoVertex);
  EXPECT_EQ(status.parent(6), kNoVertex);
}

TEST_F(TopDownTest, EmptyFrontierIsNoop) {
  BfsStatus status{8};
  status.reset(0);
  status.advance();  // empty next -> empty frontier
  const StepResult r =
      top_down_step(forward_, status, 1, topology_, pool_, 64);
  EXPECT_EQ(r.claimed, 0);
  EXPECT_EQ(r.scanned_edges, 0);
}

TEST_F(TopDownTest, ManyNodePartitionsCoverEverything) {
  const VertexPartition fine{edges_.vertex_count(), 8};
  const ForwardGraph forward =
      ForwardGraph::build(edges_, fine, CsrBuildOptions{}, pool_);
  const NumaTopology topo{8, 1};
  BfsStatus status{8};
  status.reset(0);
  const StepResult r = top_down_step(forward, status, 1, topo, pool_, 64);
  EXPECT_EQ(r.claimed, 2);
}

TEST(TopDownStar, HubExplosion) {
  ThreadPool pool{4};
  const EdgeList edges = fixtures::star_graph(64);
  const VertexPartition partition{64, 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const NumaTopology topo{4, 1};
  BfsStatus status{64};
  status.reset(0);
  const StepResult r = top_down_step(forward, status, 1, topo, pool, 8);
  EXPECT_EQ(r.claimed, 63);
  EXPECT_EQ(r.scanned_edges, 63);
}

}  // namespace
}  // namespace sembfs
