// Hybrid BFS correctness on the non-power-law workload: uniform random
// graphs exercise different frontier dynamics (no hubs, near-constant
// degree, late switch points), so the level-equivalence property gets its
// own sweep here.
#include <gtest/gtest.h>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/uniform.hpp"

namespace sembfs {
namespace {

class UniformBfsSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, BfsMode>> {};

TEST_P(UniformBfsSweep, LevelsMatchReference) {
  const auto [seed, mode] = GetParam();
  ThreadPool pool{4};
  UniformParams params;
  params.scale = 9;
  params.edge_factor = 4;  // sparse: leaves multiple components
  params.seed = seed;
  const EdgeList edges = generate_uniform(params, pool);
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool};

  BfsConfig config;
  config.mode = mode;
  config.policy.alpha = 1e3;
  config.policy.beta = 1e4;

  // Several roots per graph, including ones deep in small components.
  int tested = 0;
  for (Vertex root = 0; root < edges.vertex_count() && tested < 5; ++root) {
    if (full.degree(root) == 0) continue;
    ++tested;
    const BfsResult result = runner.run(root, config);
    const ReferenceBfsResult ref = reference_bfs(full, root);
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "seed=" << seed << " root=" << root << " v=" << v;
  }
  EXPECT_EQ(tested, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, UniformBfsSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u),
                       ::testing::Values(BfsMode::Hybrid,
                                         BfsMode::TopDownOnly,
                                         BfsMode::BottomUpOnly)));

}  // namespace
}  // namespace sembfs
