#include "bfs/session.hpp"

#include <gtest/gtest.h>

#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"
#include "obs/trace.hpp"

namespace sembfs {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 501), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    full_ = build_csr(edges_, CsrBuildOptions{}, pool_);
    storage_.forward_dram = &forward_;
    storage_.backward_dram = &backward_;
    root_ = 0;
    while (full_.degree(root_) == 0) ++root_;
  }

  ThreadPool pool_{4};
  NumaTopology topology_{4, 1};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  Csr full_;
  GraphStorage storage_;
  Vertex root_ = 0;
};

TEST_F(SessionTest, SteppedToCompletionMatchesRunner) {
  BfsStatus status{edges_.vertex_count()};
  BfsSession session{storage_, topology_, pool_, status, root_,
                     BfsConfig{}};
  int steps = 0;
  while (session.step()) ++steps;
  EXPECT_TRUE(session.done());
  const BfsResult stepped = session.snapshot_result();

  HybridBfsRunner runner{storage_, topology_, pool_};
  const BfsResult direct = runner.run(root_, BfsConfig{});
  EXPECT_EQ(stepped.level, direct.level);
  EXPECT_EQ(stepped.visited, direct.visited);
  EXPECT_EQ(stepped.depth, direct.depth);
  EXPECT_EQ(stepped.teps_edge_count, direct.teps_edge_count);
  EXPECT_EQ(steps + 1, static_cast<int>(stepped.levels.size()) + 0)
      << "last step returns false but still executed a level";
}

TEST_F(SessionTest, KHopTruncationYieldsExactlyKHopNeighborhood) {
  constexpr std::int32_t kHops = 2;
  BfsStatus status{edges_.vertex_count()};
  BfsSession session{storage_, topology_, pool_, status, root_,
                     BfsConfig{}};
  for (std::int32_t i = 0; i < kHops && session.step(); ++i) {
  }
  const BfsResult partial = session.snapshot_result();

  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    if (ref.level[v] >= 0 && ref.level[v] <= kHops)
      ASSERT_EQ(partial.level[v], ref.level[v]) << "v=" << v;
    else
      ASSERT_EQ(partial.level[v], -1) << "v=" << v;
  }
}

TEST_F(SessionTest, NextLevelAndDirectionObservable) {
  BfsStatus status{edges_.vertex_count()};
  BfsConfig config;
  config.policy.alpha = 1e9;  // switch to bottom-up immediately
  config.policy.beta = 1e-9;
  // Start from the hub so level 1 certainly grows the frontier.
  Vertex hub = root_;
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    if (full_.degree(v) > full_.degree(hub)) hub = v;
  BfsSession session{storage_, topology_, pool_, status, hub, config};
  EXPECT_EQ(session.next_level(), 1);
  EXPECT_EQ(session.next_direction(), Direction::TopDown);
  ASSERT_TRUE(session.step());
  EXPECT_EQ(session.next_level(), 2);
  EXPECT_EQ(session.next_direction(), Direction::BottomUp);
}

TEST_F(SessionTest, StepAfterDoneIsNoop) {
  BfsStatus status{8};
  const EdgeList small = fixtures::small_graph();
  const VertexPartition partition{8, 2};
  const ForwardGraph fg =
      ForwardGraph::build(small, partition, CsrBuildOptions{}, pool_);
  const BackwardGraph bg =
      BackwardGraph::build(small, partition, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_dram = &fg;
  storage.backward_dram = &bg;
  BfsSession session{storage, topology_, pool_, status, 7,  // isolated
                     BfsConfig{}};
  EXPECT_FALSE(session.step());  // level 1 finds nothing
  EXPECT_TRUE(session.done());
  const std::size_t levels_before = session.levels().size();
  EXPECT_FALSE(session.step());
  EXPECT_EQ(session.levels().size(), levels_before);
}

TEST_F(SessionTest, PerLevelStatsAccumulateIncrementally) {
  BfsStatus status{edges_.vertex_count()};
  BfsSession session{storage_, topology_, pool_, status, root_,
                     BfsConfig{}};
  std::size_t expected = 0;
  while (session.step()) {
    ++expected;
    EXPECT_EQ(session.levels().size(), expected);
  }
}

TEST_F(SessionTest, TraceSpansMatchLevelStats) {
  obs::TraceLog trace;
  BfsStatus status{edges_.vertex_count()};
  BfsConfig config;
  config.trace = &trace;
  BfsSession session{storage_, topology_, pool_, status, root_, config};
  std::vector<Direction> decisions;
  while (true) {
    const bool more = session.step();
    decisions.push_back(session.next_direction());
    if (!more) break;
  }
  const std::vector<LevelStats>& stats = session.levels();
  const std::vector<obs::TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), stats.size());
  double prev_start = -1.0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::TraceSpan& span = spans[i];
    const LevelStats& level = stats[i];
    EXPECT_EQ(span.run, 0);
    EXPECT_EQ(span.root, root_);
    EXPECT_EQ(span.level, level.level);
    EXPECT_EQ(span.direction, level.direction);
    EXPECT_EQ(span.stats.frontier_vertices, level.frontier_vertices);
    EXPECT_EQ(span.stats.claimed_vertices, level.claimed_vertices);
    EXPECT_EQ(span.stats.scanned_edges, level.scanned_edges);
    EXPECT_EQ(span.stats.nvm_requests, level.nvm_requests);
    // The policy saw this level's outcome: its input frontier sizes are
    // this level's before/after, and its decision is the direction the
    // session reported after the step.
    EXPECT_EQ(span.policy_input.current, level.direction);
    EXPECT_EQ(span.policy_input.prev_frontier, level.frontier_vertices);
    EXPECT_TRUE(span.policy_evaluated);  // hybrid mode
    EXPECT_EQ(span.decision, decisions[i]);
    EXPECT_GE(span.start_seconds, prev_start);
    EXPECT_GE(span.duration_seconds, 0.0);
    prev_start = span.start_seconds;
  }
}

TEST_F(SessionTest, TraceAssignsRunIdsPerSession) {
  obs::TraceLog trace;
  BfsConfig config;
  config.trace = &trace;
  for (int run = 0; run < 2; ++run) {
    BfsStatus status{edges_.vertex_count()};
    BfsSession session{storage_, topology_, pool_, status, root_, config};
    while (session.step()) {
    }
  }
  const std::vector<obs::TraceSpan> spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().run, 0);
  EXPECT_EQ(spans.back().run, 1);
}

TEST_F(SessionTest, ForcedModeRecordsUnevaluatedPolicy) {
  obs::TraceLog trace;
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  config.trace = &trace;
  BfsStatus status{edges_.vertex_count()};
  BfsSession session{storage_, topology_, pool_, status, root_, config};
  while (session.step()) {
  }
  for (const obs::TraceSpan& span : trace.spans()) {
    EXPECT_FALSE(span.policy_evaluated);
    EXPECT_EQ(span.direction, Direction::TopDown);
    EXPECT_EQ(span.decision, Direction::TopDown);
  }
}

TEST_F(SessionTest, SnapshotMidSearchCountsOnlyElapsedWork) {
  BfsStatus status{edges_.vertex_count()};
  BfsSession session{storage_, topology_, pool_, status, root_,
                     BfsConfig{}};
  session.step();
  const BfsResult after_one = session.snapshot_result();
  EXPECT_EQ(after_one.depth, 1);
  EXPECT_EQ(after_one.levels.size(), 1u);
  while (session.step()) {
  }
  const BfsResult full = session.snapshot_result();
  EXPECT_GT(full.visited, after_one.visited);
  EXPECT_GE(full.seconds, after_one.seconds);
}

}  // namespace
}  // namespace sembfs
