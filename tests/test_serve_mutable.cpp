// QueryEngine over a MutableGraph: admissions pin the snapshot they
// started on, publishes retarget new admissions, and the result cache
// follows the migration protocol — repaired across insert-only publishes,
// dropped on deletions, kept across compaction (docs/MUTATIONS.md).
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bfs/reference_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/mutable_graph.hpp"
#include "graph_fixtures.hpp"

namespace sembfs::serve {
namespace {

class ServeMutableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = generate_kronecker(fixtures::small_kronecker(9, 8, 23), pool_);
    mirror_.assign(base_.edges().begin(), base_.edges().end());
    MutableGraphConfig config;
    config.numa_nodes = 2;
    graph_.emplace(base_, config, pool_);
  }

  // Serial mirror of the tombstone semantics (remove kills every copy).
  void mutate(const std::vector<EdgeOp>& ops) {
    graph_->apply(ops);
    for (const EdgeOp& op : ops) {
      if (op.kind == EdgeOp::Kind::Insert) {
        mirror_.push_back(Edge{op.u, op.v});
      } else {
        const auto same = [&](const Edge& e) {
          return (e.u == op.u && e.v == op.v) ||
                 (e.u == op.v && e.v == op.u);
        };
        mirror_.erase(
            std::remove_if(mirror_.begin(), mirror_.end(), same),
            mirror_.end());
      }
    }
  }

  // Reference levels for the graph as mutated so far.
  std::vector<std::int32_t> reference(Vertex root) {
    EdgeList merged{base_.vertex_count(), mirror_};
    const Csr full = build_csr(merged, CsrBuildOptions{}, pool_);
    return reference_bfs(full, root).level;
  }

  static QueryResult serve(QueryEngine& engine, Vertex root) {
    const QueryRef query = engine.submit(root);
    query->wait();
    EXPECT_EQ(query->state(), QueryState::Done) << query->result().error;
    return query->result();
  }

  void expect_serves_reference(QueryEngine& engine, Vertex root) {
    const QueryResult result = serve(engine, root);
    const auto ref = reference(root);
    ASSERT_EQ(result.level.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v)
      ASSERT_EQ(result.level[v], ref[v]) << "root=" << root << " v=" << v;
  }

  ThreadPool pool_{2};         // owned by the graph: builds + compaction
  ThreadPool engine_pool_{4};  // owned by the engine dispatcher
  NumaTopology topology_{2, 1};
  EdgeList base_;
  std::vector<Edge> mirror_;
  std::optional<MutableGraph> graph_;
};

TEST_F(ServeMutableTest, PublishRetargetsNewAdmissions) {
  QueryEngine engine{*graph_, topology_, engine_pool_, EngineConfig{}};
  expect_serves_reference(engine, 1);

  mutate({EdgeOp::insert(1, 100), EdgeOp::insert(100, 200)});
  expect_serves_reference(engine, 1);
  EXPECT_EQ(engine.stats().snapshots_published, 1u);

  mutate({EdgeOp::remove(1, 100)});
  expect_serves_reference(engine, 1);
  EXPECT_EQ(engine.stats().snapshots_published, 2u);

  graph_->compact();
  expect_serves_reference(engine, 1);
  EXPECT_EQ(engine.stats().snapshots_published, 3u);
}

TEST_F(ServeMutableTest, InsertOnlyPublishMigratesCachedTraversals) {
  EngineConfig config;
  config.cache_bytes = 4 << 20;
  QueryEngine engine{*graph_, topology_, engine_pool_, config};

  // Warm the cache with two roots and confirm they hit.
  expect_serves_reference(engine, 1);
  expect_serves_reference(engine, 2);
  EXPECT_TRUE(serve(engine, 1).cache_hit);
  EXPECT_EQ(engine.stats().cache_hits, 1u);

  // An insert-only publish repairs the cached arrays in place instead of
  // dropping them: the very next lookup is still a hit, and the patched
  // levels equal a from-scratch BFS of the merged graph.
  mutate({EdgeOp::insert(1, 300), EdgeOp::insert(300, 301)});
  EXPECT_GE(engine.stats().cache_entries_migrated, 2u);
  EXPECT_EQ(engine.stats().cache_entries_dropped, 0u);
  const QueryResult hot = serve(engine, 1);
  EXPECT_TRUE(hot.cache_hit);
  const auto ref = reference(1);
  ASSERT_EQ(hot.level.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v)
    ASSERT_EQ(hot.level[v], ref[v]) << "v=" << v;
  EXPECT_EQ(hot.level[300], ref[300]);  // reaches the new vertices
  const QueryResult hot2 = serve(engine, 2);
  EXPECT_TRUE(hot2.cache_hit);
}

TEST_F(ServeMutableTest, DeletePublishDropsTheCache) {
  EngineConfig config;
  config.cache_bytes = 4 << 20;
  QueryEngine engine{*graph_, topology_, engine_pool_, config};

  expect_serves_reference(engine, 1);
  EXPECT_TRUE(serve(engine, 1).cache_hit);

  // Deletions invalidate: repair cannot raise levels, so the publish
  // empties the cache and the next query recomputes — correctly.
  mutate({EdgeOp::remove(base_.edges()[0].u, base_.edges()[0].v)});
  EXPECT_GE(engine.stats().cache_entries_dropped, 1u);
  const QueryResult cold = serve(engine, 1);
  EXPECT_FALSE(cold.cache_hit);
  expect_serves_reference(engine, 1);
}

TEST_F(ServeMutableTest, CompactionPreservesTheCache) {
  EngineConfig config;
  config.cache_bytes = 4 << 20;
  QueryEngine engine{*graph_, topology_, engine_pool_, config};

  mutate({EdgeOp::insert(1, 100)});
  expect_serves_reference(engine, 1);

  // Compaction changes no logical edge — cached answers stay valid and
  // the entries survive the publish untouched.
  graph_->compact();
  EXPECT_EQ(engine.stats().cache_entries_dropped, 0u);
  const QueryResult hot = serve(engine, 1);
  EXPECT_TRUE(hot.cache_hit);
  const auto ref = reference(1);
  for (std::size_t v = 0; v < ref.size(); ++v)
    ASSERT_EQ(hot.level[v], ref[v]) << "v=" << v;
}

TEST_F(ServeMutableTest, TruncatedEntriesAreDroppedNotRepaired) {
  EngineConfig config;
  config.cache_bytes = 4 << 20;
  QueryEngine engine{*graph_, topology_, engine_pool_, config};

  // A k-hop query's arrays are truncated at max_levels: repair's
  // complete-traversal precondition fails, so migration must drop it.
  QueryOptions khop;
  khop.max_levels = 2;
  const QueryRef cold = engine.submit(1, khop);
  cold->wait();
  ASSERT_EQ(cold->state(), QueryState::Done);
  const QueryRef warm = engine.submit(1, khop);
  warm->wait();
  EXPECT_TRUE(warm->result().cache_hit);

  mutate({EdgeOp::insert(1, 100)});
  EXPECT_GE(engine.stats().cache_entries_dropped, 1u);
  const QueryRef after = engine.submit(1, khop);
  after->wait();
  ASSERT_EQ(after->state(), QueryState::Done);
  EXPECT_FALSE(after->result().cache_hit);
  EXPECT_EQ(after->result().level[100], 1);  // fresh run sees the insert
}

}  // namespace
}  // namespace sembfs::serve
