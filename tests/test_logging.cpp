#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }  // default
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, EmitBelowThresholdIsDropped) {
  // Captures stderr around a suppressed and an emitted message.
  set_log_level(LogLevel::Error);
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_INFO("should not appear %d", 1);
  SEMBFS_LOG_ERROR("should appear %d", 2);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear 2"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, FormatsArguments) {
  set_log_level(LogLevel::Debug);
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_DEBUG("x=%d s=%s f=%.1f", 42, "str", 2.5);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=42 s=str f=2.5"), std::string::npos);
}

// Regression: messages longer than the 1024-byte stack buffer were
// silently truncated (the vsnprintf return value was ignored).
TEST_F(LoggingTest, LongMessagesAreNotTruncated) {
  set_log_level(LogLevel::Debug);
  const std::string payload(2000, 'x');
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_DEBUG("head %s tail", payload.c_str());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("head " + payload + " tail"), std::string::npos);
}

TEST_F(LoggingTest, MessageAtBufferBoundaryIsComplete) {
  set_log_level(LogLevel::Debug);
  // 1023 + NUL exactly fills the stack buffer; 1024 must take the heap
  // path. Exercise both sides of the boundary.
  for (const std::size_t len : {std::size_t{1023}, std::size_t{1024}}) {
    const std::string payload(len, 'y');
    ::testing::internal::CaptureStderr();
    SEMBFS_LOG_DEBUG("%s", payload.c_str());
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find(payload), std::string::npos) << "len=" << len;
  }
}

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_INFO("quiet by default");
  SEMBFS_LOG_WARN("warnings pass");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet by default"), std::string::npos);
  EXPECT_NE(err.find("warnings pass"), std::string::npos);
}

}  // namespace
}  // namespace sembfs
