#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }  // default
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, EmitBelowThresholdIsDropped) {
  // Captures stderr around a suppressed and an emitted message.
  set_log_level(LogLevel::Error);
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_INFO("should not appear %d", 1);
  SEMBFS_LOG_ERROR("should appear %d", 2);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear 2"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, FormatsArguments) {
  set_log_level(LogLevel::Debug);
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_DEBUG("x=%d s=%s f=%.1f", 42, "str", 2.5);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=42 s=str f=2.5"), std::string::npos);
}

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  ::testing::internal::CaptureStderr();
  SEMBFS_LOG_INFO("quiet by default");
  SEMBFS_LOG_WARN("warnings pass");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet by default"), std::string::npos);
  EXPECT_NE(err.find("warnings pass"), std::string::npos);
}

}  // namespace
}  // namespace sembfs
