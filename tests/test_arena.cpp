#include "numa/arena.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sembfs {
namespace {

TEST(NumaArena, StartsEmpty) {
  NumaArena arena{4};
  EXPECT_EQ(arena.node_count(), 4u);
  EXPECT_EQ(arena.total_bytes(), 0u);
}

TEST(NumaArena, RecordsPerNode) {
  NumaArena arena{2};
  arena.record_alloc(0, 100);
  arena.record_alloc(1, 50);
  arena.record_alloc(0, 25);
  EXPECT_EQ(arena.bytes_on(0), 125u);
  EXPECT_EQ(arena.bytes_on(1), 50u);
  EXPECT_EQ(arena.total_bytes(), 175u);
}

TEST(NumaArena, FreeReducesCount) {
  NumaArena arena{2};
  arena.record_alloc(1, 100);
  arena.record_free(1, 40);
  EXPECT_EQ(arena.bytes_on(1), 60u);
}

TEST(NumaArena, AllocVectorAccountsBytes) {
  NumaArena arena{2};
  auto v = arena.alloc_vector<std::int64_t>(0, 10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(arena.bytes_on(0), 80u);
}

TEST(NumaArena, ConcurrentAccountingIsExact) {
  NumaArena arena{4};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&arena] {
      for (int i = 0; i < 1000; ++i)
        arena.record_alloc(static_cast<std::size_t>(i % 4), 8);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(arena.total_bytes(), 8u * 1000u * 8u);
  EXPECT_EQ(arena.bytes_on(0), 8u * 250u * 8u);
}

}  // namespace
}  // namespace sembfs
