#include "graph/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>

#include "graph_fixtures.hpp"
#include "nvm/storage_file.hpp"

namespace sembfs {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return ::testing::TempDir() + "/sembfs_ser_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name + ".bin";
  }
  void TearDown() override {
    remove_file_if_exists(path("csr"));
    remove_file_if_exists(path("edges"));
    remove_file_if_exists(path("junk"));
  }
  ThreadPool pool_{2};
};

TEST_F(SerializeTest, CsrRoundTrip) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 81), pool_);
  const Csr original = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(original, path("csr"));
  const Csr loaded = load_csr(path("csr"));

  EXPECT_EQ(loaded.global_vertex_count(), original.global_vertex_count());
  EXPECT_EQ(loaded.source_range(), original.source_range());
  EXPECT_EQ(loaded.destination_range(), original.destination_range());
  EXPECT_EQ(loaded.index(), original.index());
  EXPECT_EQ(loaded.values(), original.values());
}

TEST_F(SerializeTest, FilteredCsrRoundTripKeepsRanges) {
  const EdgeList edges = fixtures::small_graph();
  const Csr original = build_csr_filtered(
      edges, VertexRange{2, 6}, VertexRange{0, 8}, CsrBuildOptions{}, pool_);
  save_csr(original, path("csr"));
  const Csr loaded = load_csr(path("csr"));
  EXPECT_EQ(loaded.source_range(), (VertexRange{2, 6}));
  EXPECT_EQ(loaded.degree(3), original.degree(3));
}

TEST_F(SerializeTest, EdgeListRoundTrip) {
  const EdgeList original =
      generate_kronecker(fixtures::small_kronecker(8, 8, 91), pool_);
  save_edge_list(original, path("edges"));
  const EdgeList loaded = load_edge_list(path("edges"));
  ASSERT_EQ(loaded.edge_count(), original.edge_count());
  EXPECT_EQ(loaded.vertex_count(), original.vertex_count());
  for (std::size_t i = 0; i < original.edge_count(); ++i)
    ASSERT_EQ(loaded[i], original[i]);
}

TEST_F(SerializeTest, EmptyEdgeListRoundTrip) {
  EdgeList empty{42};
  save_edge_list(empty, path("edges"));
  const EdgeList loaded = load_edge_list(path("edges"));
  EXPECT_EQ(loaded.edge_count(), 0u);
  EXPECT_EQ(loaded.vertex_count(), 42);
}

TEST_F(SerializeTest, VarintCsrRoundTrip) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 81), pool_);
  const Csr original = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(original, path("csr"), ChunkFormat::kVarint);
  const Csr loaded = load_csr(path("csr"));
  EXPECT_EQ(loaded.source_range(), original.source_range());
  EXPECT_EQ(loaded.index(), original.index());
  EXPECT_EQ(loaded.values(), original.values());

  // The varint values stream should make the file visibly smaller than
  // the raw encoding of the same graph.
  save_csr(original, path("edges"), ChunkFormat::kRaw);
  const StorageFile varint = StorageFile::open_readonly(path("csr"));
  const StorageFile raw = StorageFile::open_readonly(path("edges"));
  EXPECT_LT(varint.size(), raw.size());
}

TEST_F(SerializeTest, RejectsV1FormatWithActionableError) {
  const EdgeList edges = fixtures::small_graph();
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(csr, path("csr"));
  {
    // Byte 7 of the magic is the format digit: "SEMBFSG2" -> "SEMBFSG1".
    StorageFile f = StorageFile::open_readwrite(path("csr"));
    const char v1 = '1';
    f.pwrite_exact(7, std::as_bytes(std::span{&v1, 1}));
  }
  try {
    load_csr(path("csr"));
    FAIL() << "v1 magic must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("older sembfs"), std::string::npos)
        << e.what();
  }
}

TEST_F(SerializeTest, RejectsUnknownValuesEncoding) {
  const EdgeList edges = fixtures::small_graph();
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(csr, path("csr"));
  {
    // flags (the ChunkFormat of the values payload) sits at offset 12.
    StorageFile f = StorageFile::open_readwrite(path("csr"));
    const std::uint32_t bogus = 0xdead;
    f.pwrite_exact(12, std::as_bytes(std::span{&bogus, 1}));
  }
  EXPECT_THROW(load_csr(path("csr")), std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedVarintStream) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(8, 8, 95), pool_);
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(csr, path("csr"), ChunkFormat::kVarint);
  {
    StorageFile f = StorageFile::open_readwrite(path("csr"));
    f.resize(f.size() - 16);  // clip the tail of the encoded stream
  }
  EXPECT_THROW(load_csr(path("csr")), std::runtime_error);
}

TEST_F(SerializeTest, RejectsWrongMagic) {
  std::FILE* f = std::fopen(path("junk").c_str(), "w");
  std::fputs("this is not a graph file at all, padding padding", f);
  std::fclose(f);
  EXPECT_THROW(load_csr(path("junk")), std::runtime_error);
  EXPECT_THROW(load_edge_list(path("junk")), std::runtime_error);
}

TEST_F(SerializeTest, RejectsKindMismatch) {
  const EdgeList edges = fixtures::small_graph();
  save_edge_list(edges, path("edges"));
  EXPECT_THROW(load_csr(path("edges")), std::runtime_error);

  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(csr, path("csr"));
  EXPECT_THROW(load_edge_list(path("csr")), std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(8, 8, 95), pool_);
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(csr, path("csr"));
  {
    StorageFile f = StorageFile::open_readwrite(path("csr"));
    f.resize(f.size() / 2);
  }
  EXPECT_THROW(load_csr(path("csr")), std::runtime_error);
}

TEST_F(SerializeTest, LoadedCsrUsableForBfs) {
  const EdgeList edges = fixtures::small_graph();
  const Csr original = build_csr(edges, CsrBuildOptions{}, pool_);
  save_csr(original, path("csr"));
  const Csr loaded = load_csr(path("csr"));
  // Adjacency behaves identically.
  for (Vertex v = 0; v < 8; ++v) {
    const auto a = original.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(std::vector<Vertex>(a.begin(), a.end()),
              std::vector<Vertex>(b.begin(), b.end()));
  }
}

}  // namespace
}  // namespace sembfs
