#include "util/options.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

OptionParser make_parser() {
  OptionParser p{"test program"};
  p.add_int("scale", 16, "the scale");
  p.add_double("alpha", 1e4, "the alpha");
  p.add_string("scenario", "dram", "the scenario");
  p.add_flag("verbose", "chatty output");
  return p;
}

bool parse(OptionParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionParser, DefaultsWhenUnset) {
  OptionParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_int("scale"), 16);
  EXPECT_EQ(p.get_double("alpha"), 1e4);
  EXPECT_EQ(p.get_string("scenario"), "dram");
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(OptionParser, SpaceSeparatedValues) {
  OptionParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--scale", "20", "--alpha", "1e6"}));
  EXPECT_EQ(p.get_int("scale"), 20);
  EXPECT_EQ(p.get_double("alpha"), 1e6);
}

TEST(OptionParser, EqualsSeparatedValues) {
  OptionParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--scale=22", "--scenario=ssd"}));
  EXPECT_EQ(p.get_int("scale"), 22);
  EXPECT_EQ(p.get_string("scenario"), "ssd");
}

TEST(OptionParser, FlagSetsTrue) {
  OptionParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--verbose"}));
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(OptionParser, PositionalArgumentsCollected) {
  OptionParser p = make_parser();
  ASSERT_TRUE(parse(p, {"file1", "--scale", "18", "file2"}));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(OptionParser, UnknownOptionFails) {
  OptionParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--bogus", "1"}));
}

TEST(OptionParser, MissingValueFails) {
  OptionParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--scale"}));
}

TEST(OptionParser, NonNumericIntFails) {
  OptionParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--scale", "abc"}));
}

TEST(OptionParser, NonNumericDoubleFails) {
  OptionParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--alpha", "xyz"}));
}

TEST(OptionParser, FlagWithValueFails) {
  OptionParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--verbose=yes"}));
}

TEST(OptionParser, HelpShortCircuits) {
  OptionParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--help"}));
  EXPECT_TRUE(p.help_requested());
}

TEST(OptionParser, HelpTextListsOptions) {
  OptionParser p = make_parser();
  const std::string help = p.help_text();
  EXPECT_NE(help.find("--scale"), std::string::npos);
  EXPECT_NE(help.find("default: 16"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(OptionParser, NegativeNumbers) {
  OptionParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--scale", "-1", "--alpha", "-2.5"}));
  EXPECT_EQ(p.get_int("scale"), -1);
  EXPECT_EQ(p.get_double("alpha"), -2.5);
}

}  // namespace
}  // namespace sembfs
