#include "numa/topology.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace sembfs {
namespace {

TEST(NumaTopology, BasicAccessors) {
  NumaTopology topo{4, 12};  // the paper's machine shape
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_EQ(topo.cores_per_node(), 12u);
  EXPECT_EQ(topo.total_threads(), 48u);
}

TEST(NumaTopology, WorkerToNodeMapping) {
  NumaTopology topo{4, 3};
  EXPECT_EQ(topo.node_of_worker(0), 0u);
  EXPECT_EQ(topo.node_of_worker(2), 0u);
  EXPECT_EQ(topo.node_of_worker(3), 1u);
  EXPECT_EQ(topo.node_of_worker(11), 3u);
  EXPECT_EQ(topo.rank_in_node(4), 1u);
  EXPECT_EQ(topo.first_worker_of(2), 6u);
}

TEST(NumaTopology, WithTotalThreadsDividesEvenly) {
  const NumaTopology topo = NumaTopology::with_total_threads(4, 8);
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_EQ(topo.cores_per_node(), 2u);
}

TEST(NumaTopology, WithTotalThreadsAtLeastOneCore) {
  const NumaTopology topo = NumaTopology::with_total_threads(4, 1);
  EXPECT_EQ(topo.cores_per_node(), 1u);
  EXPECT_EQ(topo.total_threads(), 4u);
}

TEST(NumaTopology, DescribeMentionsShape) {
  NumaTopology topo{2, 6};
  const std::string d = topo.describe();
  EXPECT_NE(d.find('2'), std::string::npos);
  EXPECT_NE(d.find('6'), std::string::npos);
}

// Property: across all workers, for_each_assigned_node covers every node at
// least once, and when workers >= nodes every node gets at least one
// dedicated worker and each worker serves exactly one node.
class AssignedNodesTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(AssignedNodesTest, AllNodesCovered) {
  const auto [workers, nodes] = GetParam();
  std::map<std::size_t, int> coverage;
  std::map<std::size_t, int> per_worker;
  for (std::size_t w = 0; w < workers; ++w) {
    for_each_assigned_node(w, workers, nodes, [&](std::size_t node) {
      ASSERT_LT(node, nodes);
      ++coverage[node];
      ++per_worker[w];
    });
  }
  for (std::size_t node = 0; node < nodes; ++node)
    EXPECT_GE(coverage[node], 1) << "node " << node << " not covered";

  if (workers >= nodes) {
    for (std::size_t w = 0; w < workers; ++w)
      EXPECT_EQ(per_worker[w], 1) << "worker " << w;
  } else {
    // No node served twice when workers < nodes (strided, disjoint).
    for (std::size_t node = 0; node < nodes; ++node)
      EXPECT_EQ(coverage[node], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AssignedNodesTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 4},
                      std::pair<std::size_t, std::size_t>{2, 4},
                      std::pair<std::size_t, std::size_t>{3, 4},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{6, 4},
                      std::pair<std::size_t, std::size_t>{8, 4},
                      std::pair<std::size_t, std::size_t>{48, 4},
                      std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{7, 8},
                      std::pair<std::size_t, std::size_t>{5, 3}));

TEST(NumaTopologyDeath, RejectsZeroNodes) {
  EXPECT_DEATH(NumaTopology(0, 1), "Precondition");
}

}  // namespace
}  // namespace sembfs
