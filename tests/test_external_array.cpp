#include "nvm/external_array.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace sembfs {
namespace {

class ExternalArrayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_extarr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }

  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
};

TEST_F(ExternalArrayTest, WriteReadRoundTrip) {
  ExternalArray<std::int64_t> arr{*file_, 0, 100};
  std::vector<std::int64_t> data(100);
  std::iota(data.begin(), data.end(), -50);
  arr.write(0, data);
  const std::vector<std::int64_t> back = arr.read_all();
  EXPECT_EQ(back, data);
}

TEST_F(ExternalArrayTest, PartialReads) {
  ExternalArray<std::int32_t> arr{*file_, 0, 50};
  std::vector<std::int32_t> data(50);
  std::iota(data.begin(), data.end(), 0);
  arr.write(0, data);

  std::vector<std::int32_t> out(10);
  arr.read(20, out);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 20 + i);
}

TEST_F(ExternalArrayTest, ReadOne) {
  ExternalArray<std::int64_t> arr{*file_, 0, 10};
  std::vector<std::int64_t> data = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
  arr.write(0, data);
  EXPECT_EQ(arr.read_one(0), 5);
  EXPECT_EQ(arr.read_one(9), 14);
}

TEST_F(ExternalArrayTest, BaseOffsetRespected) {
  // Two arrays sharing one file at different offsets.
  ExternalArray<std::int64_t> a{*file_, 0, 4};
  ExternalArray<std::int64_t> b{*file_, 4 * sizeof(std::int64_t), 4};
  std::vector<std::int64_t> da = {1, 2, 3, 4};
  std::vector<std::int64_t> db = {10, 20, 30, 40};
  a.write(0, da);
  b.write(0, db);
  EXPECT_EQ(a.read_all(), da);
  EXPECT_EQ(b.read_all(), db);
}

TEST_F(ExternalArrayTest, ChunkedReadRequestCount) {
  // 4096-byte chunks of int64 = 512 elements per request.
  ExternalArray<std::int64_t> arr{*file_, 0, 2000};
  std::vector<std::int64_t> data(2000, 7);
  arr.write(0, data);
  device_->stats().reset();
  std::vector<std::int64_t> out(2000);
  const std::uint64_t requests = arr.read(0, out);
  EXPECT_EQ(requests, 4u);  // ceil(16000 B / 4096 B)
}

TEST_F(ExternalArrayTest, SizeAccessors) {
  ExternalArray<std::int64_t> arr{*file_, 16, 3};
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.byte_size(), 24u);
  EXPECT_EQ(arr.base_offset(), 16u);
}

TEST_F(ExternalArrayTest, EmptyReadNoRequests) {
  ExternalArray<std::int64_t> arr{*file_, 0, 10};
  std::vector<std::int64_t> out;
  EXPECT_EQ(arr.read(5, out), 0u);
}

TEST_F(ExternalArrayTest, OutOfBoundsReadDies) {
  ExternalArray<std::int64_t> arr{*file_, 0, 10};
  std::vector<std::int64_t> out(5);
  EXPECT_DEATH(arr.read(8, out), "Precondition");
}

}  // namespace
}  // namespace sembfs
