#include "graph500/instance.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "bfs/reference_bfs.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  InstanceConfig base_config(const Scenario& scenario) {
    InstanceConfig config;
    config.kronecker.scale = 10;
    config.kronecker.edge_factor = 8;
    config.kronecker.seed = 77;
    config.scenario = scenario;
    config.scenario.time_scale = 0.001;  // keep tests fast
    config.numa_nodes = 4;
    config.workdir = workdir();
    return config;
  }
  std::string workdir() const { return dir_.path() + "/work"; }
  testutil::ScopedTestDir dir_{"instance"};
  ThreadPool pool_{4};
};

TEST_F(InstanceTest, DramOnlyKeepsForwardInDram) {
  Graph500Instance inst{base_config(Scenario::dram_only()), pool_};
  EXPECT_NE(inst.forward_dram(), nullptr);
  EXPECT_EQ(inst.external_forward(), nullptr);
  EXPECT_EQ(inst.nvm_device(), nullptr);
  EXPECT_EQ(inst.graph_nvm_bytes(), 0u);
}

TEST_F(InstanceTest, OffloadScenarioReleasesDramForward) {
  Graph500Instance inst{base_config(Scenario::dram_pcie_flash()), pool_};
  EXPECT_EQ(inst.forward_dram(), nullptr);  // DRAM copy released
  EXPECT_NE(inst.external_forward(), nullptr);
  EXPECT_NE(inst.nvm_device(), nullptr);
  EXPECT_GT(inst.graph_nvm_bytes(), 0u);
}

TEST_F(InstanceTest, OffloadReducesDramFootprint) {
  Graph500Instance dram{base_config(Scenario::dram_only()), pool_};
  Graph500Instance flash{base_config(Scenario::dram_pcie_flash()), pool_};
  EXPECT_LT(flash.graph_dram_bytes(), dram.graph_dram_bytes());
  // DRAM saved equals the NVM bytes minus index-duplication bookkeeping;
  // at minimum the forward value arrays moved out.
  EXPECT_GT(dram.graph_dram_bytes() - flash.graph_dram_bytes(),
            dram.graph_dram_bytes() / 3);
}

TEST_F(InstanceTest, AllScenariosProduceIdenticalLevels) {
  Graph500Instance dram{base_config(Scenario::dram_only()), pool_};
  Graph500Instance flash{base_config(Scenario::dram_pcie_flash()), pool_};
  Graph500Instance ssd{base_config(Scenario::dram_ssd()), pool_};

  const Vertex root = dram.select_roots(1, 5)[0];
  const BfsConfig config;
  const BfsResult a = dram.run_bfs(root, config);
  const BfsResult b = flash.run_bfs(root, config);
  const BfsResult c = ssd.run_bfs(root, config);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.level, c.level);
  EXPECT_EQ(a.teps_edge_count, b.teps_edge_count);
}

TEST_F(InstanceTest, ValidatePassesOnRealRuns) {
  Graph500Instance inst{base_config(Scenario::dram_pcie_flash()), pool_};
  for (const Vertex root : inst.select_roots(4, 9)) {
    const BfsResult result = inst.run_bfs(root, BfsConfig{});
    const ValidationResult v = inst.validate(result);
    EXPECT_TRUE(v.ok) << "root " << root << ": " << v.error;
  }
}

TEST_F(InstanceTest, SelectRootsDistinctNonzeroDegreeDeterministic) {
  Graph500Instance inst{base_config(Scenario::dram_only()), pool_};
  const std::vector<Vertex> roots = inst.select_roots(16, 123);
  EXPECT_EQ(roots.size(), 16u);
  const std::set<Vertex> unique(roots.begin(), roots.end());
  EXPECT_EQ(unique.size(), roots.size());
  for (const Vertex r : roots)
    EXPECT_GT(inst.backward().neighbors(r).size(), 0u);
  EXPECT_EQ(inst.select_roots(16, 123), roots);       // deterministic
  EXPECT_NE(inst.select_roots(16, 124), roots);       // seed-sensitive
}

TEST_F(InstanceTest, BackwardHybridScenario) {
  Scenario scenario = Scenario::dram_pcie_flash();
  scenario.backward_dram_edges = 4;
  Graph500Instance inst{base_config(scenario), pool_};
  ASSERT_NE(inst.hybrid_backward(), nullptr);
  const Vertex root = inst.select_roots(1, 3)[0];
  const BfsResult result = inst.run_bfs(root, BfsConfig{});
  EXPECT_TRUE(inst.validate(result).ok);
}

TEST_F(InstanceTest, FullCsrMatchesReferenceExpectations) {
  Graph500Instance inst{base_config(Scenario::dram_only()), pool_};
  const Csr& full = inst.full_csr();
  EXPECT_EQ(full.global_vertex_count(), inst.vertex_count());
  // BFS through the instance matches reference through the full CSR.
  const Vertex root = inst.select_roots(1, 1)[0];
  const BfsResult result = inst.run_bfs(root, BfsConfig{});
  const ReferenceBfsResult ref = reference_bfs(full, root);
  EXPECT_EQ(result.level, ref.level);
}

TEST_F(InstanceTest, TimingsRecorded) {
  Graph500Instance inst{base_config(Scenario::dram_only()), pool_};
  EXPECT_GT(inst.generation_seconds(), 0.0);
  EXPECT_GT(inst.construction_seconds(), 0.0);
}

}  // namespace
}  // namespace sembfs
