// FaultPlan: the deterministic fault schedule behind the NVM failure
// domain. The load-bearing property is purity — decide(i) depends only on
// (plan, i) — because the differential sweep reproduces failures from a
// printed seed, which only works if the faulted index SET is independent
// of thread scheduling. The device-level cases pin down how each fault
// kind manifests on a real read and which IoStats counter it bumps.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>
#include <vector>

#include "nvm/fault_plan.hpp"
#include "nvm/nvm_device.hpp"

namespace sembfs {
namespace {

FaultPlan lossy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.read_error_rate = 0.05;
  plan.short_read_rate = 0.05;
  plan.corruption_rate = 0.05;
  plan.latency_spike_rate = 0.05;
  return plan;
}

TEST(FaultPlanTest, DecideIsPureAndDeterministic) {
  const FaultPlan plan = lossy_plan(42);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const FaultDecision a = plan.decide(i);
    const FaultDecision b = plan.decide(i);
    EXPECT_EQ(a.request_index, i);
    EXPECT_EQ(a.read_error, b.read_error) << "index " << i;
    EXPECT_EQ(a.short_read, b.short_read) << "index " << i;
    EXPECT_EQ(a.corrupt, b.corrupt) << "index " << i;
    EXPECT_EQ(a.latency_spike, b.latency_spike) << "index " << i;
    EXPECT_EQ(a.entropy, b.entropy) << "index " << i;
  }
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentFaultSets) {
  const FaultPlan a = lossy_plan(1);
  const FaultPlan b = lossy_plan(2);
  std::set<std::uint64_t> faults_a;
  std::set<std::uint64_t> faults_b;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    if (a.decide(i).any()) faults_a.insert(i);
    if (b.decide(i).any()) faults_b.insert(i);
  }
  EXPECT_FALSE(faults_a.empty());
  EXPECT_FALSE(faults_b.empty());
  EXPECT_NE(faults_a, faults_b);
}

TEST(FaultPlanTest, RatesApproximateObservedFrequency) {
  FaultPlan plan;
  plan.seed = 7;
  plan.read_error_rate = 0.1;
  int errors = 0;
  constexpr int kDraws = 10000;
  for (std::uint64_t i = 0; i < kDraws; ++i)
    if (plan.decide(i).read_error) ++errors;
  // Wide 3-sigma-ish band: the point is the rate is honored, not exact.
  EXPECT_GT(errors, kDraws / 20);      // > 5%
  EXPECT_LT(errors, 3 * kDraws / 20);  // < 15%
}

TEST(FaultPlanTest, OneShotFiresAtExactlyOneIndex) {
  FaultPlan plan;
  plan.fail_after_requests = 5;
  EXPECT_TRUE(plan.enabled());
  for (std::uint64_t i = 0; i < 100; ++i) {
    const FaultDecision d = plan.decide(i);
    EXPECT_EQ(d.read_error, i == 4) << "index " << i;
    EXPECT_FALSE(d.short_read);
    EXPECT_FALSE(d.corrupt);
    EXPECT_FALSE(d.latency_spike);
  }
}

TEST(FaultPlanTest, DefaultPlanIsDisabledAndNeverFaults) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t i = 0; i < 1000; ++i)
    EXPECT_FALSE(plan.decide(i).any());
}

TEST(FaultPlanTest, BackoffGrowsGeometricallyToTheCap) {
  RetryPolicy policy;
  policy.initial_backoff_us = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 350.0;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 100e-6);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 200e-6);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 350e-6);  // capped, not 400
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(9), 350e-6);
}

class FaultPlanDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sembfs_fault_plan_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, dir_ + "/data.bin");
    payload_.resize(kBytes);
    for (std::size_t i = 0; i < kBytes; ++i)
      payload_[i] = static_cast<std::byte>(0x11 + i % 200);
    file_->write(0, payload_);
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::vector<std::byte> read_back() {
    std::vector<std::byte> out(kBytes);
    file_->read(0, out);
    return out;
  }

  static constexpr std::size_t kBytes = 64;
  std::string dir_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<std::byte> payload_;
};

TEST_F(FaultPlanDeviceTest, CorruptionFlipsExactlyOneByte) {
  FaultPlan plan;
  plan.seed = 99;
  plan.corruption_rate = 1.0;
  device_->set_fault_plan(plan);

  const std::vector<std::byte> got = read_back();
  std::size_t diffs = 0;
  std::size_t flipped = kBytes;
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (got[i] != payload_[i]) {
      ++diffs;
      flipped = i;
    }
  }
  ASSERT_EQ(diffs, 1u);
  EXPECT_EQ(got[flipped], payload_[flipped] ^ std::byte{0x40});
  // The flip position is the plan's decision for index 0, not chance.
  EXPECT_EQ(flipped, static_cast<std::size_t>(
                         (plan.decide(0).entropy >> 17) % kBytes));
  EXPECT_EQ(device_->stats().snapshot().corruptions, 1u);
}

TEST_F(FaultPlanDeviceTest, ShortReadZeroesTheTailOnly) {
  FaultPlan plan;
  plan.seed = 17;
  plan.short_read_rate = 1.0;
  device_->set_fault_plan(plan);

  const auto cut =
      static_cast<std::size_t>(plan.decide(0).entropy % kBytes);
  const std::vector<std::byte> got = read_back();
  for (std::size_t i = 0; i < cut; ++i)
    EXPECT_EQ(got[i], payload_[i]) << "head byte " << i;
  for (std::size_t i = cut; i < kBytes; ++i)
    EXPECT_EQ(got[i], std::byte{0}) << "tail byte " << i;
  EXPECT_EQ(device_->stats().snapshot().short_reads, 1u);
}

TEST_F(FaultPlanDeviceTest, ReadErrorThrowsNvmIoErrorAndCounts) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;
  device_->set_fault_plan(plan);
  EXPECT_THROW(read_back(), NvmIoError);
  EXPECT_EQ(device_->stats().snapshot().read_errors, 1u);
}

TEST_F(FaultPlanDeviceTest, LatencySpikeExtendsServiceTimeAndCounts) {
  FaultPlan plan;
  plan.seed = 3;
  plan.latency_spike_rate = 1.0;
  plan.latency_spike_us = 2000.0;
  device_->set_fault_plan(plan);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::byte> got = read_back();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(got, payload_);  // a spike delays, never mutates
  EXPECT_GE(elapsed, 1.5e-3);
  EXPECT_EQ(device_->stats().snapshot().latency_spikes, 1u);
}

TEST_F(FaultPlanDeviceTest, WritesDoNotConsumeFaultSequenceIndices) {
  FaultPlan plan;
  plan.fail_after_requests = 1000;  // armed but harmless
  device_->set_fault_plan(plan);

  (void)read_back();
  file_->write(0, payload_);
  file_->write(0, payload_);
  (void)read_back();
  EXPECT_EQ(device_->fault_sequence_index(), 2u);
}

TEST_F(FaultPlanDeviceTest, RearmingResetsTheFaultSequence) {
  FaultPlan plan;
  plan.fail_after_requests = 1000;
  device_->set_fault_plan(plan);
  (void)read_back();
  (void)read_back();
  EXPECT_EQ(device_->fault_sequence_index(), 2u);

  device_->set_fault_plan(plan);
  EXPECT_EQ(device_->fault_sequence_index(), 0u);
  EXPECT_TRUE(device_->fault_plan_active());

  device_->clear_fault_plan();
  EXPECT_FALSE(device_->fault_plan_active());
}

TEST_F(FaultPlanDeviceTest, ClearedPlanStopsAllInjection) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;
  plan.corruption_rate = 1.0;
  device_->set_fault_plan(plan);
  device_->clear_fault_plan();
  EXPECT_EQ(read_back(), payload_);
  const IoStatsSnapshot s = device_->stats().snapshot();
  EXPECT_EQ(s.read_errors, 0u);
  EXPECT_EQ(s.corruptions, 0u);
}

}  // namespace
}  // namespace sembfs
