#include "analytics/components.hpp"

#include <gtest/gtest.h>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

TEST(ComponentsBfs, SmallGraphStructure) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const ComponentsResult r = components_bfs(csr);
  // Components: {0,1,2,3,4}, {5,6}, {7}.
  EXPECT_EQ(r.component_count, 3);
  EXPECT_EQ(r.largest_size, 5);
  EXPECT_EQ(r.largest_label, 0);
  EXPECT_EQ(r.isolated_count, 1);
  EXPECT_EQ(r.label[0], 0);
  EXPECT_EQ(r.label[4], 0);
  EXPECT_EQ(r.label[5], 5);
  EXPECT_EQ(r.label[6], 5);
  EXPECT_EQ(r.label[7], 7);
}

TEST(ComponentsBfs, LabelIsComponentMinimum) {
  ThreadPool pool{2};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 4, 71), pool);
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  const ComponentsResult r = components_bfs(csr);
  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    EXPECT_LE(r.label[v], v);
}

TEST(ComponentsBfs, SizeOfAndComponentSizes) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const ComponentsResult r = components_bfs(csr);
  EXPECT_EQ(r.size_of(3), 5);
  EXPECT_EQ(r.size_of(6), 2);
  const auto sizes = r.component_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0].second, 5);  // sorted descending
  EXPECT_EQ(sizes[2].second, 1);
}

class LabelPropagationTest : public ::testing::TestWithParam<int> {};

TEST_P(LabelPropagationTest, MatchesBfsComponents) {
  ThreadPool pool{4};
  const EdgeList edges = generate_kronecker(
      fixtures::small_kronecker(10, 4, static_cast<std::uint64_t>(GetParam())),
      pool);
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  const ComponentsResult bfs = components_bfs(csr);
  const ComponentsResult lp = components_label_propagation(csr, pool);
  EXPECT_EQ(lp.label, bfs.label);
  EXPECT_EQ(lp.component_count, bfs.component_count);
  EXPECT_EQ(lp.largest_size, bfs.largest_size);
  EXPECT_GE(lp.iterations, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelPropagationTest,
                         ::testing::Values(1, 2, 3, 7, 13));

TEST(LabelPropagation, PathGraphNeedsDiameterRounds) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::path_graph(32), CsrBuildOptions{}, pool);
  const ComponentsResult lp = components_label_propagation(csr, pool);
  EXPECT_EQ(lp.component_count, 1);
  EXPECT_GE(lp.iterations, 2);  // long chains take multiple rounds
}

TEST(Components, EdgelessGraphIsAllIsolated) {
  ThreadPool pool{2};
  EdgeList edges{5};
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  const ComponentsResult r = components_bfs(csr);
  EXPECT_EQ(r.component_count, 5);
  EXPECT_EQ(r.isolated_count, 5);
  EXPECT_EQ(r.largest_size, 1);
}

}  // namespace
}  // namespace sembfs
