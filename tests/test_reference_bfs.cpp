#include "bfs/reference_bfs.hpp"

#include <gtest/gtest.h>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

TEST(ReferenceBfs, SmallGraphLevels) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const ReferenceBfsResult r = reference_bfs(csr, 0);
  EXPECT_EQ(r.level[0], 0);
  EXPECT_EQ(r.level[1], 1);
  EXPECT_EQ(r.level[3], 1);
  EXPECT_EQ(r.level[2], 2);
  EXPECT_EQ(r.level[4], 2);
  EXPECT_EQ(r.level[5], -1);
  EXPECT_EQ(r.level[6], -1);
  EXPECT_EQ(r.level[7], -1);
  EXPECT_EQ(r.visited, 5);
}

TEST(ReferenceBfs, ParentsFormValidTree) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const ReferenceBfsResult r = reference_bfs(csr, 0);
  EXPECT_EQ(r.parent[0], 0);
  for (Vertex v = 0; v < 8; ++v) {
    if (r.parent[v] == kNoVertex || v == 0) continue;
    EXPECT_EQ(r.level[v], r.level[r.parent[v]] + 1) << "v=" << v;
  }
}

TEST(ReferenceBfs, PathGraphDepth) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::path_graph(8), CsrBuildOptions{}, pool);
  const ReferenceBfsResult r = reference_bfs(csr, 0);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(r.level[v], v);
  // from the middle
  const ReferenceBfsResult mid = reference_bfs(csr, 4);
  EXPECT_EQ(mid.level[0], 4);
  EXPECT_EQ(mid.level[7], 3);
}

TEST(ReferenceBfs, StarGraphIsTwoLevels) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::star_graph(16), CsrBuildOptions{}, pool);
  const ReferenceBfsResult hub = reference_bfs(csr, 0);
  for (Vertex v = 1; v < 16; ++v) EXPECT_EQ(hub.level[v], 1);
  const ReferenceBfsResult leaf = reference_bfs(csr, 5);
  EXPECT_EQ(leaf.level[0], 1);
  EXPECT_EQ(leaf.level[10], 2);
}

TEST(ReferenceBfs, TepsEdgeCountIsComponentEdges) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const ReferenceBfsResult r = reference_bfs(csr, 0);
  EXPECT_EQ(r.teps_edge_count, 5);  // 5 undirected edges in 0's component
  const ReferenceBfsResult other = reference_bfs(csr, 5);
  EXPECT_EQ(other.teps_edge_count, 1);  // just 5-6
}

TEST(ReferenceBfs, IsolatedRoot) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const ReferenceBfsResult r = reference_bfs(csr, 7);
  EXPECT_EQ(r.visited, 1);
  EXPECT_EQ(r.teps_edge_count, 0);
}

TEST(ReferenceBfsDeath, RejectsPartialCsr) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  const Csr part = build_csr_filtered(edges, VertexRange{0, 4},
                                      VertexRange{0, 8}, CsrBuildOptions{},
                                      pool);
  EXPECT_DEATH(reference_bfs(part, 0), "Precondition");
}

}  // namespace
}  // namespace sembfs
