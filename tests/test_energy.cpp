#include "graph500/energy.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

TEST(PowerModel, SystemWattsComposition) {
  PowerModel model;
  model.cpu_watts_per_socket = 100.0;
  model.sockets = 2;
  model.dram_watts_per_gib = 0.5;
  model.platform_watts = 50.0;
  model.pcie_flash_watts = 25.0;
  const std::uint64_t gib = 1ull << 30;
  // 2*100 + 0.5*64 + 25 + 50 = 307
  EXPECT_DOUBLE_EQ(model.system_watts(64 * gib, "pcie_flash"), 307.0);
  // dram-only: no device watts
  EXPECT_DOUBLE_EQ(model.system_watts(64 * gib, "dram"), 282.0);
}

TEST(PowerModel, DeviceWattsByProfile) {
  const PowerModel model;
  EXPECT_GT(model.device_watts("pcie_flash"), model.device_watts("sata_ssd"));
  EXPECT_EQ(model.device_watts("dram"), 0.0);
  EXPECT_EQ(model.device_watts("unknown"), 0.0);
}

TEST(EstimateEnergy, MtepsPerWatt) {
  PowerModel model;
  model.cpu_watts_per_socket = 100.0;
  model.sockets = 1;
  model.dram_watts_per_gib = 0.0;
  model.platform_watts = 0.0;
  const EnergyEstimate e = estimate_energy(model, 435e6, 0, "dram");
  EXPECT_DOUBLE_EQ(e.watts, 100.0);
  EXPECT_DOUBLE_EQ(e.mteps, 435.0);
  EXPECT_DOUBLE_EQ(e.mteps_per_watt, 4.35);
}

TEST(EstimateEnergy, DroppingDramReducesWatts) {
  const PowerModel model;
  const std::uint64_t gib = 1ull << 30;
  const EnergyEstimate big = estimate_energy(model, 5.12e9, 128 * gib, "dram");
  const EnergyEstimate small =
      estimate_energy(model, 4.22e9, 64 * gib, "pcie_flash");
  EXPECT_LT(small.watts, big.watts + model.pcie_flash_watts);
  // Halving DRAM saves 64 GiB * w/GiB; the flash card costs 25 W.
  EXPECT_NEAR(big.watts - small.watts,
              64.0 * model.dram_watts_per_gib - model.pcie_flash_watts,
              1e-9);
}

TEST(EstimateEnergy, PaperEnvelopeContainsPublishedValue) {
  // The paper's 4.35 MTEPS/W (on a bigger Huawei box) should land inside
  // the model's estimate range for the Opteron configurations.
  const PowerModel model;
  const std::uint64_t gib = 1ull << 30;
  const double dram_only =
      estimate_energy(model, 5.12e9, 128 * gib, "dram").mteps_per_watt;
  const double ssd =
      estimate_energy(model, 2.76e9, 64 * gib, "sata_ssd").mteps_per_watt;
  EXPECT_GT(dram_only, 4.35);
  EXPECT_LT(ssd, 10.0);
  EXPECT_GT(dram_only, ssd);
}

TEST(EstimateEnergy, ZeroWattsGuard) {
  PowerModel model;
  model.cpu_watts_per_socket = 0.0;
  model.sockets = 0;
  model.dram_watts_per_gib = 0.0;
  model.platform_watts = 0.0;
  const EnergyEstimate e = estimate_energy(model, 1e6, 0, "dram");
  EXPECT_EQ(e.mteps_per_watt, 0.0);
}

}  // namespace
}  // namespace sembfs
