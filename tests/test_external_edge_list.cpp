#include "graph/external_edge_list.hpp"

#include <gtest/gtest.h>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class ExternalEdgeListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_extedges_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }
  std::shared_ptr<NvmDevice> device_;
};

TEST_F(ExternalEdgeListTest, RoundTripsEdges) {
  const EdgeList edges = fixtures::small_graph();
  ExternalEdgeList ext{device_, path(), edges.vertex_count()};
  ext.append_all(edges);
  EXPECT_EQ(ext.edge_count(), edges.edge_count());

  const EdgeList back = ext.load_all();
  ASSERT_EQ(back.edge_count(), edges.edge_count());
  for (std::size_t i = 0; i < edges.edge_count(); ++i)
    EXPECT_EQ(back[i], edges[i]);
}

TEST_F(ExternalEdgeListTest, TwelveBytesPerEdge) {
  const EdgeList edges = fixtures::small_graph();
  ExternalEdgeList ext{device_, path(), edges.vertex_count()};
  ext.append_all(edges);
  EXPECT_EQ(ext.byte_size(), edges.edge_count() * 12);
}

TEST_F(ExternalEdgeListTest, PartialRead) {
  const EdgeList edges = fixtures::path_graph(20);
  ExternalEdgeList ext{device_, path(), edges.vertex_count()};
  ext.append_all(edges);
  std::vector<Edge> out(5);
  ext.read(10, out);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], edges[10 + i]);
}

TEST_F(ExternalEdgeListTest, BatchStreamingCoversEverything) {
  ThreadPool pool{2};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(8, 8, 9), pool);
  ExternalEdgeList ext{device_, path(), edges.vertex_count()};
  ext.append_all(edges);

  std::size_t seen = 0;
  std::size_t batches = 0;
  ext.for_each_batch(100, [&](std::span<const Edge> batch) {
    for (const Edge& e : batch) {
      ASSERT_EQ(e, edges[seen]);
      ++seen;
    }
    ++batches;
  });
  EXPECT_EQ(seen, edges.edge_count());
  EXPECT_EQ(batches, (edges.edge_count() + 99) / 100);
}

TEST_F(ExternalEdgeListTest, IncrementalAppendBatches) {
  ExternalEdgeList ext{device_, path(), 100};
  const std::vector<Edge> batch1 = {{0, 1}, {2, 3}};
  const std::vector<Edge> batch2 = {{4, 5}};
  ext.append(batch1);
  ext.append(batch2);
  EXPECT_EQ(ext.edge_count(), 3u);
  std::vector<Edge> out(3);
  ext.read(0, out);
  EXPECT_EQ(out[2], (Edge{4, 5}));
}

TEST_F(ExternalEdgeListTest, EmptyListLoadsEmpty) {
  ExternalEdgeList ext{device_, path(), 10};
  const EdgeList back = ext.load_all();
  EXPECT_EQ(back.edge_count(), 0u);
  EXPECT_EQ(back.vertex_count(), 10);
}

}  // namespace
}  // namespace sembfs
