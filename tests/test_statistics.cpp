#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sembfs {
namespace {

TEST(ComputeStats, EmptySample) {
  const SampleStats s = compute_stats({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(ComputeStats, SingleValue) {
  const SampleStats s = compute_stats({4.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.harmonic_mean, 4.0);
}

TEST(ComputeStats, KnownFiveNumberSummary) {
  const SampleStats s = compute_stats({1, 2, 3, 4, 5});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.first_quartile, 2.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.third_quartile, 4.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(ComputeStats, MedianOfEvenCountInterpolates) {
  const SampleStats s = compute_stats({1, 2, 3, 4});
  EXPECT_NEAR(s.median, 2.5, 1e-12);
}

TEST(ComputeStats, OrderInsensitive) {
  const SampleStats a = compute_stats({5, 1, 4, 2, 3});
  const SampleStats b = compute_stats({1, 2, 3, 4, 5});
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
}

TEST(ComputeStats, HarmonicMeanOfRates) {
  // Harmonic mean of {2, 6, 6} = 3 / (1/2 + 1/6 + 1/6) = 3.6
  const SampleStats s = compute_stats({2, 6, 6});
  EXPECT_NEAR(s.harmonic_mean, 3.6, 1e-12);
  EXPECT_LE(s.harmonic_mean, s.mean);  // HM <= AM always
}

TEST(ComputeStats, HarmonicMeanSkippedForNonpositive) {
  const SampleStats s = compute_stats({-1, 2, 3});
  EXPECT_EQ(s.harmonic_mean, 0.0);
}

TEST(SortedQuantile, Interpolation) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_EQ(sorted_quantile(v, 0.0), 10.0);
  EXPECT_EQ(sorted_quantile(v, 1.0), 40.0);
  EXPECT_NEAR(sorted_quantile(v, 0.5), 25.0, 1e-12);
  EXPECT_NEAR(sorted_quantile(v, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> data = {3.5, -1.0, 2.25, 8.0, 0.0, 4.5};
  RunningStats rs;
  for (const double x : data) rs.add(x);
  const SampleStats batch = compute_stats(data);
  EXPECT_EQ(rs.count(), data.size());
  EXPECT_NEAR(rs.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), batch.stddev, 1e-12);
  EXPECT_EQ(rs.min(), batch.min);
  EXPECT_EQ(rs.max(), batch.max);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats rs;
  rs.add(5.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.sum(), 0.0);
}

}  // namespace
}  // namespace sembfs
