#include "nvm/chunk_cache.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "nvm/storage_file.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class ChunkCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
    payload_.resize(64 * 1024 + 100);  // deliberately not chunk-aligned
    std::iota(payload_.begin(), payload_.end(), 0);
    file_->write(0, std::as_bytes(std::span<const char>{payload_}));
    device_->stats().reset();
  }
  std::string path() const { return dir_.path() + "/cache.bin"; }

  void expect_bytes(std::span<const std::byte> got, std::uint64_t offset) {
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(static_cast<char>(got[i]), payload_[offset + i])
          << "offset=" << offset << " i=" << i;
  }

  testutil::ScopedTestDir dir_{"chunk_cache"};
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<char> payload_;
};

TEST_F(ChunkCacheTest, ReadThroughReturnsFileBytes) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(10000);
  cache.read(*file_, 100, out);
  expect_bytes(out, 100);
}

TEST_F(ChunkCacheTest, SecondReadIsAllHitsAndNoDeviceRequests) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(10000);
  const std::uint64_t cold = cache.read(*file_, 0, out);
  EXPECT_GT(cold, 0u);
  EXPECT_EQ(device_->stats().request_count(), cold);

  const std::uint64_t warm = cache.read(*file_, 0, out);
  EXPECT_EQ(warm, 0u);
  EXPECT_EQ(device_->stats().request_count(), cold);  // unchanged
  expect_bytes(out, 0);

  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);  // ceil(10000/4096) cold chunks
  EXPECT_EQ(stats.hits, 3u);    // same chunks warm
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST_F(ChunkCacheTest, StrictDisciplineIssuesOneRequestPerMissingChunk) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(3 * 4096);
  // max_miss_request_bytes = 0: each missing chunk is its own request.
  EXPECT_EQ(cache.read(*file_, 0, out, 0), 3u);
  EXPECT_EQ(device_->stats().request_count(), 3u);
}

TEST_F(ChunkCacheTest, MissRunsMergeUpToCap) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(4 * 4096);
  // All four chunks missing and the cap covers them: one merged request.
  EXPECT_EQ(cache.read(*file_, 0, out, 1 << 20), 1u);
  EXPECT_EQ(device_->stats().request_count(), 1u);
  expect_bytes(out, 0);

  // A cap of two chunks splits the next four-chunk cold range in two.
  std::vector<std::byte> out2(4 * 4096);
  EXPECT_EQ(cache.read(*file_, 4 * 4096, out2, 2 * 4096), 2u);
  expect_bytes(out2, 4 * 4096);
}

TEST_F(ChunkCacheTest, PartialHitFetchesOnlyMissingChunks) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> mid(4096);
  cache.read(*file_, 4096, mid);  // warm chunk 1
  device_->stats().reset();

  std::vector<std::byte> out(3 * 4096);  // chunks 0,1,2 — chunk 1 cached
  EXPECT_EQ(cache.read(*file_, 0, out, 1 << 20), 2u);
  EXPECT_EQ(device_->stats().request_count(), 2u);
  expect_bytes(out, 0);
}

TEST_F(ChunkCacheTest, UnalignedReadsAreServedFromAlignedChunks) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(5000);
  cache.read(*file_, 4090, out);  // straddles chunks 0..2 mid-chunk
  expect_bytes(out, 4090);

  // The same bytes via a different unaligned window: full hit.
  std::vector<std::byte> out2(100);
  EXPECT_EQ(cache.read(*file_, 8000, out2), 0u);
  expect_bytes(out2, 8000);
}

TEST_F(ChunkCacheTest, TailChunkShorterThanChunkSize) {
  ChunkCache cache{1 << 20};
  const std::uint64_t tail_offset = payload_.size() - 50;
  std::vector<std::byte> out(50);
  cache.read(*file_, tail_offset, out);
  expect_bytes(out, tail_offset);
  EXPECT_EQ(cache.read(*file_, tail_offset, out), 0u);  // warm
  expect_bytes(out, tail_offset);
}

TEST_F(ChunkCacheTest, EvictsWhenCapacityExceeded) {
  // Room for 4 chunks (one per shard); the file holds 17.
  ChunkCache cache{4 * 4096, 4096, 4};
  EXPECT_EQ(cache.slot_count(), 4u);
  std::vector<std::byte> out(4096);
  for (std::uint64_t c = 0; c * 4096 < payload_.size() - 4096; ++c) {
    cache.read(*file_, c * 4096, out);
    expect_bytes(out, c * 4096);
  }
  const ChunkCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.insertions, stats.misses);
  // Evicted chunks still read correctly (back through the device).
  cache.read(*file_, 0, out);
  expect_bytes(out, 0);
}

TEST_F(ChunkCacheTest, ClearDropsEverything) {
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(8192);
  const std::uint64_t cold = cache.read(*file_, 0, out);
  cache.clear();
  EXPECT_EQ(cache.read(*file_, 0, out), cold);  // cold again
}

TEST_F(ChunkCacheTest, DistinguishesFiles) {
  const std::string other_path = path() + ".other";
  remove_file_if_exists(other_path);
  NvmFile other{device_, other_path};
  std::vector<char> other_payload(8192, 'x');
  other.write(0, std::as_bytes(std::span<const char>{other_payload}));

  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(4096);
  cache.read(*file_, 0, out);
  // Same offset, different file: must not serve file_'s chunk.
  EXPECT_GT(cache.read(other, 0, out), 0u);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(static_cast<char>(out[i]), 'x');
  remove_file_if_exists(other_path);
}

TEST_F(ChunkCacheTest, ChecksumDetectsPersistentCorruptionAndThrows) {
  ChunkChecksums checksums;
  checksums.record_buffer(*file_, 0,
                          std::as_bytes(std::span<const char>{payload_}));

  // Damage the backing store itself (a torn write, not a transient device
  // glitch): every re-fetch sees the same wrong byte.
  const char bad = static_cast<char>(payload_[5000] ^ 0x40);
  file_->write(5000, std::as_bytes(std::span<const char>{&bad, 1}));

  ChunkCache cache{1 << 20};
  cache.set_checksums(&checksums, /*max_refetches=*/2);
  std::vector<std::byte> out(3 * 4096);  // chunks 0..2; byte 5000 is chunk 1
  EXPECT_THROW(cache.read(*file_, 0, out), NvmIoError);

  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.checksum_failures, 3u);  // initial + 2 failed re-fetches
  EXPECT_EQ(stats.refetches, 2u);
}

TEST_F(ChunkCacheTest, ChecksumHealsTransientDeviceCorruption) {
  ChunkChecksums checksums;
  checksums.record_buffer(*file_, 0,
                          std::as_bytes(std::span<const char>{payload_}));

  // A plan whose fault sequence corrupts read #0 but not read #1: the
  // cold fetch delivers a flipped byte, the corrective re-fetch is clean.
  FaultPlan plan;
  plan.corruption_rate = 0.5;
  for (plan.seed = 1;
       !(plan.decide(0).corrupt && !plan.decide(1).corrupt); ++plan.seed) {
  }
  device_->set_fault_plan(plan);

  ChunkCache cache{1 << 20};
  cache.set_checksums(&checksums, /*max_refetches=*/1);
  std::vector<std::byte> out(4096);  // one chunk = one faulted device read
  const std::uint64_t requests = cache.read(*file_, 0, out);
  expect_bytes(out, 0);  // healed: the caller never sees the flip
  EXPECT_EQ(requests, 2u);  // cold fetch + corrective re-fetch

  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.refetches, 1u);

  // The healed chunk was inserted; the warm read is clean and free.
  device_->clear_fault_plan();
  EXPECT_EQ(cache.read(*file_, 0, out), 0u);
  expect_bytes(out, 0);
}

TEST_F(ChunkCacheTest, UnrecordedChunksAreDeliveredUnverified) {
  // An attached but empty registry must not reject (or re-fetch) chunks it
  // never recorded — verification is strictly opt-in per chunk.
  ChunkChecksums checksums;
  ChunkCache cache{1 << 20};
  cache.set_checksums(&checksums);
  std::vector<std::byte> out(8192);
  cache.read(*file_, 0, out);
  expect_bytes(out, 0);
  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_EQ(stats.refetches, 0u);
}

TEST_F(ChunkCacheTest, ConcurrentReadersSeeConsistentData) {
  ChunkCache cache{8 * 4096, 4096, 4};  // small: forces races on eviction
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> out;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t offset =
            ((t * 977 + i * 131) % 60) * 1024;  // overlapping windows
        out.resize(1024 + (i % 3) * 512);
        cache.read(*file_, offset, out,
                   i % 2 == 0 ? 0 : std::uint64_t{1} << 16);
        for (std::size_t j = 0; j < out.size(); ++j) {
          if (static_cast<char>(out[j]) != payload_[offset + j]) {
            ok.store(false);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  const ChunkCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace sembfs
