// DeltaBuffer semantics: ordered op folding, tombstones hiding every base
// multi-edge copy, insert multiplicity, degree adjustment, merged-view
// iteration with and without the destination filter, and the canonical
// edge lists the repair/compaction paths consume.
#include "graph/delta_buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sembfs {
namespace {

// Base adjacency used by the count oracle in these tests:
//   0: {1, 1, 2}      (multi-edge 0-1)
//   1: {0, 0, 2}
//   2: {0, 1}
//   3: {}             4: {}
std::int64_t base_count(Vertex u, Vertex w) {
  const auto pair_count = [](Vertex a, Vertex b) -> std::int64_t {
    const Vertex lo = a < b ? a : b;
    const Vertex hi = a < b ? b : a;
    if (lo == 0 && hi == 1) return 2;
    if (lo == 0 && hi == 2) return 1;
    if (lo == 1 && hi == 2) return 1;
    return 0;
  };
  return pair_count(u, w);
}

constexpr Vertex kN = 5;

TEST(DeltaBufferTest, EmptyBufferTouchesNothing) {
  const DeltaBuffer delta =
      DeltaBuffer::build(kN, {}, [](Vertex, Vertex) { return 0; });
  EXPECT_TRUE(delta.empty());
  EXPECT_FALSE(delta.has_deletes());
  for (Vertex v = 0; v < kN; ++v) {
    EXPECT_FALSE(delta.touches(v));
    EXPECT_EQ(delta.degree_adjustment(v), 0);
    EXPECT_TRUE(delta.inserted(v).empty());
  }
}

TEST(DeltaBufferTest, InsertAddsBothEndpointsWithMultiplicity) {
  const std::vector<EdgeOp> ops{EdgeOp::insert(3, 4), EdgeOp::insert(3, 4),
                                EdgeOp::insert(0, 3)};
  const DeltaBuffer delta = DeltaBuffer::build(kN, ops, base_count);
  EXPECT_TRUE(delta.touches(3));
  EXPECT_TRUE(delta.touches(4));
  EXPECT_TRUE(delta.has_inserts(3));
  ASSERT_EQ(delta.inserted(3).size(), 3u);  // {0, 4, 4} sorted
  EXPECT_EQ(delta.inserted(3)[0], 0);
  EXPECT_EQ(delta.inserted(3)[1], 4);
  EXPECT_EQ(delta.inserted(3)[2], 4);
  ASSERT_EQ(delta.inserted(4).size(), 2u);
  EXPECT_EQ(delta.degree_adjustment(3), 3);
  EXPECT_EQ(delta.degree_adjustment(4), 2);
  EXPECT_EQ(delta.degree_adjustment(0), 1);
  // Canonical inserted pairs, sorted, with multiplicity.
  ASSERT_EQ(delta.inserted_edges().size(), 3u);
  EXPECT_EQ(delta.inserted_edges()[0].u, 0);
  EXPECT_EQ(delta.inserted_edges()[0].v, 3);
  EXPECT_EQ(delta.inserted_edges()[1].u, 3);
  EXPECT_EQ(delta.inserted_edges()[1].v, 4);
  EXPECT_EQ(delta.inserted_edges()[2].u, 3);
  EXPECT_EQ(delta.inserted_edges()[2].v, 4);
}

TEST(DeltaBufferTest, TombstoneHidesEveryBaseCopy) {
  // 0-1 is a base multi-edge (2 copies): one remove op kills both.
  const std::vector<EdgeOp> ops{EdgeOp::remove(0, 1)};
  const DeltaBuffer delta = DeltaBuffer::build(kN, ops, base_count);
  EXPECT_TRUE(delta.has_deletes());
  EXPECT_TRUE(delta.edge_removed(0, 1));
  EXPECT_TRUE(delta.edge_removed(1, 0));
  EXPECT_FALSE(delta.edge_removed(0, 2));
  EXPECT_EQ(delta.degree_adjustment(0), -2);
  EXPECT_EQ(delta.degree_adjustment(1), -2);
  ASSERT_EQ(delta.removed_edges().size(), 1u);
  EXPECT_EQ(delta.removed_edges()[0].u, 0);
  EXPECT_EQ(delta.removed_edges()[0].v, 1);
}

TEST(DeltaBufferTest, RemoveThenInsertLeavesPairPresentOnce) {
  const std::vector<EdgeOp> ops{EdgeOp::remove(0, 1), EdgeOp::insert(0, 1)};
  const DeltaBuffer delta = DeltaBuffer::build(kN, ops, base_count);
  // Tombstone still hides the base copies; the surviving insert supplies
  // exactly one merged copy.
  EXPECT_TRUE(delta.edge_removed(0, 1));
  ASSERT_EQ(delta.inserted(0).size(), 1u);
  EXPECT_EQ(delta.inserted(0)[0], 1);
  EXPECT_EQ(delta.degree_adjustment(0), -1);  // -2 base copies + 1 insert

  std::vector<Vertex> merged;
  const std::vector<Vertex> base{1, 1, 2};
  delta.for_each_merged(0, base, [&](Vertex w) { merged.push_back(w); });
  ASSERT_EQ(merged.size(), 2u);  // base 2 survives, then the inserted 1
  EXPECT_EQ(merged[0], 2);
  EXPECT_EQ(merged[1], 1);
}

TEST(DeltaBufferTest, InsertThenRemoveCancels) {
  const std::vector<EdgeOp> ops{EdgeOp::insert(3, 4), EdgeOp::insert(3, 4),
                                EdgeOp::remove(3, 4)};
  const DeltaBuffer delta = DeltaBuffer::build(kN, ops, base_count);
  EXPECT_TRUE(delta.inserted(3).empty());
  EXPECT_EQ(delta.degree_adjustment(3), 0);
  EXPECT_TRUE(delta.inserted_edges().empty());
  // The raw op counts keep the full history for stats.
  EXPECT_EQ(delta.insert_ops(), 2u);
  EXPECT_EQ(delta.remove_ops(), 1u);
}

TEST(DeltaBufferTest, MergedViewFiltersInsertsByDestinationRange) {
  const std::vector<EdgeOp> ops{EdgeOp::insert(0, 3), EdgeOp::insert(0, 4)};
  const DeltaBuffer delta = DeltaBuffer::build(kN, ops, base_count);
  // Partition-local view [3, 4): only the insert landing in the range
  // appears, mirroring the destination-filtered forward partitions.
  std::vector<Vertex> merged;
  delta.for_each_merged(0, {}, VertexRange{3, 4},
                        [&](Vertex w) { merged.push_back(w); });
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], 3);
}

TEST(DeltaBufferTest, UntouchedVertexPassesBaseThrough) {
  const std::vector<EdgeOp> ops{EdgeOp::insert(3, 4)};
  const DeltaBuffer delta = DeltaBuffer::build(kN, ops, base_count);
  std::vector<Vertex> merged;
  const std::vector<Vertex> base{0, 1};
  delta.for_each_merged(2, base, [&](Vertex w) { merged.push_back(w); });
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], 0);
  EXPECT_EQ(merged[1], 1);
  EXPECT_GT(delta.byte_size(), 0u);
}

}  // namespace
}  // namespace sembfs
