// MessageBus contract tests: the fixed ascending sender-rank drain order
// (the determinism fix over the seed-era bus), per-phase accounting, and
// self-send exclusion from the remote totals.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "shard/message_bus.hpp"

namespace sembfs::shard {
namespace {

std::vector<std::byte> payload(std::initializer_list<int> bytes) {
  std::vector<std::byte> out;
  for (int b : bytes) out.push_back(static_cast<std::byte>(b));
  return out;
}

TEST(ShardBus, DrainReturnsFixedAscendingSenderOrder) {
  MessageBus bus{4};
  // Send in deliberately scrambled sender order; the drain must come back
  // 0, 1, 2, 3 regardless.
  bus.send(3, 0, Phase::kFrontier, payload({30}));
  bus.send(1, 0, Phase::kFrontier, payload({10}));
  bus.send(2, 0, Phase::kFrontier, payload({20}));
  bus.send(0, 0, Phase::kFrontier, payload({0}));
  const std::vector<MessageBus::Message> got =
      bus.drain_all(0, Phase::kFrontier);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].from, i);
    EXPECT_EQ(got[i].payload, payload({static_cast<int>(10 * i)}));
  }
}

TEST(ShardBus, MessagesFromOneSenderKeepSendOrder) {
  MessageBus bus{2};
  bus.send(1, 0, Phase::kClaims, payload({1}));
  bus.send(1, 0, Phase::kClaims, payload({2}));
  bus.send(1, 0, Phase::kClaims, payload({3}));
  const auto got = bus.drain_all(0, Phase::kClaims);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(got[i].payload, payload({static_cast<int>(i + 1)}));
}

TEST(ShardBus, DrainOrderDeterministicUnderConcurrentSenders) {
  // Many threads race their sends; after a join, every receiver must see
  // the same ascending-sender sequence on every run.
  constexpr std::size_t kRanks = 8;
  MessageBus bus{kRanks};
  std::vector<std::thread> threads;
  for (std::size_t from = 0; from < kRanks; ++from) {
    threads.emplace_back([&bus, from] {
      for (std::size_t to = 0; to < kRanks; ++to)
        bus.send(from, to, Phase::kFrontier,
                 payload({static_cast<int>(from)}));
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t to = 0; to < kRanks; ++to) {
    const auto got = bus.drain_all(to, Phase::kFrontier);
    ASSERT_EQ(got.size(), kRanks);
    for (std::size_t i = 0; i < kRanks; ++i) {
      EXPECT_EQ(got[i].from, i);
      EXPECT_EQ(got[i].payload, payload({static_cast<int>(i)}));
    }
  }
}

TEST(ShardBus, EmptyPayloadsAreDropped) {
  MessageBus bus{2};
  bus.send(0, 1, Phase::kFrontier, {});
  EXPECT_TRUE(bus.drain_all(1, Phase::kFrontier).empty());
  EXPECT_EQ(bus.total_messages(), 0u);
  EXPECT_EQ(bus.total_remote_bytes(), 0u);
}

TEST(ShardBus, PhasesHaveSeparateMailboxesAndCounters) {
  MessageBus bus{2};
  bus.send(0, 1, Phase::kFrontier, payload({1, 2}));
  bus.send(0, 1, Phase::kMembership, payload({1, 2, 3}));
  bus.send(0, 1, Phase::kClaims, payload({1, 2, 3, 4, 5}));
  EXPECT_EQ(bus.remote_bytes(Phase::kFrontier), 2u);
  EXPECT_EQ(bus.remote_bytes(Phase::kMembership), 3u);
  EXPECT_EQ(bus.remote_bytes(Phase::kClaims), 5u);
  EXPECT_EQ(bus.total_remote_bytes(), 10u);
  // Draining one phase leaves the others queued.
  EXPECT_EQ(bus.drain_all(1, Phase::kMembership).size(), 1u);
  EXPECT_EQ(bus.drain_all(1, Phase::kMembership).size(), 0u);
  EXPECT_EQ(bus.drain_all(1, Phase::kFrontier).size(), 1u);
  EXPECT_EQ(bus.drain_all(1, Phase::kClaims).size(), 1u);
}

TEST(ShardBus, SelfSendsDeliveredButExcludedFromRemoteTotals) {
  MessageBus bus{3};
  bus.send(1, 1, Phase::kFrontier, payload({9, 9, 9}));
  bus.send(1, 2, Phase::kFrontier, payload({7}));
  // Self-send is delivered like any message...
  const auto self = bus.drain_all(1, Phase::kFrontier);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].from, 1u);
  // ...but only the cross-rank byte counts as remote.
  EXPECT_EQ(bus.total_remote_bytes(), 1u);
  EXPECT_EQ(bus.total_messages(), 1u);
  // Per-pair accounting still sees both.
  EXPECT_EQ(bus.bytes_sent(1, 1), 3u);
  EXPECT_EQ(bus.bytes_sent(1, 2), 1u);
}

TEST(ShardBus, ResetCountersKeepsQueuedMessages) {
  MessageBus bus{2};
  bus.send(0, 1, Phase::kClaims, payload({1, 2, 3}));
  bus.reset_counters();
  EXPECT_EQ(bus.total_remote_bytes(), 0u);
  EXPECT_EQ(bus.total_messages(), 0u);
  EXPECT_EQ(bus.bytes_sent(0, 1), 0u);
  // The message itself is still there: counters are accounting, not
  // delivery state.
  EXPECT_EQ(bus.drain_all(1, Phase::kClaims).size(), 1u);
}

TEST(ShardBus, PhaseNames) {
  EXPECT_STREQ(phase_name(Phase::kFrontier), "frontier");
  EXPECT_STREQ(phase_name(Phase::kMembership), "membership");
  EXPECT_STREQ(phase_name(Phase::kClaims), "claims");
}

}  // namespace
}  // namespace sembfs::shard
