// Randomized differential sweep over the failure domain: every cell of
// {generator} x {storage tier} x {switch policy} x {fault rate} must
// produce the same level assignment as the serial reference BFS and pass
// Graph500 Step-4 validation — with faults injected, via containment and
// degraded bottom-up retries rather than by luck. The engine-hosted BFS
// program rides the same matrix, and a second sweep (AnalyticsSweep
// below) runs the engine's components/PageRank/triangle programs against
// single-threaded in-memory references over the same storage cells.
//
// Everything derives from one fixed seed (kSeed below). FaultPlan
// decisions are a pure function of (seed, request index), so the set of
// faulted requests is reproducible regardless of thread scheduling; on
// any failure the case printer emits the seed to rerun with.
#include <gtest/gtest.h>

#include <optional>

#include "analytics_references.hpp"
#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "engine/bfs_program.hpp"
#include "engine/components_program.hpp"
#include "engine/pagerank_program.hpp"
#include "engine/program_session.hpp"
#include "engine/triangle_program.hpp"
#include "graph/tiered_forward.hpp"
#include "graph/uniform.hpp"
#include "graph_fixtures.hpp"
#include "shard/sharded_bfs.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

// The one seed behind graph generation and the fault schedule. Printed on
// failure; change it here to reproduce a reported run.
constexpr std::uint64_t kSeed = 0xd1f5eed;

struct DiffCase {
  const char* generator;  // "kron" | "uniform"
  const char* storage;    // "dram" | "external" | "tiered"
  PolicyKind policy;
  double alpha;
  double beta;
  double read_error_rate;  // injected per-read error probability
  double corruption_rate;  // injected per-read bit-flip probability
  bool expect_degraded = false;  // the cell must actually hit the fallback
  // Hybrid cells leave NVM quickly (wide levels go bottom-up in DRAM);
  // TopDownOnly keeps every level on the device for fault-heavy cells.
  BfsMode mode = BfsMode::Hybrid;
  // Next-frontier representation for bottom-up levels: both forced
  // representations must produce the same tree as Auto (and the serial
  // reference).
  FrontierMode frontier = FrontierMode::Auto;
  // On-NVM adjacency layout for external/tiered storage: the compressed
  // backends must be reference-exact across the same policy/fault matrix.
  ChunkFormat chunk_format = ChunkFormat::kRaw;

  friend std::ostream& operator<<(std::ostream& os, const DiffCase& c) {
    return os << c.generator << "_" << c.storage << "_policy"
              << static_cast<int>(c.policy) << "_mode"
              << static_cast<int>(c.mode) << "_rep"
              << static_cast<int>(c.frontier) << "_fmt"
              << to_string(c.chunk_format) << "_a" << c.alpha << "_b"
              << c.beta << "_err" << c.read_error_rate << "_corr"
              << c.corruption_rate << "_seed" << kSeed;
  }
};

class DifferentialSweep : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialSweep, LevelsMatchReferenceAndTreeValidates) {
  const DiffCase c = GetParam();
  SCOPED_TRACE(::testing::Message()
               << "repro: case {" << c << "} with kSeed=" << kSeed);
  ThreadPool pool{4};

  EdgeList edges;
  if (std::string_view{c.generator} == "kron") {
    edges = generate_kronecker(fixtures::small_kronecker(10, 8, kSeed), pool);
  } else {
    UniformParams params;
    params.scale = 10;
    params.edge_factor = 8;
    params.seed = kSeed;
    edges = generate_uniform(params, pool);
  }
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  testutil::ScopedTestDir scratch{"diff"};
  const std::string& dir = scratch.path();

  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  std::optional<ExternalForwardGraph> external;
  std::optional<TieredForwardGraph> tiered;
  GraphStorage storage;
  storage.backward_dram = &backward;
  if (std::string_view{c.storage} == "dram") {
    storage.forward_dram = &forward;
  } else if (std::string_view{c.storage} == "external") {
    external.emplace(forward, device, dir + "/fg", /*chunk_bytes=*/4096u,
                     c.chunk_format);
    storage.forward_external = &*external;
  } else {
    tiered.emplace(forward, 4, device, dir, pool, /*chunk_bytes=*/4096u,
                   c.chunk_format);
    storage.forward_tiered = &*tiered;
  }

  BfsConfig config;
  config.mode = c.mode;
  config.frontier_mode = c.frontier;
  config.policy.kind = c.policy;
  config.policy.alpha = c.alpha;
  config.policy.beta = c.beta;
  config.chunk_format = c.chunk_format;
  if (c.corruption_rate > 0.0) {
    // Corruption cells must detect flips, not ingest them: route fetches
    // through the chunk cache and verify against the offload checksums.
    config.chunk_cache_bytes = 1 << 20;
    config.verify_chunk_checksums = true;
  }

  // Armed after construction so only the BFS read path sees faults.
  FaultPlan plan;
  plan.seed = kSeed;
  plan.read_error_rate = c.read_error_rate;
  plan.corruption_rate = c.corruption_rate;
  if (plan.enabled()) device->set_fault_plan(plan);

  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool};

  Vertex first_root = 0;
  while (full.degree(first_root) == 0) ++first_root;
  Vertex second_root = edges.vertex_count() / 2;
  while (full.degree(second_root) == 0) ++second_root;
  bool saw_degraded = false;
  for (const Vertex root : {first_root, second_root}) {
    const BfsResult result = runner.run(root, config);
    const ReferenceBfsResult ref = reference_bfs(full, root);
    ASSERT_EQ(result.visited, ref.visited) << "root " << root;
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v]) << "root " << root << " v "
                                               << v;
    const ValidationResult v =
        validate_bfs(edges, root, result.parent, result.level);
    ASSERT_TRUE(v.ok) << "root " << root << ": " << v.error;
    // A degraded run must have a recorded cause, and vice versa faults
    // without degradation would mean a level silently went missing work.
    ASSERT_EQ(result.degraded, result.degraded_levels > 0);
    if (result.io_failures > 0) ASSERT_TRUE(result.degraded);
    saw_degraded |= result.degraded;

    // The engine-hosted BFS program must be reference-exact through the
    // exact same storage/config cell as the hand-tuned runner, faults
    // and all.
    engine::BfsProgram program{root};
    engine::ProgramSession session{program, storage, NumaTopology{4, 1},
                                   pool, config};
    session.run();
    const std::vector<std::int32_t>& engine_levels =
        program.status().levels();
    for (Vertex w = 0; w < edges.vertex_count(); ++w) {
      ASSERT_EQ(engine_levels[w], ref.level[w])
          << "engine root " << root << " v " << w;
    }
  }
  if (c.expect_degraded) ASSERT_TRUE(saw_degraded);
}

constexpr double kA = 1e4;  // the paper's default FrontierRatio rule
constexpr double kB = 1e5;

INSTANTIATE_TEST_SUITE_P(
    Matrix, DifferentialSweep,
    ::testing::Values(
        // Fault-free baseline: every generator x storage x policy cell.
        DiffCase{"kron", "dram", PolicyKind::FrontierRatio, kA, kB, 0, 0},
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 0, 0},
        DiffCase{"kron", "tiered", PolicyKind::FrontierRatio, kA, kB, 0, 0},
        DiffCase{"uniform", "dram", PolicyKind::FrontierRatio, kA, kB, 0, 0},
        DiffCase{"uniform", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 0},
        DiffCase{"uniform", "tiered", PolicyKind::FrontierRatio, kA, kB, 0,
                 0},
        DiffCase{"kron", "dram", PolicyKind::EdgeRatio, 14, 24, 0, 0},
        DiffCase{"kron", "external", PolicyKind::EdgeRatio, 14, 24, 0, 0},
        DiffCase{"kron", "tiered", PolicyKind::EdgeRatio, 14, 24, 0, 0},
        DiffCase{"uniform", "dram", PolicyKind::EdgeRatio, 14, 24, 0, 0},
        DiffCase{"uniform", "external", PolicyKind::EdgeRatio, 14, 24, 0, 0},
        DiffCase{"uniform", "tiered", PolicyKind::EdgeRatio, 14, 24, 0, 0},
        // Injected read errors (1e-3 per read) on the NVM-backed tiers:
        // containment + degraded bottom-up retries must keep the answer.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 0},
        DiffCase{"kron", "tiered", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 0},
        DiffCase{"uniform", "external", PolicyKind::FrontierRatio, kA, kB,
                 1e-3, 0},
        DiffCase{"uniform", "tiered", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 0},
        DiffCase{"kron", "external", PolicyKind::EdgeRatio, 14, 24, 1e-3, 0},
        DiffCase{"uniform", "external", PolicyKind::EdgeRatio, 14, 24, 1e-3,
                 0},
        // Heavy error rate: degradation must actually fire (the first
        // injected error lands inside level 1's request stream for this
        // seed) and the tree must survive it.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 3e-2,
                 0, true, BfsMode::TopDownOnly},
        DiffCase{"uniform", "tiered", PolicyKind::FrontierRatio, kA, kB,
                 3e-2, 0, false, BfsMode::TopDownOnly},
        // Injected bit corruption with checksum verification: flips heal
        // via re-fetch instead of reaching the traversal.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 1e-3},
        DiffCase{"uniform", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 1e-3},
        // Errors and corruption together.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 1e-3},
        // Frontier-representation dimension: the forced bitmap output must
        // reproduce the reference tree in every generator x storage cell
        // (the Auto cells above already cover mixed queue/bitmap levels).
        DiffCase{"kron", "dram", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::ForceBitmap},
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::ForceBitmap},
        DiffCase{"kron", "tiered", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::ForceBitmap},
        DiffCase{"uniform", "dram", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::ForceBitmap},
        DiffCase{"uniform", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 0, false, BfsMode::Hybrid, FrontierMode::ForceBitmap},
        DiffCase{"uniform", "tiered", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::ForceBitmap},
        // Forced queue pins the legacy representation end-to-end.
        DiffCase{"kron", "dram", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::ForceQueue},
        DiffCase{"uniform", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 0, false, BfsMode::Hybrid, FrontierMode::ForceQueue},
        // Every level bottom-up in bitmap mode: queue materialization never
        // runs except for validation snapshots.
        DiffCase{"kron", "dram", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::BottomUpOnly, FrontierMode::ForceBitmap},
        // Degradation under forced bitmap: the bottom-up redo of a failed
        // top-down level must stay on queue output so the partial top-down
        // next list merges in.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 3e-2,
                 0, true, BfsMode::TopDownOnly, FrontierMode::ForceBitmap},
        // Chunk-format dimension: the varint-compressed external and tiered
        // backends must be reference-exact in the same policy cells...
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        DiffCase{"kron", "tiered", PolicyKind::FrontierRatio, kA, kB, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        DiffCase{"uniform", "external", PolicyKind::EdgeRatio, 14, 24, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        DiffCase{"uniform", "tiered", PolicyKind::EdgeRatio, 14, 24, 0, 0,
                 false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        // ...under injected read errors (containment + degraded retry over
        // compressed blobs)...
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 0, false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        DiffCase{"uniform", "tiered", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 0, false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        // ...and under injected bit corruption: a flipped compressed blob
        // fails its own CRC inside CompressedBlockFile and heals via
        // re-fetch (the cache+registry protect the raw index file). Tiered
        // corruption cells are omitted: the tiered path wires no chunk
        // cache, so its raw index reads would have no corruption defense.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 1e-3, false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        DiffCase{"uniform", "external", PolicyKind::FrontierRatio, kA, kB, 0,
                 1e-3, false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        // ...and with errors and corruption together on the heavy-error
        // top-down path, where degradation must still fire and contain.
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 1e-3,
                 1e-3, false, BfsMode::Hybrid, FrontierMode::Auto,
                 ChunkFormat::kVarint},
        DiffCase{"kron", "external", PolicyKind::FrontierRatio, kA, kB, 3e-2,
                 0, true, BfsMode::TopDownOnly, FrontierMode::Auto,
                 ChunkFormat::kVarint}));

// ---------------------------------------------------------------------------
// Analytics dimension: the engine's components, PageRank, and triangle
// programs against naive single-threaded in-memory references, across the
// same {generator} x {storage tier} x {chunk format} x {fault rate} cells.
// Components and triangle counts must match exactly — under fault
// injection too, via pull degradation (components, PageRank) and per-
// vertex healing from the DRAM backward graph (triangles). PageRank is
// epsilon-bounded: the reference replays the same number of synchronous
// iterations serially, so the only daylight is summation order.

struct AnalyticsCase {
  const char* generator;  // "kron" | "uniform"
  const char* storage;    // "dram" | "external" | "tiered"
  ChunkFormat chunk_format = ChunkFormat::kRaw;
  double read_error_rate = 0.0;  // injected per-read error probability

  friend std::ostream& operator<<(std::ostream& os, const AnalyticsCase& c) {
    return os << c.generator << "_" << c.storage << "_fmt"
              << to_string(c.chunk_format) << "_err" << c.read_error_rate
              << "_seed" << kSeed;
  }
};

class AnalyticsSweep : public ::testing::TestWithParam<AnalyticsCase> {};

TEST_P(AnalyticsSweep, EngineMatchesSerialReferences) {
  const AnalyticsCase c = GetParam();
  SCOPED_TRACE(::testing::Message()
               << "repro: case {" << c << "} with kSeed=" << kSeed);
  ThreadPool pool{4};

  EdgeList edges;
  if (std::string_view{c.generator} == "kron") {
    edges = generate_kronecker(fixtures::small_kronecker(10, 8, kSeed), pool);
  } else {
    UniformParams params;
    params.scale = 10;
    params.edge_factor = 8;
    params.seed = kSeed;
    edges = generate_uniform(params, pool);
  }
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  testutil::ScopedTestDir scratch{"diffan"};

  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  std::optional<ExternalForwardGraph> external;
  std::optional<TieredForwardGraph> tiered;
  GraphStorage storage;
  storage.backward_dram = &backward;
  if (std::string_view{c.storage} == "dram") {
    storage.forward_dram = &forward;
  } else if (std::string_view{c.storage} == "external") {
    external.emplace(forward, device, scratch.path() + "/fg",
                     /*chunk_bytes=*/4096u, c.chunk_format);
    storage.forward_external = &*external;
  } else {
    tiered.emplace(forward, 4, device, scratch.path(), pool,
                   /*chunk_bytes=*/4096u, c.chunk_format);
    storage.forward_tiered = &*tiered;
  }

  const NumaTopology topology{4, 1};
  BfsConfig config;
  config.chunk_format = c.chunk_format;

  // Armed after construction so only the program read paths see faults.
  FaultPlan plan;
  plan.seed = kSeed;
  plan.read_error_rate = c.read_error_rate;
  if (plan.enabled()) device->set_fault_plan(plan);

  {
    engine::ComponentsProgram program;
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    const std::vector<Vertex> expected = testref::reference_components(full);
    ASSERT_EQ(program.labels().size(), expected.size());
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      ASSERT_EQ(program.label(v), expected[v]) << "components v " << v;
  }

  {
    engine::PageRankProgram program;
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    ASSERT_GT(program.iterations(), 0);
    const std::vector<double> expected = testref::reference_pagerank(
        full, program.options().damping, program.iterations());
    const std::vector<double>& ranks = program.ranks();
    ASSERT_EQ(ranks.size(), expected.size());
    double sum = 0.0;
    for (Vertex v = 0; v < edges.vertex_count(); ++v) {
      ASSERT_NEAR(ranks[v], expected[v], 1e-9) << "pagerank v " << v;
      sum += ranks[v];
    }
    // Rank is conserved: teleport + dangling redistribution keep the
    // total mass at 1 regardless of direction or degradation.
    ASSERT_NEAR(sum, 1.0, 1e-6);
  }

  {
    engine::TriangleProgram program;
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    ASSERT_EQ(program.triangles(), testref::reference_triangles(full));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AnalyticsSweep,
    ::testing::Values(
        // Fault-free baseline across every generator x storage cell.
        AnalyticsCase{"kron", "dram"}, AnalyticsCase{"kron", "external"},
        AnalyticsCase{"kron", "tiered"}, AnalyticsCase{"uniform", "dram"},
        AnalyticsCase{"uniform", "external"},
        AnalyticsCase{"uniform", "tiered"},
        // Varint-compressed adjacency on the NVM-backed tiers.
        AnalyticsCase{"kron", "external", ChunkFormat::kVarint},
        AnalyticsCase{"kron", "tiered", ChunkFormat::kVarint},
        AnalyticsCase{"uniform", "external", ChunkFormat::kVarint},
        AnalyticsCase{"uniform", "tiered", ChunkFormat::kVarint},
        // Injected read errors: answers must survive via containment —
        // pull degradation for components/PageRank, per-vertex healing
        // for triangles — on both raw and compressed layouts.
        AnalyticsCase{"kron", "external", ChunkFormat::kRaw, 1e-3},
        AnalyticsCase{"kron", "tiered", ChunkFormat::kRaw, 1e-3},
        AnalyticsCase{"uniform", "external", ChunkFormat::kRaw, 1e-3},
        AnalyticsCase{"uniform", "tiered", ChunkFormat::kRaw, 1e-3},
        AnalyticsCase{"kron", "external", ChunkFormat::kVarint, 1e-3},
        AnalyticsCase{"uniform", "tiered", ChunkFormat::kVarint, 1e-3}));

// ---------------------------------------------------------------------------
// Sharded sweep: the emulated multi-node BFS must agree with the serial
// reference across {generator} x {shard count} x {chunk format} x {fault
// rate}. Fault cells derive independent per-shard fault sequences from
// kSeed (arm_fault_plans adds the shard id), so failures land in
// different shards across cells but the whole schedule stays
// reproducible.

struct ShardDiffCase {
  const char* generator;  // "kron" | "uniform"
  std::size_t shards;
  ChunkFormat chunk_format;
  double read_error_rate;

  friend std::ostream& operator<<(std::ostream& os, const ShardDiffCase& c) {
    return os << c.generator << "_s" << c.shards << "_fmt"
              << to_string(c.chunk_format) << "_err" << c.read_error_rate
              << "_seed" << kSeed;
  }
};

class ShardedDifferentialSweep
    : public ::testing::TestWithParam<ShardDiffCase> {};

TEST_P(ShardedDifferentialSweep, LevelsMatchReferenceAndTreeValidates) {
  const ShardDiffCase c = GetParam();
  SCOPED_TRACE(::testing::Message()
               << "repro: case {" << c << "} with kSeed=" << kSeed);
  ThreadPool pool{std::max<std::size_t>(4, c.shards)};

  EdgeList edges;
  if (std::string_view{c.generator} == "kron") {
    edges = generate_kronecker(fixtures::small_kronecker(10, 8, kSeed), pool);
  } else {
    UniformParams params;
    params.scale = 10;
    params.edge_factor = 8;
    params.seed = kSeed;
    edges = generate_uniform(params, pool);
  }
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  testutil::ScopedTestDir scratch{"sharddiff"};
  shard::ShardNodeConfig node_config;
  node_config.format = c.chunk_format;
  shard::ShardedBfs sharded{edges,          c.shards,
                            pool,           DeviceProfile::dram(),
                            scratch.path(), node_config};
  if (c.read_error_rate > 0.0) {
    FaultPlan base;
    base.seed = kSeed;
    base.read_error_rate = c.read_error_rate;
    sharded.arm_fault_plans(base);
  }

  Vertex first_root = 0;
  while (full.degree(first_root) == 0) ++first_root;
  Vertex second_root = edges.vertex_count() / 2;
  while (full.degree(second_root) == 0) ++second_root;
  for (const Vertex root : {first_root, second_root}) {
    const shard::ShardedBfsResult result =
        sharded.run(root, shard::ShardedBfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full, root);
    ASSERT_EQ(result.visited, ref.visited) << "root " << root;
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "root " << root << " v " << v;
    const ValidationResult check =
        validate_bfs(edges, root, result.parent, result.level);
    ASSERT_TRUE(check.ok) << "root " << root << ": " << check.error;
    // Degradation bookkeeping mirrors the single-node contract: a run is
    // degraded iff some shard actually served from its DRAM fallback.
    if (result.degraded) {
      ASSERT_GT(result.io_failures, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardedDifferentialSweep,
    ::testing::Values(
        // Fault-free: every generator x shard count, raw chunks.
        ShardDiffCase{"kron", 2, ChunkFormat::kRaw, 0},
        ShardDiffCase{"kron", 4, ChunkFormat::kRaw, 0},
        ShardDiffCase{"kron", 8, ChunkFormat::kRaw, 0},
        ShardDiffCase{"uniform", 2, ChunkFormat::kRaw, 0},
        ShardDiffCase{"uniform", 4, ChunkFormat::kRaw, 0},
        ShardDiffCase{"uniform", 8, ChunkFormat::kRaw, 0},
        // Varint-compressed per-shard chunk stores.
        ShardDiffCase{"kron", 2, ChunkFormat::kVarint, 0},
        ShardDiffCase{"kron", 4, ChunkFormat::kVarint, 0},
        ShardDiffCase{"kron", 8, ChunkFormat::kVarint, 0},
        ShardDiffCase{"uniform", 4, ChunkFormat::kVarint, 0},
        // Injected read errors (1e-3 per read, independent per shard):
        // containment + per-shard fallback must keep the answer exact.
        ShardDiffCase{"kron", 2, ChunkFormat::kRaw, 1e-3},
        ShardDiffCase{"kron", 4, ChunkFormat::kRaw, 1e-3},
        ShardDiffCase{"kron", 8, ChunkFormat::kRaw, 1e-3},
        ShardDiffCase{"uniform", 2, ChunkFormat::kRaw, 1e-3},
        ShardDiffCase{"uniform", 4, ChunkFormat::kRaw, 1e-3},
        ShardDiffCase{"uniform", 8, ChunkFormat::kRaw, 1e-3},
        ShardDiffCase{"kron", 4, ChunkFormat::kVarint, 1e-3},
        ShardDiffCase{"uniform", 8, ChunkFormat::kVarint, 1e-3}));

}  // namespace
}  // namespace sembfs
