#include "nvm/io_sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sembfs {
namespace {

class IoSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeviceProfile profile;
    profile.name = "test";
    profile.read_latency_us = 500.0;
    profile.channels = 2;
    device_ = std::make_shared<NvmDevice>(profile);
    file_ = std::make_unique<NvmFile>(device_, path());
    const std::vector<std::byte> payload(4096);
    file_->write(0, payload);
    device_->stats().reset();
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return ::testing::TempDir() + "/sembfs_sampler_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }

  void busy_reads(int count) {
    std::vector<std::byte> buffer(512);
    for (int i = 0; i < count; ++i) file_->read(0, buffer);
  }

  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
};

TEST_F(IoSamplerTest, CapturesWindowsDuringActivity) {
  IoStatsSampler sampler{*device_, 0.02};
  sampler.start();
  busy_reads(100);  // ~50 ms of serialized 0.5 ms requests
  sampler.stop();

  ASSERT_GE(sampler.samples().size(), 2u);
  std::uint64_t total_requests = 0;
  for (const IoSample& s : sampler.samples()) total_requests += s.requests;
  EXPECT_EQ(total_requests, 100u);
}

TEST_F(IoSamplerTest, WindowQueueLengthReflectsLoad) {
  IoStatsSampler sampler{*device_, 0.02};
  sampler.start();
  // 4 threads against 2 channels: windowed avgqu-sz should approach ~4.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([this] { busy_reads(40); });
  for (auto& t : threads) t.join();
  sampler.stop();

  EXPECT_GT(sampler.peak_queue_length(), 1.5);
  EXPECT_LT(sampler.peak_queue_length(), 8.0);
}

TEST_F(IoSamplerTest, QuietWindowsShowZeroRequests) {
  IoStatsSampler sampler{*device_, 0.01};
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sampler.stop();
  ASSERT_GE(sampler.samples().size(), 2u);
  for (const IoSample& s : sampler.samples()) {
    EXPECT_EQ(s.requests, 0u);
    EXPECT_LT(s.avg_queue_length, 0.01);
  }
}

TEST_F(IoSamplerTest, MeanRequestSectorsWeighted) {
  IoStatsSampler sampler{*device_, 0.02};
  sampler.start();
  busy_reads(20);  // 512 B = 1 sector each
  sampler.stop();
  EXPECT_NEAR(sampler.mean_request_sectors(), 1.0, 1e-9);
}

TEST_F(IoSamplerTest, TimesAreMonotonic) {
  IoStatsSampler sampler{*device_, 0.01};
  sampler.start();
  busy_reads(30);
  sampler.stop();
  double prev = -1.0;
  for (const IoSample& s : sampler.samples()) {
    EXPECT_GT(s.t_seconds, prev);
    prev = s.t_seconds;
  }
}

TEST_F(IoSamplerTest, RestartClearsSeries) {
  IoStatsSampler sampler{*device_, 0.01};
  sampler.start();
  busy_reads(10);
  sampler.stop();
  const std::size_t first = sampler.samples().size();
  ASSERT_GE(first, 1u);
  sampler.start();
  sampler.stop();
  EXPECT_LE(sampler.samples().size(), 1u);  // only the closing window
}

TEST_F(IoSamplerTest, StopWithoutStartIsSafe) {
  IoStatsSampler sampler{*device_};
  sampler.stop();
  EXPECT_TRUE(sampler.samples().empty());
}

}  // namespace
}  // namespace sembfs
