#include "graph/hybrid_csr.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class HybridCsrTest : public ::testing::TestWithParam<std::int64_t> {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs every case as its own process, and a
    // shared directory lets one process truncate files another is reading.
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : name)
      if (c == '/') c = '_';
    dir_ = testing::TempDir() + "/sembfs_hybrid_" + name;
    std::filesystem::remove_all(dir_);
    edges_ = generate_kronecker(fixtures::small_kronecker(9, 8, 7), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  HybridBackwardGraph make(std::int64_t k) {
    return HybridBackwardGraph{backward_, k, device_, dir_};
  }

  ThreadPool pool_{4};
  std::string dir_;
  EdgeList edges_;
  VertexPartition partition_;
  BackwardGraph backward_;
  std::shared_ptr<NvmDevice> device_;
};

TEST_P(HybridCsrTest, FullVisitReproducesAdjacencyInOrder) {
  HybridBackwardGraph hybrid = make(GetParam());
  std::vector<Vertex> scratch;
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    const std::size_t node = partition_.node_of(v);
    std::vector<Vertex> visited;
    hybrid.partition(node).visit_neighbors(v, scratch, [&](Vertex w) {
      visited.push_back(w);
      return true;
    });
    const auto expected = backward_.neighbors(v);
    ASSERT_EQ(visited.size(), expected.size()) << "v=" << v;
    for (std::size_t i = 0; i < visited.size(); ++i)
      ASSERT_EQ(visited[i], expected[i]) << "v=" << v << " i=" << i;
  }
}

TEST_P(HybridCsrTest, DegreeNeverTouchesDevice) {
  HybridBackwardGraph hybrid = make(GetParam());
  device_->stats().reset();
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(hybrid.degree(v),
              static_cast<std::int64_t>(backward_.neighbors(v).size()));
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_P(HybridCsrTest, EntrySplitPreservesTotal) {
  HybridBackwardGraph hybrid = make(GetParam());
  std::int64_t dram = 0;
  std::int64_t nvm = 0;
  for (std::size_t k = 0; k < hybrid.node_count(); ++k) {
    dram += hybrid.partition(k).dram_entry_count();
    nvm += hybrid.partition(k).nvm_entry_count();
  }
  EXPECT_EQ(dram + nvm, backward_.entry_count());
  // Per-vertex DRAM cap respected.
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    const auto& part = hybrid.partition(partition_.node_of(v));
    const std::int64_t deg =
        static_cast<std::int64_t>(backward_.neighbors(v).size());
    EXPECT_EQ(part.degree(v), deg);
  }
}

INSTANTIATE_TEST_SUITE_P(DramCaps, HybridCsrTest,
                         ::testing::Values(0, 1, 2, 8, 32, 1 << 20));

TEST_F(HybridCsrTest, ZeroCapPutsEverythingOnNvm) {
  HybridBackwardGraph hybrid = make(0);
  std::int64_t dram = 0;
  for (std::size_t k = 0; k < hybrid.node_count(); ++k)
    dram += hybrid.partition(k).dram_entry_count();
  EXPECT_EQ(dram, 0);
  EXPECT_EQ(hybrid.nvm_byte_size(),
            static_cast<std::uint64_t>(backward_.entry_count()) *
                sizeof(Vertex));
}

TEST_F(HybridCsrTest, HugeCapKeepsEverythingInDram) {
  HybridBackwardGraph hybrid = make(1 << 20);
  EXPECT_EQ(hybrid.nvm_byte_size(), 0u);
  device_->stats().reset();
  std::vector<Vertex> scratch;
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    hybrid.partition(partition_.node_of(v))
        .visit_neighbors(v, scratch, [](Vertex) { return true; });
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_F(HybridCsrTest, EarlyExitInDramPrefixSkipsNvm) {
  HybridBackwardGraph hybrid = make(2);
  device_->stats().reset();
  hybrid.reset_counters();
  std::vector<Vertex> scratch;
  // Stop at the very first neighbor for every vertex: no NVM traffic.
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    if (backward_.neighbors(v).empty()) continue;
    hybrid.partition(partition_.node_of(v))
        .visit_neighbors(v, scratch, [](Vertex) { return false; });
  }
  EXPECT_EQ(device_->stats().request_count(), 0u);
  EXPECT_EQ(hybrid.nvm_edges_examined(), 0u);
  EXPECT_GT(hybrid.dram_edges_examined(), 0u);
}

TEST_F(HybridCsrTest, CountersTrackTiers) {
  HybridBackwardGraph hybrid = make(2);
  hybrid.reset_counters();
  std::vector<Vertex> scratch;
  std::uint64_t expected_dram = 0;
  std::uint64_t expected_nvm = 0;
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    const auto deg =
        static_cast<std::uint64_t>(backward_.neighbors(v).size());
    expected_dram += std::min<std::uint64_t>(deg, 2);
    expected_nvm += deg > 2 ? deg - 2 : 0;
    hybrid.partition(partition_.node_of(v))
        .visit_neighbors(v, scratch, [](Vertex) { return true; });
  }
  EXPECT_EQ(hybrid.dram_edges_examined(), expected_dram);
  EXPECT_EQ(hybrid.nvm_edges_examined(), expected_nvm);
}

TEST_F(HybridCsrTest, DramSizeShrinksAsCapDrops) {
  const HybridBackwardGraph cap32 = make(32);
  const HybridBackwardGraph cap2 = make(2);
  EXPECT_LT(cap2.dram_byte_size(), cap32.dram_byte_size());
  EXPECT_GT(cap2.nvm_byte_size(), cap32.nvm_byte_size());
}

}  // namespace
}  // namespace sembfs
