#include "util/contracts.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

TEST(Contracts, PassingConditionsAreSilent) {
  SEMBFS_EXPECTS(1 + 1 == 2);
  SEMBFS_ENSURES(true);
  SEMBFS_ASSERT(42 > 0);
  SUCCEED();
}

TEST(ContractsDeath, ExpectsNamesPrecondition) {
  EXPECT_DEATH(SEMBFS_EXPECTS(false), "Precondition");
}

TEST(ContractsDeath, EnsuresNamesPostcondition) {
  EXPECT_DEATH(SEMBFS_ENSURES(1 == 2), "Postcondition");
}

TEST(ContractsDeath, AssertNamesInvariant) {
  EXPECT_DEATH(SEMBFS_ASSERT(false), "Invariant");
}

TEST(ContractsDeath, MessageIncludesExpressionAndLocation) {
  EXPECT_DEATH(SEMBFS_EXPECTS(2 + 2 == 5), "2 \\+ 2 == 5");
  EXPECT_DEATH(SEMBFS_EXPECTS(false), "test_contracts.cpp");
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  SEMBFS_EXPECTS(++calls > 0);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace sembfs
