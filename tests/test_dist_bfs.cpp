#include "dist/dist_bfs.hpp"

#include <gtest/gtest.h>

#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

struct DistSweep {
  int scale;
  std::uint64_t seed;
  std::size_t ranks;
  DistBfsConfig::Mode mode;

  friend std::ostream& operator<<(std::ostream& os, const DistSweep& s) {
    return os << "scale" << s.scale << "_seed" << s.seed << "_ranks"
              << s.ranks << "_mode" << static_cast<int>(s.mode);
  }
};

class DistBfsSweep : public ::testing::TestWithParam<DistSweep> {};

TEST_P(DistBfsSweep, LevelsMatchReference) {
  const DistSweep s = GetParam();
  ThreadPool pool{std::max<std::size_t>(s.ranks, 2)};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(s.scale, 8, s.seed), pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  DistributedBfs dist{edges, s.ranks, pool};
  DistBfsConfig config;
  config.mode = s.mode;

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const DistBfsResult result = dist.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);

  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "v=" << v;
  EXPECT_EQ(result.visited, ref.visited);
  EXPECT_EQ(result.teps_edge_count, ref.teps_edge_count);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DistBfsSweep,
    ::testing::Values(
        DistSweep{9, 1, 1, DistBfsConfig::Mode::Hybrid},
        DistSweep{9, 1, 2, DistBfsConfig::Mode::Hybrid},
        DistSweep{9, 1, 4, DistBfsConfig::Mode::Hybrid},
        DistSweep{9, 1, 7, DistBfsConfig::Mode::Hybrid},
        DistSweep{9, 2, 4, DistBfsConfig::Mode::TopDownOnly},
        DistSweep{9, 2, 4, DistBfsConfig::Mode::BottomUpOnly},
        DistSweep{10, 3, 4, DistBfsConfig::Mode::Hybrid},
        DistSweep{8, 5, 8, DistBfsConfig::Mode::Hybrid}));

TEST(DistBfs, ParentsAreValidTreeEdges) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 11), pool);
  DistributedBfs dist{edges, 4, pool};
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const DistBfsResult result = dist.run(root, DistBfsConfig{});
  for (Vertex w = 0; w < edges.vertex_count(); ++w) {
    const Vertex p = result.parent[static_cast<std::size_t>(w)];
    if (p == kNoVertex || w == root) continue;
    // (w, p) must be a real edge.
    const auto adj = full.neighbors(w);
    EXPECT_NE(std::find(adj.begin(), adj.end(), p), adj.end()) << "w=" << w;
    EXPECT_EQ(result.level[w], result.level[p] + 1);
  }
}

TEST(DistBfs, TopDownSendsPerEdgeBottomUpSendsPerFrontier) {
  // The communication story: top-down messages scale with cut edges;
  // bottom-up only allgathers the frontier.
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(11, 16, 13), pool);
  DistributedBfs dist{edges, 4, pool};
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  Vertex root = 0;
  while (full.degree(root) == 0) ++root;

  DistBfsConfig top_down;
  top_down.mode = DistBfsConfig::Mode::TopDownOnly;
  const DistBfsResult td = dist.run(root, top_down);

  DistBfsConfig hybrid;  // paper's rule switches to bottom-up mid-search
  hybrid.policy.alpha = 1e4;
  hybrid.policy.beta = 1e5;
  const DistBfsResult hy = dist.run(root, hybrid);

  EXPECT_LT(hy.total_remote_bytes, td.total_remote_bytes / 2)
      << "hybrid must slash communication volume";
  bool saw_bottom_up = false;
  for (const DistLevelStats& ls : hy.levels)
    saw_bottom_up = saw_bottom_up || ls.direction == Direction::BottomUp;
  EXPECT_TRUE(saw_bottom_up);
}

TEST(DistBfs, SingleRankSendsNothingRemote) {
  ThreadPool pool{2};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(8, 8, 17), pool);
  DistributedBfs dist{edges, 1, pool};
  const DistBfsResult result = dist.run(0, DistBfsConfig{});
  EXPECT_EQ(result.total_remote_bytes, 0u);
}

TEST(DistBfs, LevelStatsConsistent) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 19), pool);
  DistributedBfs dist{edges, 4, pool};
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const DistBfsResult result = dist.run(root, DistBfsConfig{});

  std::int64_t claimed = 1;
  std::uint64_t bytes = 0;
  for (const DistLevelStats& ls : result.levels) {
    claimed += ls.claimed_vertices;
    bytes += ls.remote_bytes;
  }
  EXPECT_EQ(claimed, result.visited);
  EXPECT_EQ(bytes, result.total_remote_bytes);
  EXPECT_EQ(result.depth, static_cast<std::int32_t>(result.levels.size()));
}

TEST(DistBfs, ReusableAcrossRoots) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 23), pool);
  DistributedBfs dist{edges, 3, pool};
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  for (Vertex root = 0; root < 10; ++root) {
    if (full.degree(root) == 0) continue;
    const DistBfsResult result = dist.run(root, DistBfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full, root);
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v]) << "root=" << root;
  }
}

TEST(DistBfs, ResultPassesGraph500Validation) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 29), pool);
  DistributedBfs dist{edges, 4, pool};
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const DistBfsResult result = dist.run(root, DistBfsConfig{});
  const ValidationResult v =
      validate_bfs(edges, root, result.parent, result.level);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.reached, result.visited);
}

TEST(DistBfsDeath, RequiresEnoughWorkers) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  EXPECT_DEATH(DistributedBfs(edges, 4, pool), "Precondition");
}

}  // namespace
}  // namespace sembfs
