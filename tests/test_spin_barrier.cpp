#include "parallel/spin_barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sembfs {
namespace {

TEST(SpinBarrier, SingleParticipantNeverBlocks) {
  SpinBarrier barrier{1};
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  SUCCEED();
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier{kThreads};
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every participant must have incremented.
        if (counter.load() < static_cast<int>(kThreads) * (phase + 1))
          failed.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads) * kPhases);
}

TEST(SpinBarrier, ReusableManyTimes) {
  SpinBarrier barrier{2};
  std::atomic<int> sum{0};
  std::thread other{[&] {
    for (int i = 0; i < 1000; ++i) {
      sum.fetch_add(1);
      barrier.arrive_and_wait();
    }
  }};
  for (int i = 0; i < 1000; ++i) {
    sum.fetch_add(1);
    barrier.arrive_and_wait();
  }
  other.join();
  EXPECT_EQ(sum.load(), 2000);
}

}  // namespace
}  // namespace sembfs
