#include "util/format.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

TEST(FormatBytes, Scales) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(999), "999 B");
  EXPECT_EQ(format_bytes(1500), "1.5 KB");
  EXPECT_EQ(format_bytes(40'100'000'000ull), "40.1 GB");
  EXPECT_EQ(format_bytes(1'500'000'000'000ull), "1.5 TB");
}

TEST(FormatTeps, Scales) {
  EXPECT_EQ(format_teps(4.22e9), "4.22 GTEPS");
  EXPECT_EQ(format_teps(4.35e6), "4.35 MTEPS");
  EXPECT_EQ(format_teps(5.0e4), "50.00 KTEPS");
  EXPECT_EQ(format_teps(12.0), "12.00 TEPS");
}

TEST(FormatScientific, PaperAxisStyle) {
  EXPECT_EQ(format_scientific(1e4), "1.E+04");
  EXPECT_EQ(format_scientific(1e6), "1.E+06");
  EXPECT_EQ(format_scientific(5e4), "5.0E+04");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(134217728), "134,217,728");  // 2^27
}

}  // namespace
}  // namespace sembfs
