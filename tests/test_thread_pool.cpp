#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

namespace sembfs {
namespace {

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  std::mutex m;
  std::set<std::size_t> indices;
  pool.run([&](std::size_t w) {
    calls.fetch_add(1);
    const std::lock_guard<std::mutex> lock{m};
    indices.insert(w);
  });
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, PartialParticipation) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  std::mutex m;
  std::set<std::size_t> indices;
  pool.run(2, [&](std::size_t w) {
    calls.fetch_add(1);
    const std::lock_guard<std::mutex> lock{m};
    indices.insert(w);
  });
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1}));
}

TEST(ThreadPool, ZeroParticipantsIsNoop) {
  ThreadPool pool{2};
  bool ran = false;
  pool.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool{3};
  std::atomic<int> total{0};
  for (int i = 0; i < 100; ++i)
    pool.run([&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 300);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.run([](std::size_t w) {
        if (w == 2) throw std::runtime_error("worker failure");
      }),
      std::runtime_error);
  // Pool still usable after the exception.
  std::atomic<int> calls{0};
  pool.run([&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool{1};
  int value = 0;
  pool.run([&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, SizeReported) {
  ThreadPool pool{5};
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, DefaultPoolSingleton) {
  ThreadPool& a = default_pool(2);
  ThreadPool& b = default_pool(16);  // argument ignored after first call
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

}  // namespace
}  // namespace sembfs
