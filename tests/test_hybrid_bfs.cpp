// The central correctness property: whatever the mode, policy, thread
// count, or NUMA partitioning, the hybrid BFS must assign exactly the same
// level to every vertex as the serial reference BFS.
#include "bfs/hybrid_bfs.hpp"

#include <gtest/gtest.h>

#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

struct Sweep {
  int scale;
  std::uint64_t seed;
  std::size_t numa_nodes;
  std::size_t threads;
  BfsMode mode;
  double alpha;
  double beta;

  friend std::ostream& operator<<(std::ostream& os, const Sweep& s) {
    return os << "scale" << s.scale << "_seed" << s.seed << "_nodes"
              << s.numa_nodes << "_threads" << s.threads << "_mode"
              << static_cast<int>(s.mode) << "_a" << s.alpha << "_b"
              << s.beta;
  }
};

class HybridBfsSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(HybridBfsSweep, LevelsMatchReference) {
  const Sweep s = GetParam();
  ThreadPool pool{s.threads};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(s.scale, 8, s.seed), pool);
  const VertexPartition partition{edges.vertex_count(), s.numa_nodes};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{
      storage, NumaTopology::with_total_threads(s.numa_nodes, pool.size()),
      pool};

  BfsConfig config;
  config.mode = s.mode;
  config.policy.alpha = s.alpha;
  config.policy.beta = s.beta;

  // Deterministic root: first vertex with nonzero degree.
  Vertex root = 0;
  while (full.degree(root) == 0) ++root;

  const BfsResult result = runner.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);

  ASSERT_EQ(result.level.size(), ref.level.size());
  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "vertex " << v;
  EXPECT_EQ(result.visited, ref.visited);
  EXPECT_EQ(result.teps_edge_count, ref.teps_edge_count);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HybridBfsSweep,
    ::testing::Values(
        // Hybrid with a spread of switching thresholds.
        Sweep{9, 1, 4, 4, BfsMode::Hybrid, 1e2, 1e3},
        Sweep{9, 1, 4, 4, BfsMode::Hybrid, 1e4, 1e5},
        Sweep{9, 1, 4, 4, BfsMode::Hybrid, 1e6, 1e6},
        Sweep{9, 1, 4, 4, BfsMode::Hybrid, 10, 1},
        // Forced single-direction baselines.
        Sweep{9, 1, 4, 4, BfsMode::TopDownOnly, 1e4, 1e5},
        Sweep{9, 1, 4, 4, BfsMode::BottomUpOnly, 1e4, 1e5},
        // Thread-count robustness (including fewer threads than nodes).
        Sweep{9, 2, 4, 1, BfsMode::Hybrid, 1e4, 1e5},
        Sweep{9, 2, 4, 2, BfsMode::Hybrid, 1e4, 1e5},
        Sweep{9, 2, 4, 8, BfsMode::Hybrid, 1e4, 1e5},
        // NUMA-node-count robustness.
        Sweep{9, 3, 1, 4, BfsMode::Hybrid, 1e4, 1e5},
        Sweep{9, 3, 2, 4, BfsMode::Hybrid, 1e4, 1e5},
        Sweep{9, 3, 8, 4, BfsMode::Hybrid, 1e4, 1e5},
        // Different graphs.
        Sweep{10, 5, 4, 4, BfsMode::Hybrid, 1e4, 1e5},
        Sweep{11, 7, 4, 4, BfsMode::Hybrid, 1e3, 1e4},
        Sweep{8, 9, 4, 4, BfsMode::TopDownOnly, 1e4, 1e5},
        Sweep{8, 9, 4, 4, BfsMode::BottomUpOnly, 1e4, 1e5}));

TEST(HybridBfs, EdgeRatioPolicyAlsoMatchesReference) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 21), pool);
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool};

  BfsConfig config;
  config.policy.kind = PolicyKind::EdgeRatio;
  config.policy.alpha = 14.0;
  config.policy.beta = 24.0;

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const BfsResult result = runner.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);
  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);
}

TEST(HybridBfs, LevelStatsAreInternallyConsistent) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 33), pool);
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);

  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool};

  BfsConfig config;
  const Vertex root = 1;
  const BfsResult result = runner.run(root, config);

  std::int64_t claimed_total = 1;  // root
  std::int64_t scanned_td = 0;
  std::int64_t scanned_bu = 0;
  for (const LevelStats& ls : result.levels) {
    claimed_total += ls.claimed_vertices;
    (ls.direction == Direction::TopDown ? scanned_td : scanned_bu) +=
        ls.scanned_edges;
    if (ls.frontier_vertices > 0) {
      EXPECT_NEAR(ls.avg_degree,
                  static_cast<double>(ls.scanned_edges) /
                      static_cast<double>(ls.frontier_vertices),
                  1e-9);
    }
  }
  EXPECT_EQ(claimed_total, result.visited);
  EXPECT_EQ(scanned_td, result.scanned_edges_top_down);
  EXPECT_EQ(scanned_bu, result.scanned_edges_bottom_up);
  EXPECT_EQ(result.depth, static_cast<std::int32_t>(result.levels.size()));
  EXPECT_EQ(result.nvm_requests, 0u);  // all-DRAM storage
}

TEST(HybridBfs, FirstLevelIsAlwaysTopDownInHybridMode) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::star_graph(32);
  const VertexPartition partition{32, 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 1}, pool};
  const BfsResult result = runner.run(0, BfsConfig{});
  ASSERT_FALSE(result.levels.empty());
  EXPECT_EQ(result.levels[0].direction, Direction::TopDown);
}

TEST(HybridBfs, AggressiveAlphaTriggersBottomUp) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::star_graph(64);
  const VertexPartition partition{64, 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 1}, pool};

  BfsConfig config;
  config.policy.alpha = 1e9;  // threshold n/alpha < 1: switch asap
  config.policy.beta = 1e-9;  // never switch back
  // Start from a leaf: level 1 frontier = {hub}, growing -> switch.
  const BfsResult result = runner.run(1, config);
  bool saw_bottom_up = false;
  for (const LevelStats& ls : result.levels)
    saw_bottom_up = saw_bottom_up || ls.direction == Direction::BottomUp;
  EXPECT_TRUE(saw_bottom_up);
}

TEST(HybridBfs, RunnerReusableAcrossRoots) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 17), pool);
  const VertexPartition partition{edges.vertex_count(), 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool};

  for (Vertex root = 0; root < 20; ++root) {
    if (full.degree(root) == 0) continue;
    const BfsResult result = runner.run(root, BfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full, root);
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "root " << root << " vertex " << v;
  }
}

TEST(HybridBfsDeath, RequiresExactlyOneStoragePerSide) {
  ThreadPool pool{2};
  GraphStorage storage;  // nothing set
  EXPECT_DEATH(HybridBfsRunner(storage, NumaTopology{1, 1}, pool),
               "Precondition");
}

}  // namespace
}  // namespace sembfs
