#include "dist/message_bus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace sembfs {
namespace {

TEST(MessageBus, SendDrainRoundTrip) {
  MessageBus bus{2};
  const std::vector<Vertex> payload = {1, 2, 3};
  bus.send(0, 1, payload);
  EXPECT_EQ(bus.drain(0, 1), payload);
  EXPECT_TRUE(bus.drain(0, 1).empty());  // drained once
}

TEST(MessageBus, SendsAccumulateUntilDrain) {
  MessageBus bus{2};
  bus.send(0, 1, std::vector<Vertex>{1});
  bus.send(0, 1, std::vector<Vertex>{2, 3});
  EXPECT_EQ(bus.drain(0, 1), (std::vector<Vertex>{1, 2, 3}));
}

TEST(MessageBus, DrainAllMergesSenders) {
  MessageBus bus{3};
  bus.send(0, 2, std::vector<Vertex>{10});
  bus.send(1, 2, std::vector<Vertex>{20, 21});
  bus.send(2, 2, std::vector<Vertex>{30});  // self-send also delivered
  std::vector<Vertex> all = bus.drain_all(2);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<Vertex>{10, 20, 21, 30}));
}

TEST(MessageBus, ByteAccounting) {
  MessageBus bus{2};
  bus.send(0, 1, std::vector<Vertex>{1, 2, 3});
  EXPECT_EQ(bus.bytes_sent(0, 1), 3 * sizeof(Vertex));
  EXPECT_EQ(bus.bytes_sent(1, 0), 0u);
  EXPECT_EQ(bus.total_remote_bytes(), 3 * sizeof(Vertex));
  EXPECT_EQ(bus.total_messages(), 1u);
}

TEST(MessageBus, SelfSendsExcludedFromRemoteBytes) {
  MessageBus bus{2};
  bus.send(0, 0, std::vector<Vertex>{1, 2});
  bus.send(0, 1, std::vector<Vertex>{3});
  EXPECT_EQ(bus.total_remote_bytes(), sizeof(Vertex));
}

TEST(MessageBus, EmptySendIsFree) {
  MessageBus bus{2};
  bus.send(0, 1, {});
  EXPECT_EQ(bus.total_messages(), 0u);
  EXPECT_EQ(bus.bytes_sent(0, 1), 0u);
}

TEST(MessageBus, ResetCountersKeepsQueues) {
  MessageBus bus{2};
  bus.send(0, 1, std::vector<Vertex>{7});
  bus.reset_counters();
  EXPECT_EQ(bus.total_remote_bytes(), 0u);
  EXPECT_EQ(bus.drain(0, 1), (std::vector<Vertex>{7}));  // data intact
}

TEST(MessageBus, ConcurrentSendersLoseNothing) {
  MessageBus bus{4};
  std::vector<std::thread> threads;
  for (std::size_t sender = 0; sender < 4; ++sender) {
    threads.emplace_back([&bus, sender] {
      for (Vertex i = 0; i < 1000; ++i)
        bus.send(sender, 3, std::vector<Vertex>{i});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bus.drain_all(3).size(), 4000u);
  EXPECT_EQ(bus.total_messages(), 4000u);
}

TEST(MessageBus, BarrierSynchronizesRanks) {
  MessageBus bus{3};
  std::atomic<int> stage{0};
  std::vector<std::thread> threads;
  std::atomic<bool> violated{false};
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      stage.fetch_add(1);
      bus.barrier();
      if (stage.load() != 3) violated.store(true);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

}  // namespace
}  // namespace sembfs
