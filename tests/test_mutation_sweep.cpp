// Mutation differential sweep: seeded insert/delete batches applied
// through the MutableGraph across {generator} x {forward backend} x
// {chunk format} x {fault rate} cells, with a compaction in the middle of
// every sweep. After every publish, a hybrid BFS of the snapshot's merged
// view must be level-exact against a serial reference BFS of a graph
// rebuilt from scratch by a naive mirror of the op log — and the
// traversal tree must pass Graph500 Step-4 validation on the merged edge
// list. Cells with read-error injection must survive via the same
// containment/degradation machinery as the sealed sweep.
//
// Everything derives from kSeed; the case printer emits it on failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "graph/csr.hpp"
#include "graph/kronecker.hpp"
#include "graph/mutable_graph.hpp"
#include "graph/uniform.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

constexpr std::uint64_t kSeed = 0x5eedf00d;

struct MutationCase {
  const char* generator;  // "kron" | "uniform"
  MutableForwardKind forward = MutableForwardKind::kDram;
  ChunkFormat chunk_format = ChunkFormat::kRaw;
  double read_error_rate = 0.0;
  /// >= 0: serve the bottom-up side from a HybridBackwardGraph with this
  /// many DRAM edges per vertex instead of the full DRAM backward graph.
  std::int64_t backward_dram_edges = -1;

  friend std::ostream& operator<<(std::ostream& os, const MutationCase& c) {
    return os << c.generator << "_fwd" << static_cast<int>(c.forward)
              << "_fmt" << to_string(c.chunk_format) << "_err"
              << c.read_error_rate << "_hb" << c.backward_dram_edges
              << "_seed" << kSeed;
  }
};

// Serial mirror of the tombstone semantics: remove kills every present
// copy of the pair, insert appends one copy.
void apply_ops_to_mirror(std::vector<Edge>& mirror,
                         std::span<const EdgeOp> ops) {
  for (const EdgeOp& op : ops) {
    if (op.kind == EdgeOp::Kind::Insert) {
      mirror.push_back(Edge{op.u, op.v});
    } else {
      const auto same_pair = [&](const Edge& e) {
        return (e.u == op.u && e.v == op.v) || (e.u == op.v && e.v == op.u);
      };
      mirror.erase(std::remove_if(mirror.begin(), mirror.end(), same_pair),
                   mirror.end());
    }
  }
}

// A seeded batch: mostly inserts between random endpoints, plus removals
// of pairs currently present (so tombstones actually hide base copies).
std::vector<EdgeOp> make_batch(std::mt19937_64& rng, Vertex n,
                               const std::vector<Edge>& mirror) {
  std::uniform_int_distribution<Vertex> pick{0, n - 1};
  std::vector<EdgeOp> ops;
  for (int i = 0; i < 48; ++i) {
    const Vertex u = pick(rng);
    Vertex v = pick(rng);
    while (v == u) v = pick(rng);
    ops.push_back(EdgeOp::insert(u, v));
  }
  std::uniform_int_distribution<std::size_t> pick_edge{0, mirror.size() - 1};
  for (int i = 0; i < 16 && !mirror.empty(); ++i) {
    const Edge& e = mirror[pick_edge(rng)];
    if (e.u == e.v) continue;  // generators emit self-loops; ops reject them
    ops.push_back(EdgeOp::remove(e.u, e.v));
  }
  return ops;
}

class MutationSweep : public ::testing::TestWithParam<MutationCase> {};

TEST_P(MutationSweep, MergedViewMatchesRebuiltReference) {
  const MutationCase c = GetParam();
  SCOPED_TRACE(::testing::Message() << "repro: case {" << c << "}");
  ThreadPool pool{4};

  EdgeList base;
  if (std::string_view{c.generator} == "kron") {
    base = generate_kronecker(fixtures::small_kronecker(9, 8, kSeed), pool);
  } else {
    UniformParams params;
    params.scale = 9;
    params.edge_factor = 8;
    params.seed = kSeed;
    base = generate_uniform(params, pool);
  }
  const Vertex n = base.vertex_count();
  std::vector<Edge> mirror{base.edges().begin(), base.edges().end()};

  testutil::ScopedTestDir scratch{"mutsweep"};
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  MutableGraphConfig config;
  config.forward = c.forward;
  config.numa_nodes = 4;
  config.chunk_format = c.chunk_format;
  config.backward_dram_edges = c.backward_dram_edges;
  const bool offloads = c.forward != MutableForwardKind::kDram ||
                        c.backward_dram_edges >= 0;
  if (offloads) {
    config.workdir = scratch.path();
    config.device = device;
  }
  MutableGraph graph{base, config, pool};

  // Armed after generation 0 is built so only traversals see faults.
  FaultPlan plan;
  plan.seed = kSeed;
  plan.read_error_rate = c.read_error_rate;
  if (plan.enabled()) device->set_fault_plan(plan);

  BfsConfig bfs;
  bfs.chunk_format = c.chunk_format;

  Vertex root = 0;
  {
    const Csr full = build_csr(base, CsrBuildOptions{}, pool);
    while (full.degree(root) == 0) ++root;
  }

  std::mt19937_64 rng{kSeed};
  const auto check_snapshot =
      [&](const std::shared_ptr<const GraphSnapshot>& snap,
          const char* what) {
        HybridBfsRunner runner{snap->storage(), NumaTopology{4, 1}, pool};
        const BfsResult result = runner.run(root, bfs);
        EdgeList merged{n, mirror};
        const Csr merged_csr = build_csr(merged, CsrBuildOptions{}, pool);
        const ReferenceBfsResult ref = reference_bfs(merged_csr, root);
        ASSERT_EQ(result.visited, ref.visited) << what;
        for (Vertex v = 0; v < n; ++v)
          ASSERT_EQ(result.level[v], ref.level[v])
              << what << " version " << snap->version() << " v " << v;
        const ValidationResult validation =
            validate_bfs(merged, root, result.parent, result.level);
        ASSERT_TRUE(validation.ok) << what << ": " << validation.error;
      };

  ASSERT_NO_FATAL_FAILURE(check_snapshot(graph.snapshot(), "base"));
  for (int round = 0; round < 3; ++round) {
    const std::vector<EdgeOp> ops = make_batch(rng, n, mirror);
    graph.apply(ops);
    apply_ops_to_mirror(mirror, ops);
    ASSERT_NO_FATAL_FAILURE(
        check_snapshot(graph.snapshot(), "merged view"));
    if (round == 1) {
      // Compact mid-sweep: the rebuilt generation must serve the exact
      // same answers, and later batches layer over the new base.
      graph.compact();
      ASSERT_NO_FATAL_FAILURE(
          check_snapshot(graph.snapshot(), "post-compaction"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MutationSweep,
    ::testing::Values(
        // Fault-free: every generator x forward-backend cell on raw chunks.
        MutationCase{"kron", MutableForwardKind::kDram},
        MutationCase{"kron", MutableForwardKind::kExternal},
        MutationCase{"kron", MutableForwardKind::kTiered},
        MutationCase{"uniform", MutableForwardKind::kDram},
        MutationCase{"uniform", MutableForwardKind::kExternal},
        MutationCase{"uniform", MutableForwardKind::kTiered},
        // Varint-compressed adjacency chunks on the NVM-backed tiers.
        MutationCase{"kron", MutableForwardKind::kExternal,
                     ChunkFormat::kVarint},
        MutationCase{"kron", MutableForwardKind::kTiered,
                     ChunkFormat::kVarint},
        MutationCase{"uniform", MutableForwardKind::kExternal,
                     ChunkFormat::kVarint},
        // Hybrid backward generations: the delta-aware bottom-up scan
        // reads DRAM prefixes + NVM spill with mutations layered on top.
        MutationCase{"kron", MutableForwardKind::kExternal,
                     ChunkFormat::kRaw, 0.0, /*backward_dram_edges=*/2},
        // Read-error injection (1e-3 per read): mutation answers must
        // survive via containment + degraded retries, raw and compressed.
        MutationCase{"kron", MutableForwardKind::kExternal,
                     ChunkFormat::kRaw, 1e-3},
        MutationCase{"uniform", MutableForwardKind::kTiered,
                     ChunkFormat::kRaw, 1e-3},
        MutationCase{"kron", MutableForwardKind::kExternal,
                     ChunkFormat::kVarint, 1e-3}));

}  // namespace
}  // namespace sembfs
