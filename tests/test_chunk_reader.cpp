#include "nvm/chunk_reader.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "nvm/chunk_cache.hpp"

namespace sembfs {
namespace {

class ChunkReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
    payload_.resize(20000);
    std::iota(payload_.begin(), payload_.end(), 0);
    file_->write(0, std::as_bytes(std::span<const std::uint8_t>{
                        reinterpret_cast<const std::uint8_t*>(payload_.data()),
                        payload_.size()}));
    device_->stats().reset();
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_chunk_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }

  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<char> payload_;
};

TEST_F(ChunkReaderTest, SplitsIntoFourKibRequests) {
  ChunkReader reader{*file_};  // default 4096
  std::vector<std::byte> out(10000);
  const std::uint64_t requests = reader.read_range(0, out);
  EXPECT_EQ(requests, 3u);  // ceil(10000/4096)
  EXPECT_EQ(device_->stats().request_count(), 3u);
}

TEST_F(ChunkReaderTest, ExactMultipleOfChunk) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(8192);
  EXPECT_EQ(reader.read_range(0, out), 2u);
}

TEST_F(ChunkReaderTest, SmallReadIsOneRequest) {
  ChunkReader reader{*file_};
  std::vector<std::byte> out(16);
  EXPECT_EQ(reader.read_range(123, out), 1u);
}

TEST_F(ChunkReaderTest, EmptyReadIssuesNothing) {
  ChunkReader reader{*file_};
  std::vector<std::byte> out;
  EXPECT_EQ(reader.read_range(0, out), 0u);
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_F(ChunkReaderTest, DataCorrectAcrossChunkBoundaries) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(10000);
  reader.read_range(100, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(static_cast<char>(out[i]), payload_[100 + i]) << "i=" << i;
}

TEST_F(ChunkReaderTest, CustomChunkSize) {
  ChunkReader reader{*file_, 1000};
  std::vector<std::byte> out(3500);
  EXPECT_EQ(reader.read_range(0, out), 4u);  // ceil(3500/1000)
}

// Regression: an unaligned read must be split at the containing chunk's
// boundary. The pre-fix reader issued a full-length first request from the
// unaligned offset, so a single request straddled two device chunks and
// the request count undercounted the chunks actually touched.
TEST_F(ChunkReaderTest, MidChunkReadStopsAtChunkBoundary) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(100);
  // [4090, 4190) spans chunks 0 and 1: two requests, not one.
  EXPECT_EQ(reader.read_range(4090, out), 2u);
  EXPECT_EQ(device_->stats().request_count(), 2u);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(static_cast<char>(out[i]), payload_[4090 + i]);
}

TEST_F(ChunkReaderTest, RequestCountEqualsChunksSpanned) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(8192);
  // [100, 8292) touches chunks 0, 1 and 2: three requests (pre-fix: two).
  EXPECT_EQ(reader.read_range(100, out), 3u);
  // No request may exceed one chunk, and unaligned first/last requests are
  // short — observable through the device's average request size.
  EXPECT_LE(device_->stats().snapshot().avg_request_sectors * 512.0, 4096.0);
}

TEST_F(ChunkReaderTest, AlignedReadsKeepOriginalCounts) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(4096);
  EXPECT_EQ(reader.read_range(8192, out), 1u);  // aligned: unchanged
}

TEST_F(ChunkReaderTest, AttachedCacheServesRepeatedReads) {
  ChunkCache cache{1 << 20, 4096};
  ChunkReader reader{*file_, 4096, &cache};
  ASSERT_EQ(reader.cache(), &cache);
  std::vector<std::byte> out(10000);
  const std::uint64_t cold = reader.read_range(0, out);
  EXPECT_EQ(cold, 3u);  // strict per-chunk discipline on misses
  EXPECT_EQ(reader.read_range(0, out), 0u);  // warm: no device requests
  EXPECT_EQ(device_->stats().request_count(), cold);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(static_cast<char>(out[i]), payload_[i]);
}

TEST_F(ChunkReaderTest, SetCacheDetachesWithNullptr) {
  ChunkCache cache{1 << 20, 4096};
  ChunkReader reader{*file_, 4096};
  reader.set_cache(&cache);
  std::vector<std::byte> out(4096);
  reader.read_range(0, out);
  reader.set_cache(nullptr);
  device_->stats().reset();
  EXPECT_EQ(reader.read_range(0, out), 1u);  // back to the device
  EXPECT_EQ(device_->stats().request_count(), 1u);
}

}  // namespace
}  // namespace sembfs
