#include "nvm/chunk_reader.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace sembfs {
namespace {

class ChunkReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
    payload_.resize(20000);
    std::iota(payload_.begin(), payload_.end(), 0);
    file_->write(0, std::as_bytes(std::span<const std::uint8_t>{
                        reinterpret_cast<const std::uint8_t*>(payload_.data()),
                        payload_.size()}));
    device_->stats().reset();
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    return testing::TempDir() + "/sembfs_chunk_test.bin";
  }

  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<char> payload_;
};

TEST_F(ChunkReaderTest, SplitsIntoFourKibRequests) {
  ChunkReader reader{*file_};  // default 4096
  std::vector<std::byte> out(10000);
  const std::uint64_t requests = reader.read_range(0, out);
  EXPECT_EQ(requests, 3u);  // ceil(10000/4096)
  EXPECT_EQ(device_->stats().request_count(), 3u);
}

TEST_F(ChunkReaderTest, ExactMultipleOfChunk) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(8192);
  EXPECT_EQ(reader.read_range(0, out), 2u);
}

TEST_F(ChunkReaderTest, SmallReadIsOneRequest) {
  ChunkReader reader{*file_};
  std::vector<std::byte> out(16);
  EXPECT_EQ(reader.read_range(123, out), 1u);
}

TEST_F(ChunkReaderTest, EmptyReadIssuesNothing) {
  ChunkReader reader{*file_};
  std::vector<std::byte> out;
  EXPECT_EQ(reader.read_range(0, out), 0u);
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_F(ChunkReaderTest, DataCorrectAcrossChunkBoundaries) {
  ChunkReader reader{*file_, 4096};
  std::vector<std::byte> out(10000);
  reader.read_range(100, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(static_cast<char>(out[i]), payload_[100 + i]) << "i=" << i;
}

TEST_F(ChunkReaderTest, CustomChunkSize) {
  ChunkReader reader{*file_, 1000};
  std::vector<std::byte> out(3500);
  EXPECT_EQ(reader.read_range(0, out), 4u);  // ceil(3500/1000)
}

}  // namespace
}  // namespace sembfs
