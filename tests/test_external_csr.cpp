#include "graph/external_csr.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class ExternalCsrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(9, 8, 5), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    external_ = std::make_unique<ExternalForwardGraph>(forward_, device_,
                                                       dir_.path());
  }

  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"extcsr"};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalForwardGraph> external_;
};

TEST_F(ExternalCsrTest, CreatesTwoFilesPerNode) {
  // The paper: "our approach actually requires twice as many files as the
  // number of NUMA nodes."
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_.path()))
    if (entry.is_regular_file()) ++files;
  EXPECT_EQ(files, 2 * partition_.node_count());
}

TEST_F(ExternalCsrTest, NeighborsMatchDramCopy) {
  std::vector<Vertex> scratch;
  for (std::size_t k = 0; k < external_->node_count(); ++k) {
    ExternalCsrPartition& ext = external_->partition(k);
    const Csr& dram = forward_.partition(k);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
      ext.fetch_neighbors(v, scratch);
      const auto expected = dram.neighbors(v);
      ASSERT_EQ(scratch.size(), expected.size()) << "v=" << v;
      for (std::size_t i = 0; i < scratch.size(); ++i)
        ASSERT_EQ(scratch[i], expected[i]);
    }
  }
}

TEST_F(ExternalCsrTest, DegreeMatchesDram) {
  for (std::size_t k = 0; k < external_->node_count(); ++k) {
    ExternalCsrPartition& ext = external_->partition(k);
    const Csr& dram = forward_.partition(k);
    for (Vertex v = 0; v < edges_.vertex_count(); v += 17)
      EXPECT_EQ(ext.degree(v), dram.degree(v));
  }
}

// Requests map 1:1 onto the aligned 4 KiB device chunks a fetch touches:
// the index-pair read spans one chunk (or two, straddling a boundary) and
// the value read one request per chunk the byte range [begin, end)
// intersects. The old formula ceil(bytes/4096) undercounted unaligned
// ranges, mirroring a reader bug that issued requests straddling chunks.
TEST_F(ExternalCsrTest, RequestAccountingBoundsPlusChunks) {
  ExternalCsrPartition& ext = external_->partition(0);
  const auto chunks_spanned = [](std::uint64_t begin_byte,
                                 std::uint64_t end_byte) -> std::uint64_t {
    if (begin_byte == end_byte) return 0;
    return (end_byte - 1) / 4096 - begin_byte / 4096 + 1;
  };
  std::vector<Vertex> scratch;
  for (Vertex v = 0; v < edges_.vertex_count(); v += 13) {
    if (forward_.partition(0).degree(v) == 0) continue;
    const auto [b, e] = ext.fetch_bounds(v);
    const std::uint64_t local =
        static_cast<std::uint64_t>(v - ext.source_range().begin);
    const std::uint64_t expected =
        chunks_spanned(local * sizeof(std::int64_t),
                       (local + 2) * sizeof(std::int64_t)) +
        chunks_spanned(static_cast<std::uint64_t>(b) * sizeof(Vertex),
                       static_cast<std::uint64_t>(e) * sizeof(Vertex));
    device_->stats().reset();
    const std::uint64_t requests = ext.fetch_neighbors(v, scratch);
    ASSERT_EQ(requests, expected) << "v=" << v;
    ASSERT_EQ(device_->stats().request_count(), requests);
  }
}

TEST_F(ExternalCsrTest, NvmByteSizeMatchesArraySizes) {
  std::uint64_t expected = 0;
  for (std::size_t k = 0; k < forward_.node_count(); ++k) {
    const Csr& p = forward_.partition(k);
    expected += p.index().size() * sizeof(std::int64_t) +
                p.values().size() * sizeof(Vertex);
  }
  EXPECT_EQ(external_->nvm_byte_size(), expected);
  EXPECT_EQ(external_->entry_count(), forward_.entry_count());
}

TEST_F(ExternalCsrTest, EmptyAdjacencyNeedsOnlyBoundsRead) {
  ExternalCsrPartition& ext = external_->partition(0);
  Vertex v = 0;
  while (v < edges_.vertex_count() && forward_.partition(0).degree(v) != 0)
    ++v;
  ASSERT_LT(v, edges_.vertex_count());
  std::vector<Vertex> scratch{Vertex{99}};
  const std::uint64_t requests = ext.fetch_neighbors(v, scratch);
  EXPECT_EQ(requests, 1u);
  EXPECT_TRUE(scratch.empty());
}

TEST_F(ExternalCsrTest, CustomChunkSizeChangesRequestCount) {
  ExternalForwardGraph coarse{forward_, device_, dir_.aux("_coarse"),
                              1 << 16};
  std::vector<Vertex> scratch;
  // Find the highest-degree vertex in partition 0.
  const Csr& dram = forward_.partition(0);
  Vertex hub = 0;
  for (Vertex v = 1; v < edges_.vertex_count(); ++v)
    if (dram.degree(v) > dram.degree(hub)) hub = v;
  if (dram.degree(hub) * static_cast<std::int64_t>(sizeof(Vertex)) > 4096) {
    const std::uint64_t fine_requests =
        external_->partition(0).fetch_neighbors(hub, scratch);
    const std::uint64_t coarse_requests =
        coarse.partition(0).fetch_neighbors(hub, scratch);
    EXPECT_GT(fine_requests, coarse_requests);
  }
}

}  // namespace
}  // namespace sembfs
