// Streaming Step 2: graphs constructed by streaming the NVM-resident edge
// list must be identical (up to adjacency order) to graphs built from the
// in-memory edge list, and the full offloaded pipeline (edge list on NVM ->
// streamed construction -> BFS -> NVM validation) must pass Graph500
// validation end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "graph500/instance.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class StreamConstructionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs every case as its own process, and a
    // shared directory lets one process truncate files another is reading.
    dir_ = ::testing::TempDir() + "/sembfs_stream_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 101), pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    external_ = std::make_unique<ExternalEdgeList>(
        device_, dir_ + "/edges.bin", edges_.vertex_count());
    external_->append_all(edges_);
    stream_ = [this](const std::function<void(std::span<const Edge>)>& sink) {
      external_->for_each_batch(1000, sink);
    };
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ThreadPool pool_{4};
  std::string dir_;
  EdgeList edges_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalEdgeList> external_;
  EdgeStream stream_;
};

void expect_same_adjacency(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.source_range(), b.source_range());
  ASSERT_EQ(a.entry_count(), b.entry_count());
  for (Vertex v = a.source_range().begin; v < a.source_range().end; ++v) {
    const auto adj_a = a.neighbors(v);
    const auto adj_b = b.neighbors(v);
    const std::multiset<Vertex> sa(adj_a.begin(), adj_a.end());
    const std::multiset<Vertex> sb(adj_b.begin(), adj_b.end());
    ASSERT_EQ(sa, sb) << "v=" << v;
  }
}

TEST_F(StreamConstructionTest, FullCsrMatchesInMemoryBuild) {
  const Csr in_memory = build_csr(edges_, CsrBuildOptions{}, pool_);
  const Csr streamed = build_csr_filtered_stream(
      edges_.vertex_count(), stream_, VertexRange{0, edges_.vertex_count()},
      VertexRange{0, edges_.vertex_count()}, CsrBuildOptions{}, pool_);
  expect_same_adjacency(in_memory, streamed);
}

TEST_F(StreamConstructionTest, SortedStreamedBuildIsBitIdentical) {
  CsrBuildOptions options;
  options.sort_neighbors = true;
  const Csr in_memory = build_csr(edges_, options, pool_);
  const Csr streamed = build_csr_filtered_stream(
      edges_.vertex_count(), stream_, VertexRange{0, edges_.vertex_count()},
      VertexRange{0, edges_.vertex_count()}, options, pool_);
  EXPECT_EQ(streamed.index(), in_memory.index());
  EXPECT_EQ(streamed.values(), in_memory.values());
}

TEST_F(StreamConstructionTest, ForwardAndBackwardStreamBuilds) {
  const VertexPartition partition{edges_.vertex_count(), 4};
  const ForwardGraph fg_mem =
      ForwardGraph::build(edges_, partition, CsrBuildOptions{}, pool_);
  const ForwardGraph fg_stream = ForwardGraph::build_stream(
      edges_.vertex_count(), stream_, partition, CsrBuildOptions{}, pool_);
  EXPECT_EQ(fg_stream.entry_count(), fg_mem.entry_count());
  for (std::size_t k = 0; k < 4; ++k)
    expect_same_adjacency(fg_mem.partition(k), fg_stream.partition(k));

  const BackwardGraph bg_mem =
      BackwardGraph::build(edges_, partition, CsrBuildOptions{}, pool_);
  const BackwardGraph bg_stream = BackwardGraph::build_stream(
      edges_.vertex_count(), stream_, partition, CsrBuildOptions{}, pool_);
  for (std::size_t k = 0; k < 4; ++k)
    expect_same_adjacency(bg_mem.partition(k), bg_stream.partition(k));
}

TEST_F(StreamConstructionTest, StreamingGeneratesEdgeListDeviceTraffic) {
  device_->stats().reset();
  (void)build_csr_filtered_stream(
      edges_.vertex_count(), stream_, VertexRange{0, edges_.vertex_count()},
      VertexRange{0, edges_.vertex_count()}, CsrBuildOptions{}, pool_);
  // Two passes over ceil(edges/1000) batches.
  const std::uint64_t batches = (edges_.edge_count() + 999) / 1000;
  EXPECT_EQ(device_->stats().request_count(), 2 * batches);
}

TEST_F(StreamConstructionTest, OffloadedInstancePipelineValidates) {
  InstanceConfig config;
  config.kronecker = fixtures::small_kronecker(10, 8, 103);
  config.scenario = Scenario::dram_pcie_flash();
  config.scenario.time_scale = 0.001;
  config.workdir = dir_ + "/inst";
  config.offload_edge_list = true;
  Graph500Instance instance{config, pool_};

  EXPECT_NE(instance.external_edge_list(), nullptr);
  EXPECT_NE(instance.edge_list_device(), nullptr);
  // Edge-list device and graph device are distinct (paper Section VI-D).
  EXPECT_NE(instance.edge_list_device(), instance.nvm_device());

  for (const Vertex root : instance.select_roots(3, 7)) {
    const BfsResult result = instance.run_bfs(root, BfsConfig{});
    const ValidationResult v = instance.validate(result);
    EXPECT_TRUE(v.ok) << "root " << root << ": " << v.error;
  }
}

TEST_F(StreamConstructionTest, OffloadedInstanceMatchesInMemoryInstance) {
  InstanceConfig base;
  base.kronecker = fixtures::small_kronecker(10, 8, 107);
  base.workdir = dir_ + "/cmp";
  InstanceConfig offloaded = base;
  offloaded.offload_edge_list = true;

  Graph500Instance a{base, pool_};
  Graph500Instance b{offloaded, pool_};
  const Vertex root = a.select_roots(1, 1)[0];
  const BfsResult ra = a.run_bfs(root, BfsConfig{});
  const BfsResult rb = b.run_bfs(root, BfsConfig{});
  EXPECT_EQ(ra.level, rb.level);
  EXPECT_EQ(ra.teps_edge_count, rb.teps_edge_count);
}

TEST_F(StreamConstructionTest, EdgeListAccessorGuarded) {
  InstanceConfig config;
  config.kronecker = fixtures::small_kronecker(8, 4, 109);
  config.workdir = dir_ + "/guard";
  config.offload_edge_list = true;
  Graph500Instance instance{config, pool_};
  EXPECT_DEATH((void)instance.edge_list(), "Precondition");
}

TEST_F(StreamConstructionTest, StreamedDedupeRejected) {
  CsrBuildOptions options;
  options.dedupe = true;
  EXPECT_DEATH(
      (void)build_csr_filtered_stream(edges_.vertex_count(), stream_,
                                      VertexRange{0, edges_.vertex_count()},
                                      VertexRange{0, edges_.vertex_count()},
                                      options, pool_),
      "Precondition");
}

}  // namespace
}  // namespace sembfs
