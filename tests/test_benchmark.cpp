#include "graph500/benchmark.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace sembfs {
namespace {

class BenchmarkTest : public ::testing::Test {
 protected:
  BenchmarkConfig base_config(const Scenario& scenario) {
    BenchmarkConfig config;
    config.instance.kronecker.scale = 9;
    config.instance.kronecker.edge_factor = 8;
    config.instance.kronecker.seed = 5;
    config.instance.scenario = scenario;
    config.instance.scenario.time_scale = 0.001;
    config.instance.numa_nodes = 2;
    config.instance.workdir = workdir();
    config.num_roots = 4;
    return config;
  }
  // Unique per test: ctest runs every case as its own process, and a
  // shared directory lets one process truncate files another is reading.
  std::string workdir() const {
    return ::testing::TempDir() + "/sembfs_bench_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override { std::filesystem::remove_all(workdir()); }
  ThreadPool pool_{4};
};

TEST_F(BenchmarkTest, DramOnlyRunCompletesValidated) {
  const BenchmarkRun run = run_graph500(base_config(Scenario::dram_only()),
                                        pool_);
  EXPECT_EQ(run.runs.size(), 4u);
  EXPECT_TRUE(run.output.all_validated);
  EXPECT_GT(run.output.score(), 0.0);
  EXPECT_EQ(run.nvm_io.requests, 0u);
  EXPECT_GT(run.graph_dram_bytes, 0u);
  EXPECT_EQ(run.graph_nvm_bytes, 0u);
}

TEST_F(BenchmarkTest, MedianWithinMinMax) {
  const BenchmarkRun run = run_graph500(base_config(Scenario::dram_only()),
                                        pool_);
  EXPECT_GE(run.output.teps_stats.median, run.output.teps_stats.min);
  EXPECT_LE(run.output.teps_stats.median, run.output.teps_stats.max);
  EXPECT_EQ(run.output.nbfs, 4u);
}

TEST_F(BenchmarkTest, OffloadScenarioReportsNvmIo) {
  BenchmarkConfig config = base_config(Scenario::dram_pcie_flash());
  config.bfs.policy.alpha = 10.0;  // make top-down dominate -> NVM traffic
  config.bfs.policy.beta = 1e9;
  const BenchmarkRun run = run_graph500(config, pool_);
  EXPECT_TRUE(run.output.all_validated);
  EXPECT_GT(run.nvm_io.requests, 0u);
  EXPECT_GT(run.nvm_io.avg_request_sectors, 0.0);
  EXPECT_GT(run.graph_nvm_bytes, 0u);
}

TEST_F(BenchmarkTest, TopDownOnlyModeRuns) {
  BenchmarkConfig config = base_config(Scenario::dram_only());
  config.bfs.mode = BfsMode::TopDownOnly;
  const BenchmarkRun run = run_graph500(config, pool_);
  EXPECT_TRUE(run.output.all_validated);
}

TEST_F(BenchmarkTest, BottomUpOnlyModeRuns) {
  BenchmarkConfig config = base_config(Scenario::dram_only());
  config.bfs.mode = BfsMode::BottomUpOnly;
  const BenchmarkRun run = run_graph500(config, pool_);
  EXPECT_TRUE(run.output.all_validated);
}

TEST_F(BenchmarkTest, SkipValidationStillRecordsRuns) {
  BenchmarkConfig config = base_config(Scenario::dram_only());
  config.validate = false;
  const BenchmarkRun run = run_graph500(config, pool_);
  EXPECT_EQ(run.runs.size(), 4u);
}

TEST_F(BenchmarkTest, BfsPhaseReusableOnOneInstance) {
  const BenchmarkConfig config = base_config(Scenario::dram_only());
  Graph500Instance instance{config.instance, pool_};
  BfsConfig a;
  a.policy.alpha = 1e2;
  BfsConfig b;
  b.policy.alpha = 1e6;
  const BenchmarkRun run_a =
      run_graph500_bfs_phase(instance, a, 3, true, 1);
  const BenchmarkRun run_b =
      run_graph500_bfs_phase(instance, b, 3, true, 1);
  EXPECT_TRUE(run_a.output.all_validated);
  EXPECT_TRUE(run_b.output.all_validated);
  // Same roots (same seed) -> identical traversed-edge medians.
  EXPECT_DOUBLE_EQ(run_a.output.edge_stats.median,
                   run_b.output.edge_stats.median);
}

TEST_F(BenchmarkTest, RootSeedChangesRootSet) {
  const BenchmarkConfig config = base_config(Scenario::dram_only());
  Graph500Instance instance{config.instance, pool_};
  const BenchmarkRun a =
      run_graph500_bfs_phase(instance, BfsConfig{}, 4, false, 1);
  const BenchmarkRun b =
      run_graph500_bfs_phase(instance, BfsConfig{}, 4, false, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.runs.size(); ++i)
    any_different = any_different || a.runs[i].root != b.runs[i].root;
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace sembfs
