// End-to-end property sweep: EVERY configuration the library exposes must
// produce a BFS tree that passes the full Graph500 validation — scenarios x
// modes x policies x I/O options, on multiple graphs. This is the
// integration net under all the unit tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "graph500/instance.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

struct SweepCase {
  const char* scenario;
  BfsMode mode;
  PolicyKind policy;
  double alpha;
  double beta;
  bool aggregate_io;
  std::int64_t backward_dram_edges;
  bool offload_edge_list;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << c.scenario << "_mode" << static_cast<int>(c.mode)
              << "_policy" << static_cast<int>(c.policy) << "_a" << c.alpha
              << "_agg" << c.aggregate_io << "_bwd"
              << c.backward_dram_edges << "_eloff" << c.offload_edge_list;
  }
};

class ValidationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ValidationSweep, EveryConfigurationValidates) {
  const SweepCase c = GetParam();
  ThreadPool pool{4};

  InstanceConfig config;
  config.kronecker = fixtures::small_kronecker(10, 8, 777);
  config.scenario = Scenario::by_name(c.scenario);
  config.scenario.time_scale = 0.001;
  config.scenario.backward_dram_edges = c.backward_dram_edges;
  config.offload_edge_list = c.offload_edge_list;
  // Unique per test: ctest runs every case as its own process, and a
  // shared directory lets one process truncate files another is reading.
  std::string name =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  for (char& c2 : name)
    if (c2 == '/') c2 = '_';
  config.workdir = ::testing::TempDir() + "/sembfs_sweep_" + name;
  std::filesystem::remove_all(config.workdir);
  Graph500Instance instance{config, pool};

  BfsConfig bfs;
  bfs.mode = c.mode;
  bfs.policy.kind = c.policy;
  bfs.policy.alpha = c.alpha;
  bfs.policy.beta = c.beta;
  bfs.aggregate_io = c.aggregate_io;

  for (const Vertex root : instance.select_roots(3, 99)) {
    const BfsResult result = instance.run_bfs(root, bfs);
    const ValidationResult v = instance.validate(result);
    ASSERT_TRUE(v.ok) << "root " << root << ": " << v.error;
    ASSERT_EQ(result.visited, v.reached);
  }
  std::filesystem::remove_all(config.workdir);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ValidationSweep,
    ::testing::Values(
        // Scenario coverage at the paper's default rule.
        SweepCase{"dram", BfsMode::Hybrid, PolicyKind::FrontierRatio, 1e4,
                  1e5, false, -1, false},
        SweepCase{"pcie_flash", BfsMode::Hybrid, PolicyKind::FrontierRatio,
                  1e4, 1e5, false, -1, false},
        SweepCase{"ssd", BfsMode::Hybrid, PolicyKind::FrontierRatio, 1e4,
                  1e5, false, -1, false},
        // Forced directions on the offloaded path.
        SweepCase{"pcie_flash", BfsMode::TopDownOnly,
                  PolicyKind::FrontierRatio, 1e4, 1e5, false, -1, false},
        SweepCase{"pcie_flash", BfsMode::BottomUpOnly,
                  PolicyKind::FrontierRatio, 1e4, 1e5, false, -1, false},
        // Aggregated I/O.
        SweepCase{"pcie_flash", BfsMode::Hybrid, PolicyKind::FrontierRatio,
                  100, 100, true, -1, false},
        SweepCase{"ssd", BfsMode::TopDownOnly, PolicyKind::FrontierRatio,
                  1e4, 1e5, true, -1, false},
        // Beamer's policy.
        SweepCase{"dram", BfsMode::Hybrid, PolicyKind::EdgeRatio, 14, 24,
                  false, -1, false},
        SweepCase{"pcie_flash", BfsMode::Hybrid, PolicyKind::EdgeRatio, 14,
                  24, false, -1, false},
        // Backward-graph partial offload.
        SweepCase{"dram", BfsMode::Hybrid, PolicyKind::FrontierRatio, 100,
                  100, false, 2, false},
        SweepCase{"pcie_flash", BfsMode::Hybrid, PolicyKind::FrontierRatio,
                  1e4, 1e5, false, 8, false},
        // NVM-resident edge list (streamed construction + validation).
        SweepCase{"dram", BfsMode::Hybrid, PolicyKind::FrontierRatio, 1e4,
                  1e5, false, -1, true},
        SweepCase{"pcie_flash", BfsMode::Hybrid, PolicyKind::FrontierRatio,
                  1e4, 1e5, false, -1, true},
        // Everything at once.
        SweepCase{"ssd", BfsMode::Hybrid, PolicyKind::FrontierRatio, 100,
                  100, true, 4, true},
        // Extreme switching parameters.
        SweepCase{"dram", BfsMode::Hybrid, PolicyKind::FrontierRatio, 1e9,
                  1e-9, false, -1, false},
        SweepCase{"dram", BfsMode::Hybrid, PolicyKind::FrontierRatio, 1e-9,
                  1e9, false, -1, false}));

}  // namespace
}  // namespace sembfs
