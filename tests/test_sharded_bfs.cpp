// Sharded semi-external BFS tests: ShardGrid partition invariants, the
// reference-exact correctness matrix across shard counts / directions /
// encodings / chunk formats, per-shard fault containment, and the
// communication-volume collapse at the direction switch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "graph/csr.hpp"
#include "graph/kronecker.hpp"
#include "graph_fixtures.hpp"
#include "nvm/device_profile.hpp"
#include "nvm/fault_plan.hpp"
#include "parallel/thread_pool.hpp"
#include "shard/sharded_bfs.hpp"
#include "test_util.hpp"

namespace sembfs::shard {
namespace {

using testutil::ScopedTestDir;

constexpr std::uint64_t kSeed = 0xd15c0de;

// --- ShardGrid invariants -------------------------------------------------

TEST(ShardGrid, BlocksTileAndNest) {
  // Small and non-divisible vertex counts stress the floor(k*n/parts)
  // rounding; every invariant the exchange patterns rely on must hold.
  for (const Vertex n : {Vertex{10}, Vertex{1000}, Vertex{1 << 14}}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 6u, 8u, 16u}) {
      const ShardGrid grid{n, shards};
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " shards=" + std::to_string(shards));
      ASSERT_EQ(grid.shard_count(), shards);
      ASSERT_EQ(grid.rows() * grid.cols(), shards);
      ASSERT_LE(grid.rows(), grid.cols());

      std::vector<bool> owned(static_cast<std::size_t>(n), false);
      for (std::size_t k = 0; k < shards; ++k) {
        const VertexRange own = grid.owner_block(k);
        const VertexRange dst = grid.destination_range(k);
        // Owner block nests in this shard's destination block (claims for
        // owned children stay inside the grid column)...
        EXPECT_GE(own.begin, dst.begin);
        EXPECT_LE(own.end, dst.end);
        // ...and in the publish row's source block (the shards its
        // frontier is published to hold the outgoing edges).
        const VertexRange pub = grid.row_block(grid.publish_row(k));
        EXPECT_GE(own.begin, pub.begin);
        EXPECT_LE(own.end, pub.end);
        for (Vertex v = own.begin; v < own.end; ++v) {
          EXPECT_EQ(grid.owner_of(v), k);
          ASSERT_FALSE(owned[static_cast<std::size_t>(v)]);
          owned[static_cast<std::size_t>(v)] = true;
        }
      }
      // Owner blocks tile the vertex space exactly.
      for (Vertex v = 0; v < n; ++v)
        ASSERT_TRUE(owned[static_cast<std::size_t>(v)]) << "v=" << v;

      // Row/col members are ascending and consistent with coordinates.
      for (std::size_t r = 0; r < grid.rows(); ++r) {
        const std::vector<std::size_t> members = grid.row_members(r);
        ASSERT_EQ(members.size(), grid.cols());
        for (std::size_t i = 0; i < members.size(); ++i) {
          EXPECT_EQ(grid.row_of(members[i]), r);
          if (i > 0) {
            EXPECT_GT(members[i], members[i - 1]);
          }
        }
      }
      for (std::size_t c = 0; c < grid.cols(); ++c) {
        const std::vector<std::size_t> members = grid.col_members(c);
        ASSERT_EQ(members.size(), grid.rows());
        for (const std::size_t k : members) EXPECT_EQ(grid.col_of(k), c);
      }

      // Owners of col_block(j) are exactly grid column j — the alignment
      // that routes top-down claims along the column.
      for (std::size_t c = 0; c < grid.cols(); ++c) {
        const VertexRange block = grid.col_block(c);
        for (Vertex v = block.begin; v < block.end; ++v)
          EXPECT_EQ(grid.col_of(grid.owner_of(v)), c);
      }
    }
  }
}

TEST(ShardGrid, ForcedGridRows) {
  const ShardGrid tall{1000, 8, 4};
  EXPECT_EQ(tall.rows(), 4u);
  EXPECT_EQ(tall.cols(), 2u);
  const ShardGrid flat{1000, 8, 1};
  EXPECT_EQ(flat.rows(), 1u);
  EXPECT_EQ(flat.cols(), 8u);
}

// --- correctness matrix ---------------------------------------------------

void expect_reference_exact(const EdgeList& edges, const ShardedBfs&,
                            const ShardedBfsResult& result,
                            const ReferenceBfsResult& ref, Vertex root) {
  ASSERT_EQ(result.visited, ref.visited) << "root " << root;
  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "root " << root << " v " << v;
  const ValidationResult check =
      validate_bfs(edges, root, result.parent, result.level);
  ASSERT_TRUE(check.ok) << check.error;
}

struct ShardCase {
  const char* graph;  // "small" | "path" | "star" | "complete" | "kron"
  std::size_t shards;
  std::size_t grid_rows;  // 0 = auto
  ShardedBfsConfig::Mode mode;
  EncodingChoice encoding;
  ChunkFormat format;

  friend std::ostream& operator<<(std::ostream& os, const ShardCase& c) {
    const char* mode = c.mode == ShardedBfsConfig::Mode::Hybrid ? "hybrid"
                       : c.mode == ShardedBfsConfig::Mode::TopDownOnly
                           ? "td"
                           : "bu";
    return os << c.graph << "_s" << c.shards << "_g" << c.grid_rows << "_"
              << mode << "_" << encoding_choice_name(c.encoding) << "_"
              << (c.format == ChunkFormat::kRaw ? "raw" : "varint");
  }
};

class ShardedBfsMatrix : public ::testing::TestWithParam<ShardCase> {};

EdgeList make_graph(const char* name, ThreadPool& pool) {
  const std::string graph{name};
  if (graph == "small") return fixtures::small_graph();
  if (graph == "path") return fixtures::path_graph(64);
  if (graph == "star") return fixtures::star_graph(64);
  if (graph == "complete") return fixtures::complete_graph(16);
  return generate_kronecker(fixtures::small_kronecker(10, 8, kSeed), pool);
}

TEST_P(ShardedBfsMatrix, MatchesReferenceBfs) {
  const ShardCase c = GetParam();
  SCOPED_TRACE(::testing::PrintToString(c));
  ScopedTestDir dir{"shardbfs"};
  ThreadPool pool{std::max<std::size_t>(4, c.shards)};
  const EdgeList edges = make_graph(c.graph, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  ShardNodeConfig node_config;
  node_config.format = c.format;
  node_config.chunk_bytes = 1024;
  ShardedBfs bfs{edges,       c.shards,    pool, DeviceProfile::dram(),
                 dir.path(),  node_config, c.grid_rows};

  ShardedBfsConfig config;
  config.mode = c.mode;
  config.frontier_encoding = c.encoding;
  // Make the hybrid actually switch on the small graphs.
  config.policy.alpha = 16;
  config.policy.beta = 1e5;

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  Vertex second = edges.vertex_count() / 2;
  while (full.degree(second) == 0) ++second;
  for (const Vertex r : {root, second}) {
    const ShardedBfsResult result = bfs.run(r, config);
    const ReferenceBfsResult ref = reference_bfs(full, r);
    expect_reference_exact(edges, bfs, result, ref, r);
    EXPECT_EQ(result.visited,
              [&] {
                std::int64_t sum = 0;
                for (const ShardLevelStats& ls : result.levels)
                  sum += ls.claimed_vertices;
                return sum + 1;  // root is claimed by seeding, not a level
              }())
        << "per-level claims must add up to the visited count";
    for (const ShardLevelStats& ls : result.levels)
      EXPECT_EQ(ls.remote_bytes,
                ls.frontier_bytes + ls.membership_bytes + ls.claim_bytes);

    // Determinism: an identical re-run replays parents bit-for-bit, not
    // just levels.
    const ShardedBfsResult again = bfs.run(r, config);
    EXPECT_EQ(again.parent, result.parent);
    EXPECT_EQ(again.total_remote_bytes, result.total_remote_bytes);
  }
}

using Mode = ShardedBfsConfig::Mode;

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardedBfsMatrix,
    ::testing::Values(
        // Degenerate and structured graphs, hybrid, auto encoding.
        ShardCase{"small", 4, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        ShardCase{"path", 4, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        ShardCase{"star", 4, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        ShardCase{"complete", 4, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        // Single shard degenerates to local BFS; prime counts force 1xR.
        ShardCase{"kron", 1, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        ShardCase{"kron", 3, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        // Shard-count sweep on the kronecker, both chunk formats.
        ShardCase{"kron", 2, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        ShardCase{"kron", 4, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kVarint},
        ShardCase{"kron", 8, 0, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        // Forced tall grid (rows > cols is legal when forced).
        ShardCase{"kron", 8, 4, Mode::Hybrid, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        // Direction baselines: pure top-down and pure bottom-up must be
        // exact on their own, not only as hybrid phases.
        ShardCase{"kron", 4, 0, Mode::TopDownOnly, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        ShardCase{"kron", 4, 0, Mode::BottomUpOnly, EncodingChoice::kAuto,
                  ChunkFormat::kRaw},
        // Forced wire encodings.
        ShardCase{"kron", 4, 0, Mode::Hybrid, EncodingChoice::kForceBitmap,
                  ChunkFormat::kRaw},
        ShardCase{"kron", 4, 0, Mode::Hybrid, EncodingChoice::kForceVarint,
                  ChunkFormat::kVarint}),
    [](const ::testing::TestParamInfo<ShardCase>& param) {
      return ::testing::PrintToString(param.param);
    });

// --- fault containment ----------------------------------------------------

TEST(ShardedBfsFaults, SingleFaultyShardDegradesWithoutPoisoning) {
  ScopedTestDir dir{"shardfault"};
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, kSeed), pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  ShardNodeConfig node_config;
  node_config.retry.max_attempts = 2;  // fail fast into the DRAM fallback
  ShardedBfs bfs{edges, 4, pool, DeviceProfile::dram(), dir.path(),
                 node_config};

  // Only shard 2 fails; a certain read error means every fetch it serves
  // must come from its fallback, and no other shard may be affected.
  FaultPlan plan;
  plan.seed = kSeed;
  plan.read_error_rate = 1.0;
  bfs.set_fault_plan(2, plan);

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const ShardedBfsResult result = bfs.run(root, ShardedBfsConfig{});
  const ReferenceBfsResult ref = reference_bfs(full, root);
  expect_reference_exact(edges, bfs, result, ref, root);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.io_failures, 0u);
  for (const ShardLevelStats& ls : result.levels)
    EXPECT_LE(ls.degraded_shards, 1u)
        << "only the faulted shard may degrade (level " << ls.level << ")";

  // Clearing the plan restores a clean run.
  FaultPlan off;
  bfs.set_fault_plan(2, off);
  const ShardedBfsResult clean = bfs.run(root, ShardedBfsConfig{});
  EXPECT_FALSE(clean.degraded);
  EXPECT_EQ(clean.io_failures, 0u);
  EXPECT_EQ(clean.parent, result.parent);
}

TEST(ShardedBfsFaults, ArmedPlansStayExactAndDeterministic) {
  ScopedTestDir dir{"shardarm"};
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, kSeed), pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  ShardedBfs bfs{edges, 4, pool, DeviceProfile::dram(), dir.path()};
  FaultPlan base;
  base.seed = kSeed;
  base.read_error_rate = 1e-2;
  bfs.arm_fault_plans(base);

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const ShardedBfsResult result = bfs.run(root, ShardedBfsConfig{});
  const ReferenceBfsResult ref = reference_bfs(full, root);
  expect_reference_exact(edges, bfs, result, ref, root);
}

TEST(ShardedBfsFaults, NoFallbackThrowsAfterRetriesExhausted) {
  ScopedTestDir dir{"shardhard"};
  ThreadPool pool{4};
  const EdgeList edges = fixtures::small_graph();

  ShardNodeConfig node_config;
  node_config.dram_fallback = false;
  node_config.retry.max_attempts = 2;
  ShardedBfs bfs{edges, 2, pool, DeviceProfile::dram(), dir.path(),
                 node_config};
  FaultPlan plan;
  plan.seed = kSeed;
  plan.read_error_rate = 1.0;
  bfs.arm_fault_plans(plan);
  EXPECT_THROW(bfs.run(0, ShardedBfsConfig{}), NvmIoError);
}

// --- communication profile ------------------------------------------------

TEST(ShardedBfsComms, HybridCollapsesRemoteBytesVersusTopDown) {
  ScopedTestDir dir{"shardcomm"};
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 16, kSeed), pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  ShardedBfs bfs{edges, 4, pool, DeviceProfile::dram(), dir.path()};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;

  ShardedBfsConfig hybrid;
  hybrid.policy.alpha = 16;  // switch near the frontier peak
  ShardedBfsConfig td;
  td.mode = ShardedBfsConfig::Mode::TopDownOnly;

  const ShardedBfsResult h = bfs.run(root, hybrid);
  const ShardedBfsResult t = bfs.run(root, td);
  ASSERT_EQ(h.visited, t.visited);
  // Top-down pays one claim per cut edge at the peak levels; the switch
  // to membership exchange must collapse the total.
  EXPECT_LT(h.total_remote_bytes, t.total_remote_bytes / 2)
      << "hybrid " << h.total_remote_bytes << " vs top-down "
      << t.total_remote_bytes;

  // The per-level profile shows the drop at the switch itself: the first
  // bottom-up level carries a fraction of what top-down pays for the
  // same level (one claim per cut edge at the frontier peak).
  std::size_t switch_level = h.levels.size();
  for (std::size_t i = 0; i < h.levels.size(); ++i) {
    if (h.levels[i].direction == Direction::BottomUp) {
      switch_level = i;
      break;
    }
  }
  ASSERT_LT(switch_level, h.levels.size())
      << "hybrid run never switched direction";
  ASSERT_LT(switch_level, t.levels.size());
  EXPECT_GT(t.levels[switch_level].remote_bytes,
            3 * h.levels[switch_level].remote_bytes)
      << "td " << t.levels[switch_level].remote_bytes << " vs bu "
      << h.levels[switch_level].remote_bytes << " at the switch level";
}

// --- TSan target ----------------------------------------------------------

// Selected by the thread-sanitizer CI job by name: exercises the full
// concurrent per-level protocol (pool workers racing sends, barriers, and
// atomic claim state) back to back.
TEST(ShardConcurrency, RepeatedShardedRunsAreRaceFree) {
  ScopedTestDir dir{"shardtsan"};
  ThreadPool pool{8};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, kSeed), pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  ShardedBfs bfs{edges, 8, pool, DeviceProfile::dram(), dir.path()};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const ReferenceBfsResult ref = reference_bfs(full, root);
  for (int i = 0; i < 3; ++i) {
    const ShardedBfsResult result = bfs.run(root, ShardedBfsConfig{});
    ASSERT_EQ(result.visited, ref.visited);
  }
}

}  // namespace
}  // namespace sembfs::shard
