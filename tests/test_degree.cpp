#include "graph/degree.hpp"

#include <gtest/gtest.h>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

TEST(DegreeStats, SmallGraphNumbers) {
  ThreadPool pool{2};
  const Csr csr =
      build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const DegreeStats stats = compute_degree_stats(csr);
  EXPECT_EQ(stats.vertex_count, 8);
  EXPECT_EQ(stats.edge_entry_count, 12);
  EXPECT_EQ(stats.min_degree, 0);
  EXPECT_EQ(stats.max_degree, 3);  // vertex 1
  EXPECT_DOUBLE_EQ(stats.mean_degree, 1.5);
  EXPECT_EQ(stats.isolated_count, 1);  // vertex 7
}

TEST(DegreeStats, StarGraph) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::star_graph(16), CsrBuildOptions{}, pool);
  const DegreeStats stats = compute_degree_stats(csr);
  EXPECT_EQ(stats.max_degree, 15);
  EXPECT_EQ(stats.median_degree, 1);
  EXPECT_EQ(stats.isolated_count, 0);
}

TEST(DegreeStats, HistogramBuckets) {
  ThreadPool pool{2};
  // degrees: one 0, rest 1s and one 15 (star of 16 has hub 15, leaves 1).
  const Csr csr = build_csr(fixtures::star_graph(16), CsrBuildOptions{}, pool);
  const DegreeStats stats = compute_degree_stats(csr);
  // bucket 0: degree 0; bucket 1: degree 1 (15 leaves); bucket b >= 2
  // covers [2^(b-2)+1, 2^(b-1)], so degree 15 (in [9,16]) -> bucket 5.
  ASSERT_GE(stats.log2_histogram.size(), 6u);
  EXPECT_EQ(stats.log2_histogram[0], 0);
  EXPECT_EQ(stats.log2_histogram[1], 15);
  EXPECT_EQ(stats.log2_histogram[5], 1);
}

TEST(DegreeStats, HistogramSumsToVertexCount) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10), pool);
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  const DegreeStats stats = compute_degree_stats(csr);
  std::int64_t total = 0;
  for (const auto c : stats.log2_histogram) total += c;
  EXPECT_EQ(total, stats.vertex_count);
}

TEST(AverageDegree, SubsetComputation) {
  ThreadPool pool{2};
  const Csr csr =
      build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  const std::vector<Vertex> frontier = {0, 1};  // degrees 2 and 3
  EXPECT_DOUBLE_EQ(average_degree(csr, frontier), 2.5);
}

TEST(AverageDegree, EmptySubsetIsZero) {
  ThreadPool pool{2};
  const Csr csr =
      build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  EXPECT_EQ(average_degree(csr, {}), 0.0);
}

TEST(DegreeStats, EmptyRange) {
  Csr csr;  // default: zero-size
  const DegreeStats stats = compute_degree_stats(csr);
  EXPECT_EQ(stats.vertex_count, 0);
}

}  // namespace
}  // namespace sembfs
