#include "bfs/bfs_status.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sembfs {
namespace {

TEST(BfsStatus, ResetSeedsRoot) {
  BfsStatus status{10};
  status.reset(3);
  EXPECT_EQ(status.parent(3), 3);
  EXPECT_EQ(status.level(3), 0);
  EXPECT_TRUE(status.is_visited(3));
  EXPECT_TRUE(status.in_frontier(3));
  EXPECT_EQ(status.frontier_size(), 1);
  EXPECT_EQ(status.frontier()[0], 3);
  EXPECT_EQ(status.visited_count(), 1);
}

TEST(BfsStatus, UnvisitedState) {
  BfsStatus status{10};
  status.reset(0);
  for (Vertex v = 1; v < 10; ++v) {
    EXPECT_EQ(status.parent(v), kNoVertex);
    EXPECT_EQ(status.level(v), -1);
    EXPECT_FALSE(status.is_visited(v));
  }
}

TEST(BfsStatus, ClaimWinsOnce) {
  BfsStatus status{10};
  status.reset(0);
  EXPECT_TRUE(status.claim(5, 0, 1));
  EXPECT_FALSE(status.claim(5, 2, 1));  // already claimed
  EXPECT_EQ(status.parent(5), 0);
  EXPECT_EQ(status.level(5), 1);
  EXPECT_TRUE(status.is_visited(5));
}

TEST(BfsStatus, AdvancePromotesNext) {
  BfsStatus status{10};
  status.reset(0);
  status.claim(4, 0, 1);
  status.claim(7, 0, 1);
  status.set_next({4, 7});
  status.advance();
  EXPECT_EQ(status.frontier_size(), 2);
  EXPECT_TRUE(status.in_frontier(4));
  EXPECT_TRUE(status.in_frontier(7));
  EXPECT_FALSE(status.in_frontier(0));  // old frontier gone
}

TEST(BfsStatus, AdvanceOnEmptyNextEmptiesFrontier) {
  BfsStatus status{4};
  status.reset(0);
  status.advance();
  EXPECT_EQ(status.frontier_size(), 0);
}

TEST(BfsStatus, ResetClearsPreviousSearch) {
  BfsStatus status{10};
  status.reset(0);
  status.claim(5, 0, 1);
  status.reset(2);
  EXPECT_EQ(status.parent(5), kNoVertex);
  EXPECT_EQ(status.parent(0), kNoVertex);
  EXPECT_EQ(status.parent(2), 2);
  EXPECT_EQ(status.visited_count(), 1);
}

TEST(BfsStatus, ParentSnapshotCopies) {
  BfsStatus status{5};
  status.reset(1);
  status.claim(3, 1, 1);
  const std::vector<Vertex> snap = status.parent_snapshot();
  EXPECT_EQ(snap, (std::vector<Vertex>{kNoVertex, 1, kNoVertex, 1,
                                       kNoVertex}));
}

TEST(BfsStatus, ConcurrentClaimsSingleWinnerPerVertex) {
  BfsStatus status{1000};
  status.reset(0);
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&status, &wins, t] {
      for (Vertex v = 1; v < 1000; ++v)
        if (status.claim(v, static_cast<Vertex>(t), 1)) wins.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 999);
  EXPECT_EQ(status.visited_count(), 1000);
}

TEST(BfsStatus, ByteSizeScalesWithVertices) {
  BfsStatus small{1000};
  BfsStatus large{100000};
  EXPECT_GT(large.byte_size(), small.byte_size());
  // parent (8B) + level (4B) + 2 bitmaps (2/8 B) per vertex at minimum.
  EXPECT_GE(large.byte_size(), 100000u * 12u);
}

TEST(BfsStatusDeath, RejectsOutOfRangeRoot) {
  BfsStatus status{4};
  EXPECT_DEATH(status.reset(4), "Precondition");
  EXPECT_DEATH(status.reset(-1), "Precondition");
}

}  // namespace
}  // namespace sembfs
