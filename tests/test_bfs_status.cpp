#include "bfs/bfs_status.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace sembfs {
namespace {

TEST(BfsStatus, ResetSeedsRoot) {
  BfsStatus status{10};
  status.reset(3);
  EXPECT_EQ(status.parent(3), 3);
  EXPECT_EQ(status.level(3), 0);
  EXPECT_TRUE(status.is_visited(3));
  EXPECT_TRUE(status.in_frontier(3));
  EXPECT_EQ(status.frontier_size(), 1);
  EXPECT_EQ(status.frontier()[0], 3);
  EXPECT_EQ(status.visited_count(), 1);
}

TEST(BfsStatus, UnvisitedState) {
  BfsStatus status{10};
  status.reset(0);
  for (Vertex v = 1; v < 10; ++v) {
    EXPECT_EQ(status.parent(v), kNoVertex);
    EXPECT_EQ(status.level(v), -1);
    EXPECT_FALSE(status.is_visited(v));
  }
}

TEST(BfsStatus, ClaimWinsOnce) {
  BfsStatus status{10};
  status.reset(0);
  EXPECT_TRUE(status.claim(5, 0, 1));
  EXPECT_FALSE(status.claim(5, 2, 1));  // already claimed
  EXPECT_EQ(status.parent(5), 0);
  EXPECT_EQ(status.level(5), 1);
  EXPECT_TRUE(status.is_visited(5));
}

TEST(BfsStatus, AdvancePromotesNext) {
  BfsStatus status{10};
  status.reset(0);
  status.claim(4, 0, 1);
  status.claim(7, 0, 1);
  status.set_next({4, 7});
  status.advance();
  EXPECT_EQ(status.frontier_size(), 2);
  EXPECT_TRUE(status.in_frontier(4));
  EXPECT_TRUE(status.in_frontier(7));
  EXPECT_FALSE(status.in_frontier(0));  // old frontier gone
}

TEST(BfsStatus, AdvanceOnEmptyNextEmptiesFrontier) {
  BfsStatus status{4};
  status.reset(0);
  status.advance();
  EXPECT_EQ(status.frontier_size(), 0);
}

TEST(BfsStatus, ResetClearsPreviousSearch) {
  BfsStatus status{10};
  status.reset(0);
  status.claim(5, 0, 1);
  status.reset(2);
  EXPECT_EQ(status.parent(5), kNoVertex);
  EXPECT_EQ(status.parent(0), kNoVertex);
  EXPECT_EQ(status.parent(2), 2);
  EXPECT_EQ(status.visited_count(), 1);
}

TEST(BfsStatus, ParentSnapshotCopies) {
  BfsStatus status{5};
  status.reset(1);
  status.claim(3, 1, 1);
  const std::vector<Vertex> snap = status.parent_snapshot();
  EXPECT_EQ(snap, (std::vector<Vertex>{kNoVertex, 1, kNoVertex, 1,
                                       kNoVertex}));
}

TEST(BfsStatus, ConcurrentClaimsSingleWinnerPerVertex) {
  BfsStatus status{1000};
  status.reset(0);
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&status, &wins, t] {
      for (Vertex v = 1; v < 1000; ++v)
        if (status.claim(v, static_cast<Vertex>(t), 1)) wins.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 999);
  EXPECT_EQ(status.visited_count(), 1000);
}

TEST(BfsStatus, ClaimBottomUpSetsParentLevelVisited) {
  BfsStatus status{10};
  status.reset(0);
  status.claim_bottom_up(6, 0, 1);
  EXPECT_EQ(status.parent(6), 0);
  EXPECT_EQ(status.level(6), 1);
  EXPECT_TRUE(status.is_visited(6));
}

TEST(BfsStatus, SetNextMergedConcatsPerWorkerBuffers) {
  ThreadPool pool{4};
  BfsStatus status{16};
  status.reset(0);
  std::vector<std::vector<Vertex>> buffers = {{1, 2}, {}, {3}, {4, 5}};
  status.set_next_merged(buffers, pool);
  status.advance();
  ASSERT_EQ(status.frontier_rep(), FrontierRep::Queue);
  EXPECT_EQ(status.frontier(), (std::vector<Vertex>{1, 2, 3, 4, 5}));
  for (const Vertex v : {1, 2, 3, 4, 5}) EXPECT_TRUE(status.in_frontier(v));
}

TEST(BfsStatus, BitmapAdvanceMergesAndClearsWorkerBitmaps) {
  BfsStatus status{256};
  status.reset(0);
  status.begin_bitmap_next(2);
  status.claim_bottom_up(10, 0, 1);
  status.worker_next(0).set(10);
  status.claim_bottom_up(70, 0, 1);
  status.worker_next(1).set(70);
  status.advance();
  EXPECT_EQ(status.frontier_rep(), FrontierRep::Bitmap);
  EXPECT_EQ(status.frontier_size(), 2);
  EXPECT_TRUE(status.in_frontier(10));
  EXPECT_TRUE(status.in_frontier(70));
  EXPECT_FALSE(status.in_frontier(0));  // old frontier gone
  // The merge must restore the all-zero invariant so the next bitmap
  // level starts clean.
  EXPECT_EQ(status.worker_next(0).count(), 0u);
  EXPECT_EQ(status.worker_next(1).count(), 0u);
}

TEST(BfsStatus, EnsureFrontierQueueMaterializesSortedOnce) {
  BfsStatus status{256};
  status.reset(0);
  status.begin_bitmap_next(1);
  for (const Vertex v : {200, 3, 64, 63}) {
    status.claim_bottom_up(v, 0, 1);
    status.worker_next(0).set(static_cast<std::size_t>(v));
  }
  status.advance();
  ASSERT_EQ(status.frontier_rep(), FrontierRep::Bitmap);
  EXPECT_TRUE(status.ensure_frontier_queue());
  EXPECT_EQ(status.frontier_rep(), FrontierRep::Queue);
  EXPECT_EQ(status.frontier(), (std::vector<Vertex>{3, 63, 64, 200}));
  EXPECT_FALSE(status.ensure_frontier_queue());  // already a queue
}

TEST(BfsStatus, ParallelPathsMatchSerialOnLargeFrontiers) {
  // Drive both advance(pool) paths and the parallel queue materialization
  // above their serial-fallback thresholds and check against ground truth.
  constexpr Vertex kN = 1 << 20;
  ThreadPool pool{4};
  BfsStatus status{kN};
  status.reset(0);

  // Queue-pending path: a big next list -> parallel bitmap rebuild.
  std::vector<Vertex> next;
  for (Vertex v = 1; v < kN; v += 3) next.push_back(v);
  const auto expected = next;
  status.set_next(std::move(next));
  status.advance(pool);
  ASSERT_EQ(status.frontier_rep(), FrontierRep::Queue);
  EXPECT_EQ(status.frontier_size(),
            static_cast<std::int64_t>(expected.size()));
  EXPECT_TRUE(status.in_frontier(1));
  EXPECT_FALSE(status.in_frontier(2));
  EXPECT_FALSE(status.in_frontier(0));

  // Bitmap-pending path: per-worker bitmaps -> parallel word merge.
  status.begin_bitmap_next(2);
  for (Vertex v = 2; v < kN; v += 7)
    status.worker_next(v % 2 == 0 ? 0 : 1).set(static_cast<std::size_t>(v));
  status.advance(pool);
  ASSERT_EQ(status.frontier_rep(), FrontierRep::Bitmap);
  const std::int64_t bitmap_count = status.frontier_size();
  EXPECT_EQ(bitmap_count, (kN - 2 + 6) / 7);

  // Parallel queue materialization must agree with the bitmap.
  EXPECT_TRUE(status.ensure_frontier_queue(pool));
  ASSERT_EQ(status.frontier_size(), bitmap_count);
  const auto& frontier = status.frontier();
  EXPECT_TRUE(std::is_sorted(frontier.begin(), frontier.end()));
  EXPECT_EQ(frontier.front(), 2);
  for (const Vertex v : {Vertex{2}, Vertex{9}, Vertex{16}})
    EXPECT_TRUE(status.in_frontier(v));
}

TEST(BfsStatus, ByteSizeScalesWithVertices) {
  BfsStatus small{1000};
  BfsStatus large{100000};
  EXPECT_GT(large.byte_size(), small.byte_size());
  // parent (8B) + level (4B) + 2 bitmaps (2/8 B) per vertex at minimum.
  EXPECT_GE(large.byte_size(), 100000u * 12u);
}

TEST(BfsStatusDeath, RejectsOutOfRangeRoot) {
  BfsStatus status{4};
  EXPECT_DEATH(status.reset(4), "Precondition");
  EXPECT_DEATH(status.reset(-1), "Precondition");
}

}  // namespace
}  // namespace sembfs
