#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sembfs::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.counter("nvm.requests").add(42);
  reg.counter("chunk_cache.hits").add(7);
  reg.gauge("pool.size").set(-3);
  Histogram& h = reg.histogram("nvm.service_us");
  h.record(10);
  h.record(100);
  h.record(1000);
  return reg.snapshot();
}

TEST(MetricsJson, ContainsSchemaAndAllSections) {
  const std::string json = metrics_to_json(sample_snapshot());
  EXPECT_NE(json.find("\"schema\":\"sembfs.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"nvm.requests\":42"), std::string::npos);
  EXPECT_NE(json.find("\"chunk_cache.hits\":7"), std::string::npos);
  EXPECT_NE(json.find("\"pool.size\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"nvm.service_us\":{\"count\":3"),
            std::string::npos);
  EXPECT_NE(json.find("\"sum\":1110"), std::string::npos);
  EXPECT_NE(json.find("\"min\":10"), std::string::npos);
  EXPECT_NE(json.find("\"max\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

TEST(MetricsJson, EmptyRegistryIsStillValidDocument) {
  const std::string json = metrics_to_json(MetricsRegistry{}.snapshot());
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{}"), std::string::npos);
}

TEST(MetricsCsv, OneRowPerScalarAndHistogramKey) {
  const std::string csv = metrics_to_csv(sample_snapshot()).render();
  std::istringstream lines{csv};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "kind,name,key,value");
  EXPECT_NE(csv.find("counter,nvm.requests,value,42"), std::string::npos);
  EXPECT_NE(csv.find("gauge,pool.size,value,-3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,nvm.service_us,count,3"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,nvm.service_us,p50,"), std::string::npos);
  // One le_ row per non-empty bucket: three distinct recorded magnitudes.
  std::size_t le_rows = 0;
  std::istringstream again{csv};
  while (std::getline(again, line)) {
    if (line.find(",le_") != std::string::npos) ++le_rows;
  }
  EXPECT_EQ(le_rows, 3u);
}

TEST(TraceJson, RecordsSpansWithPolicyAndDecision) {
  TraceLog log;
  EXPECT_EQ(log.begin_run(17), 0);
  TraceSpan span;
  span.run = 0;
  span.root = 17;
  span.level = 3;
  span.direction = Direction::BottomUp;
  span.start_seconds = 0.5;
  span.duration_seconds = 0.25;
  span.stats.frontier_vertices = 100;
  span.stats.scanned_edges = 1600;
  span.policy_input.n_all = 1024;
  span.policy_input.prev_frontier = 50;
  span.policy_input.cur_frontier = 40;
  span.decision = Direction::TopDown;
  span.policy_evaluated = true;
  log.record(span);

  const std::string json = trace_to_json(log);
  EXPECT_NE(json.find("\"schema\":\"sembfs.trace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"run\":0"), std::string::npos);
  EXPECT_NE(json.find("\"root\":17"), std::string::npos);
  EXPECT_NE(json.find("\"level\":3"), std::string::npos);
  EXPECT_NE(json.find("\"direction\":\"bottom-up\""), std::string::npos);
  EXPECT_NE(json.find("\"frontier_vertices\":100"), std::string::npos);
  EXPECT_NE(json.find("\"policy\":{\"evaluated\":true"), std::string::npos);
  EXPECT_NE(json.find("\"prev_frontier\":50"), std::string::npos);
  EXPECT_NE(json.find("\"cur_frontier\":40"), std::string::npos);
  EXPECT_NE(json.find("\"decision\":\"top-down\""), std::string::npos);
}

TEST(TraceJson, EmptyLogHasEmptySpanArray) {
  TraceLog log;
  const std::string json = trace_to_json(log);
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos);
}

TEST(TraceLogApi, RunIdsAreSequentialAndClearResets) {
  TraceLog log;
  EXPECT_EQ(log.begin_run(1), 0);
  EXPECT_EQ(log.begin_run(2), 1);
  log.record(TraceSpan{});
  EXPECT_EQ(log.span_count(), 1u);
  log.clear();
  EXPECT_EQ(log.span_count(), 0u);
  EXPECT_EQ(log.begin_run(3), 0);
}

TEST(WriteTextFile, RoundTripsAndReportsFailures) {
  const std::string path = testing::TempDir() + "/sembfs_obs_export.json";
  ASSERT_TRUE(write_text_file(path, "{\"ok\":true}\n"));
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "{\"ok\":true}\n");
  std::remove(path.c_str());

  EXPECT_FALSE(write_text_file("/nonexistent-dir-xyz/out.json", "x"));
  // Full-disk case: the flush at fclose fails even though fwrite buffered.
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe != nullptr) {
    std::fclose(probe);
    EXPECT_FALSE(write_text_file("/dev/full", "x"));
  }
}

TEST(Exporters, OneShotWritersProduceParseableFiles) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  const std::string dir = testing::TempDir();
  const std::string json_path = dir + "/sembfs_metrics.json";
  const std::string csv_path = dir + "/sembfs_metrics.csv";
  TraceLog log;
  log.begin_run(0);
  const std::string trace_path = dir + "/sembfs_trace.json";

  EXPECT_TRUE(write_metrics_json(reg, json_path));
  EXPECT_TRUE(write_metrics_csv(reg, csv_path));
  EXPECT_TRUE(write_trace_json(log, trace_path));
  for (const std::string& p : {json_path, csv_path, trace_path}) {
    std::ifstream in{p};
    EXPECT_TRUE(in.good()) << p;
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace sembfs::obs
