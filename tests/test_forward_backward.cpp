#include "graph/backward_graph.hpp"
#include "graph/forward_graph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class ForwardBackwardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(9, 8, 3), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    full_ = build_csr(edges_, CsrBuildOptions{}, pool_);
  }

  ThreadPool pool_{4};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  Csr full_;
};

TEST_F(ForwardBackwardTest, PartitionCounts) {
  EXPECT_EQ(forward_.node_count(), 4u);
  EXPECT_EQ(backward_.node_count(), 4u);
  EXPECT_EQ(forward_.vertex_count(), edges_.vertex_count());
}

TEST_F(ForwardBackwardTest, EntryTotalsMatchFullGraph) {
  EXPECT_EQ(forward_.entry_count(), full_.entry_count());
  EXPECT_EQ(backward_.entry_count(), full_.entry_count());
}

TEST_F(ForwardBackwardTest, ForwardPartitionsFilterDestinations) {
  for (std::size_t k = 0; k < forward_.node_count(); ++k) {
    const Csr& part = forward_.partition(k);
    const VertexRange range = partition_.range_of(k);
    EXPECT_EQ(part.destination_range(), range);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      for (const Vertex dst : part.neighbors(v))
        ASSERT_TRUE(range.contains(dst)) << "node " << k;
  }
}

TEST_F(ForwardBackwardTest, ForwardPartitionsUnionToFullAdjacency) {
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    std::multiset<Vertex> merged;
    for (std::size_t k = 0; k < forward_.node_count(); ++k) {
      const auto adj = forward_.partition(k).neighbors(v);
      merged.insert(adj.begin(), adj.end());
    }
    const auto adj = full_.neighbors(v);
    const std::multiset<Vertex> expected(adj.begin(), adj.end());
    ASSERT_EQ(merged, expected) << "vertex " << v;
  }
}

TEST_F(ForwardBackwardTest, BackwardPartitionsCoverOwnSourcesOnly) {
  for (std::size_t k = 0; k < backward_.node_count(); ++k) {
    const Csr& part = backward_.partition(k);
    EXPECT_EQ(part.source_range(), partition_.range_of(k));
  }
}

TEST_F(ForwardBackwardTest, BackwardNeighborsMatchFullAdjacency) {
  for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
    const auto adj = backward_.neighbors(v);
    const std::multiset<Vertex> got(adj.begin(), adj.end());
    const auto fadj = full_.neighbors(v);
    const std::multiset<Vertex> expected(fadj.begin(), fadj.end());
    ASSERT_EQ(got, expected) << "vertex " << v;
  }
}

TEST_F(ForwardBackwardTest, ForwardLargerThanBackward) {
  // The forward graph duplicates its index array per node (paper Fig. 3:
  // forward graph is the biggest structure).
  EXPECT_GT(forward_.byte_size(), backward_.byte_size());
  // Index entries: forward l*(n+1), backward n+l -> difference (l-1)*n.
  const std::uint64_t expected_overhead =
      (forward_.node_count() - 1) *
      static_cast<std::uint64_t>(edges_.vertex_count()) *
      sizeof(std::int64_t);
  EXPECT_EQ(forward_.byte_size() - backward_.byte_size(), expected_overhead);
}

TEST_F(ForwardBackwardTest, IndexEntryAccounting) {
  // forward index entries: l * (n + 1); backward: n + l.
  std::uint64_t forward_index = 0;
  for (std::size_t k = 0; k < forward_.node_count(); ++k)
    forward_index += forward_.partition(k).index().size();
  std::uint64_t backward_index = 0;
  for (std::size_t k = 0; k < backward_.node_count(); ++k)
    backward_index += backward_.partition(k).index().size();
  const auto n = static_cast<std::uint64_t>(edges_.vertex_count());
  EXPECT_EQ(forward_index, 4 * (n + 1));
  EXPECT_EQ(backward_index, n + 4);
}

TEST(ForwardGraph, SingleNodeDegeneratesToFullCsr) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  const VertexPartition partition{edges.vertex_count(), 1};
  const ForwardGraph fg =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  ASSERT_EQ(fg.node_count(), 1u);
  EXPECT_EQ(fg.partition(0).entry_count(), full.entry_count());
}

}  // namespace
}  // namespace sembfs
