// Cost-aware batch planner: pure-function properties over PlannerInput.
//
// plan_cost_batch() is the one reordering point of the serving engine, so
// its contract is pinned here exhaustively: determinism, priority-first
// ordering, laxity ordering within a class, lane/query caps with
// skip-not-stop semantics, root dedup, and the FIFO degeneration that the
// engine's trace-replay test relies on (no deadlines + no congestion =
// admission order).
#include "serve/batch_planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "serve/cost_model.hpp"
#include "util/prng.hpp"

namespace sembfs::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

PlannerInput::Entry entry(Vertex root, std::int64_t degree,
                          double slack_ms = kInf,
                          Priority priority = Priority::Normal) {
  PlannerInput::Entry e;
  e.root = root;
  e.degree = degree;
  e.slack_ms = slack_ms;
  e.priority = priority;
  return e;
}

TEST(CostModelTest, CostGrowsWithDegreeAndCongestion) {
  const CostModelParams params;
  const CongestionSignal calm;
  EXPECT_LT(predicted_cost_ms(0, calm, params),
            predicted_cost_ms(1000, calm, params));
  CongestionSignal busy;
  busy.queue_depth = 16.0;
  busy.avg_wait_us = 500.0;
  EXPECT_LT(predicted_cost_ms(1000, calm, params),
            predicted_cost_ms(1000, busy, params));
  // Pure: identical inputs, identical output.
  EXPECT_EQ(predicted_cost_ms(1000, busy, params),
            predicted_cost_ms(1000, busy, params));
}

TEST(PlanCostBatchTest, HighPriorityAlwaysPlansFirst) {
  PlannerInput input;
  input.max_lanes = 8;
  input.entries.push_back(entry(0, 0, 1.0));  // tightest deadline, normal
  input.entries.push_back(entry(1, 1'000'000, kInf, Priority::High));
  input.entries.push_back(entry(2, 0, kInf, Priority::High));
  const PlanDecision decision = plan_cost_batch(input);
  ASSERT_EQ(decision.picked.size(), 3u);
  // Both high entries precede the normal one even though the normal one
  // is cheaper and nearer its deadline.
  EXPECT_EQ(input.entries[decision.picked[0]].priority, Priority::High);
  EXPECT_EQ(input.entries[decision.picked[1]].priority, Priority::High);
  EXPECT_EQ(decision.picked[2], 0u);
}

TEST(PlanCostBatchTest, LaxityOrdersWithinPriorityClass) {
  // Same slack: the expensive query has less laxity, so it plans first.
  PlannerInput input;
  input.max_lanes = 8;
  input.entries.push_back(entry(0, 10, 50.0));
  input.entries.push_back(entry(1, 1'000'000, 50.0));
  const PlanDecision expensive_first = plan_cost_batch(input);
  ASSERT_EQ(expensive_first.picked.size(), 2u);
  EXPECT_EQ(expensive_first.picked[0], 1u);

  // Cheap near-deadline vs expensive slack: the cheap one wins on both
  // terms — this is the headline property of the cost-aware planner.
  PlannerInput mixed;
  mixed.max_lanes = 8;
  mixed.entries.push_back(entry(0, 1'000'000, 10'000.0));  // slack hog
  mixed.entries.push_back(entry(1, 10, 5.0));              // urgent, cheap
  const PlanDecision urgent_first = plan_cost_batch(mixed);
  ASSERT_EQ(urgent_first.picked.size(), 2u);
  EXPECT_EQ(urgent_first.picked[0], 1u);
}

TEST(PlanCostBatchTest, NoDeadlinesDegenerateToAdmissionOrder) {
  // The engine's determinism contract: no deadlines (infinite slack) and
  // all-normal priority leave only the admission-index tie-break, so the
  // plan is FIFO regardless of degrees or congestion.
  PlannerInput input;
  input.max_lanes = 8;
  input.congestion.queue_depth = 12.0;
  input.congestion.avg_wait_us = 900.0;
  input.entries.push_back(entry(0, 500));
  input.entries.push_back(entry(1, 5));
  input.entries.push_back(entry(2, 50'000));
  const PlanDecision decision = plan_cost_batch(input);
  EXPECT_EQ(decision.picked, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(PlanCostBatchTest, LaneCapSkipsNewRootsButKeepsRiders) {
  // FIFO stops at the lane cap; the cost planner must SKIP the new root
  // and still pack a later rider of an already-chosen lane.
  PlannerInput input;
  input.max_lanes = 2;
  input.entries.push_back(entry(10, 0));
  input.entries.push_back(entry(20, 0));
  input.entries.push_back(entry(30, 0));  // third root: no lane for it
  input.entries.push_back(entry(10, 0));  // rider of lane 0, behind the skip
  const PlanDecision decision = plan_cost_batch(input);
  EXPECT_EQ(decision.width(), 2u);
  ASSERT_EQ(decision.picked.size(), 3u);
  EXPECT_EQ(decision.picked, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(decision.lane_of, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(PlanCostBatchTest, QueryCapBoundsTotalPicks) {
  PlannerInput input;
  input.max_lanes = 8;
  input.max_queries = 3;
  for (int i = 0; i < 10; ++i) input.entries.push_back(entry(7, 0));
  const PlanDecision decision = plan_cost_batch(input);
  EXPECT_EQ(decision.width(), 1u);  // all riders of one root
  EXPECT_EQ(decision.picked.size(), 3u);
}

TEST(PlanCostBatchTest, SeededPropertySweep) {
  // Property test over seeded random inputs:
  //   1. determinism — same input twice gives the same decision;
  //   2. every High pick precedes every Normal pick;
  //   3. within a priority class, picks are sorted by (laxity, index);
  //   4. width <= max_lanes, picks <= max_queries, lanes consistent with
  //      roots, no entry picked twice.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Xoroshiro128 rng{derive_seed(4242, seed)};
    PlannerInput input;
    input.max_lanes = 1 + rng.next_below(8);
    input.max_queries = rng.next_below(2) == 0 ? 0 : 1 + rng.next_below(24);
    input.congestion.queue_depth = static_cast<double>(rng.next_below(32));
    input.congestion.avg_wait_us = static_cast<double>(rng.next_below(2000));
    const std::size_t n = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < n; ++i) {
      const bool deadline = rng.next_below(2) == 0;
      input.entries.push_back(entry(
          static_cast<Vertex>(rng.next_below(12)),
          static_cast<std::int64_t>(rng.next_below(100'000)),
          deadline ? 0.1 * static_cast<double>(1 + rng.next_below(10'000))
                   : kInf,
          rng.next_below(4) == 0 ? Priority::High : Priority::Normal));
    }

    const PlanDecision a = plan_cost_batch(input);
    const PlanDecision b = plan_cost_batch(input);
    EXPECT_EQ(a.picked, b.picked) << "seed=" << seed;
    EXPECT_EQ(a.lane_of, b.lane_of) << "seed=" << seed;
    EXPECT_EQ(a.roots, b.roots) << "seed=" << seed;

    EXPECT_LE(a.width(), input.max_lanes) << "seed=" << seed;
    if (input.max_queries != 0)
      EXPECT_LE(a.picked.size(), input.max_queries) << "seed=" << seed;
    ASSERT_EQ(a.picked.size(), a.lane_of.size());
    ASSERT_EQ(a.picked.size(), a.cost_ms.size());

    std::vector<bool> taken(n, false);
    bool seen_normal = false;
    double last_laxity = -kInf;
    std::size_t last_index = 0;
    for (std::size_t i = 0; i < a.picked.size(); ++i) {
      const std::size_t idx = a.picked[i];
      ASSERT_LT(idx, n);
      EXPECT_FALSE(taken[idx]) << "seed=" << seed << " picked twice";
      taken[idx] = true;
      const PlannerInput::Entry& e = input.entries[idx];
      EXPECT_EQ(a.roots[a.lane_of[i]], e.root) << "seed=" << seed;
      if (e.priority == Priority::High) {
        EXPECT_FALSE(seen_normal)
            << "seed=" << seed << " High planned after Normal";
      }
      const double laxity = e.slack_ms - a.cost_ms[i];
      if (e.priority == Priority::Normal && !seen_normal) {
        seen_normal = true;  // class boundary: restart the monotone check
        last_laxity = -kInf;
      }
      if (laxity == last_laxity) {
        EXPECT_GT(idx, last_index) << "seed=" << seed << " tie-break broken";
      } else if (i > 0) {
        // Skip-not-stop can interleave riders of earlier lanes, but the
        // pick ORDER itself must still be laxity-monotone within a class
        // (the planner walks its sorted order exactly once).
        EXPECT_GE(laxity, last_laxity) << "seed=" << seed;
      }
      last_laxity = laxity;
      last_index = idx;
    }
  }
}

TEST(PlannerLogTest, RecordsSpansThreadSafely) {
  PlannerLog log;
  PlannerInput input;
  input.max_lanes = 4;
  input.entries.push_back(entry(3, 100, 2.5, Priority::High));
  const PlanDecision decision = plan_cost_batch(input);
  log.record(PlannerSpan{input, decision});
  ASSERT_EQ(log.span_count(), 1u);
  const std::vector<PlannerSpan> spans = log.spans();
  ASSERT_EQ(spans[0].input.entries.size(), 1u);
  EXPECT_EQ(spans[0].input.entries[0].root, 3);
  EXPECT_EQ(spans[0].decision.picked, decision.picked);
  // Replay: re-planning the logged input reproduces the logged decision.
  const PlanDecision replay = plan_cost_batch(spans[0].input);
  EXPECT_EQ(replay.picked, spans[0].decision.picked);
  EXPECT_EQ(replay.roots, spans[0].decision.roots);
  log.clear();
  EXPECT_EQ(log.span_count(), 0u);
}

}  // namespace
}  // namespace sembfs::serve
