#include "graph/uniform.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/degree.hpp"
#include "graph/kronecker.hpp"

namespace sembfs {
namespace {

UniformParams params_for(int scale, std::uint64_t seed = 1) {
  UniformParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return p;
}

TEST(Uniform, ProducesSpecifiedCounts) {
  ThreadPool pool{2};
  const EdgeList edges = generate_uniform(params_for(8), pool);
  EXPECT_EQ(edges.vertex_count(), 256);
  EXPECT_EQ(edges.edge_count(), 256u * 8u);
}

TEST(Uniform, EndpointsInRange) {
  ThreadPool pool{2};
  const EdgeList edges = generate_uniform(params_for(9), pool);
  for (const Edge& e : edges) {
    ASSERT_GE(e.u, 0);
    ASSERT_LT(e.u, 512);
    ASSERT_GE(e.v, 0);
    ASSERT_LT(e.v, 512);
  }
}

TEST(Uniform, DeterministicAndThreadIndependent) {
  ThreadPool pool1{1};
  ThreadPool pool8{8};
  const EdgeList a = generate_uniform(params_for(9, 3), pool1);
  const EdgeList b = generate_uniform(params_for(9, 3), pool8);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Uniform, NoHubsUnlikeKronecker) {
  ThreadPool pool{4};
  UniformParams up;
  up.scale = 12;
  up.edge_factor = 16;
  const EdgeList uniform_edges = generate_uniform(up, pool);
  KroneckerParams kp;
  kp.scale = 12;
  kp.edge_factor = 16;
  const EdgeList kron_edges = generate_kronecker(kp, pool);

  const DegreeStats uniform_stats =
      compute_degree_stats(build_csr(uniform_edges, CsrBuildOptions{}, pool));
  const DegreeStats kron_stats =
      compute_degree_stats(build_csr(kron_edges, CsrBuildOptions{}, pool));

  // Uniform: max degree within a small factor of the mean (Poisson tail);
  // Kronecker: orders of magnitude above it.
  EXPECT_LT(uniform_stats.max_degree,
            4 * static_cast<std::int64_t>(uniform_stats.mean_degree));
  EXPECT_GT(kron_stats.max_degree,
            20 * static_cast<std::int64_t>(kron_stats.mean_degree));
  // And uniform graphs strand almost nobody.
  EXPECT_LT(uniform_stats.isolated_count, kron_stats.isolated_count / 10);
}

TEST(Uniform, MeanDegreeNearTwiceEdgeFactor) {
  ThreadPool pool{4};
  const EdgeList edges = generate_uniform(params_for(12, 5), pool);
  const DegreeStats stats =
      compute_degree_stats(build_csr(edges, CsrBuildOptions{}, pool));
  // Undirected CSR: mean degree ~ 2 * edge_factor minus self-loop loss.
  EXPECT_NEAR(stats.mean_degree, 16.0, 0.5);
}

TEST(UniformDeath, RejectsBadScale) {
  ThreadPool pool{1};
  EXPECT_DEATH(generate_uniform(params_for(0), pool), "Precondition");
}

}  // namespace
}  // namespace sembfs
