#include "nvm/striped_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/external_csr.hpp"
#include "graph_fixtures.hpp"
#include "util/timer.hpp"

namespace sembfs {
namespace {

class StripedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs every case as its own process, and a
    // shared directory lets one process truncate files another is reading.
    dir_ = ::testing::TempDir() + "/sembfs_stripe_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    for (int i = 0; i < 4; ++i)
      devices_.push_back(
          std::make_shared<NvmDevice>(DeviceProfile::dram()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::byte> pattern(std::size_t size) const {
    std::vector<std::byte> data(size);
    for (std::size_t i = 0; i < size; ++i)
      data[i] = static_cast<std::byte>(i * 7 + 3);
    return data;
  }

  std::string dir_;
  std::vector<std::shared_ptr<NvmDevice>> devices_;
};

TEST_F(StripedFileTest, RoundTripAcrossStripes) {
  StripedNvmFile file{devices_, dir_ + "/a", 4096};
  const auto data = pattern(40000);  // ~10 stripes
  file.write(0, data);
  std::vector<std::byte> back(data.size());
  file.read(0, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(file.size(), data.size());
}

TEST_F(StripedFileTest, UnalignedRangesRoundTrip) {
  StripedNvmFile file{devices_, dir_ + "/b", 4096};
  const auto data = pattern(5000);
  file.write(1234, data);
  std::vector<std::byte> back(777);
  file.read(1234 + 3333, back);
  for (std::size_t i = 0; i < back.size(); ++i)
    ASSERT_EQ(back[i], data[3333 + i]) << "i=" << i;
}

TEST_F(StripedFileTest, SpreadsRequestsAcrossDevices) {
  StripedNvmFile file{devices_, dir_ + "/c", 4096};
  file.write(0, pattern(16 * 4096));
  for (const auto& device : devices_) device->stats().reset();

  // One big read spanning 16 stripes -> 4 requests per device.
  std::vector<std::byte> back(16 * 4096);
  file.read(0, back);
  for (const auto& device : devices_)
    EXPECT_EQ(device->stats().request_count(), 4u);
}

TEST_F(StripedFileTest, StripeLocalReadsHitOneDevice) {
  StripedNvmFile file{devices_, dir_ + "/d", 4096};
  file.write(0, pattern(8 * 4096));
  for (const auto& device : devices_) device->stats().reset();

  std::vector<std::byte> back(100);
  file.read(4096 * 2 + 5, back);  // inside stripe 2 -> device 2
  EXPECT_EQ(devices_[2]->stats().request_count(), 1u);
  EXPECT_EQ(devices_[0]->stats().request_count(), 0u);
}

TEST_F(StripedFileTest, SingleDeviceDegeneratesToPlainFile) {
  StripedNvmFile file{{devices_[0]}, dir_ + "/e", 4096};
  const auto data = pattern(10000);
  file.write(0, data);
  std::vector<std::byte> back(data.size());
  file.read(0, back);
  EXPECT_EQ(back, data);
}

TEST_F(StripedFileTest, StripedForwardGraphBfsCorrect) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 401), pool);
  const VertexPartition partition{edges.vertex_count(), 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  ExternalForwardGraph striped{forward, devices_, dir_ + "/fg"};
  GraphStorage storage;
  storage.forward_external = &striped;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  const BfsResult result = runner.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);
  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);

  // Work actually spread: several devices served requests.
  int active_devices = 0;
  for (const auto& device : devices_)
    if (device->stats().request_count() > 0) ++active_devices;
  EXPECT_GE(active_devices, 2);
}

TEST_F(StripedFileTest, StripingReducesQueueingOnSlowDevices) {
  // Same concurrent workload through 1 vs 4 single-channel devices: with
  // one device every request serializes; the stripe set multiplies service
  // capacity fourfold, so wall time must drop decisively.
  DeviceProfile slow;
  slow.name = "slow";
  slow.read_latency_us = 400.0;
  slow.channels = 1;  // fully serialized per device

  const auto run_with = [&](std::size_t device_count) {
    std::vector<std::shared_ptr<NvmDevice>> devices;
    for (std::size_t i = 0; i < device_count; ++i)
      devices.push_back(std::make_shared<NvmDevice>(slow));
    StripedNvmFile file{devices,
                        dir_ + "/q" + std::to_string(device_count), 4096};
    file.write(0, pattern(64 * 4096));
    Timer t;
    ThreadPool pool{8};
    pool.run([&](std::size_t w) {
      std::vector<std::byte> buffer(4096);
      for (int i = 0; i < 8; ++i)
        file.read(((w * 8 + static_cast<std::size_t>(i)) % 64) * 4096,
                  buffer);
    });
    return t.seconds();
  };

  // 64 serialized 400us reads ~ 25.6 ms on one device vs ~6.4 ms across
  // four; require a 1.5x margin to stay robust on a noisy machine.
  const double one = run_with(1);
  const double four = run_with(4);
  EXPECT_LT(four * 1.5, one);
}

TEST_F(StripedFileTest, RejectsBadStripeSize) {
  EXPECT_DEATH(StripedNvmFile(devices_, dir_ + "/bad", 3000),
               "Precondition");
}

}  // namespace
}  // namespace sembfs
