#include "nvm/striped_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/external_csr.hpp"
#include "graph_fixtures.hpp"
#include "util/timer.hpp"

namespace sembfs {
namespace {

class StripedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs every case as its own process, and a
    // shared directory lets one process truncate files another is reading.
    dir_ = ::testing::TempDir() + "/sembfs_stripe_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    for (int i = 0; i < 4; ++i)
      devices_.push_back(
          std::make_shared<NvmDevice>(DeviceProfile::dram()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::byte> pattern(std::size_t size) const {
    std::vector<std::byte> data(size);
    for (std::size_t i = 0; i < size; ++i)
      data[i] = static_cast<std::byte>(i * 7 + 3);
    return data;
  }

  std::string dir_;
  std::vector<std::shared_ptr<NvmDevice>> devices_;
};

TEST_F(StripedFileTest, RoundTripAcrossStripes) {
  StripedNvmFile file{devices_, dir_ + "/a", 4096};
  const auto data = pattern(40000);  // ~10 stripes
  file.write(0, data);
  std::vector<std::byte> back(data.size());
  file.read(0, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(file.size(), data.size());
}

TEST_F(StripedFileTest, UnalignedRangesRoundTrip) {
  StripedNvmFile file{devices_, dir_ + "/b", 4096};
  const auto data = pattern(5000);
  file.write(1234, data);
  std::vector<std::byte> back(777);
  file.read(1234 + 3333, back);
  for (std::size_t i = 0; i < back.size(); ++i)
    ASSERT_EQ(back[i], data[3333 + i]) << "i=" << i;
}

TEST_F(StripedFileTest, SpreadsRequestsAcrossDevices) {
  StripedNvmFile file{devices_, dir_ + "/c", 4096};
  file.write(0, pattern(16 * 4096));
  for (const auto& device : devices_) device->stats().reset();

  // One big read spanning 16 stripes -> 4 requests per device.
  std::vector<std::byte> back(16 * 4096);
  file.read(0, back);
  for (const auto& device : devices_)
    EXPECT_EQ(device->stats().request_count(), 4u);
}

TEST_F(StripedFileTest, StripeLocalReadsHitOneDevice) {
  StripedNvmFile file{devices_, dir_ + "/d", 4096};
  file.write(0, pattern(8 * 4096));
  for (const auto& device : devices_) device->stats().reset();

  std::vector<std::byte> back(100);
  file.read(4096 * 2 + 5, back);  // inside stripe 2 -> device 2
  EXPECT_EQ(devices_[2]->stats().request_count(), 1u);
  EXPECT_EQ(devices_[0]->stats().request_count(), 0u);
}

TEST_F(StripedFileTest, SingleDeviceDegeneratesToPlainFile) {
  StripedNvmFile file{{devices_[0]}, dir_ + "/e", 4096};
  const auto data = pattern(10000);
  file.write(0, data);
  std::vector<std::byte> back(data.size());
  file.read(0, back);
  EXPECT_EQ(back, data);
}

TEST_F(StripedFileTest, StripedForwardGraphBfsCorrect) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 401), pool);
  const VertexPartition partition{edges.vertex_count(), 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  ExternalForwardGraph striped{forward, devices_, dir_ + "/fg"};
  GraphStorage storage;
  storage.forward_external = &striped;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  const BfsResult result = runner.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);
  for (Vertex v = 0; v < edges.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);

  // Work actually spread: several devices served requests.
  int active_devices = 0;
  for (const auto& device : devices_)
    if (device->stats().request_count() > 0) ++active_devices;
  EXPECT_GE(active_devices, 2);
}

TEST_F(StripedFileTest, StripingReducesQueueingOnSlowDevices) {
  // Same concurrent workload through 1 vs 4 single-channel devices: with
  // one device every request serializes; the stripe set multiplies service
  // capacity fourfold, so wall time must drop decisively.
  DeviceProfile slow;
  slow.name = "slow";
  slow.read_latency_us = 400.0;
  slow.channels = 1;  // fully serialized per device

  const auto run_with = [&](std::size_t device_count) {
    std::vector<std::shared_ptr<NvmDevice>> devices;
    for (std::size_t i = 0; i < device_count; ++i)
      devices.push_back(std::make_shared<NvmDevice>(slow));
    StripedNvmFile file{devices,
                        dir_ + "/q" + std::to_string(device_count), 4096};
    file.write(0, pattern(64 * 4096));
    Timer t;
    ThreadPool pool{8};
    pool.run([&](std::size_t w) {
      std::vector<std::byte> buffer(4096);
      for (int i = 0; i < 8; ++i)
        file.read(((w * 8 + static_cast<std::size_t>(i)) % 64) * 4096,
                  buffer);
    });
    return t.seconds();
  };

  // 64 serialized 400us reads ~ 25.6 ms on one device vs ~6.4 ms across
  // four; require a 1.5x margin to stay robust on a noisy machine.
  const double one = run_with(1);
  const double four = run_with(4);
  EXPECT_LT(four * 1.5, one);
}

// --- per-stripe fault injection -------------------------------------------
//
// Each stripe device is its own failure domain: a fault plan armed on one
// device must only affect reads that touch its stripes, and a read error
// from any piece must surface as a read error of the whole logical read
// (never as silently missing bytes).

TEST_F(StripedFileTest, FaultOnOneDeviceOnlyFailsItsStripes) {
  StripedNvmFile file{devices_, dir_ + "/f1", 4096};
  file.write(0, pattern(16 * 4096));

  FaultPlan plan;
  plan.seed = 99;
  plan.read_error_rate = 1.0;  // every read on device 1 fails
  devices_[1]->set_fault_plan(plan);

  std::vector<std::byte> back(100);
  // Stripes 0, 2, 3 live on healthy devices.
  EXPECT_NO_THROW(file.read(0, back));
  EXPECT_NO_THROW(file.read(2 * 4096, back));
  EXPECT_NO_THROW(file.read(3 * 4096, back));
  // Stripe 1 and stripe 5 (= 5 % 4 -> device 1) must fail.
  EXPECT_THROW(file.read(1 * 4096, back), NvmIoError);
  EXPECT_THROW(file.read(5 * 4096 + 7, back), NvmIoError);

  devices_[1]->clear_fault_plan();
  EXPECT_NO_THROW(file.read(1 * 4096, back));
}

TEST_F(StripedFileTest, SpanningReadFailsWhenAnyPieceFails) {
  StripedNvmFile file{devices_, dir_ + "/f2", 4096};
  const auto data = pattern(16 * 4096);
  file.write(0, data);

  FaultPlan plan;
  plan.seed = 7;
  plan.read_error_rate = 1.0;
  devices_[3]->set_fault_plan(plan);

  // A 4-stripe read crosses all devices, including the broken one.
  std::vector<std::byte> back(4 * 4096);
  EXPECT_THROW(file.read(0, back), NvmIoError);
  // Restricting the read to the three healthy stripes succeeds, with the
  // content intact.
  std::vector<std::byte> healthy(3 * 4096);
  file.read(0, healthy);
  for (std::size_t i = 0; i < healthy.size(); ++i)
    ASSERT_EQ(healthy[i], data[i]) << "i=" << i;
}

TEST_F(StripedFileTest, DeterministicOneShotFailurePerDevice) {
  StripedNvmFile file{devices_, dir_ + "/f3", 4096};
  file.write(0, pattern(8 * 4096));

  FaultPlan plan;
  plan.fail_after_requests = 2;  // second read on device 0 fails, once
  devices_[0]->set_fault_plan(plan);

  std::vector<std::byte> back(100);
  EXPECT_NO_THROW(file.read(0, back));
  EXPECT_THROW(file.read(4 * 4096, back), NvmIoError);  // device 0 again
  // One-shot: the device recovers after the injected failure.
  EXPECT_NO_THROW(file.read(0, back));
}

TEST_F(StripedFileTest, CorruptionOnOneStripeLeavesOthersClean) {
  StripedNvmFile file{devices_, dir_ + "/f4", 4096};
  const auto data = pattern(8 * 4096);
  file.write(0, data);

  FaultPlan plan;
  plan.seed = 13;
  plan.corruption_rate = 1.0;  // every read on device 2 flips bits
  devices_[2]->set_fault_plan(plan);

  // Healthy stripes deliver bit-exact data even while device 2 is
  // scrambling its share: corruption must not leak across stripes.
  std::vector<std::byte> back(4096);
  for (const std::size_t stripe : {0u, 1u, 3u, 4u, 5u, 7u}) {
    file.read(stripe * 4096, back);
    for (std::size_t i = 0; i < back.size(); ++i)
      ASSERT_EQ(back[i], data[stripe * 4096 + i])
          << "stripe " << stripe << " i=" << i;
  }
  std::vector<std::byte> dirty(4096);
  file.read(2 * 4096, dirty);
  bool flipped = false;
  for (std::size_t i = 0; i < dirty.size(); ++i)
    flipped = flipped || dirty[i] != data[2 * 4096 + i];
  EXPECT_TRUE(flipped) << "armed corruption plan never fired";
}

TEST_F(StripedFileTest, RejectsBadStripeSize) {
  EXPECT_DEATH(StripedNvmFile(devices_, dir_ + "/bad", 3000),
               "Precondition");
}

}  // namespace
}  // namespace sembfs
