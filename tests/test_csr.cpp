#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

std::set<Vertex> neighbor_set(const Csr& csr, Vertex v) {
  const auto adj = csr.neighbors(v);
  return {adj.begin(), adj.end()};
}

TEST(Csr, UndirectedAdjacency) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  EXPECT_EQ(csr.global_vertex_count(), 8);
  EXPECT_EQ(neighbor_set(csr, 0), (std::set<Vertex>{1, 3}));
  EXPECT_EQ(neighbor_set(csr, 1), (std::set<Vertex>{0, 2, 4}));
  EXPECT_EQ(neighbor_set(csr, 4), (std::set<Vertex>{1, 3}));
  EXPECT_EQ(neighbor_set(csr, 7), (std::set<Vertex>{}));
  EXPECT_EQ(csr.entry_count(), 12);  // 6 edges x 2 directions
}

TEST(Csr, DegreeMatchesAdjacency) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  for (Vertex v = 0; v < 8; ++v)
    EXPECT_EQ(csr.degree(v),
              static_cast<std::int64_t>(csr.neighbors(v).size()));
}

TEST(Csr, SelfLoopsRemovedByDefault) {
  ThreadPool pool{2};
  EdgeList edges{3};
  edges.add(0, 0);
  edges.add(0, 1);
  edges.add(1, 1);
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  EXPECT_EQ(csr.entry_count(), 2);
  EXPECT_EQ(neighbor_set(csr, 0), (std::set<Vertex>{1}));
}

TEST(Csr, SelfLoopsKeptWhenAsked) {
  ThreadPool pool{2};
  EdgeList edges{3};
  edges.add(0, 0);
  edges.add(0, 1);
  CsrBuildOptions opts;
  opts.remove_self_loops = false;
  const Csr csr = build_csr(edges, opts, pool);
  // A self loop inserts once (u==v collapses the two directions).
  EXPECT_EQ(neighbor_set(csr, 0), (std::set<Vertex>{0, 1}));
  EXPECT_EQ(csr.entry_count(), 3);
}

TEST(Csr, DirectedWhenUndirectedDisabled) {
  ThreadPool pool{2};
  EdgeList edges{3};
  edges.add(0, 1);
  edges.add(1, 2);
  CsrBuildOptions opts;
  opts.undirected = false;
  const Csr csr = build_csr(edges, opts, pool);
  EXPECT_EQ(neighbor_set(csr, 0), (std::set<Vertex>{1}));
  EXPECT_EQ(neighbor_set(csr, 1), (std::set<Vertex>{2}));
  EXPECT_EQ(neighbor_set(csr, 2), (std::set<Vertex>{}));
}

TEST(Csr, SortNeighbors) {
  ThreadPool pool{2};
  EdgeList edges{5};
  edges.add(0, 4);
  edges.add(0, 2);
  edges.add(0, 3);
  edges.add(0, 1);
  CsrBuildOptions opts;
  opts.sort_neighbors = true;
  const Csr csr = build_csr(edges, opts, pool);
  const auto adj = csr.neighbors(0);
  EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
}

TEST(Csr, DedupeCollapsesMultiEdges) {
  ThreadPool pool{2};
  EdgeList edges{3};
  edges.add(0, 1);
  edges.add(0, 1);
  edges.add(1, 0);
  edges.add(1, 2);
  CsrBuildOptions opts;
  opts.dedupe = true;
  const Csr csr = build_csr(edges, opts, pool);
  EXPECT_EQ(neighbor_set(csr, 0), (std::set<Vertex>{1}));
  EXPECT_EQ(csr.degree(0), 1);
  EXPECT_EQ(csr.degree(1), 2);  // {0, 2}
  EXPECT_EQ(csr.entry_count(), 4);
}

TEST(Csr, SourceFilteredBuild) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  const Csr csr = build_csr_filtered(edges, VertexRange{0, 4},
                                     VertexRange{0, 8}, CsrBuildOptions{},
                                     pool);
  EXPECT_EQ(csr.source_range(), (VertexRange{0, 4}));
  EXPECT_TRUE(csr.covers_source(3));
  EXPECT_FALSE(csr.covers_source(4));
  EXPECT_EQ(neighbor_set(csr, 1), (std::set<Vertex>{0, 2, 4}));
  // entries: degrees of 0,1,2,3 = 2+3+1+2 = 8
  EXPECT_EQ(csr.entry_count(), 8);
}

TEST(Csr, DestinationFilteredBuild) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  const Csr csr = build_csr_filtered(edges, VertexRange{0, 8},
                                     VertexRange{0, 2}, CsrBuildOptions{},
                                     pool);
  // Only destinations 0 and 1 survive.
  EXPECT_EQ(neighbor_set(csr, 0), (std::set<Vertex>{1}));
  EXPECT_EQ(neighbor_set(csr, 2), (std::set<Vertex>{1}));
  EXPECT_EQ(neighbor_set(csr, 4), (std::set<Vertex>{1}));
  EXPECT_EQ(neighbor_set(csr, 3), (std::set<Vertex>{0}));
}

TEST(Csr, FilteredBuildsTileFullGraph) {
  // Partitioning destinations over k ranges must exactly tile the entries.
  ThreadPool pool{4};
  const EdgeList edges = generate_kronecker(fixtures::small_kronecker(9), pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  const VertexPartition partition{edges.vertex_count(), 4};
  std::int64_t total = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const Csr part = build_csr_filtered(edges, VertexRange{0, edges.vertex_count()},
                                        partition.range_of(k),
                                        CsrBuildOptions{}, pool);
    total += part.entry_count();
    // Every destination stays in the node's range.
    for (Vertex v = 0; v < edges.vertex_count(); ++v)
      for (const Vertex dst : part.neighbors(v))
        ASSERT_TRUE(partition.range_of(k).contains(dst));
  }
  EXPECT_EQ(total, full.entry_count());
}

TEST(Csr, ByteSizeAccountsArrays) {
  ThreadPool pool{2};
  const Csr csr = build_csr(fixtures::small_graph(), CsrBuildOptions{}, pool);
  EXPECT_EQ(csr.byte_size(),
            9 * sizeof(std::int64_t) + 12 * sizeof(Vertex));
}

TEST(Csr, IndependentOfThreadCount) {
  ThreadPool pool1{1};
  ThreadPool pool8{8};
  const EdgeList edges = generate_kronecker(fixtures::small_kronecker(9), pool8);
  CsrBuildOptions opts;
  opts.sort_neighbors = true;  // canonical order for comparison
  const Csr a = build_csr(edges, opts, pool1);
  const Csr b = build_csr(edges, opts, pool8);
  EXPECT_EQ(a.index(), b.index());
  EXPECT_EQ(a.values(), b.values());
}

TEST(Csr, EmptyGraph) {
  ThreadPool pool{2};
  EdgeList edges{4};
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  EXPECT_EQ(csr.entry_count(), 0);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(csr.degree(v), 0);
}

}  // namespace
}  // namespace sembfs
