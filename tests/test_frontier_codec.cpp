// Wire-format tests for the sharded frontier exchange: round-trips for
// every encoding, the deterministic auto choice, and the malformed-
// message rejections that keep a faulted shard from poisoning its peers.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "nvm/fault_plan.hpp"
#include "shard/frontier_codec.hpp"

namespace sembfs::shard {
namespace {

std::vector<Vertex> decode_set(const std::vector<std::byte>& data) {
  std::vector<Vertex> out;
  decode_vertex_set(data, [&](Vertex v) { out.push_back(v); });
  return out;
}

std::vector<Claim> decode_pairs(const std::vector<std::byte>& data) {
  std::vector<Claim> out;
  decode_claims(data, [&](Vertex c, Vertex p) { out.push_back({c, p}); });
  return out;
}

TEST(FrontierCodec, EmptySetEncodesEmptyAndDecodesEmpty) {
  const VertexRange range{100, 200};
  for (const EncodingChoice choice :
       {EncodingChoice::kAuto, EncodingChoice::kForceBitmap,
        EncodingChoice::kForceVarint}) {
    const std::vector<std::byte> data = encode_vertex_set({}, range, choice);
    EXPECT_TRUE(data.empty()) << encoding_choice_name(choice);
    EXPECT_TRUE(decode_set(data).empty());
  }
  EXPECT_TRUE(encode_claims({}, range).empty());
  EXPECT_TRUE(decode_pairs({}).empty());
}

TEST(FrontierCodec, VarintRoundTrip) {
  const VertexRange range{1000, 5000};
  // Includes the boundary members: range.begin itself (first gap 0) and
  // range.end - 1.
  const std::vector<Vertex> vs{1000, 1001, 1500, 2048, 4999};
  const std::vector<std::byte> data =
      encode_vertex_set(vs, range, EncodingChoice::kForceVarint);
  EXPECT_EQ(encoding_of(data), FrontierEncoding::kVarintList);
  EXPECT_EQ(decode_set(data), vs);
}

TEST(FrontierCodec, BitmapRoundTrip) {
  const VertexRange range{64, 131};  // non-multiple-of-8 length
  const std::vector<Vertex> vs{64, 65, 70, 100, 130};
  const std::vector<std::byte> data =
      encode_vertex_set(vs, range, EncodingChoice::kForceBitmap);
  EXPECT_EQ(encoding_of(data), FrontierEncoding::kBitmap);
  EXPECT_EQ(decode_set(data), vs);
}

TEST(FrontierCodec, ClaimRoundTripWithNegativeParentDeltas) {
  const VertexRange range{0, 1 << 20};
  // Children non-decreasing with repeats; parents on either side of the
  // child (zigzag must carry negative deltas) and far away.
  const std::vector<Claim> claims{
      {5, 3}, {5, 900000}, {6, 7}, {100, 100}, {1048575, 0}};
  const std::vector<std::byte> data = encode_claims(claims, range);
  EXPECT_EQ(encoding_of(data), FrontierEncoding::kPairList);
  EXPECT_EQ(decode_pairs(data), claims);
}

TEST(FrontierCodec, AutoPicksVarintWhenSparseBitmapWhenDense) {
  const VertexRange range{0, 4096};
  const std::vector<Vertex> sparse{17, 900, 3000};
  EXPECT_EQ(encoding_of(encode_vertex_set(sparse, range,
                                          EncodingChoice::kAuto)),
            FrontierEncoding::kVarintList);

  std::vector<Vertex> dense;
  for (Vertex v = 0; v < 4096; v += 2) dense.push_back(v);
  const std::vector<std::byte> auto_data =
      encode_vertex_set(dense, range, EncodingChoice::kAuto);
  EXPECT_EQ(encoding_of(auto_data), FrontierEncoding::kBitmap);
  EXPECT_EQ(decode_set(auto_data), dense);

  // The auto choice is a function of the message alone: re-encoding
  // yields byte-identical output.
  EXPECT_EQ(auto_data, encode_vertex_set(dense, range, EncodingChoice::kAuto));
}

TEST(FrontierCodec, AutoNeverLargerThanEitherForcedEncoding) {
  const VertexRange range{512, 9000};
  std::vector<Vertex> vs;
  for (Vertex v = 512; v < 9000; v += 7) vs.push_back(v);
  const std::size_t auto_size =
      encode_vertex_set(vs, range, EncodingChoice::kAuto).size();
  const std::size_t varint_size =
      encode_vertex_set(vs, range, EncodingChoice::kForceVarint).size();
  const std::size_t bitmap_size =
      encode_vertex_set(vs, range, EncodingChoice::kForceBitmap).size();
  EXPECT_LE(auto_size, varint_size);
  EXPECT_LE(auto_size, bitmap_size);
}

TEST(FrontierCodec, BitmapSizeIndependentOfMemberCount) {
  const VertexRange range{0, 8192};
  const std::size_t one =
      encode_vertex_set(std::vector<Vertex>{7}, range,
                        EncodingChoice::kForceBitmap)
          .size();
  std::vector<Vertex> all;
  for (Vertex v = 0; v < 8192; ++v) all.push_back(v);
  const std::size_t full =
      encode_vertex_set(all, range, EncodingChoice::kForceBitmap).size();
  // Payload identical; only the varint member count in the header grows.
  EXPECT_LE(full, one + 2);
}

// --- malformed-message rejection -----------------------------------------

TEST(FrontierCodec, RejectsTruncatedMessage) {
  const VertexRange range{0, 1000};
  std::vector<std::byte> data = encode_vertex_set(
      std::vector<Vertex>{1, 2, 500}, range, EncodingChoice::kForceVarint);
  data.pop_back();
  EXPECT_THROW(decode_set(data), NvmIoError);

  std::vector<std::byte> bm = encode_vertex_set(
      std::vector<Vertex>{1, 2, 500}, range, EncodingChoice::kForceBitmap);
  bm.pop_back();
  EXPECT_THROW(decode_set(bm), NvmIoError);
}

TEST(FrontierCodec, RejectsTrailingBytes) {
  const VertexRange range{0, 1000};
  std::vector<std::byte> data = encode_vertex_set(
      std::vector<Vertex>{1, 2, 500}, range, EncodingChoice::kForceVarint);
  data.push_back(std::byte{0});
  EXPECT_THROW(decode_set(data), NvmIoError);
}

TEST(FrontierCodec, RejectsOutOfRangeMember) {
  // Hand-build a varint list claiming a member past range_end: tag, count
  // 1, range_begin 0, range_len 4, first gap 9 -> vertex 9 >= 4.
  const std::vector<std::byte> data{std::byte{1}, std::byte{1}, std::byte{0},
                                    std::byte{4}, std::byte{9}};
  EXPECT_THROW(decode_set(data), NvmIoError);
}

TEST(FrontierCodec, RejectsBitmapTailBitAndCountMismatch) {
  // Bitmap over [0, 3): one payload byte, but with bit 5 set (past
  // range_end).
  const std::vector<std::byte> tail{std::byte{2}, std::byte{1}, std::byte{0},
                                    std::byte{3}, std::byte{0x20}};
  EXPECT_THROW(decode_set(tail), NvmIoError);
  // Header says 2 members, payload has 1.
  const std::vector<std::byte> count{std::byte{2}, std::byte{2}, std::byte{0},
                                     std::byte{3}, std::byte{0x01}};
  EXPECT_THROW(decode_set(count), NvmIoError);
}

TEST(FrontierCodec, RejectsWrongEncodingForDecoder) {
  const VertexRange range{0, 100};
  const std::vector<std::byte> set = encode_vertex_set(
      std::vector<Vertex>{3, 4}, range, EncodingChoice::kForceVarint);
  EXPECT_THROW(decode_pairs(set), NvmIoError);
  const std::vector<std::byte> pairs =
      encode_claims(std::vector<Claim>{{3, 4}}, range);
  EXPECT_THROW(decode_set(pairs), NvmIoError);
}

TEST(FrontierCodec, RejectsClaimChildOutOfRange) {
  // Pair list over [0, 4): child gap 9 -> child 9 out of range.
  const std::vector<std::byte> data{std::byte{3}, std::byte{1}, std::byte{0},
                                    std::byte{4}, std::byte{9}, std::byte{0}};
  EXPECT_THROW(decode_pairs(data), NvmIoError);
}

TEST(FrontierCodec, EncodingChoiceNames) {
  EXPECT_STREQ(encoding_choice_name(EncodingChoice::kAuto), "auto");
  EXPECT_EQ(encoding_choice_from_name("bitmap"),
            EncodingChoice::kForceBitmap);
  EXPECT_EQ(encoding_choice_from_name("varint"),
            EncodingChoice::kForceVarint);
  EXPECT_THROW(encoding_choice_from_name("zstd"), std::invalid_argument);
}

}  // namespace
}  // namespace sembfs::shard
