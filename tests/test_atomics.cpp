#include "parallel/atomics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sembfs {
namespace {

TEST(AtomicFetchMin, StoresSmaller) {
  std::atomic<std::int64_t> slot{10};
  EXPECT_TRUE(atomic_fetch_min(slot, std::int64_t{5}));
  EXPECT_EQ(slot.load(), 5);
}

TEST(AtomicFetchMin, IgnoresLargerOrEqual) {
  std::atomic<std::int64_t> slot{10};
  EXPECT_FALSE(atomic_fetch_min(slot, std::int64_t{10}));
  EXPECT_FALSE(atomic_fetch_min(slot, std::int64_t{20}));
  EXPECT_EQ(slot.load(), 10);
}

TEST(AtomicFetchMax, StoresLarger) {
  std::atomic<std::int64_t> slot{10};
  EXPECT_TRUE(atomic_fetch_max(slot, std::int64_t{20}));
  EXPECT_EQ(slot.load(), 20);
  EXPECT_FALSE(atomic_fetch_max(slot, std::int64_t{15}));
  EXPECT_EQ(slot.load(), 20);
}

TEST(AtomicFetchMin, ConcurrentConvergesToMinimum) {
  std::atomic<std::int64_t> slot{1 << 30};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&slot, t] {
      for (std::int64_t i = 1000; i >= 0; --i)
        atomic_fetch_min(slot, i * 8 + t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(slot.load(), 0);
}

TEST(AtomicClaim, FirstClaimerWins) {
  std::atomic<std::int64_t> slot{-1};
  EXPECT_TRUE(atomic_claim(slot, std::int64_t{-1}, std::int64_t{7}));
  EXPECT_EQ(slot.load(), 7);
  EXPECT_FALSE(atomic_claim(slot, std::int64_t{-1}, std::int64_t{9}));
  EXPECT_EQ(slot.load(), 7);
}

TEST(AtomicClaim, ConcurrentSingleWinner) {
  constexpr int kSlots = 1024;
  std::vector<std::atomic<std::int64_t>> slots(kSlots);
  for (auto& s : slots) s.store(-1);
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSlots; ++i)
        if (atomic_claim(slots[i], std::int64_t{-1}, std::int64_t{t}))
          wins.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kSlots);
}

}  // namespace
}  // namespace sembfs
