// Shared test scaffolding.
//
// ScopedTestDir replaces the per-file SetUp/TearDown boilerplate every
// NVM-touching test used to carry: a scratch directory that is unique per
// test case (ctest runs cases as separate processes, and a shared
// directory lets one process truncate files another is reading), wiped on
// construction and removed on destruction. Auxiliary sibling directories
// (the `dir_ + "_ext"` pattern) are handed out by aux() and cleaned up
// with the same lifetime.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace sembfs::testutil {

class ScopedTestDir {
 public:
  /// `tag` namespaces the directory per test file (e.g. "extcsr"); the
  /// current gtest suite/case names make it unique per test case.
  explicit ScopedTestDir(std::string_view tag) {
    path_ = ::testing::TempDir() + "/sembfs_" + std::string{tag};
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info != nullptr) {
      path_ += "_";
      path_ += info->test_suite_name();
      path_ += "_";
      path_ += info->name();
    }
    // Parameterized names contain '/' — flatten so the path stays a
    // single directory component.
    std::replace(path_.begin() + static_cast<std::ptrdiff_t>(
                                     ::testing::TempDir().size()),
                 path_.end(), '/', '_');
    std::filesystem::remove_all(path_);
    // Created eagerly: NvmFile-style users open files directly inside it;
    // the graph classes that mkdir their own workdir don't mind.
    std::filesystem::create_directories(path_);
  }

  ScopedTestDir(const ScopedTestDir&) = delete;
  ScopedTestDir& operator=(const ScopedTestDir&) = delete;

  ~ScopedTestDir() {
    std::error_code ec;  // best effort: never throw from a destructor
    std::filesystem::remove_all(path_, ec);
    for (const std::string& extra : aux_) std::filesystem::remove_all(extra, ec);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// A sibling path `path() + suffix`, wiped now and removed with this
  /// object — for tests that build several graphs side by side.
  [[nodiscard]] std::string aux(std::string_view suffix) {
    std::string extra = path_ + std::string{suffix};
    std::filesystem::remove_all(extra);
    aux_.push_back(extra);
    return extra;
  }

 private:
  std::string path_;
  std::vector<std::string> aux_;
};

}  // namespace sembfs::testutil
