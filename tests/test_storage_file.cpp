#include "nvm/storage_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace sembfs {
namespace {

class StorageFileTest : public ::testing::Test {
 protected:
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_storage_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }
  void TearDown() override { remove_file_if_exists(path()); }
};

std::span<const std::byte> as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST_F(StorageFileTest, CreateWriteReadRoundTrip) {
  StorageFile f = StorageFile::create(path());
  f.pwrite_exact(0, as_bytes("hello world"));
  char buf[5] = {};
  f.pread_exact(6, std::as_writable_bytes(std::span<char>{buf}));
  EXPECT_EQ(std::string(buf, 5), "world");
}

TEST_F(StorageFileTest, SizeTracksWrites) {
  StorageFile f = StorageFile::create(path());
  EXPECT_EQ(f.size(), 0u);
  f.pwrite_exact(0, as_bytes("12345678"));
  EXPECT_EQ(f.size(), 8u);
  f.pwrite_exact(100, as_bytes("x"));
  EXPECT_EQ(f.size(), 101u);  // sparse extension
}

TEST_F(StorageFileTest, ResizeGrowsAndShrinks) {
  StorageFile f = StorageFile::create(path());
  f.resize(1000);
  EXPECT_EQ(f.size(), 1000u);
  f.resize(10);
  EXPECT_EQ(f.size(), 10u);
}

TEST_F(StorageFileTest, OpenReadonlySeesExistingData) {
  {
    StorageFile f = StorageFile::create(path());
    f.pwrite_exact(0, as_bytes("persist"));
    f.sync();
  }
  StorageFile r = StorageFile::open_readonly(path());
  char buf[7] = {};
  r.pread_exact(0, std::as_writable_bytes(std::span<char>{buf}));
  EXPECT_EQ(std::string(buf, 7), "persist");
}

TEST_F(StorageFileTest, ReadPastEofThrows) {
  StorageFile f = StorageFile::create(path());
  f.pwrite_exact(0, as_bytes("abc"));
  char buf[10] = {};
  EXPECT_THROW(
      f.pread_exact(0, std::as_writable_bytes(std::span<char>{buf})),
      std::runtime_error);
}

TEST_F(StorageFileTest, OpenMissingFileThrows) {
  EXPECT_THROW(StorageFile::open_readonly("/nonexistent/nope.bin"),
               std::runtime_error);
}

TEST_F(StorageFileTest, MoveTransfersDescriptor) {
  StorageFile a = StorageFile::create(path());
  a.pwrite_exact(0, as_bytes("mv"));
  StorageFile b = std::move(a);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.size(), 2u);
}

TEST_F(StorageFileTest, CloseIsIdempotent) {
  StorageFile f = StorageFile::create(path());
  f.close();
  f.close();
  EXPECT_FALSE(f.is_open());
}

TEST_F(StorageFileTest, EnsureDirectoryCreatesNested) {
  const std::string dir = testing::TempDir() + "/sembfs_dir_a/b/c";
  ensure_directory(dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(testing::TempDir() + "/sembfs_dir_a");
}

TEST_F(StorageFileTest, RemoveIfExistsIgnoresMissing) {
  remove_file_if_exists("/definitely/not/here.bin");  // must not throw
  SUCCEED();
}

}  // namespace
}  // namespace sembfs
