// ResultCache semantics: hit/miss keying, LRU eviction under the byte
// bound, options-mismatch bypass, replacement, and generation
// invalidation (the mutable-graph hook).
#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace sembfs::serve {
namespace {

QueryResult make_result(Vertex root, std::size_t vertices,
                        std::int32_t fill = 1) {
  QueryResult result;
  result.root = root;
  result.state = QueryState::Done;
  result.level.assign(vertices, fill);
  result.parent.assign(vertices, root);
  result.visited = static_cast<std::int64_t>(vertices);
  return result;
}

TEST(ResultCacheTest, MissThenHitRoundTrips) {
  ResultCache cache{1 << 20};
  const QueryOptions options;
  EXPECT_EQ(cache.lookup(5, options), nullptr);
  cache.insert(5, options, make_result(5, 64));
  const std::shared_ptr<const QueryResult> hit = cache.lookup(5, options);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->root, 5);
  EXPECT_EQ(hit->level.size(), 64u);
  EXPECT_EQ(hit->visited, 64);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, OptionsMismatchBypasses) {
  // max_levels is part of the key: a k-hop query must never be handed the
  // full traversal (or vice versa).
  ResultCache cache{1 << 20};
  QueryOptions full;
  cache.insert(5, full, make_result(5, 64));
  QueryOptions khop;
  khop.max_levels = 2;
  EXPECT_EQ(cache.lookup(5, khop), nullptr);
  EXPECT_NE(cache.lookup(5, full), nullptr);
  // Fields that do NOT change the answer (priority, tenant, batchable)
  // must not fragment the key.
  QueryOptions other_tenant = full;
  other_tenant.tenant = 9;
  other_tenant.priority = Priority::High;
  other_tenant.batchable = false;
  EXPECT_NE(cache.lookup(5, other_tenant), nullptr);
}

TEST(ResultCacheTest, ReinsertReplacesEntry) {
  ResultCache cache{1 << 20};
  const QueryOptions options;
  cache.insert(5, options, make_result(5, 64, 1));
  cache.insert(5, options, make_result(5, 64, 3));
  const auto hit = cache.lookup(5, options);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->level[0], 3);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, LruEvictionUnderByteBound) {
  // Each entry is ~256 + 64*(4 + sizeof(Vertex)) bytes; a budget of three
  // entries must evict the least recently USED (not inserted) key.
  const QueryOptions options;
  const std::size_t entry = 256 + 64 * (4 + sizeof(Vertex));
  ResultCache cache{3 * entry};
  cache.insert(1, options, make_result(1, 64));
  cache.insert(2, options, make_result(2, 64));
  cache.insert(3, options, make_result(3, 64));
  EXPECT_EQ(cache.stats().entries, 3u);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.lookup(1, options), nullptr);
  cache.insert(4, options, make_result(4, 64));
  EXPECT_EQ(cache.lookup(2, options), nullptr);   // evicted
  EXPECT_NE(cache.lookup(1, options), nullptr);   // survived via recency
  EXPECT_NE(cache.lookup(3, options), nullptr);
  EXPECT_NE(cache.lookup(4, options), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, 3 * entry);
}

TEST(ResultCacheTest, OversizedResultIsNotAdmitted) {
  ResultCache cache{512};
  const QueryOptions options;
  cache.insert(1, options, make_result(1, 4096));  // bigger than capacity
  EXPECT_EQ(cache.lookup(1, options), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, GenerationBumpInvalidatesEverything) {
  ResultCache cache{1 << 20};
  const QueryOptions options;
  cache.insert(1, options, make_result(1, 64));
  cache.insert(2, options, make_result(2, 64));
  EXPECT_EQ(cache.generation(), 0u);
  cache.bump_generation();
  EXPECT_EQ(cache.generation(), 1u);
  EXPECT_EQ(cache.lookup(1, options), nullptr);
  EXPECT_EQ(cache.lookup(2, options), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // New generation accepts fresh entries under the new key space.
  cache.insert(1, options, make_result(1, 64));
  EXPECT_NE(cache.lookup(1, options), nullptr);
}

TEST(ResultCacheTest, EagerGenerationDropZeroesTheByteGauge) {
  // Regression: bump_generation() frees the old generation's entries
  // eagerly, so the resident bytes/entries gauges must read zero — not
  // keep charging for unreachable storage until LRU pressure finds it.
  ResultCache cache{1 << 20};
  const QueryOptions options;
  cache.insert(1, options, make_result(1, 256));
  cache.insert(2, options, make_result(2, 256));
  const ResultCacheStats before = cache.stats();
  EXPECT_EQ(before.entries, 2u);
  EXPECT_GT(before.bytes, 0u);
  cache.bump_generation();
  const ResultCacheStats after = cache.stats();
  EXPECT_EQ(after.bytes, 0u);
  EXPECT_EQ(after.entries, 0u);
  // The freed budget is actually reusable: the same payload volume fits
  // again without a single eviction.
  cache.insert(1, options, make_result(1, 256));
  cache.insert(2, options, make_result(2, 256));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().bytes, before.bytes);
}

TEST(ResultCacheTest, GenerationCheckedInsertDropsStaleResults) {
  // A result computed against the pre-publication snapshot must not land
  // under the post-publication key space: the 4-arg insert carries the
  // generation captured at admission and is dropped on mismatch.
  ResultCache cache{1 << 20};
  const QueryOptions options;
  const std::uint64_t admitted_at = cache.generation();
  cache.bump_generation();  // the graph moved on mid-query
  cache.insert(1, options, make_result(1, 64), admitted_at);
  EXPECT_EQ(cache.lookup(1, options), nullptr);
  EXPECT_EQ(cache.stats().stale_inserts, 1u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  // A result admitted under the CURRENT generation still lands.
  cache.insert(1, options, make_result(1, 64), cache.generation());
  EXPECT_NE(cache.lookup(1, options), nullptr);
  EXPECT_EQ(cache.stats().stale_inserts, 1u);
}

TEST(ResultCacheTest, TakeEntriesDrainsAndPreservesRecencyOrder) {
  // The migration path: take_entries() empties the cache (zeroed gauges),
  // returns least-recent first, and re-inserting in that order reproduces
  // the original LRU order under the new generation.
  const QueryOptions options;
  const std::size_t entry = 256 + 64 * (4 + sizeof(Vertex));
  ResultCache cache{3 * entry};
  cache.insert(1, options, make_result(1, 64));
  cache.insert(2, options, make_result(2, 64));
  QueryOptions khop;
  khop.max_levels = 2;
  cache.insert(3, khop, make_result(3, 64));
  EXPECT_NE(cache.lookup(1, options), nullptr);  // recency: 1 > 3 > 2

  const std::vector<ResultCache::TakenEntry> taken = cache.take_entries();
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].root, 2);  // least recent first
  EXPECT_EQ(taken[1].root, 3);
  EXPECT_EQ(taken[1].max_levels, 2);  // options key travels with the entry
  EXPECT_EQ(taken[2].root, 1);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.lookup(1, options), nullptr);

  cache.bump_generation();
  for (const ResultCache::TakenEntry& t : taken) {
    QueryOptions reopts;
    reopts.max_levels = t.max_levels;
    cache.insert(t.root, reopts, *t.result);
  }
  // One more insert under the byte bound must evict root 2 — the entry
  // that was least recent before the drain.
  cache.insert(4, options, make_result(4, 64));
  EXPECT_EQ(cache.lookup(2, options), nullptr);
  EXPECT_NE(cache.lookup(1, options), nullptr);
  EXPECT_NE(cache.lookup(3, khop), nullptr);
}

TEST(ResultCacheTest, HitsShareOneImmutableCopy) {
  ResultCache cache{1 << 20};
  const QueryOptions options;
  cache.insert(7, options, make_result(7, 64));
  const auto a = cache.lookup(7, options);
  const auto b = cache.lookup(7, options);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // shared storage, zero-copy hits
}

}  // namespace
}  // namespace sembfs::serve
