// MS-BFS correctness: every lane of a batched multi-source traversal must
// assign exactly the reference levels for its root — batching changes the
// schedule, never the answer.
#include "serve/ms_bfs.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/reference_bfs.hpp"
#include "graph/hybrid_csr.hpp"
#include "graph_fixtures.hpp"
#include "nvm/device_profile.hpp"
#include "nvm/nvm_device.hpp"
#include "test_util.hpp"

namespace sembfs::serve {
namespace {

class MsBfsTest : public ::testing::Test {
 protected:
  void build(const EdgeList& edges, std::size_t numa_nodes = 4) {
    partition_ = VertexPartition{edges.vertex_count(), numa_nodes};
    backward_ = BackwardGraph::build(edges, partition_, CsrBuildOptions{},
                                     pool_);
    full_ = build_csr(edges, CsrBuildOptions{}, pool_);
    storage_ = GraphStorage{};
    storage_.backward_dram = &backward_;
    topology_ = NumaTopology{numa_nodes, 1};
  }

  void expect_lane_matches_reference(const MsBfsBatch& batch,
                                     std::size_t lane) {
    const ReferenceBfsResult ref = reference_bfs(full_, batch.root(lane));
    const std::vector<std::int32_t>& level = batch.levels(lane);
    ASSERT_EQ(level.size(), ref.level.size());
    for (Vertex v = 0; v < static_cast<Vertex>(level.size()); ++v)
      ASSERT_EQ(level[v], ref.level[v])
          << "lane=" << lane << " root=" << batch.root(lane) << " v=" << v;
    EXPECT_EQ(batch.visited(lane), ref.visited) << "lane=" << lane;
  }

  // Parent-tree sanity: the root is its own parent, every reached vertex
  // has a reached parent one level shallower, and the claimed parent edge
  // exists in the graph.
  void expect_valid_parents(const MsBfsBatch& batch, std::size_t lane) {
    const std::vector<Vertex>& parent = batch.parents(lane);
    const std::vector<std::int32_t>& level = batch.levels(lane);
    ASSERT_EQ(parent.size(), level.size());
    for (Vertex v = 0; v < static_cast<Vertex>(level.size()); ++v) {
      if (level[v] < 0) {
        EXPECT_EQ(parent[v], kNoVertex);
        continue;
      }
      if (v == batch.root(lane)) {
        EXPECT_EQ(parent[v], v);
        continue;
      }
      const Vertex p = parent[v];
      ASSERT_NE(p, kNoVertex) << "v=" << v;
      EXPECT_EQ(level[p], level[v] - 1) << "v=" << v;
      bool edge_found = false;
      for (const Vertex u : full_.neighbors(v))
        if (u == p) {
          edge_found = true;
          break;
        }
      EXPECT_TRUE(edge_found) << "no edge " << v << " -- " << p;
    }
  }

  void run_to_completion(MsBfsBatch& batch) {
    while (batch.step()) {
    }
    EXPECT_TRUE(batch.done());
  }

  ThreadPool pool_{4};
  VertexPartition partition_;
  BackwardGraph backward_;
  Csr full_;
  GraphStorage storage_;
  NumaTopology topology_{1, 1};
};

TEST_F(MsBfsTest, SmallGraphAllRootsOneBatch) {
  build(fixtures::small_graph());
  // Every vertex as a root, including the isolated one: 8 lanes.
  std::vector<Vertex> roots;
  for (Vertex v = 0; v < 8; ++v) roots.push_back(v);
  MsBfsBatch batch{storage_, topology_, pool_, roots};
  run_to_completion(batch);
  for (std::size_t q = 0; q < batch.width(); ++q) {
    expect_lane_matches_reference(batch, q);
    expect_valid_parents(batch, q);
  }
}

TEST_F(MsBfsTest, PathGraphDeepLevels) {
  build(fixtures::path_graph(64), 2);
  const std::vector<Vertex> roots{0, 31, 63};
  MsBfsBatch batch{storage_, topology_, pool_, roots};
  run_to_completion(batch);
  EXPECT_EQ(batch.levels_executed(), 63 + 1);  // deepest lane + empty level
  for (std::size_t q = 0; q < batch.width(); ++q)
    expect_lane_matches_reference(batch, q);
}

TEST_F(MsBfsTest, SingleLaneMatchesReference) {
  build(fixtures::star_graph(32));
  const std::vector<Vertex> roots{5};
  MsBfsBatch batch{storage_, topology_, pool_, roots};
  run_to_completion(batch);
  expect_lane_matches_reference(batch, 0);
  expect_valid_parents(batch, 0);
}

TEST_F(MsBfsTest, DuplicateRootsProduceIdenticalLanes) {
  build(fixtures::complete_graph(16));
  const std::vector<Vertex> roots{3, 3, 7};
  MsBfsBatch batch{storage_, topology_, pool_, roots};
  run_to_completion(batch);
  EXPECT_EQ(batch.levels(0), batch.levels(1));
  EXPECT_EQ(batch.visited(0), batch.visited(1));
  for (std::size_t q = 0; q < batch.width(); ++q)
    expect_lane_matches_reference(batch, q);
}

TEST_F(MsBfsTest, FullWidthKroneckerBatch) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 7), pool_);
  build(edges);
  std::vector<Vertex> roots;
  for (Vertex v = 0; roots.size() < MsBfsBatch::kMaxBatch; ++v) {
    ASSERT_LT(v, static_cast<Vertex>(full_.source_range().size()));
    if (full_.degree(v) > 0) roots.push_back(v);
  }
  MsBfsBatch batch{storage_, topology_, pool_, roots};
  EXPECT_EQ(batch.width(), MsBfsBatch::kMaxBatch);
  run_to_completion(batch);
  for (std::size_t q = 0; q < batch.width(); ++q) {
    expect_lane_matches_reference(batch, q);
    expect_valid_parents(batch, q);
  }
}

TEST_F(MsBfsTest, RecordParentsOffLeavesParentsEmpty) {
  build(fixtures::small_graph());
  MsBfsConfig config;
  config.record_parents = false;
  const std::vector<Vertex> roots{0, 1};
  MsBfsBatch batch{storage_, topology_, pool_, roots, config};
  run_to_completion(batch);
  EXPECT_TRUE(batch.parents(0).empty());
  EXPECT_TRUE(batch.parents(1).empty());
  expect_lane_matches_reference(batch, 0);
  expect_lane_matches_reference(batch, 1);
}

TEST_F(MsBfsTest, DeactivatedLaneStopsOthersFinish) {
  build(fixtures::path_graph(32), 2);
  const std::vector<Vertex> roots{0, 31};
  MsBfsBatch batch{storage_, topology_, pool_, roots};
  // Run three levels, then kill lane 0.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(batch.step());
  batch.deactivate(0);
  EXPECT_FALSE(batch.lane_live(0));
  EXPECT_TRUE(batch.lane_live(1));
  run_to_completion(batch);

  // Lane 0 froze at its partial traversal: exactly levels 0..3 assigned.
  const std::vector<std::int32_t>& partial = batch.levels(0);
  for (Vertex v = 0; v < 32; ++v)
    EXPECT_EQ(partial[v], v <= 3 ? v : -1) << "v=" << v;
  EXPECT_EQ(batch.visited(0), 4);
  EXPECT_EQ(batch.depth(0), 3);
  // Lane 1 is a complete, reference-exact traversal.
  expect_lane_matches_reference(batch, 1);
}

TEST_F(MsBfsTest, HybridBackwardMatchesReference) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 13), pool_);
  partition_ = VertexPartition{edges.vertex_count(), 2};
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition_, CsrBuildOptions{}, pool_);
  full_ = build_csr(edges, CsrBuildOptions{}, pool_);
  testutil::ScopedTestDir scratch{"msbfs_hybrid"};
  const std::string& dir = scratch.path();
  DeviceProfile profile = DeviceProfile::by_name("pcie_flash");
  profile.time_scale = 0.001;
  auto device = std::make_shared<NvmDevice>(profile);
  HybridBackwardGraph hybrid{backward, 4, device, dir};

  GraphStorage storage;
  storage.backward_hybrid = &hybrid;
  topology_ = NumaTopology{2, 1};
  const std::vector<Vertex> roots{0, 1, 2, 3};
  MsBfsBatch batch{storage, topology_, pool_, roots};
  run_to_completion(batch);
  for (std::size_t q = 0; q < batch.width(); ++q)
    expect_lane_matches_reference(batch, q);
}

}  // namespace
}  // namespace sembfs::serve
