// Incremental BFS repair: the patched level/parent arrays must be
// reference-equal to a from-scratch BFS of the merged graph for
// insert-only deltas over complete traversals — including shortcut chains
// through several inserted edges and newly reached components — and the
// kernel must decline (leaving the arrays untouched) on anything outside
// that contract.
#include "bfs/repair.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "graph/csr.hpp"
#include "graph/kronecker.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

struct Fixture {
  EdgeList base;
  BackwardGraph backward;
  Csr full;
};

Fixture make_fixture(EdgeList edges, ThreadPool& pool) {
  const VertexPartition partition{edges.vertex_count(), 2};
  BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  return Fixture{std::move(edges), std::move(backward), std::move(full)};
}

DeltaBuffer build_delta(const Fixture& f, std::span<const EdgeOp> ops) {
  return DeltaBuffer::build(
      f.base.vertex_count(), ops, [&](Vertex u, Vertex w) -> std::int64_t {
        std::int64_t count = 0;
        for (const Vertex x : f.backward.neighbors(u))
          if (x == w) ++count;
        return count;
      });
}

EdgeList merged_edges(const EdgeList& base, std::span<const EdgeOp> ops) {
  EdgeList merged = base;
  for (const EdgeOp& op : ops) merged.add(op.u, op.v);
  return merged;
}

// Repairs a cached complete traversal and pins it against a from-scratch
// reference BFS of the merged graph.
void expect_repair_matches(const Fixture& f, Vertex root,
                           std::span<const EdgeOp> ops, ThreadPool& pool) {
  const ReferenceBfsResult before = reference_bfs(f.full, root);
  std::vector<std::int32_t> level = before.level;
  std::vector<Vertex> parent = before.parent;

  const DeltaBuffer delta = build_delta(f, ops);
  const RepairOutcome outcome =
      repair_bfs_levels(f.backward, delta, root, level, parent);
  ASSERT_TRUE(outcome.repaired) << outcome.reason;

  const EdgeList merged = merged_edges(f.base, ops);
  const Csr merged_csr = build_csr(merged, CsrBuildOptions{}, pool);
  const ReferenceBfsResult after = reference_bfs(merged_csr, root);
  for (Vertex v = 0; v < f.base.vertex_count(); ++v)
    ASSERT_EQ(level[v], after.level[v]) << "root " << root << " v " << v;
  // The patched parents must form a valid BFS tree of the merged graph.
  const ValidationResult validation =
      validate_bfs(merged, root, parent, level);
  ASSERT_TRUE(validation.ok) << validation.error;
}

TEST(BfsRepairTest, ShortcutOnAPathLowersTheTail) {
  ThreadPool pool{2};
  const Fixture f = make_fixture(fixtures::path_graph(8), pool);
  const std::vector<EdgeOp> ops{EdgeOp::insert(0, 7)};
  expect_repair_matches(f, 0, ops, pool);
}

TEST(BfsRepairTest, ChainOfInsertedEdgesPropagates) {
  ThreadPool pool{2};
  // Two inserted edges forming a chain: 0-5 and 5-7 on the path graph.
  // The second shortcut is only reachable through the first, so the wave
  // relaxation must read the merged view, not just the base.
  const Fixture f = make_fixture(fixtures::path_graph(8), pool);
  const std::vector<EdgeOp> ops{EdgeOp::insert(0, 5), EdgeOp::insert(5, 7)};
  expect_repair_matches(f, 0, ops, pool);
}

TEST(BfsRepairTest, BridgeReachesANewComponent) {
  ThreadPool pool{2};
  const Fixture f = make_fixture(fixtures::small_graph(), pool);
  const ReferenceBfsResult before = reference_bfs(f.full, 0);
  ASSERT_EQ(before.level[5], -1);

  std::vector<std::int32_t> level = before.level;
  std::vector<Vertex> parent = before.parent;
  const std::vector<EdgeOp> ops{EdgeOp::insert(2, 5)};
  const DeltaBuffer delta = build_delta(f, ops);
  const RepairOutcome outcome =
      repair_bfs_levels(f.backward, delta, 0, level, parent);
  ASSERT_TRUE(outcome.repaired) << outcome.reason;
  EXPECT_EQ(level[5], 3);
  EXPECT_EQ(level[6], 4);
  EXPECT_EQ(level[7], -1);  // still isolated
  EXPECT_EQ(outcome.newly_reached, 2);
  EXPECT_GT(outcome.waves, 0);
}

TEST(BfsRepairTest, RedundantInsertIsANoOp) {
  ThreadPool pool{2};
  const Fixture f = make_fixture(fixtures::small_graph(), pool);
  const ReferenceBfsResult before = reference_bfs(f.full, 0);
  std::vector<std::int32_t> level = before.level;
  std::vector<Vertex> parent = before.parent;
  // 0-4 connects levels 0 and 2: 4 improves to 1, nothing else changes —
  // and an edge between adjacent levels (1-2) changes nothing at all.
  const std::vector<EdgeOp> ops{EdgeOp::insert(1, 2)};
  const DeltaBuffer delta = build_delta(f, ops);
  const RepairOutcome outcome =
      repair_bfs_levels(f.backward, delta, 0, level, parent);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.relaxed, 0);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(level[v], before.level[v]);
}

TEST(BfsRepairTest, LevelOnlyEntriesRepairWithoutParents) {
  ThreadPool pool{2};
  const Fixture f = make_fixture(fixtures::path_graph(8), pool);
  const ReferenceBfsResult before = reference_bfs(f.full, 0);
  std::vector<std::int32_t> level = before.level;
  std::vector<Vertex> parent;  // level-only cache entry
  const std::vector<EdgeOp> ops{EdgeOp::insert(0, 6)};
  const DeltaBuffer delta = build_delta(f, ops);
  const RepairOutcome outcome =
      repair_bfs_levels(f.backward, delta, 0, level, parent);
  ASSERT_TRUE(outcome.repaired) << outcome.reason;
  EXPECT_EQ(level[6], 1);
  EXPECT_EQ(level[7], 2);
  EXPECT_TRUE(parent.empty());
}

TEST(BfsRepairTest, RandomizedKroneckerMatchesRecompute) {
  ThreadPool pool{4};
  EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 0xbeef), pool);
  const Vertex n = edges.vertex_count();
  const Fixture f = make_fixture(std::move(edges), pool);
  Vertex root = 0;
  while (f.full.degree(root) == 0) ++root;

  std::mt19937_64 rng{0xbeef};
  std::uniform_int_distribution<Vertex> pick{0, n - 1};
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<EdgeOp> ops;
    for (int i = 0; i < 24; ++i) {
      const Vertex u = pick(rng);
      Vertex v = pick(rng);
      while (v == u) v = pick(rng);
      ops.push_back(EdgeOp::insert(u, v));
    }
    expect_repair_matches(f, root, ops, pool);
  }
}

TEST(BfsRepairTest, DeclinesOutOfScopeInputs) {
  ThreadPool pool{2};
  const Fixture f = make_fixture(fixtures::path_graph(8), pool);
  const ReferenceBfsResult before = reference_bfs(f.full, 0);

  // Deletions are out of scope.
  {
    std::vector<std::int32_t> level = before.level;
    std::vector<Vertex> parent = before.parent;
    const std::vector<EdgeOp> ops{EdgeOp::remove(3, 4)};
    const DeltaBuffer delta = build_delta(f, ops);
    const RepairOutcome outcome =
        repair_bfs_levels(f.backward, delta, 0, level, parent);
    EXPECT_FALSE(outcome.repaired);
    EXPECT_STREQ(outcome.reason, "delta contains deletions");
    for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(level[v], before.level[v]);
  }
  const std::vector<EdgeOp> insert_ops{EdgeOp::insert(0, 7)};
  const DeltaBuffer delta = build_delta(f, insert_ops);
  // A level array that does not cover the graph.
  {
    std::vector<std::int32_t> level{0, 1};
    std::vector<Vertex> parent;
    EXPECT_FALSE(repair_bfs_levels(f.backward, delta, 0, level, parent)
                     .repaired);
  }
  // A mismatched parent array.
  {
    std::vector<std::int32_t> level = before.level;
    std::vector<Vertex> parent{kNoVertex};
    EXPECT_FALSE(repair_bfs_levels(f.backward, delta, 0, level, parent)
                     .repaired);
  }
  // A root the cached result was not run from.
  {
    std::vector<std::int32_t> level = before.level;
    std::vector<Vertex> parent = before.parent;
    EXPECT_FALSE(repair_bfs_levels(f.backward, delta, 3, level, parent)
                     .repaired);
    EXPECT_FALSE(
        repair_bfs_levels(f.backward, delta, -1, level, parent).repaired);
  }
}

}  // namespace
}  // namespace sembfs
