// Compressed on-NVM adjacency chunks: the delta/zigzag/varint codec, the
// CompressedBlockFile virtual backing store (layout, arbitrary-range
// reads, CRC heal), and the format-oblivious ExternalCsrPartition reader
// stack on top of it.
#include "nvm/compressed_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <limits>
#include <random>

#include "graph/external_csr.hpp"
#include "graph_fixtures.hpp"
#include "nvm/varint.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

// ---------------------------------------------------------------- codec --

TEST(VarintCodecTest, ZigzagInterleavesSigns) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()})
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
}

TEST(VarintCodecTest, BlockRoundTripArbitraryValues) {
  std::mt19937_64 rng{7};
  std::vector<std::int64_t> values;
  for (int i = 0; i < 2000; ++i) {
    // Mix magnitudes so every varint length from 1 to 10 bytes occurs.
    const int bits = static_cast<int>(rng() % 64);
    values.push_back(static_cast<std::int64_t>(rng() >> bits) -
                     static_cast<std::int64_t>(rng() >> bits));
  }
  std::vector<std::byte> encoded;
  encode_adjacency_block(values, encoded);
  std::vector<std::int64_t> decoded(values.size());
  decode_adjacency_block(encoded, decoded);
  EXPECT_EQ(decoded, values);
}

TEST(VarintCodecTest, SortedRunsEncodeSmall) {
  // A sorted neighbor run (relabel.cpp sorts post-relabel) has small
  // deltas: 1-2 encoded bytes where raw storage spends 8.
  std::vector<std::int64_t> run;
  std::mt19937_64 rng{11};
  std::int64_t v = 1'000'000;
  for (int i = 0; i < 4096; ++i) run.push_back(v += 1 + rng() % 100);
  std::vector<std::byte> encoded;
  encode_adjacency_block(run, encoded);
  EXPECT_LE(encoded.size() * 4, run.size() * sizeof(std::int64_t));
  std::vector<std::int64_t> decoded(run.size());
  decode_adjacency_block(encoded, decoded);
  EXPECT_EQ(decoded, run);
}

TEST(VarintCodecTest, TruncatedStreamThrows) {
  std::vector<std::byte> encoded;
  encode_adjacency_block(std::vector<std::int64_t>{1, 1 << 20, -5}, encoded);
  std::vector<std::int64_t> out(3);
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    const std::span<const std::byte> partial{encoded.data(), cut};
    EXPECT_THROW(decode_adjacency_block(partial, out), NvmIoError)
        << "cut=" << cut;
  }
}

TEST(VarintCodecTest, TrailingBytesThrow) {
  std::vector<std::byte> encoded;
  encode_adjacency_block(std::vector<std::int64_t>{1, 2, 3}, encoded);
  encoded.push_back(std::byte{0});
  std::vector<std::int64_t> out(3);
  EXPECT_THROW(decode_adjacency_block(encoded, out), NvmIoError);
}

TEST(VarintCodecTest, OverlongVarintThrows) {
  // Eleven continuation bytes: no legal int64 needs more than ten.
  std::vector<std::byte> bad(11, std::byte{0xff});
  std::size_t pos = 0;
  EXPECT_THROW(decode_varint(bad, pos), NvmIoError);
}

// --------------------------------------------------- CompressedBlockFile --

class CompressedBlockFileTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kChunk = 512;  // 64 values per chunk

  void SetUp() override {
    // Sorted-run-like payload with a non-chunk-multiple tail so the last
    // blob decodes fewer values than the others.
    std::mt19937_64 rng{3};
    std::int64_t v = 0;
    for (int i = 0; i < 64 * 37 + 13; ++i)
      values_.push_back(v += static_cast<std::int64_t>(rng() % 64));
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<CompressedBlockFile>(
        std::make_unique<NvmFile>(device_, dir_.path() + "/values"), values_,
        kChunk);
  }

  [[nodiscard]] std::span<const std::byte> raw_bytes() const noexcept {
    return std::as_bytes(std::span{values_});
  }
  /// Device offset of blob 0 (header + directory precede the blob region).
  [[nodiscard]] std::uint64_t blobs_offset() const noexcept {
    return CompressedBlockFile::kHeaderBytes + file_->blob_count() * 8;
  }

  testutil::ScopedTestDir dir_{"cbf"};
  std::vector<std::int64_t> values_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<CompressedBlockFile> file_;
};

TEST_F(CompressedBlockFileTest, SizesAndRatio) {
  EXPECT_EQ(file_->size(), values_.size() * sizeof(std::int64_t));
  EXPECT_EQ(file_->raw_byte_size(), file_->size());
  EXPECT_EQ(file_->blob_count(), (values_.size() + 63) / 64);
  // Small sorted deltas: even with header + directory overhead the store
  // must stay under half the raw footprint (the PR's acceptance shape).
  EXPECT_LE(file_->encoded_byte_size() * 2, file_->raw_byte_size());
}

TEST_F(CompressedBlockFileTest, ArbitraryRangesMatchRawBytes) {
  const std::span<const std::byte> raw = raw_bytes();
  struct Range {
    std::uint64_t offset, length;
  };
  const Range ranges[] = {
      {0, kChunk},                       // exactly blob 0
      {0, raw.size()},                   // whole store
      {kChunk, 3 * kChunk},              // aligned multi-chunk
      {kChunk - 8, 16},                  // straddles a chunk boundary
      {17, 1},                           // single unaligned byte
      {5 * kChunk + 3, 2 * kChunk + 9},  // unaligned both ends
      {raw.size() - 40, 40},             // tail blob, short decode
      {raw.size() - 1, 1},               // last byte
  };
  for (const Range& r : ranges) {
    std::vector<std::byte> got(static_cast<std::size_t>(r.length));
    file_->read(r.offset, got);
    ASSERT_EQ(std::memcmp(got.data(), raw.data() + r.offset, got.size()), 0)
        << "offset=" << r.offset << " length=" << r.length;
  }
}

TEST_F(CompressedBlockFileTest, RangeReadIsOneDeviceRequest) {
  device_->stats().reset();
  std::vector<std::byte> buffer(4 * kChunk);
  file_->read(kChunk, buffer);  // four blobs covered
  EXPECT_EQ(device_->stats().request_count(), 1u);
  // The request carried encoded bytes: strictly less than the decoded span.
  EXPECT_LT(device_->stats().byte_count(), buffer.size());
}

TEST_F(CompressedBlockFileTest, TransientCorruptionHealsByRefetch) {
  obs::metrics().reset();
  obs::set_enabled(true);
  // Pick a seed whose fault sequence corrupts the first read but leaves
  // the corrective re-fetch (sequence index 1) clean — deterministic for
  // the chosen plan, no matter how decide() hashes.
  FaultPlan plan;
  plan.corruption_rate = 0.6;
  for (plan.seed = 1;; ++plan.seed)
    if (plan.decide(0).corrupt && !plan.decide(1).corrupt) break;
  device_->set_fault_plan(plan);

  std::vector<std::byte> got(kChunk);
  file_->read(0, got);  // first read corrupt -> CRC mismatch -> re-fetch
  device_->clear_fault_plan();
  obs::set_enabled(false);

  EXPECT_EQ(std::memcmp(got.data(), raw_bytes().data(), got.size()), 0);
  EXPECT_EQ(obs::metrics().counter("nvm.compressed.checksum_failures").value(),
            1u);
  EXPECT_EQ(obs::metrics().counter("nvm.compressed.refetches").value(), 1u);
  EXPECT_EQ(device_->stats().retry_count(), 1u);
}

TEST_F(CompressedBlockFileTest, PersistentCorruptionExhaustsHeal) {
  // Flip one stored blob byte in place: every re-fetch re-reads the same
  // bad byte, so healing must give up with NvmIoError instead of looping.
  std::byte original{};
  file_->inner().read(blobs_offset(), {&original, 1});
  const std::byte flipped = original ^ std::byte{0x40};
  file_->inner().write(blobs_offset(), {&flipped, 1});
  std::vector<std::byte> got(kChunk);
  EXPECT_THROW(file_->read(0, got), NvmIoError);

  // Undoing the flip restores readability — proving the failure above was
  // the corruption, not store state poisoned by the failed read.
  file_->inner().write(blobs_offset(), {&original, 1});
  file_->read(0, got);
  EXPECT_EQ(std::memcmp(got.data(), raw_bytes().data(), got.size()), 0);
}

TEST_F(CompressedBlockFileTest, ZeroRefetchesFailsImmediately) {
  file_->set_max_refetches(0);
  std::byte b{};
  file_->inner().read(blobs_offset(), {&b, 1});
  b ^= std::byte{1};
  file_->inner().write(blobs_offset(), {&b, 1});
  device_->stats().reset();
  std::vector<std::byte> got(kChunk);
  EXPECT_THROW(file_->read(0, got), NvmIoError);
  EXPECT_EQ(device_->stats().retry_count(), 0u);
}

using CompressedBlockFileDeathTest = CompressedBlockFileTest;

TEST_F(CompressedBlockFileDeathTest, WriteViolatesSealedContract) {
  const std::byte b{0};
  EXPECT_DEATH(file_->write(0, {&b, 1}), "sealed");
}

// ------------------------------------------- reader stack on varint files --

class CompressedExternalCsrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(9, 8, 5), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 2};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    external_ = std::make_unique<ExternalForwardGraph>(
        forward_, device_, dir_.path(), /*chunk_bytes=*/4096u, ChunkFormat::kVarint);
  }

  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"cext"};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalForwardGraph> external_;
};

TEST_F(CompressedExternalCsrTest, NeighborsMatchDramCopy) {
  std::vector<Vertex> scratch;
  for (std::size_t k = 0; k < external_->node_count(); ++k) {
    ExternalCsrPartition& ext = external_->partition(k);
    ASSERT_EQ(ext.format(), ChunkFormat::kVarint);
    ASSERT_NE(ext.compressed_values(), nullptr);
    const Csr& dram = forward_.partition(k);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
      ext.fetch_neighbors(v, scratch);
      const auto expected = dram.neighbors(v);
      ASSERT_EQ(scratch.size(), expected.size()) << "v=" << v;
      for (std::size_t i = 0; i < scratch.size(); ++i)
        ASSERT_EQ(scratch[i], expected[i]);
    }
  }
}

TEST_F(CompressedExternalCsrTest, BatchedFetchMatchesRawFormat) {
  ExternalForwardGraph raw{forward_, device_, dir_.aux("_raw")};
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < edges_.vertex_count(); v += 3) batch.push_back(v);
  for (std::size_t k = 0; k < external_->node_count(); ++k) {
    std::vector<std::vector<Vertex>> varint_out, raw_out;
    external_->partition(k).fetch_neighbors_batch(batch, varint_out);
    raw.partition(k).fetch_neighbors_batch(batch, raw_out);
    EXPECT_EQ(varint_out, raw_out) << "partition " << k;
  }
}

TEST_F(CompressedExternalCsrTest, FootprintBeatsRawByTwoX) {
  const std::uint64_t raw = external_->raw_byte_size();
  const std::uint64_t stored = external_->nvm_byte_size();
  // Index files stay raw, so the 2x bound on the TOTAL is strictly harder
  // than the value-file-only bound the bench reports.
  EXPECT_LE(stored * 2, raw)
      << "compression ratio " << static_cast<double>(raw) / stored;
}

TEST_F(CompressedExternalCsrTest, CacheFillDecodesEachChunkOnce) {
  obs::metrics().reset();
  obs::set_enabled(true);
  external_->enable_chunk_cache(8u << 20);  // everything fits
  std::vector<Vertex> scratch;
  ExternalCsrPartition& ext = external_->partition(0);
  Vertex v = ext.source_range().begin;
  while (v < ext.source_range().end && forward_.partition(0).degree(v) == 0)
    ++v;
  ASSERT_LT(v, ext.source_range().end);

  ext.fetch_neighbors(v, scratch);
  const std::uint64_t decoded_after_miss =
      obs::metrics().counter("nvm.compressed.decoded_chunks").value();
  EXPECT_GT(decoded_after_miss, 0u);
  const std::uint64_t requests_after_miss = device_->stats().request_count();

  // A repeat fetch is served from the cache: no device request and no
  // second decode of the same chunks.
  std::vector<Vertex> again;
  ext.fetch_neighbors(v, again);
  obs::set_enabled(false);
  EXPECT_EQ(again, scratch);
  EXPECT_EQ(obs::metrics().counter("nvm.compressed.decoded_chunks").value(),
            decoded_after_miss);
  EXPECT_EQ(device_->stats().request_count(), requests_after_miss);
}

}  // namespace
}  // namespace sembfs
