#include "util/table.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1.E+04"});
  t.add_row({"beta", "1.E+05"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("1.E+05"), std::string::npos);
}

TEST(AsciiTable, ColumnsAlignToWidestCell) {
  AsciiTable t({"x"});
  t.add_row({"abcdefgh"});
  const std::string out = t.render();
  // Every line has equal length.
  std::size_t line_len = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
}

TEST(AsciiTable, SeparatorInsertsRule) {
  AsciiTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + bottom + mid-separator = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos)
    ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(AsciiTable, RowCountTracks) {
  AsciiTable t({"a", "b"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(AsciiTableDeath, RejectsArityMismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "Precondition");
}

}  // namespace
}  // namespace sembfs
