#include "nvm/nvm_device.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace sembfs {
namespace {

class NvmDeviceTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_nvm_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name + ".bin";
  }
  void TearDown() override {
    remove_file_if_exists(path("a"));
    remove_file_if_exists(path("b"));
  }
};

std::span<const std::byte> as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST_F(NvmDeviceTest, FileRoundTrip) {
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  NvmFile file{device, path("a")};
  file.write(0, as_bytes("semi-external"));
  char buf[8] = {};
  file.read(5, std::as_writable_bytes(std::span<char>{buf}));
  EXPECT_EQ(std::string(buf, 8), "external");
}

TEST_F(NvmDeviceTest, EveryIoIsOneRequest) {
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  NvmFile file{device, path("a")};
  file.write(0, as_bytes("0123456789"));
  char c;
  for (int i = 0; i < 7; ++i)
    file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
  EXPECT_EQ(device->stats().request_count(), 8u);  // 1 write + 7 reads
}

TEST_F(NvmDeviceTest, MultipleFilesShareDeviceStats) {
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  NvmFile a{device, path("a")};
  NvmFile b{device, path("b")};
  a.write(0, as_bytes("xx"));
  b.write(0, as_bytes("yy"));
  EXPECT_EQ(device->stats().request_count(), 2u);
}

TEST_F(NvmDeviceTest, AppendTracksOffsets) {
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  NvmFile file{device, path("a")};
  EXPECT_EQ(file.append(as_bytes("abc")), 0u);
  EXPECT_EQ(file.append(as_bytes("defg")), 3u);
  EXPECT_EQ(file.size(), 7u);
  char buf[7] = {};
  file.read(0, std::as_writable_bytes(std::span<char>{buf}));
  EXPECT_EQ(std::string(buf, 7), "abcdefg");
}

TEST_F(NvmDeviceTest, SimulatedLatencyIsApplied) {
  DeviceProfile profile;
  profile.name = "slow";
  profile.read_latency_us = 2000.0;  // 2 ms
  profile.channels = 4;
  auto device = std::make_shared<NvmDevice>(profile);
  NvmFile file{device, path("a")};
  file.write(0, as_bytes("x"));  // also delayed but fine

  char c;
  Timer t;
  for (int i = 0; i < 5; ++i)
    file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
  EXPECT_GE(t.seconds(), 5 * 2e-3 * 0.8);  // ~10 ms serial service
}

TEST_F(NvmDeviceTest, ChannelsLimitConcurrency) {
  DeviceProfile profile;
  profile.name = "narrow";
  profile.read_latency_us = 5000.0;  // 5 ms per request
  profile.channels = 1;              // fully serialized
  auto device = std::make_shared<NvmDevice>(profile);
  NvmFile file{device, path("a")};
  file.write(0, as_bytes("x"));
  device->stats().reset();

  Timer t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&file] {
      char c;
      file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
    });
  }
  for (auto& th : threads) th.join();
  // 4 requests through 1 channel at ~5 ms each: >= ~20 ms wall clock, and
  // waiting requests must show up in the queue-length integral.
  EXPECT_GE(t.seconds(), 4 * 5e-3 * 0.7);
  EXPECT_GT(device->stats().snapshot().avg_queue_length, 1.0);
}

TEST_F(NvmDeviceTest, TimeScaleShortensSimulation) {
  DeviceProfile slow;
  slow.read_latency_us = 2000.0;
  slow.channels = 1;
  DeviceProfile scaled = slow;
  scaled.time_scale = 0.1;

  auto run = [&](const DeviceProfile& p) {
    auto device = std::make_shared<NvmDevice>(p);
    NvmFile file{device, path("a")};
    file.write(0, as_bytes("x"));
    char c;
    Timer t;
    for (int i = 0; i < 5; ++i)
      file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
    return t.seconds();
  };
  EXPECT_LT(run(scaled), run(slow));
}

TEST_F(NvmDeviceTest, StatsSeeServiceTimes) {
  DeviceProfile profile;
  profile.read_latency_us = 1000.0;
  auto device = std::make_shared<NvmDevice>(profile);
  NvmFile file{device, path("a")};
  file.write(0, as_bytes("x"));
  device->stats().reset();
  char c;
  file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
  const IoStatsSnapshot s = device->stats().snapshot();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_GE(s.busy_seconds, 0.8e-3);
  EXPECT_GE(s.await_ms, 0.8);
}

}  // namespace
}  // namespace sembfs
