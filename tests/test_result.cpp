#include "graph500/result.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

std::vector<BfsRunRecord> sample_runs() {
  std::vector<BfsRunRecord> runs;
  for (int i = 1; i <= 5; ++i) {
    BfsRunRecord r;
    r.root = i;
    r.seconds = 0.1 * i;
    r.teps = 1e8 / i;
    r.teps_edge_count = 1000000;
    r.visited = 5000;
    r.depth = 7;
    r.validated = true;
    runs.push_back(r);
  }
  return runs;
}

TEST(SummarizeRuns, AggregatesStats) {
  const Graph500Output out =
      summarize_runs(20, 16, "DRAM-only", 1.5, 3.5, sample_runs());
  EXPECT_EQ(out.scale, 20);
  EXPECT_EQ(out.edge_factor, 16);
  EXPECT_EQ(out.nbfs, 5u);
  EXPECT_TRUE(out.all_validated);
  EXPECT_DOUBLE_EQ(out.time_stats.min, 0.1);
  EXPECT_DOUBLE_EQ(out.time_stats.max, 0.5);
  EXPECT_DOUBLE_EQ(out.teps_stats.median, 1e8 / 3);
  EXPECT_DOUBLE_EQ(out.score(), out.teps_stats.median);
  EXPECT_DOUBLE_EQ(out.edge_stats.mean, 1000000.0);
}

TEST(SummarizeRuns, FailedValidationPropagates) {
  auto runs = sample_runs();
  runs[2].validated = false;
  const Graph500Output out =
      summarize_runs(20, 16, "DRAM-only", 0, 0, runs);
  EXPECT_FALSE(out.all_validated);
}

TEST(SummarizeRuns, EmptyRunsAreNotValidated) {
  const Graph500Output out = summarize_runs(20, 16, "x", 0, 0, {});
  EXPECT_FALSE(out.all_validated);
  EXPECT_EQ(out.nbfs, 0u);
}

TEST(RenderOutput, ContainsSpecKeys) {
  const Graph500Output out =
      summarize_runs(20, 16, "DRAM+SSD", 1.0, 2.0, sample_runs());
  const std::string text = render_graph500_output(out);
  for (const char* key :
       {"SCALE: 20", "edgefactor: 16", "scenario: DRAM+SSD", "NBFS: 5",
        "construction_time", "min_time", "firstquartile_time", "median_time",
        "thirdquartile_time", "max_time", "mean_time", "stddev_time",
        "min_TEPS", "median_TEPS", "harmonic_mean_TEPS",
        "harmonic_stddev_TEPS", "median_nedge", "validation: PASSED"}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(RenderOutput, FailedValidationRendered) {
  auto runs = sample_runs();
  runs[0].validated = false;
  const std::string text =
      render_graph500_output(summarize_runs(20, 16, "x", 0, 0, runs));
  EXPECT_NE(text.find("validation: FAILED"), std::string::npos);
}

TEST(SummarizeRuns, MedianWithinBounds) {
  const Graph500Output out =
      summarize_runs(20, 16, "x", 0, 0, sample_runs());
  EXPECT_GE(out.teps_stats.median, out.teps_stats.min);
  EXPECT_LE(out.teps_stats.median, out.teps_stats.max);
  EXPECT_LE(out.teps_stats.harmonic_mean, out.teps_stats.mean);
}

}  // namespace
}  // namespace sembfs
