#include "nvm/device_profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sembfs {
namespace {

TEST(DeviceProfile, DramIsInstant) {
  const DeviceProfile p = DeviceProfile::dram();
  EXPECT_TRUE(p.is_instant());
  EXPECT_EQ(p.service_seconds(1 << 20), 0.0);
}

TEST(DeviceProfile, ServiceTimeLatencyPlusTransfer) {
  DeviceProfile p;
  p.read_latency_us = 100.0;          // 100 us
  p.read_bandwidth_bps = 1e9;         // 1 GB/s
  // 1 MB at 1 GB/s = 1 ms transfer + 0.1 ms latency
  EXPECT_NEAR(p.service_seconds(1'000'000), 1.1e-3, 1e-9);
}

TEST(DeviceProfile, TimeScaleMultiplies) {
  DeviceProfile p;
  p.read_latency_us = 100.0;
  p.time_scale = 0.5;
  EXPECT_NEAR(p.service_seconds(0), 50e-6, 1e-12);
}

TEST(DeviceProfile, PcieFlashFasterThanSataSsd) {
  const DeviceProfile flash = DeviceProfile::pcie_flash();
  const DeviceProfile ssd = DeviceProfile::sata_ssd();
  // The orderings the paper's Figure 11 depends on.
  EXPECT_LT(flash.read_latency_us, ssd.read_latency_us);
  EXPECT_GT(flash.read_bandwidth_bps, ssd.read_bandwidth_bps);
  EXPECT_GT(flash.channels, ssd.channels);
  EXPECT_LT(flash.service_seconds(4096), ssd.service_seconds(4096));
}

TEST(DeviceProfile, ByNameResolves) {
  EXPECT_EQ(DeviceProfile::by_name("dram").name, "dram");
  EXPECT_EQ(DeviceProfile::by_name("pcie_flash").name, "pcie_flash");
  EXPECT_EQ(DeviceProfile::by_name("sata_ssd").name, "sata_ssd");
}

TEST(DeviceProfile, ByNameRejectsUnknown) {
  EXPECT_THROW(DeviceProfile::by_name("optane"), std::invalid_argument);
}

TEST(DeviceProfile, SectorSizeDefault512) {
  EXPECT_EQ(DeviceProfile::pcie_flash().sector_bytes, 512u);
}

}  // namespace
}  // namespace sembfs
