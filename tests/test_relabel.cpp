#include "graph/relabel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/degree.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

TEST(Relabel, IsABijection) {
  ThreadPool pool{2};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 301), pool);
  const Relabeling map = degree_order_relabeling(edges, pool);
  const std::set<Vertex> image(map.new_id.begin(), map.new_id.end());
  EXPECT_EQ(image.size(), map.new_id.size());
  for (Vertex v = 0; v < edges.vertex_count(); ++v) {
    EXPECT_EQ(map.to_new(map.to_old(v)), v);
    EXPECT_EQ(map.to_old(map.to_new(v)), v);
  }
}

TEST(Relabel, NewIdsAreDegreeSorted) {
  ThreadPool pool{2};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 303), pool);
  const Relabeling map = degree_order_relabeling(edges, pool);
  const EdgeList renamed = apply_relabeling(edges, map);
  const Csr csr = build_csr(renamed, CsrBuildOptions{}, pool);
  // Non-increasing degree along the new ID axis (self loops removed by the
  // CSR build shift degrees slightly, so compare the raw multi-degree).
  std::vector<std::int64_t> degree(
      static_cast<std::size_t>(edges.vertex_count()), 0);
  for (const Edge& e : renamed) {
    if (e.u == e.v) continue;
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }
  for (Vertex v = 1; v < edges.vertex_count(); ++v)
    ASSERT_GE(degree[static_cast<std::size_t>(v - 1)],
              degree[static_cast<std::size_t>(v)])
        << "v=" << v;
  (void)csr;
}

TEST(Relabel, StarGraphHubBecomesVertexZero) {
  ThreadPool pool{2};
  const EdgeList star = fixtures::star_graph(16);
  const Relabeling map = degree_order_relabeling(star, pool);
  EXPECT_EQ(map.to_new(0), 0);  // the hub keeps rank 0
  EXPECT_EQ(map.to_old(0), 0);
}

TEST(Relabel, TieBreakIsDeterministic) {
  ThreadPool pool{2};
  const EdgeList path = fixtures::path_graph(6);  // degrees 1,2,2,2,2,1
  const Relabeling map = degree_order_relabeling(path, pool);
  // Equal-degree vertices keep ascending original order.
  EXPECT_EQ(map.to_old(0), 1);
  EXPECT_EQ(map.to_old(1), 2);
  EXPECT_EQ(map.to_old(2), 3);
  EXPECT_EQ(map.to_old(3), 4);
  EXPECT_EQ(map.to_old(4), 0);
  EXPECT_EQ(map.to_old(5), 5);
}

TEST(Relabel, BfsOnRelabeledGraphRestoresExactly) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 307), pool);
  const Relabeling map = degree_order_relabeling(edges, pool);
  const EdgeList renamed = apply_relabeling(edges, map);

  const Csr original_csr = build_csr(edges, CsrBuildOptions{}, pool);
  const Csr renamed_csr = build_csr(renamed, CsrBuildOptions{}, pool);

  Vertex root = 0;
  while (original_csr.degree(root) == 0) ++root;
  const ReferenceBfsResult expected = reference_bfs(original_csr, root);
  const ReferenceBfsResult renamed_run =
      reference_bfs(renamed_csr, map.to_new(root));

  const std::vector<std::int32_t> restored_levels =
      map.restore_level_array(renamed_run.level);
  EXPECT_EQ(restored_levels, expected.level);

  // Restored parents must form a valid tree in original IDs.
  const std::vector<Vertex> restored_parents =
      map.restore_vertex_array(renamed_run.parent,
                               /*values_are_vertices=*/true);
  EXPECT_EQ(restored_parents[static_cast<std::size_t>(root)], root);
  for (Vertex v = 0; v < edges.vertex_count(); ++v) {
    const Vertex p = restored_parents[static_cast<std::size_t>(v)];
    if (p == kNoVertex || v == root) continue;
    ASSERT_EQ(restored_levels[static_cast<std::size_t>(v)],
              restored_levels[static_cast<std::size_t>(p)] + 1);
  }
}

TEST(Relabel, EmptyGraph) {
  ThreadPool pool{2};
  EdgeList empty{4};
  const Relabeling map = degree_order_relabeling(empty, pool);
  EXPECT_EQ(map.new_id.size(), 4u);
  EXPECT_EQ(apply_relabeling(empty, map).edge_count(), 0u);
}

}  // namespace
}  // namespace sembfs
