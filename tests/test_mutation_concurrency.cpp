// Concurrent mutation, compaction, and serving — the TSan targets for
// the mutable-graph layer. A writer thread publishes delta and compacted
// snapshots while reader/client threads traverse; every completed answer
// must be byte-exact for SOME published version (zero wrong results), and
// snapshot pinning must keep retired generations alive until their last
// reader drops. Reference level arrays are recorded by the writer BEFORE
// each publish, so a reader can never observe a version whose reference
// is missing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/mutable_graph.hpp"
#include "graph_fixtures.hpp"
#include "nvm/device_profile.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

constexpr std::uint64_t kSeed = 0xc0ffee;

// Serial mirror of the tombstone semantics (remove kills every copy).
void apply_ops_to_mirror(std::vector<Edge>& mirror,
                         std::span<const EdgeOp> ops) {
  for (const EdgeOp& op : ops) {
    if (op.kind == EdgeOp::Kind::Insert) {
      mirror.push_back(Edge{op.u, op.v});
    } else {
      const auto same = [&](const Edge& e) {
        return (e.u == op.u && e.v == op.v) || (e.u == op.v && e.v == op.u);
      };
      mirror.erase(std::remove_if(mirror.begin(), mirror.end(), same),
                   mirror.end());
    }
  }
}

std::vector<EdgeOp> random_batch(std::mt19937_64& rng, Vertex n,
                                 const std::vector<Edge>& mirror) {
  std::uniform_int_distribution<Vertex> pick{0, n - 1};
  std::vector<EdgeOp> ops;
  for (int i = 0; i < 24; ++i) {
    const Vertex u = pick(rng);
    Vertex v = pick(rng);
    while (v == u) v = pick(rng);
    ops.push_back(EdgeOp::insert(u, v));
  }
  std::uniform_int_distribution<std::size_t> pick_edge{0, mirror.size() - 1};
  for (int i = 0; i < 8 && !mirror.empty(); ++i) {
    const Edge& e = mirror[pick_edge(rng)];
    if (e.u == e.v) continue;  // generators emit self-loops; ops reject them
    ops.push_back(EdgeOp::remove(e.u, e.v));
  }
  return ops;
}

// Reference levels, version log, and lookup — writer appends under the
// mutex before publishing; readers scan under the mutex.
class VersionLog {
 public:
  void record(std::uint64_t version, Vertex root,
              std::vector<std::int32_t> levels) {
    const std::lock_guard<std::mutex> lock{mutex_};
    refs_[{version, root}] = std::move(levels);
  }

  // Exact lookup for readers that know their pinned version.
  [[nodiscard]] std::vector<std::int32_t> expect(std::uint64_t version,
                                                 Vertex root) const {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = refs_.find({version, root});
    EXPECT_NE(it, refs_.end())
        << "no reference for version " << version << " root " << root;
    return it == refs_.end() ? std::vector<std::int32_t>{} : it->second;
  }

  // Membership lookup for clients that cannot see which version served
  // them: the answer must match SOME published version's reference.
  [[nodiscard]] bool matches_any(Vertex root,
                                 const std::vector<std::int32_t>& levels)
      const {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (const auto& [key, ref] : refs_)
      if (key.second == root && ref == levels) return true;
    return false;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint64_t, Vertex>, std::vector<std::int32_t>>
      refs_;
};

std::vector<std::int32_t> reference_levels(const EdgeList& edges,
                                           Vertex root, ThreadPool& pool) {
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  return reference_bfs(full, root).level;
}

// Writer thread mutating + compacting while engine clients hammer
// submit(): every Done answer (cache hits included — this exercises the
// migration protocol under contention) must equal a published version's
// reference. Queries in flight across a publish complete on their pinned
// snapshot, so pre-publish answers are expected and valid.
TEST(MutationConcurrencyTest, ServedAnswersAlwaysMatchAPublishedVersion) {
  ThreadPool graph_pool{2};
  ThreadPool engine_pool{4};
  const EdgeList base =
      generate_kronecker(fixtures::small_kronecker(9, 8, kSeed), graph_pool);
  const Vertex n = base.vertex_count();
  const std::vector<Vertex> roots{1, 2};

  MutableGraphConfig config;
  config.numa_nodes = 2;
  MutableGraph graph{base, config, graph_pool};

  VersionLog log;
  std::vector<Edge> mirror{base.edges().begin(), base.edges().end()};
  {
    const EdgeList current{n, mirror};
    for (const Vertex root : roots)
      log.record(0, root, reference_levels(current, root, graph_pool));
  }

  serve::EngineConfig engine_config;
  engine_config.cache_bytes = 4 << 20;
  serve::QueryEngine engine{graph, NumaTopology{2, 1}, engine_pool,
                            engine_config};

  std::atomic<bool> writer_done{false};
  std::thread writer{[&] {
    ThreadPool ref_pool{2};
    std::mt19937_64 rng{kSeed};
    std::uint64_t version = 0;
    for (int round = 0; round < 6; ++round) {
      const std::vector<EdgeOp> ops = random_batch(rng, n, mirror);
      apply_ops_to_mirror(mirror, ops);
      const EdgeList next{n, mirror};
      for (const Vertex root : roots)
        log.record(version + 1, root,
                   reference_levels(next, root, ref_pool));
      ASSERT_EQ(graph.apply(ops), ++version);
      if (round == 2) {
        // Compaction republishes the same logical graph as version+1.
        for (const Vertex root : roots)
          log.record(version + 1, root, log.expect(version, root));
        ASSERT_EQ(graph.compact(), ++version);
      }
    }
    writer_done.store(true, std::memory_order_release);
  }};

  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> served{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng{kSeed + 100 + static_cast<std::uint64_t>(t)};
      while (!writer_done.load(std::memory_order_acquire)) {
        const Vertex root = roots[rng() % roots.size()];
        const serve::QueryRef query = engine.submit(root);
        query->wait();
        if (query->state() != serve::QueryState::Done) continue;
        ASSERT_TRUE(log.matches_any(root, query->result().level))
            << "root " << root << " served an answer matching no "
            << "published version (batched=" << query->result().batched
            << " cache_hit=" << query->result().cache_hit
            << " degraded=" << query->result().degraded
            << " visited=" << query->result().visited
            << " depth=" << query->result().depth << ")";
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  writer.join();
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(engine.stats().snapshots_published, 7u);
}

// Raw snapshot churn without the engine, on external-memory generations:
// readers pin snapshots and traverse them while the writer compacts the
// graph underneath, retiring generation directories. A pinned snapshot's
// answer must be exact for ITS version even after later compactions have
// deleted every other generation.
TEST(MutationConcurrencyTest, PinnedSnapshotsSurviveCompactionChurn) {
  ThreadPool graph_pool{2};
  const EdgeList base = generate_kronecker(
      fixtures::small_kronecker(8, 8, kSeed + 1), graph_pool);
  const Vertex n = base.vertex_count();
  constexpr Vertex kRoot = 1;

  testutil::ScopedTestDir scratch{"mutchurn"};
  MutableGraphConfig config;
  config.forward = MutableForwardKind::kExternal;
  config.numa_nodes = 2;
  config.workdir = scratch.path();
  config.device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  MutableGraph graph{base, config, graph_pool};

  VersionLog log;
  std::vector<Edge> mirror{base.edges().begin(), base.edges().end()};
  log.record(0, kRoot,
             reference_levels(EdgeList{n, mirror}, kRoot, graph_pool));

  std::atomic<bool> writer_done{false};
  std::thread writer{[&] {
    ThreadPool ref_pool{2};
    std::mt19937_64 rng{kSeed + 2};
    std::uint64_t version = 0;
    for (int round = 0; round < 4; ++round) {
      const std::vector<EdgeOp> ops = random_batch(rng, n, mirror);
      apply_ops_to_mirror(mirror, ops);
      log.record(version + 1, kRoot,
                 reference_levels(EdgeList{n, mirror}, kRoot, ref_pool));
      ASSERT_EQ(graph.apply(ops), ++version);
      // Compact EVERY round so generation directories churn while the
      // readers still hold snapshots of earlier generations.
      log.record(version + 1, kRoot, log.expect(version, kRoot));
      ASSERT_EQ(graph.compact(), ++version);
    }
    writer_done.store(true, std::memory_order_release);
  }};

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> traversals{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      ThreadPool pool{1};
      do {
        const auto snap = graph.snapshot();
        const std::uint64_t version = snap->version();
        HybridBfsRunner runner{snap->storage(), NumaTopology{2, 1}, pool};
        const BfsResult result = runner.run(kRoot, BfsConfig{});
        const auto expected = log.expect(version, kRoot);
        ASSERT_EQ(result.level.size(), expected.size());
        for (Vertex v = 0; v < n; ++v)
          ASSERT_EQ(result.level[v], expected[v])
              << "version " << version << " v " << v;
        traversals.fetch_add(1, std::memory_order_relaxed);
      } while (!writer_done.load(std::memory_order_acquire));
    });
  }
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_GT(traversals.load(), 0u);
}

}  // namespace
}  // namespace sembfs
