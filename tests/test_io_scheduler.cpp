#include "nvm/io_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "nvm/chunk_cache.hpp"
#include "nvm/storage_file.hpp"

namespace sembfs {
namespace {

class IoSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
    payload_.resize(256 * 1024);
    std::iota(payload_.begin(), payload_.end(), 0);
    file_->write(0, std::as_bytes(std::span<const char>{payload_}));
    device_->stats().reset();
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_io_sched_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }

  void expect_bytes(std::span<const std::byte> got, std::uint64_t offset) {
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(static_cast<char>(got[i]), payload_[offset + i]) << i;
  }

  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<char> payload_;
};

TEST_F(IoSchedulerTest, SingleReadCompletesViaFuture) {
  IoScheduler scheduler{4};
  std::vector<std::byte> out(1000);
  auto done = scheduler.submit_read(*file_, 123, out);
  const IoResult result = done.get();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.requests, 1u);  // direct read = one device request
  expect_bytes(out, 123);
  EXPECT_EQ(device_->stats().request_count(), 1u);
}

TEST_F(IoSchedulerTest, ManyReadsEachLandInTheirOwnBuffer) {
  IoScheduler scheduler{4};
  constexpr std::size_t kReads = 64;
  std::vector<std::vector<std::byte>> bufs(kReads);
  std::vector<std::future<IoResult>> futures;
  futures.reserve(kReads);
  for (std::size_t i = 0; i < kReads; ++i) {
    bufs[i].resize(512 + i * 8);
    futures.push_back(scheduler.submit_read(*file_, i * 1024,
                                            std::span<std::byte>{bufs[i]}));
  }
  // Completion order is the scheduler's business; results must not be.
  for (std::size_t i = 0; i < kReads; ++i) {
    EXPECT_EQ(futures[i].get().value_or_throw(), 1u);
    expect_bytes(bufs[i], i * 1024);
  }
  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kReads);
  EXPECT_EQ(stats.completed, kReads);
  EXPECT_GE(stats.peak_pending, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST_F(IoSchedulerTest, CallbackVariantRunsOnCompletion) {
  IoScheduler scheduler{2};
  std::vector<std::byte> out(256);
  std::atomic<std::uint64_t> requests{0};
  std::atomic<bool> failed{false};
  scheduler.submit_read(*file_, 0, out, [&](const IoResult& result) {
    requests.store(result.requests);
    failed.store(!result.ok);
  });
  scheduler.drain();
  EXPECT_EQ(requests.load(), 1u);
  EXPECT_FALSE(failed.load());
  expect_bytes(out, 0);
}

TEST_F(IoSchedulerTest, DrainBlocksUntilQueueEmpty) {
  IoScheduler scheduler{2};
  std::vector<std::vector<std::byte>> bufs(32, std::vector<std::byte>(4096));
  std::vector<std::future<IoResult>> futures;
  for (std::size_t i = 0; i < bufs.size(); ++i)
    futures.push_back(
        scheduler.submit_read(*file_, i * 4096, std::span<std::byte>{bufs[i]}));
  scheduler.drain();
  EXPECT_EQ(scheduler.pending(), 0u);
  for (auto& f : futures) EXPECT_EQ(f.get().value_or_throw(), 1u);
}

TEST_F(IoSchedulerTest, DestructorDrainsInFlightRequests) {
  std::vector<std::vector<std::byte>> bufs(48, std::vector<std::byte>(8192));
  std::vector<std::future<IoResult>> futures;
  {
    IoScheduler scheduler{3};
    for (std::size_t i = 0; i < bufs.size(); ++i)
      futures.push_back(scheduler.submit_read(
          *file_, i * 4096, std::span<std::byte>{bufs[i]}));
    // Destroy with most requests still queued or in flight.
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    EXPECT_EQ(futures[i].get().value_or_throw(), 1u);  // every future resolved
    expect_bytes(bufs[i], i * 4096);
  }
}

TEST_F(IoSchedulerTest, ReadErrorSurfacesAsFailedResult) {
  IoScheduler scheduler{2};
  std::vector<std::byte> out(128);
  // Reading past EOF makes the backing file throw on the I/O worker. The
  // error arrives as a value, never as an exception across the boundary.
  auto done = scheduler.submit_read(*file_, payload_.size() + 4096, out);
  const IoResult result = done.get();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, scheduler.config().retry.max_attempts);
  EXPECT_NE(result.error, nullptr);
  EXPECT_THROW(result.value_or_throw(), std::exception);
  scheduler.drain();  // the counters update after the future resolves
  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);  // failed requests still complete
  EXPECT_EQ(stats.failures, 1u);
  // max_attempts - 1 backoff retries were burned on a permanent error.
  EXPECT_EQ(stats.retries,
            static_cast<std::uint64_t>(scheduler.config().retry.max_attempts) -
                1);
}

TEST_F(IoSchedulerTest, ReadsThroughCachePopulateIt) {
  IoScheduler scheduler{4};
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(3 * 4096);
  auto cold = scheduler.submit_read(*file_, 0, out, &cache, 1 << 20);
  EXPECT_EQ(cold.get().value_or_throw(), 1u);  // one merged miss run
  expect_bytes(out, 0);

  auto warm = scheduler.submit_read(*file_, 0, out, &cache);
  EXPECT_EQ(warm.get().value_or_throw(), 0u);  // full hit: no device requests
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST_F(IoSchedulerTest, QueueDepthBoundsConcurrentService) {
  IoScheduler scheduler{1};
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  // A depth-1 scheduler is strictly serial; every read still completes.
  std::vector<std::vector<std::byte>> bufs(16, std::vector<std::byte>(2048));
  std::vector<std::future<IoResult>> futures;
  for (std::size_t i = 0; i < bufs.size(); ++i)
    futures.push_back(
        scheduler.submit_read(*file_, i * 2048, std::span<std::byte>{bufs[i]}));
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    EXPECT_EQ(futures[i].get().value_or_throw(), 1u);
    expect_bytes(bufs[i], i * 2048);
  }
}

// --- failure-domain behavior -------------------------------------------

TEST_F(IoSchedulerTest, RetryRecoversFromTransientFault) {
  // The one-shot plan fails exactly the first device read; the retry must
  // succeed on attempt 2 and the device must record the retry.
  FaultPlan plan;
  plan.fail_after_requests = 1;
  device_->set_fault_plan(plan);

  IoScheduler scheduler{1};
  std::vector<std::byte> out(512);
  const IoResult result = scheduler.submit_read(*file_, 64, out).get();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2);
  expect_bytes(out, 64);

  EXPECT_EQ(scheduler.stats().retries, 1u);
  EXPECT_EQ(scheduler.stats().failures, 0u);
  const IoStatsSnapshot io = device_->stats().snapshot();
  EXPECT_EQ(io.read_errors, 1u);
  EXPECT_EQ(io.retries, 1u);  // record_retry reached the device's stats
}

TEST_F(IoSchedulerTest, AttemptsExhaustedOnPersistentFault) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;  // every read errors, forever
  device_->set_fault_plan(plan);

  IoSchedulerConfig config;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_us = 1.0;  // keep the test fast
  IoScheduler scheduler{2, config};
  std::vector<std::byte> out(512);
  const IoResult result = scheduler.submit_read(*file_, 0, out).get();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 4);
  EXPECT_THROW(result.value_or_throw(), NvmIoError);
  EXPECT_EQ(scheduler.stats().retries, 3u);
  EXPECT_EQ(scheduler.stats().failures, 1u);
}

TEST_F(IoSchedulerTest, BackoffGrowsExponentiallyAndIsCapped) {
  RetryPolicy retry;
  retry.initial_backoff_us = 50.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_us = 150.0;
  EXPECT_DOUBLE_EQ(retry.backoff_seconds(1), 50e-6);
  EXPECT_DOUBLE_EQ(retry.backoff_seconds(2), 100e-6);
  EXPECT_DOUBLE_EQ(retry.backoff_seconds(3), 150e-6);  // capped
  EXPECT_DOUBLE_EQ(retry.backoff_seconds(4), 150e-6);
}

TEST_F(IoSchedulerTest, DeadlineExpiryFailsTheRequest) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;
  device_->set_fault_plan(plan);

  IoSchedulerConfig config;
  config.retry.max_attempts = 1000;        // deadline must fire first
  config.retry.initial_backoff_us = 2000;  // 2 ms per backoff
  config.retry.backoff_multiplier = 1.0;
  config.retry.deadline_seconds = 0.01;    // 10 ms budget
  IoScheduler scheduler{1, config};
  std::vector<std::byte> out(256);
  const IoResult result = scheduler.submit_read(*file_, 0, out).get();
  EXPECT_FALSE(result.ok);
  EXPECT_LT(result.attempts, 1000);
  EXPECT_NE(result.message.find("deadline"), std::string::npos)
      << result.message;
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
}

TEST_F(IoSchedulerTest, ErrorBudgetFailsFastAndResets) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;
  device_->set_fault_plan(plan);

  IoSchedulerConfig config;
  config.retry.max_attempts = 2;
  config.retry.initial_backoff_us = 1.0;
  config.error_budget = 1;  // one exhausted request trips the gate
  IoScheduler scheduler{1, config};
  std::vector<std::byte> out(256);

  const IoResult first = scheduler.submit_read(*file_, 0, out).get();
  EXPECT_FALSE(first.ok);
  EXPECT_EQ(first.attempts, 2);  // the budget-charging failure tried fully
  EXPECT_TRUE(scheduler.error_budget_exhausted());

  const std::uint64_t requests_before = device_->stats().request_count();
  const IoResult rejected = scheduler.submit_read(*file_, 0, out).get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.attempts, 0);  // failed fast, no attempts
  EXPECT_NE(rejected.message.find("budget"), std::string::npos);
  // Fail-fast means no device traffic at all.
  EXPECT_EQ(device_->stats().request_count(), requests_before);
  EXPECT_EQ(scheduler.stats().budget_rejected, 1u);

  // A new level re-opens the gate; with the faults cleared, reads succeed.
  device_->clear_fault_plan();
  scheduler.reset_error_budget();
  EXPECT_FALSE(scheduler.error_budget_exhausted());
  EXPECT_TRUE(scheduler.submit_read(*file_, 0, out).get().ok);
}

TEST_F(IoSchedulerTest, ShutdownUnderFaultsDoesNotDeadlock) {
  // Destroy the scheduler while a faulty queue is still churning: every
  // future must still resolve (ok or not) and the destructor must return.
  FaultPlan plan;
  plan.seed = 77;
  plan.read_error_rate = 0.5;
  device_->set_fault_plan(plan);

  IoSchedulerConfig config;
  config.retry.max_attempts = 2;
  config.retry.initial_backoff_us = 1.0;
  std::vector<std::vector<std::byte>> bufs(64, std::vector<std::byte>(1024));
  std::vector<std::future<IoResult>> futures;
  {
    IoScheduler scheduler{4, config};
    for (std::size_t i = 0; i < bufs.size(); ++i)
      futures.push_back(scheduler.submit_read(
          *file_, i * 1024, std::span<std::byte>{bufs[i]}));
  }
  std::size_t succeeded = 0;
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    const IoResult result = futures[i].get();  // resolved, never dangling
    if (result.ok) {
      expect_bytes(bufs[i], i * 1024);
      ++succeeded;
    }
  }
  // With a 50% error rate and 2 attempts some reads succeed, some do not;
  // the exact split is the seed's business.
  EXPECT_GT(succeeded, 0u);
  EXPECT_LT(succeeded, bufs.size());
}

}  // namespace
}  // namespace sembfs
