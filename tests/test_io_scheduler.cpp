#include "nvm/io_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "nvm/chunk_cache.hpp"
#include "nvm/storage_file.hpp"

namespace sembfs {
namespace {

class IoSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
    payload_.resize(256 * 1024);
    std::iota(payload_.begin(), payload_.end(), 0);
    file_->write(0, std::as_bytes(std::span<const char>{payload_}));
    device_->stats().reset();
  }
  void TearDown() override { remove_file_if_exists(path()); }
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return testing::TempDir() + "/sembfs_io_sched_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }

  void expect_bytes(std::span<const std::byte> got, std::uint64_t offset) {
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(static_cast<char>(got[i]), payload_[offset + i]) << i;
  }

  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<char> payload_;
};

TEST_F(IoSchedulerTest, SingleReadCompletesViaFuture) {
  IoScheduler scheduler{4};
  std::vector<std::byte> out(1000);
  auto done = scheduler.submit_read(*file_, 123, out);
  EXPECT_EQ(done.get(), 1u);  // direct read = one device request
  expect_bytes(out, 123);
  EXPECT_EQ(device_->stats().request_count(), 1u);
}

TEST_F(IoSchedulerTest, ManyReadsEachLandInTheirOwnBuffer) {
  IoScheduler scheduler{4};
  constexpr std::size_t kReads = 64;
  std::vector<std::vector<std::byte>> bufs(kReads);
  std::vector<std::future<std::uint64_t>> futures;
  futures.reserve(kReads);
  for (std::size_t i = 0; i < kReads; ++i) {
    bufs[i].resize(512 + i * 8);
    futures.push_back(scheduler.submit_read(*file_, i * 1024,
                                            std::span<std::byte>{bufs[i]}));
  }
  // Completion order is the scheduler's business; results must not be.
  for (std::size_t i = 0; i < kReads; ++i) {
    EXPECT_EQ(futures[i].get(), 1u);
    expect_bytes(bufs[i], i * 1024);
  }
  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kReads);
  EXPECT_EQ(stats.completed, kReads);
  EXPECT_GE(stats.peak_pending, 1u);
}

TEST_F(IoSchedulerTest, CallbackVariantRunsOnCompletion) {
  IoScheduler scheduler{2};
  std::vector<std::byte> out(256);
  std::atomic<std::uint64_t> requests{0};
  std::atomic<bool> failed{false};
  scheduler.submit_read(
      *file_, 0, out,
      [&](std::uint64_t n, std::exception_ptr error) {
        requests.store(n);
        failed.store(error != nullptr);
      });
  scheduler.drain();
  EXPECT_EQ(requests.load(), 1u);
  EXPECT_FALSE(failed.load());
  expect_bytes(out, 0);
}

TEST_F(IoSchedulerTest, DrainBlocksUntilQueueEmpty) {
  IoScheduler scheduler{2};
  std::vector<std::vector<std::byte>> bufs(32, std::vector<std::byte>(4096));
  std::vector<std::future<std::uint64_t>> futures;
  for (std::size_t i = 0; i < bufs.size(); ++i)
    futures.push_back(
        scheduler.submit_read(*file_, i * 4096, std::span<std::byte>{bufs[i]}));
  scheduler.drain();
  EXPECT_EQ(scheduler.pending(), 0u);
  for (auto& f : futures) EXPECT_EQ(f.get(), 1u);
}

TEST_F(IoSchedulerTest, DestructorDrainsInFlightRequests) {
  std::vector<std::vector<std::byte>> bufs(48, std::vector<std::byte>(8192));
  std::vector<std::future<std::uint64_t>> futures;
  {
    IoScheduler scheduler{3};
    for (std::size_t i = 0; i < bufs.size(); ++i)
      futures.push_back(scheduler.submit_read(
          *file_, i * 4096, std::span<std::byte>{bufs[i]}));
    // Destroy with most requests still queued or in flight.
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    EXPECT_EQ(futures[i].get(), 1u);  // every future resolved
    expect_bytes(bufs[i], i * 4096);
  }
}

TEST_F(IoSchedulerTest, ReadErrorSurfacesAsFutureException) {
  IoScheduler scheduler{2};
  std::vector<std::byte> out(128);
  // Reading past EOF makes the backing file throw on the I/O worker.
  auto done = scheduler.submit_read(*file_, payload_.size() + 4096, out);
  EXPECT_THROW(done.get(), std::exception);
  scheduler.drain();  // the counters update after the future resolves
  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);  // failed requests still complete
}

TEST_F(IoSchedulerTest, ReadsThroughCachePopulateIt) {
  IoScheduler scheduler{4};
  ChunkCache cache{1 << 20};
  std::vector<std::byte> out(3 * 4096);
  auto cold = scheduler.submit_read(*file_, 0, out, &cache, 1 << 20);
  EXPECT_EQ(cold.get(), 1u);  // one merged miss run
  expect_bytes(out, 0);

  auto warm = scheduler.submit_read(*file_, 0, out, &cache);
  EXPECT_EQ(warm.get(), 0u);  // full hit: no device requests
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST_F(IoSchedulerTest, QueueDepthBoundsConcurrentService) {
  IoScheduler scheduler{1};
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  // A depth-1 scheduler is strictly serial; every read still completes.
  std::vector<std::vector<std::byte>> bufs(16, std::vector<std::byte>(2048));
  std::vector<std::future<std::uint64_t>> futures;
  for (std::size_t i = 0; i < bufs.size(); ++i)
    futures.push_back(
        scheduler.submit_read(*file_, i * 2048, std::span<std::byte>{bufs[i]}));
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    EXPECT_EQ(futures[i].get(), 1u);
    expect_bytes(bufs[i], i * 2048);
  }
}

}  // namespace
}  // namespace sembfs
