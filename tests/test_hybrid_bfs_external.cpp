// Semi-external correctness: BFS with the forward graph on a simulated NVM
// device (and/or the backward graph partially offloaded) must produce
// exactly the reference levels, while generating device traffic only in
// top-down levels (resp. bottom-up overflow reads).
#include "bfs/hybrid_bfs.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class ExternalBfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sembfs_extbfs";
    std::filesystem::remove_all(dir_);
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 31), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    full_ = build_csr(edges_, CsrBuildOptions{}, pool_);
    root_ = 0;
    while (full_.degree(root_) == 0) ++root_;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DeviceProfile fast_profile(const char* base) const {
    DeviceProfile p = DeviceProfile::by_name(base);
    p.time_scale = 0.001;  // keep simulated delays negligible in tests
    return p;
  }

  ThreadPool pool_{4};
  std::string dir_;
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  Csr full_;
  Vertex root_ = 0;
};

TEST_F(ExternalBfsTest, ExternalForwardMatchesReference) {
  for (const char* profile : {"dram", "pcie_flash", "sata_ssd"}) {
    auto device = std::make_shared<NvmDevice>(fast_profile(profile));
    ExternalForwardGraph external{forward_, device, dir_};
    GraphStorage storage;
    storage.forward_external = &external;
    storage.backward_dram = &backward_;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

    const BfsResult result = runner.run(root_, BfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full_, root_);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "profile=" << profile << " v=" << v;
  }
}

TEST_F(ExternalBfsTest, TopDownOnlyGeneratesNvmTraffic) {
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
  device->stats().reset();

  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  const BfsResult result = runner.run(root_, config);
  EXPECT_GT(result.nvm_requests, 0u);
  EXPECT_EQ(device->stats().request_count(), result.nvm_requests);
  // Every level reports its own device requests.
  std::uint64_t per_level = 0;
  for (const LevelStats& ls : result.levels) per_level += ls.nvm_requests;
  EXPECT_EQ(per_level, result.nvm_requests);
}

TEST_F(ExternalBfsTest, HybridMinimizesNvmTrafficVsTopDownOnly) {
  // The paper's core claim: with well-chosen alpha/beta, the hybrid rarely
  // touches the (slow) forward graph.
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  BfsConfig top_down;
  top_down.mode = BfsMode::TopDownOnly;
  const std::uint64_t td_requests =
      runner.run(root_, top_down).nvm_requests;

  BfsConfig hybrid;
  hybrid.policy.alpha = 1e6;  // switch to bottom-up aggressively
  hybrid.policy.beta = 1e6;
  const std::uint64_t hybrid_requests =
      runner.run(root_, hybrid).nvm_requests;

  EXPECT_LT(hybrid_requests, td_requests / 2);
}

TEST_F(ExternalBfsTest, BottomUpOnlyTouchesNoForwardNvm) {
  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  ExternalForwardGraph external{forward_, device, dir_};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
  device->stats().reset();

  BfsConfig config;
  config.mode = BfsMode::BottomUpOnly;
  const BfsResult result = runner.run(root_, config);
  EXPECT_EQ(result.nvm_requests, 0u);
  EXPECT_EQ(device->stats().request_count(), 0u);
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);
}

TEST_F(ExternalBfsTest, HybridBackwardOffloadMatchesReference) {
  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  for (const std::int64_t cap : {0, 2, 8, 32}) {
    HybridBackwardGraph hybrid_backward{backward_, cap, device,
                                        dir_ + std::to_string(cap)};
    GraphStorage storage;
    storage.forward_dram = &forward_;
    storage.backward_hybrid = &hybrid_backward;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

    const BfsResult result = runner.run(root_, BfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full_, root_);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v]) << "cap=" << cap;
    std::filesystem::remove_all(dir_ + std::to_string(cap));
  }
}

TEST_F(ExternalBfsTest, BackwardOffloadAccessRatioDropsWithBiggerCap) {
  // Figure 14's monotonicity: more DRAM edges per vertex -> smaller share
  // of backward-graph accesses hitting NVM.
  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  double prev_ratio = 1.1;
  for (const std::int64_t cap : {2, 8, 32}) {
    HybridBackwardGraph hybrid_backward{backward_, cap, device,
                                        dir_ + "r" + std::to_string(cap)};
    GraphStorage storage;
    storage.forward_dram = &forward_;
    storage.backward_hybrid = &hybrid_backward;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
    BfsConfig config;
    config.policy.alpha = 1e6;  // mostly bottom-up
    config.policy.beta = 1e6;
    runner.run(root_, config);

    const double nvm =
        static_cast<double>(hybrid_backward.nvm_edges_examined());
    const double total =
        nvm + static_cast<double>(hybrid_backward.dram_edges_examined());
    ASSERT_GT(total, 0.0);
    const double ratio = nvm / total;
    EXPECT_LT(ratio, prev_ratio) << "cap=" << cap;
    prev_ratio = ratio;
    std::filesystem::remove_all(dir_ + "r" + std::to_string(cap));
  }
}

TEST_F(ExternalBfsTest, FullyExternalBothSidesStillCorrect) {
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_ + "f"};
  HybridBackwardGraph hybrid_backward{backward_, 4, device, dir_ + "b"};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_hybrid = &hybrid_backward;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  const BfsResult result = runner.run(root_, BfsConfig{});
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);
  std::filesystem::remove_all(dir_ + "f");
  std::filesystem::remove_all(dir_ + "b");
}

}  // namespace
}  // namespace sembfs
