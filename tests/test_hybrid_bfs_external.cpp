// Semi-external correctness: BFS with the forward graph on a simulated NVM
// device (and/or the backward graph partially offloaded) must produce
// exactly the reference levels, while generating device traffic only in
// top-down levels (resp. bottom-up overflow reads).
#include "bfs/hybrid_bfs.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class ExternalBfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 31), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    full_ = build_csr(edges_, CsrBuildOptions{}, pool_);
    root_ = 0;
    while (full_.degree(root_) == 0) ++root_;
  }
  DeviceProfile fast_profile(const char* base) const {
    DeviceProfile p = DeviceProfile::by_name(base);
    p.time_scale = 0.001;  // keep simulated delays negligible in tests
    return p;
  }

  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"extbfs"};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  Csr full_;
  Vertex root_ = 0;
};

TEST_F(ExternalBfsTest, ExternalForwardMatchesReference) {
  for (const char* profile : {"dram", "pcie_flash", "sata_ssd"}) {
    auto device = std::make_shared<NvmDevice>(fast_profile(profile));
    ExternalForwardGraph external{forward_, device, dir_.path()};
    GraphStorage storage;
    storage.forward_external = &external;
    storage.backward_dram = &backward_;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

    const BfsResult result = runner.run(root_, BfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full_, root_);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "profile=" << profile << " v=" << v;
  }
}

TEST_F(ExternalBfsTest, TopDownOnlyGeneratesNvmTraffic) {
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
  device->stats().reset();

  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  const BfsResult result = runner.run(root_, config);
  EXPECT_GT(result.nvm_requests, 0u);
  EXPECT_EQ(device->stats().request_count(), result.nvm_requests);
  // Every level reports its own device requests.
  std::uint64_t per_level = 0;
  for (const LevelStats& ls : result.levels) per_level += ls.nvm_requests;
  EXPECT_EQ(per_level, result.nvm_requests);
}

TEST_F(ExternalBfsTest, HybridMinimizesNvmTrafficVsTopDownOnly) {
  // The paper's core claim: with well-chosen alpha/beta, the hybrid rarely
  // touches the (slow) forward graph.
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  BfsConfig top_down;
  top_down.mode = BfsMode::TopDownOnly;
  const std::uint64_t td_requests =
      runner.run(root_, top_down).nvm_requests;

  BfsConfig hybrid;
  hybrid.policy.alpha = 1e6;  // switch to bottom-up aggressively
  hybrid.policy.beta = 1e6;
  const std::uint64_t hybrid_requests =
      runner.run(root_, hybrid).nvm_requests;

  EXPECT_LT(hybrid_requests, td_requests / 2);
}

TEST_F(ExternalBfsTest, BottomUpOnlyTouchesNoForwardNvm) {
  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
  device->stats().reset();

  BfsConfig config;
  config.mode = BfsMode::BottomUpOnly;
  const BfsResult result = runner.run(root_, config);
  EXPECT_EQ(result.nvm_requests, 0u);
  EXPECT_EQ(device->stats().request_count(), 0u);
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);
}

TEST_F(ExternalBfsTest, HybridBackwardOffloadMatchesReference) {
  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  for (const std::int64_t cap : {0, 2, 8, 32}) {
    HybridBackwardGraph hybrid_backward{backward_, cap, device,
                                        dir_.aux(std::to_string(cap))};
    GraphStorage storage;
    storage.forward_dram = &forward_;
    storage.backward_hybrid = &hybrid_backward;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

    const BfsResult result = runner.run(root_, BfsConfig{});
    const ReferenceBfsResult ref = reference_bfs(full_, root_);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v]) << "cap=" << cap;
  }
}

TEST_F(ExternalBfsTest, BackwardOffloadAccessRatioDropsWithBiggerCap) {
  // Figure 14's monotonicity: more DRAM edges per vertex -> smaller share
  // of backward-graph accesses hitting NVM.
  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  double prev_ratio = 1.1;
  for (const std::int64_t cap : {2, 8, 32}) {
    HybridBackwardGraph hybrid_backward{backward_, cap, device,
                                        dir_.aux("r" + std::to_string(cap))};
    GraphStorage storage;
    storage.forward_dram = &forward_;
    storage.backward_hybrid = &hybrid_backward;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
    BfsConfig config;
    config.policy.alpha = 1e6;  // mostly bottom-up
    config.policy.beta = 1e6;
    runner.run(root_, config);

    const double nvm =
        static_cast<double>(hybrid_backward.nvm_edges_examined());
    const double total =
        nvm + static_cast<double>(hybrid_backward.dram_edges_examined());
    ASSERT_GT(total, 0.0);
    const double ratio = nvm / total;
    EXPECT_LT(ratio, prev_ratio) << "cap=" << cap;
    prev_ratio = ratio;
  }
}

TEST_F(ExternalBfsTest, FullyExternalBothSidesStillCorrect) {
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_.aux("f")};
  HybridBackwardGraph hybrid_backward{backward_, 4, device, dir_.aux("b")};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_hybrid = &hybrid_backward;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  const BfsResult result = runner.run(root_, BfsConfig{});
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]);
}

TEST_F(ExternalBfsTest, AsyncPrefetchAndChunkCacheMatchReference) {
  // Every accelerator combination must leave the traversal untouched:
  // scheduler-only, cache-only, and both together.
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  struct Combo {
    std::size_t queue_depth;
    std::size_t cache_bytes;
  };
  for (const Combo combo : {Combo{4, 0}, Combo{0, 4 << 20}, Combo{4, 4 << 20}}) {
    auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
    ExternalForwardGraph external{forward_, device, dir_.aux("a")};
    GraphStorage storage;
    storage.forward_external = &external;
    storage.backward_dram = &backward_;
    HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

    BfsConfig config;
    config.mode = BfsMode::TopDownOnly;  // maximize the external path
    config.aggregate_io = true;
    config.io_queue_depth = combo.queue_depth;
    config.chunk_cache_bytes = combo.cache_bytes;
    const BfsResult result = runner.run(root_, config);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "qd=" << combo.queue_depth << " cache=" << combo.cache_bytes
          << " v=" << v;
  }
}

TEST_F(ExternalBfsTest, ChunkCacheCutsDeviceRequests) {
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  BfsConfig off;
  off.mode = BfsMode::TopDownOnly;
  off.aggregate_io = true;
  const std::uint64_t cache_off = runner.run(root_, off).nvm_requests;

  BfsConfig on = off;
  on.chunk_cache_bytes = 16 << 20;
  const std::uint64_t cold = runner.run(root_, on).nvm_requests;
  EXPECT_LE(cold, cache_off);  // intra-run reuse already helps

  // Second run against the warm cache: the hub chunks never hit the device.
  const std::uint64_t warm = runner.run(root_, on).nvm_requests;
  EXPECT_LT(warm, cache_off / 2);
  const ChunkCache* cache = external.chunk_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->stats().hit_rate(), 0.5);
}

TEST_F(ExternalBfsTest, AsyncPrefetchKeepsRequestAccountingExact) {
  auto device = std::make_shared<NvmDevice>(fast_profile("pcie_flash"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};
  device->stats().reset();

  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  config.aggregate_io = true;
  config.io_queue_depth = 8;
  const BfsResult result = runner.run(root_, config);
  EXPECT_GT(result.nvm_requests, 0u);
  EXPECT_EQ(device->stats().request_count(), result.nvm_requests);
  const IoScheduler* scheduler = external.io_scheduler();
  ASSERT_NE(scheduler, nullptr);
  const IoSchedulerStats sched_stats = scheduler->stats();
  EXPECT_GT(sched_stats.submitted, 0u);
  EXPECT_EQ(sched_stats.submitted, sched_stats.completed);
}

// Regression for the EdgeRatio frontier-edge recomputation (now a parallel
// reduction): the direction decisions must be exactly those of the same
// policy evaluated against DRAM storage, whose degree sums are computed
// from the backward graph the same way.
TEST_F(ExternalBfsTest, EdgeRatioDirectionsMatchDramRun) {
  BfsConfig config;
  config.policy.kind = PolicyKind::EdgeRatio;
  config.policy.alpha = 14.0;  // Beamer's defaults: switch mid-traversal
  config.policy.beta = 24.0;

  GraphStorage dram_storage;
  dram_storage.forward_dram = &forward_;
  dram_storage.backward_dram = &backward_;
  HybridBfsRunner dram_runner{dram_storage, NumaTopology{4, 1}, pool_};
  const BfsResult dram = dram_runner.run(root_, config);

  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage ext_storage;
  ext_storage.forward_external = &external;
  ext_storage.backward_dram = &backward_;
  HybridBfsRunner ext_runner{ext_storage, NumaTopology{4, 1}, pool_};
  const BfsResult ext = ext_runner.run(root_, config);

  // The policy must have actually switched for this to test anything.
  bool saw_bottom_up = false;
  for (const LevelStats& ls : dram.levels)
    saw_bottom_up |= ls.direction == Direction::BottomUp;
  EXPECT_TRUE(saw_bottom_up);

  ASSERT_EQ(ext.levels.size(), dram.levels.size());
  for (std::size_t i = 0; i < dram.levels.size(); ++i)
    ASSERT_EQ(ext.levels[i].direction, dram.levels[i].direction)
        << "level " << i;
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(ext.level[v], dram.level[v]);
}

// Regression: degree() used to hit SEMBFS_ASSERT(backward_hybrid !=
// nullptr) for storage with no backward graph; it now sums the
// destination-filtered forward partitions.
TEST_F(ExternalBfsTest, DegreeFallsBackToForwardStorage) {
  GraphStorage fwd_only;
  fwd_only.forward_dram = &forward_;

  auto device = std::make_shared<NvmDevice>(fast_profile("dram"));
  ExternalForwardGraph external{forward_, device, dir_.path()};
  GraphStorage ext_only;
  ext_only.forward_external = &external;

  for (Vertex v = 0; v < edges_.vertex_count(); v += 11) {
    const std::int64_t expected = full_.degree(v);
    EXPECT_EQ(fwd_only.degree(v), expected) << "v=" << v;
    EXPECT_EQ(ext_only.degree(v), expected) << "v=" << v;
  }
}

}  // namespace
}  // namespace sembfs
