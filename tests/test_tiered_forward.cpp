#include "graph/tiered_forward.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class TieredForwardTest : public ::testing::TestWithParam<std::int64_t> {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 61), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 4};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
  }
  TieredForwardGraph make(std::int64_t threshold) {
    return TieredForwardGraph{forward_, threshold, device_, dir_.path(), pool_};
  }

  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"tiered"};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  std::shared_ptr<NvmDevice> device_;
};

TEST_P(TieredForwardTest, FetchMatchesDramForward) {
  TieredForwardGraph tiered = make(GetParam());
  std::vector<Vertex> got;
  for (std::size_t k = 0; k < tiered.node_count(); ++k) {
    const Csr& dram = forward_.partition(k);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
      tiered.partition(k).fetch_neighbors(v, got);
      const auto adj = dram.neighbors(v);
      // Adjacency *sets* must agree; the parallel CSR scatter does not
      // guarantee a stable order.
      std::multiset<Vertex> got_set(got.begin(), got.end());
      std::multiset<Vertex> expected(adj.begin(), adj.end());
      ASSERT_EQ(got_set, expected) << "node " << k << " v " << v;
    }
  }
}

TEST_P(TieredForwardTest, RoutingObeysThreshold) {
  const std::int64_t threshold = GetParam();
  TieredForwardGraph tiered = make(threshold);
  for (std::size_t k = 0; k < tiered.node_count(); ++k) {
    const Csr& dram = forward_.partition(k);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v) {
      EXPECT_EQ(tiered.partition(k).is_on_nvm(v),
                dram.degree(v) > threshold)
          << "node " << k << " v " << v;
    }
  }
}

TEST_P(TieredForwardTest, DramFetchesIssueNoRequests) {
  TieredForwardGraph tiered = make(GetParam());
  device_->stats().reset();
  std::vector<Vertex> got;
  std::uint64_t reported = 0;
  for (std::size_t k = 0; k < tiered.node_count(); ++k)
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      if (!tiered.partition(k).is_on_nvm(v))
        reported += tiered.partition(k).fetch_neighbors(v, got);
  EXPECT_EQ(reported, 0u);
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TieredForwardTest,
                         ::testing::Values(0, 1, 4, 16, 1 << 20));

TEST_F(TieredForwardTest, ThresholdZeroIsFullyExternal) {
  TieredForwardGraph tiered = make(0);
  std::int64_t dram_vertices_with_edges = 0;
  for (std::size_t k = 0; k < tiered.node_count(); ++k) {
    const Csr& dram = forward_.partition(k);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      if (dram.degree(v) > 0 && !tiered.partition(k).is_on_nvm(v))
        ++dram_vertices_with_edges;
  }
  EXPECT_EQ(dram_vertices_with_edges, 0);
}

TEST_F(TieredForwardTest, HugeThresholdKeepsEverythingInDram) {
  TieredForwardGraph tiered = make(1 << 20);
  EXPECT_EQ(tiered.nvm_byte_size(),
            // the NVM sub-CSR still stores its (all-zero-width) index array
            tiered.node_count() *
                (static_cast<std::uint64_t>(edges_.vertex_count()) + 1) * 8);
  device_->stats().reset();
  std::vector<Vertex> got;
  for (std::size_t k = 0; k < tiered.node_count(); ++k)
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      tiered.partition(k).fetch_neighbors(v, got);
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_F(TieredForwardTest, LowThresholdMovesMostBytesToNvm) {
  TieredForwardGraph aggressive = make(2);
  TieredForwardGraph lenient = make(64);
  EXPECT_GT(aggressive.nvm_byte_size(), lenient.nvm_byte_size());
  EXPECT_LT(aggressive.dram_byte_size(), lenient.dram_byte_size());
}

TEST_F(TieredForwardTest, TieredBfsMatchesReference) {
  TieredForwardGraph tiered = make(4);
  const Csr full = build_csr(edges_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_tiered = &tiered;
  storage.backward_dram = &backward_;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  for (const BfsMode mode :
       {BfsMode::Hybrid, BfsMode::TopDownOnly, BfsMode::BottomUpOnly}) {
    BfsConfig config;
    config.mode = mode;
    const BfsResult result = runner.run(root, config);
    const ReferenceBfsResult ref = reference_bfs(full, root);
    for (Vertex v = 0; v < edges_.vertex_count(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "mode " << static_cast<int>(mode) << " v " << v;
  }
}

TEST_F(TieredForwardTest, TieredCutsRequestsVsFullyExternal) {
  // The headline property: late top-down levels touch degree-1 vertices,
  // which the tiered layout serves from DRAM.
  TieredForwardGraph tiered = make(4);
  ExternalForwardGraph external{forward_, device_, dir_.aux("_ext")};
  const Csr full = build_csr(edges_, CsrBuildOptions{}, pool_);

  GraphStorage tiered_storage;
  tiered_storage.forward_tiered = &tiered;
  tiered_storage.backward_dram = &backward_;
  HybridBfsRunner tiered_runner{tiered_storage, NumaTopology{4, 1}, pool_};

  GraphStorage ext_storage;
  ext_storage.forward_external = &external;
  ext_storage.backward_dram = &backward_;
  HybridBfsRunner ext_runner{ext_storage, NumaTopology{4, 1}, pool_};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;
  const std::uint64_t tiered_requests =
      tiered_runner.run(root, config).nvm_requests;
  const std::uint64_t external_requests =
      ext_runner.run(root, config).nvm_requests;
  EXPECT_LT(tiered_requests, external_requests / 2);
}

}  // namespace
}  // namespace sembfs
