#include "numa/partition.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

TEST(VertexPartition, RangesTileTheVertexSpace) {
  VertexPartition part{100, 4};
  EXPECT_EQ(part.vertex_count(), 100);
  EXPECT_EQ(part.node_count(), 4u);
  std::int64_t covered = 0;
  std::int64_t prev_end = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const VertexRange r = part.range_of(k);
    EXPECT_EQ(r.begin, prev_end);
    covered += r.size();
    prev_end = r.end;
  }
  EXPECT_EQ(covered, 100);
  EXPECT_EQ(prev_end, 100);
}

TEST(VertexPartition, PaperFormulaBoundaries) {
  // Paper: v_i with i in [k*n/l, (k+1)*n/l) goes to node k.
  VertexPartition part{10, 4};
  EXPECT_EQ(part.range_of(0), (VertexRange{0, 2}));   // 0*10/4=0, 1*10/4=2
  EXPECT_EQ(part.range_of(1), (VertexRange{2, 5}));   // 2, 10/2=5
  EXPECT_EQ(part.range_of(2), (VertexRange{5, 7}));
  EXPECT_EQ(part.range_of(3), (VertexRange{7, 10}));
}

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::size_t>> {};

TEST_P(PartitionPropertyTest, NodeOfAgreesWithRanges) {
  const auto [n, nodes] = GetParam();
  VertexPartition part{n, nodes};
  for (std::int64_t v = 0; v < n; ++v) {
    const std::size_t k = part.node_of(v);
    EXPECT_TRUE(part.range_of(k).contains(v))
        << "v=" << v << " claimed by node " << k;
  }
}

TEST_P(PartitionPropertyTest, LocalIndexIsOffsetInRange) {
  const auto [n, nodes] = GetParam();
  VertexPartition part{n, nodes};
  for (std::int64_t v = 0; v < n; ++v) {
    const std::size_t k = part.node_of(v);
    EXPECT_EQ(part.local_index(v), v - part.range_of(k).begin);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Values(std::pair<std::int64_t, std::size_t>{1, 1},
                      std::pair<std::int64_t, std::size_t>{7, 3},
                      std::pair<std::int64_t, std::size_t>{100, 4},
                      std::pair<std::int64_t, std::size_t>{1023, 8},
                      std::pair<std::int64_t, std::size_t>{1024, 8},
                      std::pair<std::int64_t, std::size_t>{1025, 8},
                      std::pair<std::int64_t, std::size_t>{3, 8}));

TEST(VertexPartition, MoreNodesThanVertices) {
  VertexPartition part{3, 8};
  std::int64_t covered = 0;
  for (std::size_t k = 0; k < 8; ++k) covered += part.range_of(k).size();
  EXPECT_EQ(covered, 3);
}

TEST(VertexRange, ContainsAndSize) {
  const VertexRange r{10, 20};
  EXPECT_EQ(r.size(), 10);
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
}

TEST(VertexPartition, EmptyGraph) {
  VertexPartition part{0, 4};
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(part.range_of(k).size(), 0);
}

}  // namespace
}  // namespace sembfs
