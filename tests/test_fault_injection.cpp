// Failure injection: a device error in the semi-external read path must
// surface as an exception from direct reads, and the parallel BFS must
// contain it — degrading the level to the DRAM bottom-up direction when a
// backward graph is attached, throwing when there is nothing to fall back
// to — leaving the pool and the device usable afterwards.
#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/session.hpp"
#include "graph_fixtures.hpp"
#include "nvm/external_array.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
  }
  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"fault"};
  std::shared_ptr<NvmDevice> device_;
};

TEST_F(FaultInjectionTest, NextRequestFails) {
  NvmFile file{device_, dir_.path() + "/a.bin"};
  const char payload[8] = "1234567";
  file.write(0, std::as_bytes(std::span<const char>{payload}));

  device_->inject_failure_after(1);
  char buf[4];
  EXPECT_THROW(file.read(0, std::as_writable_bytes(std::span<char>{buf})),
               std::runtime_error);
  // One-shot: the device recovers.
  file.read(0, std::as_writable_bytes(std::span<char>{buf}));
  EXPECT_EQ(buf[0], '1');
}

TEST_F(FaultInjectionTest, CountdownSkipsEarlierRequests) {
  NvmFile file{device_, dir_.path() + "/b.bin"};
  const char payload[8] = "abcdefg";
  file.write(0, std::as_bytes(std::span<const char>{payload}));

  device_->inject_failure_after(3);  // write consumed nothing: reads 1,2 ok
  char c;
  file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
  file.read(1, std::as_writable_bytes(std::span<char>{&c, 1}));
  EXPECT_THROW(file.read(2, std::as_writable_bytes(std::span<char>{&c, 1})),
               std::runtime_error);
}

TEST_F(FaultInjectionTest, ClearCancelsInjection) {
  NvmFile file{device_, dir_.path() + "/c.bin"};
  const char payload[4] = "xyz";
  file.write(0, std::as_bytes(std::span<const char>{payload}));
  device_->inject_failure_after(1);
  device_->clear_injected_failure();
  char c;
  file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
  EXPECT_EQ(c, 'x');
}

TEST_F(FaultInjectionTest, ExternalArrayReadPropagates) {
  NvmFile file{device_, dir_.path() + "/arr.bin"};
  ExternalArray<std::int64_t> arr{file, 0, 16};
  std::vector<std::int64_t> data(16, 7);
  arr.write(0, data);
  device_->inject_failure_after(1);
  std::vector<std::int64_t> out(16);
  EXPECT_THROW(arr.read(0, out), std::runtime_error);
}

TEST_F(FaultInjectionTest, ParallelBfsDegradesOnDeviceErrorAndRecovers) {
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(10, 8, 201), pool_);
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool_);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool_);
  ExternalForwardGraph external{forward, device_, dir_.path() + "/fg"};

  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{4, 1}, pool_};

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;

  // A healthy run first (also warms the path).
  const BfsResult healthy = runner.run(root, config);
  ASSERT_GT(healthy.nvm_requests, 100u);
  EXPECT_FALSE(healthy.degraded);

  // Fail mid-traversal: the error no longer crosses the thread pool — the
  // step contains it, the level is completed via the DRAM bottom-up
  // direction, and the run finishes with the degraded flag set. The
  // one-shot fails exactly one fetch, so exactly one level degrades.
  device_->inject_failure_after(healthy.nvm_requests / 2);
  const BfsResult degraded = runner.run(root, config);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.degraded_levels, 1);
  EXPECT_GE(degraded.io_failures, 1u);
  // Degradation trades the I/O pattern, never the answer.
  EXPECT_EQ(degraded.visited, healthy.visited);
  EXPECT_EQ(degraded.level, healthy.level);
  std::int32_t degraded_level_count = 0;
  for (const LevelStats& ls : degraded.levels)
    if (ls.degraded) ++degraded_level_count;
  EXPECT_EQ(degraded_level_count, 1);

  // And the runner/pool/device all remain usable, undegraded.
  device_->clear_fault_plan();
  const BfsResult after = runner.run(root, config);
  EXPECT_FALSE(after.degraded);
  EXPECT_EQ(after.level, healthy.level);
}

TEST_F(FaultInjectionTest, DegradationWithoutBackwardGraphThrows) {
  // With no backward graph attached there is nothing to degrade to; the
  // failure must still surface instead of returning a truncated tree. The
  // runner refuses forward-only storage outright, so drive a BfsSession —
  // the one entry point that accepts it (k-hop use).
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 205), pool_);
  const VertexPartition partition{edges.vertex_count(), 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool_);
  ExternalForwardGraph external{forward, device_, dir_.path() + "/fg"};

  GraphStorage storage;
  storage.forward_external = &external;
  const NumaTopology topology{2, 1};

  Vertex root = 0;
  while (forward.partition(0).neighbors(root).empty() &&
         forward.partition(1).neighbors(root).empty())
    ++root;
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;

  BfsStatus healthy_status{edges.vertex_count()};
  BfsSession healthy{storage, topology, pool_, healthy_status, root, config};
  while (healthy.step()) {
  }
  const std::uint64_t requests = healthy.snapshot_result().nvm_requests;
  ASSERT_GT(requests, 20u);

  device_->inject_failure_after(requests / 2);
  BfsStatus faulted_status{edges.vertex_count()};
  BfsSession faulted{storage, topology, pool_, faulted_status, root, config};
  EXPECT_THROW(
      while (faulted.step()) {}, NvmIoError);
}

TEST_F(FaultInjectionTest, StatsNotCorruptedByFailure) {
  NvmFile file{device_, dir_.path() + "/stats.bin"};
  const char payload[8] = "1234567";
  file.write(0, std::as_bytes(std::span<const char>{payload}));
  device_->stats().reset();

  device_->inject_failure_after(1);
  char c;
  EXPECT_THROW(file.read(0, std::as_writable_bytes(std::span<char>{&c, 1})),
               std::runtime_error);
  // The failed request never entered the queue accounting; a subsequent
  // read produces exactly one completed request.
  file.read(0, std::as_writable_bytes(std::span<char>{&c, 1}));
  const IoStatsSnapshot s = device_->stats().snapshot();
  EXPECT_EQ(s.requests, 1u);
}

}  // namespace
}  // namespace sembfs
