#include "graph500/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sembfs {
namespace {

TEST(Scenario, DramOnlyShape) {
  const Scenario s = Scenario::dram_only();
  EXPECT_EQ(s.kind, ScenarioKind::DramOnly);
  EXPECT_FALSE(s.offload_forward);
  EXPECT_EQ(s.backward_dram_edges, -1);
  EXPECT_EQ(s.name, "DRAM-only");
}

TEST(Scenario, PcieFlashShape) {
  const Scenario s = Scenario::dram_pcie_flash();
  EXPECT_TRUE(s.offload_forward);
  EXPECT_EQ(s.nvm_profile.name, "pcie_flash");
  EXPECT_EQ(s.name, "DRAM+PCIeFlash");
}

TEST(Scenario, SsdShape) {
  const Scenario s = Scenario::dram_ssd();
  EXPECT_TRUE(s.offload_forward);
  EXPECT_EQ(s.nvm_profile.name, "sata_ssd");
}

TEST(Scenario, ByNameAliases) {
  EXPECT_EQ(Scenario::by_name("dram").kind, ScenarioKind::DramOnly);
  EXPECT_EQ(Scenario::by_name("dram_only").kind, ScenarioKind::DramOnly);
  EXPECT_EQ(Scenario::by_name("pcie_flash").kind,
            ScenarioKind::DramPcieFlash);
  EXPECT_EQ(Scenario::by_name("pcieflash").kind, ScenarioKind::DramPcieFlash);
  EXPECT_EQ(Scenario::by_name("ssd").kind, ScenarioKind::DramSsd);
  EXPECT_EQ(Scenario::by_name("sata_ssd").kind, ScenarioKind::DramSsd);
}

TEST(Scenario, ByNameRejectsUnknown) {
  EXPECT_THROW(Scenario::by_name("tape"), std::invalid_argument);
}

TEST(Scenario, EffectiveProfileAppliesTimeScale) {
  Scenario s = Scenario::dram_ssd();
  s.time_scale = 0.25;
  const DeviceProfile p = s.effective_profile();
  EXPECT_DOUBLE_EQ(p.time_scale, 0.25);
  EXPECT_EQ(p.name, "sata_ssd");
}

TEST(Scenario, DescribeMentionsOffloads) {
  Scenario s = Scenario::dram_pcie_flash();
  s.backward_dram_edges = 8;
  const std::string d = s.describe();
  EXPECT_NE(d.find("pcie_flash"), std::string::npos);
  EXPECT_NE(d.find("8"), std::string::npos);
  EXPECT_EQ(Scenario::dram_only().describe().find("capped"),
            std::string::npos);
}

}  // namespace
}  // namespace sembfs
