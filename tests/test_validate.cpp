#include "bfs/validate.hpp"

#include <gtest/gtest.h>

#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = fixtures::small_graph();
    const Csr csr = build_csr(edges_, CsrBuildOptions{}, pool_);
    const ReferenceBfsResult ref = reference_bfs(csr, 0);
    parent_ = ref.parent;
    level_ = ref.level;
  }

  ThreadPool pool_{2};
  EdgeList edges_;
  std::vector<Vertex> parent_;
  std::vector<std::int32_t> level_;
};

TEST_F(ValidateTest, CorrectTreePasses) {
  const ValidationResult r = validate_bfs(edges_, 0, parent_, level_);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.reached, 5);
  EXPECT_EQ(r.edges_checked, 6);
  EXPECT_EQ(r.self_loops_skipped, 0);
}

TEST_F(ValidateTest, RootMustBeSelfParented) {
  parent_[0] = 1;
  const ValidationResult r = validate_bfs(edges_, 0, parent_, level_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("root"), std::string::npos);
}

TEST_F(ValidateTest, RootLevelMustBeZero) {
  level_[0] = 1;
  EXPECT_FALSE(validate_bfs(edges_, 0, parent_, level_).ok);
}

TEST_F(ValidateTest, LevelMustBeParentPlusOne) {
  level_[2] = 3;  // should be 2
  const ValidationResult r = validate_bfs(edges_, 0, parent_, level_);
  EXPECT_FALSE(r.ok);
}

TEST_F(ValidateTest, ParentOfReachedMustBeReached) {
  parent_[2] = 6;  // 6 is unreached
  level_[2] = 1;   // keep other properties plausible... still broken
  EXPECT_FALSE(validate_bfs(edges_, 0, parent_, level_).ok);
}

TEST_F(ValidateTest, CrossComponentEdgeDetected) {
  // Claim vertex 5 (other component) reached with a fake tree edge.
  parent_[5] = 0;
  level_[5] = 1;
  const ValidationResult r = validate_bfs(edges_, 0, parent_, level_);
  EXPECT_FALSE(r.ok);
  // Either the 5-6 edge spans reached/unreached, or 5's tree link (0) is
  // not a real edge.
}

TEST_F(ValidateTest, MissedVertexDetected) {
  // Un-reach vertex 2 while its neighbor 1 stays reached.
  parent_[2] = kNoVertex;
  level_[2] = -1;
  const ValidationResult r = validate_bfs(edges_, 0, parent_, level_);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("reached and unreached"), std::string::npos);
}

TEST_F(ValidateTest, FakeTreeEdgeDetected) {
  // Vertex 2's real parent is 1; claim 3 (no 2-3 edge exists).
  parent_[2] = 3;
  EXPECT_FALSE(validate_bfs(edges_, 0, parent_, level_).ok);
}

TEST_F(ValidateTest, LevelSkipAcrossEdgeDetected) {
  // Edge 1-4: force levels 1 and 3 (difference 2).
  level_[4] = 3;
  parent_[4] = 2;  // level 2 vertex so parent+1 holds
  EXPECT_FALSE(validate_bfs(edges_, 0, parent_, level_).ok);
}

TEST_F(ValidateTest, UnreachedVertexWithLevelDetected) {
  level_[6] = 4;  // parent stays -1
  EXPECT_FALSE(validate_bfs(edges_, 0, parent_, level_).ok);
}

TEST_F(ValidateTest, SelfLoopsSkippedNotChecked) {
  edges_.add(0, 0);
  const ValidationResult r = validate_bfs(edges_, 0, parent_, level_);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.self_loops_skipped, 1);
}

TEST_F(ValidateTest, ExternalEdgeListValidation) {
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  const std::string path = ::testing::TempDir() + "/sembfs_validate.bin";
  ExternalEdgeList ext{device, path, edges_.vertex_count()};
  ext.append_all(edges_);
  const ValidationResult r = validate_bfs(ext, 0, parent_, level_);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.edges_checked, 6);
  remove_file_if_exists(path);
}

TEST_F(ValidateTest, RootOutOfRangeFails) {
  EXPECT_FALSE(validate_bfs(edges_, 99, parent_, level_).ok);
}

TEST_F(ValidateTest, SizeMismatchFails) {
  parent_.pop_back();
  EXPECT_FALSE(validate_bfs(edges_, 0, parent_, level_).ok);
}

TEST(ValidateIsolatedRoot, SingleVertexTreePasses) {
  ThreadPool pool{2};
  const EdgeList edges = fixtures::small_graph();
  const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
  const ReferenceBfsResult ref = reference_bfs(csr, 7);  // isolated
  const ValidationResult r = validate_bfs(edges, 7, ref.parent, ref.level);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.reached, 1);
}

}  // namespace
}  // namespace sembfs
