#include "nvm/io_stats.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sembfs {
namespace {

TEST(IoStats, StartsZeroed) {
  IoStats stats;
  const IoStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.avg_request_sectors, 0.0);
}

TEST(IoStats, CountsRequestsAndBytes) {
  IoStats stats;
  for (int i = 0; i < 5; ++i) {
    const auto t = stats.on_arrival();
    stats.on_completion(t, 1024, 0.0);
  }
  const IoStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.requests, 5u);
  EXPECT_EQ(s.bytes, 5120u);
  EXPECT_EQ(s.sectors, 10u);  // 1024 B = 2 x 512 B sectors
  EXPECT_DOUBLE_EQ(s.avg_request_sectors, 2.0);
}

TEST(IoStats, SectorRoundingUp) {
  IoStats stats;
  const auto t = stats.on_arrival();
  stats.on_completion(t, 1, 0.0);  // 1 byte still occupies a sector
  EXPECT_EQ(stats.snapshot().sectors, 1u);
}

TEST(IoStats, CustomSectorSize) {
  IoStats stats{4096};
  const auto t = stats.on_arrival();
  stats.on_completion(t, 8192, 0.0);
  EXPECT_EQ(stats.snapshot().sectors, 2u);
}

TEST(IoStats, QueueIntegralReflectsConcurrency) {
  IoStats stats;
  // Two overlapping requests held ~20ms: avgqu-sz should be near 2.
  const auto a = stats.on_arrival();
  const auto b = stats.on_arrival();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stats.on_completion(a, 512, 0.02);
  stats.on_completion(b, 512, 0.02);
  const IoStatsSnapshot s = stats.snapshot();
  EXPECT_GT(s.avg_queue_length, 1.0);
  EXPECT_LE(s.avg_queue_length, 2.5);
}

TEST(IoStats, AwaitTracksWallTime) {
  IoStats stats;
  const auto t = stats.on_arrival();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stats.on_completion(t, 512, 0.01);
  const IoStatsSnapshot s = stats.snapshot();
  EXPECT_GE(s.await_ms, 9.0);
  EXPECT_LT(s.await_ms, 100.0);
}

TEST(IoStats, ResetClearsWindow) {
  IoStats stats;
  const auto t = stats.on_arrival();
  stats.on_completion(t, 512, 0.0);
  stats.reset();
  const IoStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_LT(s.elapsed_seconds, 1.0);
}

TEST(IoStats, ThroughputComputed) {
  IoStats stats;
  const auto t = stats.on_arrival();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stats.on_completion(t, 1 << 20, 0.005);
  EXPECT_GT(stats.snapshot().throughput_bps(), 0.0);
}

TEST(IoStats, IdleQueueContributesZero) {
  IoStats stats;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto t = stats.on_arrival();
  stats.on_completion(t, 512, 0.0);
  // Queue was empty for almost the whole window.
  EXPECT_LT(stats.snapshot().avg_queue_length, 0.5);
}

}  // namespace
}  // namespace sembfs
