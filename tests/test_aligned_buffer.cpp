#include "util/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace sembfs {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.size(), 0u);
}

TEST(AlignedBuffer, PageAlignment) {
  AlignedBuffer b = make_page_buffer(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kPageSize, 0u);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.alignment(), kPageSize);
}

TEST(AlignedBuffer, CacheLineAlignment) {
  AlignedBuffer b = make_cache_aligned_buffer(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineSize, 0u);
}

TEST(AlignedBuffer, ZeroFills) {
  AlignedBuffer b{256, 64};
  std::memset(b.data(), 0xAB, b.size());
  b.zero();
  for (const std::byte x : b.bytes()) EXPECT_EQ(x, std::byte{0});
}

TEST(AlignedBuffer, TypedView) {
  AlignedBuffer b{8 * sizeof(std::uint64_t), 64};
  auto view = b.as<std::uint64_t>();
  ASSERT_EQ(view.size(), 8u);
  view[3] = 0xDEADBEEF;
  EXPECT_EQ(b.as<std::uint64_t>()[3], 0xDEADBEEFu);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a{64, 64};
  a.as<std::uint64_t>()[0] = 42;
  const std::byte* ptr = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.as<std::uint64_t>()[0], 42u);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer a{64, 64};
  AlignedBuffer b{128, 64};
  b = std::move(a);
  EXPECT_EQ(b.size(), 64u);
}

TEST(AlignedBuffer, SizeNotMultipleOfAlignmentStillWorks) {
  AlignedBuffer b{4097, kPageSize};  // aligned_alloc needs padded size
  EXPECT_EQ(b.size(), 4097u);
  std::memset(b.data(), 1, b.size());  // must not crash
}

TEST(AlignedBufferDeath, RejectsNonPowerOfTwoAlignment) {
  EXPECT_DEATH(AlignedBuffer(64, 3), "Precondition");
}

}  // namespace
}  // namespace sembfs
