// MutableGraph lifecycle: snapshot publication and pinning, delta-aware
// storage views, compaction folding (fold_delta), generation-directory
// retirement, publish-hook ordering, and the stats surface.
#include "graph/mutable_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/compaction.hpp"
#include "graph/csr.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

// Serial mirror of the mutation semantics: apply ops in order to a flat
// multiset of edges (remove kills every present copy of the pair).
EdgeList apply_ops_reference(const EdgeList& base,
                             std::span<const EdgeOp> ops) {
  std::vector<Edge> edges{base.edges().begin(), base.edges().end()};
  for (const EdgeOp& op : ops) {
    if (op.kind == EdgeOp::Kind::Insert) {
      edges.push_back(Edge{op.u, op.v});
    } else {
      const auto same_pair = [&](const Edge& e) {
        return (e.u == op.u && e.v == op.v) || (e.u == op.v && e.v == op.u);
      };
      edges.erase(std::remove_if(edges.begin(), edges.end(), same_pair),
                  edges.end());
    }
  }
  return EdgeList{base.vertex_count(), std::move(edges)};
}

std::vector<std::int32_t> bfs_levels(const GraphStorage& storage,
                                     Vertex root, ThreadPool& pool) {
  HybridBfsRunner runner{storage, NumaTopology{2, 1}, pool};
  return runner.run(root, BfsConfig{}).level;
}

std::vector<std::int32_t> reference_levels(const EdgeList& edges,
                                           Vertex root, ThreadPool& pool) {
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);
  return reference_bfs(full, root).level;
}

TEST(FoldDeltaTest, FoldsTombstonesAndInserts) {
  EdgeList base{6};
  base.add(0, 1);
  base.add(0, 1);  // multi-edge: folded out as a unit
  base.add(1, 2);
  base.add(3, 4);
  const std::vector<EdgeOp> ops{EdgeOp::remove(0, 1), EdgeOp::insert(2, 3),
                                EdgeOp::insert(2, 3)};
  const DeltaBuffer delta = DeltaBuffer::build(
      6, ops, [](Vertex u, Vertex w) -> std::int64_t {
        return ((u == 0 && w == 1) || (u == 1 && w == 0)) ? 2 : 0;
      });
  FoldStats stats;
  const EdgeList folded = fold_delta(base, delta, &stats);
  EXPECT_EQ(stats.base_edges, 4u);
  EXPECT_EQ(stats.dropped, 2u);    // both 0-1 copies
  EXPECT_EQ(stats.appended, 2u);   // two 2-3 inserts
  EXPECT_EQ(stats.folded_edges, 4u);
  EXPECT_EQ(folded.edge_count(), 4u);
  // Dropped pairs are gone, inserted multiplicity survives.
  std::size_t pair01 = 0, pair23 = 0;
  for (const Edge& e : folded.edges()) {
    const Vertex lo = std::min(e.u, e.v), hi = std::max(e.u, e.v);
    if (lo == 0 && hi == 1) ++pair01;
    if (lo == 2 && hi == 3) ++pair23;
  }
  EXPECT_EQ(pair01, 0u);
  EXPECT_EQ(pair23, 2u);
}

TEST(MutableGraphTest, ApplyPublishesDeltaSnapshotsSharingTheBase) {
  ThreadPool pool{2};
  MutableGraphConfig config;
  config.numa_nodes = 2;
  MutableGraph graph{fixtures::small_graph(), config, pool};

  const auto v0 = graph.snapshot();
  EXPECT_EQ(v0->version(), 0u);
  EXPECT_EQ(v0->base_id(), 0u);
  EXPECT_TRUE(v0->compacted());
  EXPECT_EQ(v0->delta(), nullptr);

  const std::vector<EdgeOp> batch{EdgeOp::insert(2, 5)};
  EXPECT_EQ(graph.apply(batch), 1u);
  const auto v1 = graph.snapshot();
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->base_id(), 0u);  // apply shares the base: no rebuild
  ASSERT_NE(v1->delta(), nullptr);
  EXPECT_FALSE(v1->compacted());

  // The pinned v0 still serves the pre-mutation view while v1 sees the
  // merged one: 5 and 6 become reachable from 0 only through 2-5.
  const auto l0 = bfs_levels(v0->storage(), 0, pool);
  const auto l1 = bfs_levels(v1->storage(), 0, pool);
  EXPECT_EQ(l0[5], -1);
  EXPECT_EQ(l0[6], -1);
  EXPECT_EQ(l1[5], 3);
  EXPECT_EQ(l1[6], 4);

  // Merged-view degree flows through the storage facade.
  EXPECT_EQ(v1->storage().degree(5), 2);
  EXPECT_EQ(v0->storage().degree(5), 1);
}

TEST(MutableGraphTest, CompactFoldsAndMatchesSerialReference) {
  ThreadPool pool{2};
  MutableGraphConfig config;
  config.numa_nodes = 2;
  const EdgeList base = fixtures::small_graph();
  MutableGraph graph{base, config, pool};

  std::vector<EdgeOp> ops{EdgeOp::insert(2, 5), EdgeOp::remove(0, 3),
                          EdgeOp::insert(4, 7)};
  graph.apply(ops);
  const auto merged = graph.snapshot();
  const std::uint64_t compacted_version = graph.compact();
  const auto compacted = graph.snapshot();
  EXPECT_EQ(compacted->version(), compacted_version);
  EXPECT_EQ(compacted->base_id(), 1u);
  EXPECT_TRUE(compacted->compacted());

  const EdgeList expected = apply_ops_reference(base, ops);
  const auto ref = reference_levels(expected, 0, pool);
  const auto before = bfs_levels(merged->storage(), 0, pool);
  const auto after = bfs_levels(compacted->storage(), 0, pool);
  for (Vertex v = 0; v < base.vertex_count(); ++v) {
    EXPECT_EQ(before[v], ref[v]) << "merged view v " << v;
    EXPECT_EQ(after[v], ref[v]) << "compacted view v " << v;
  }

  // Compacting again with nothing pending is a no-op.
  EXPECT_EQ(graph.compact(), compacted_version);

  const MutableGraphStats stats = graph.stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.pending_ops, 0u);
  EXPECT_EQ(stats.base_edges, expected.edge_count());
  EXPECT_EQ(stats.delta_inserts, 0u);
}

TEST(MutableGraphTest, PublishHookObservesEveryVersionInOrder) {
  ThreadPool pool{2};
  MutableGraphConfig config;
  config.numa_nodes = 2;
  MutableGraph graph{fixtures::small_graph(), config, pool};

  std::vector<std::uint64_t> versions;
  std::vector<bool> compacted_flags;
  graph.set_publish_hook(
      [&](const std::shared_ptr<const GraphSnapshot>& snap) {
        versions.push_back(snap->version());
        compacted_flags.push_back(snap->compacted());
      });

  const std::vector<EdgeOp> a{EdgeOp::insert(2, 5)};
  const std::vector<EdgeOp> b{EdgeOp::insert(0, 7)};
  graph.apply(a);
  graph.apply(b);
  graph.compact();
  graph.set_publish_hook({});
  graph.apply(a);  // hook cleared: not observed

  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0], 1u);
  EXPECT_EQ(versions[1], 2u);
  EXPECT_EQ(versions[2], 3u);
  EXPECT_FALSE(compacted_flags[0]);
  EXPECT_FALSE(compacted_flags[1]);
  EXPECT_TRUE(compacted_flags[2]);
}

TEST(MutableGraphTest, ExternalGenerationsRetireWithTheirLastSnapshot) {
  ThreadPool pool{2};
  testutil::ScopedTestDir scratch{"mutgen"};
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());

  MutableGraphConfig config;
  config.forward = MutableForwardKind::kExternal;
  config.numa_nodes = 2;
  config.workdir = scratch.path();
  config.device = device;
  MutableGraph graph{fixtures::small_graph(), config, pool};

  const std::string gen0 = scratch.path() + "/gen0";
  const std::string gen1 = scratch.path() + "/gen1";
  ASSERT_TRUE(std::filesystem::exists(gen0));

  auto pinned = graph.snapshot();  // pins gen0 across the compaction
  const std::vector<EdgeOp> ops{EdgeOp::insert(2, 5)};
  graph.apply(ops);
  graph.compact();
  EXPECT_TRUE(std::filesystem::exists(gen1));
  // gen0 must survive while the pinned snapshot still reads it...
  EXPECT_TRUE(std::filesystem::exists(gen0));
  const auto levels = bfs_levels(pinned->storage(), 0, pool);
  EXPECT_EQ(levels[5], -1);  // still the pre-mutation view
  // ...and retire once the last reference drops.
  pinned.reset();
  EXPECT_FALSE(std::filesystem::exists(gen0));
  EXPECT_TRUE(std::filesystem::exists(gen1));

  // The compacted external generation serves the folded graph.
  const auto after = bfs_levels(graph.snapshot()->storage(), 0, pool);
  EXPECT_EQ(after[5], 3);
}

TEST(MutableGraphTest, RemoveKillsBaseMultiEdgesAsAUnit) {
  ThreadPool pool{2};
  EdgeList base{4};
  base.add(0, 1);
  base.add(0, 1);  // Kronecker-style multi-edge
  base.add(1, 2);
  MutableGraphConfig config;
  config.numa_nodes = 2;
  MutableGraph graph{base, config, pool};

  const std::vector<EdgeOp> ops{EdgeOp::remove(0, 1)};
  graph.apply(ops);
  const auto snap = graph.snapshot();
  EXPECT_EQ(snap->storage().degree(0), 0);
  const auto levels = bfs_levels(snap->storage(), 0, pool);
  EXPECT_EQ(levels[1], -1);
  EXPECT_EQ(levels[2], -1);
}

}  // namespace
}  // namespace sembfs
