// QueryEngine behavior: admission control, deadlines, cancellation,
// correctness of served results (both execution paths), fault
// containment, and deterministic trace replay.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <filesystem>
#include <thread>

#include "analytics_references.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph/external_csr.hpp"
#include "graph_fixtures.hpp"
#include "nvm/device_profile.hpp"
#include "nvm/nvm_device.hpp"
#include "serve/batch_planner.hpp"
#include "serve/load_gen.hpp"
#include "test_util.hpp"

namespace sembfs::serve {
namespace {

class ServeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 17), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 2};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    full_ = build_csr(edges_, CsrBuildOptions{}, pool_);
    storage_ = GraphStorage{};
    storage_.forward_dram = &forward_;
    storage_.backward_dram = &backward_;
  }

  void expect_matches_reference(const QueryResult& result) {
    const ReferenceBfsResult ref = reference_bfs(full_, result.root);
    ASSERT_EQ(result.level.size(), ref.level.size());
    for (std::size_t v = 0; v < ref.level.size(); ++v)
      ASSERT_EQ(result.level[v], ref.level[v])
          << "root=" << result.root << " v=" << v;
    EXPECT_EQ(result.visited, ref.visited);
  }

  ThreadPool pool_{4};
  NumaTopology topology_{2, 1};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  Csr full_;
  GraphStorage storage_;
};

TEST_F(ServeEngineTest, BatchedQueriesMatchReference) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  std::vector<QueryRef> queries;
  for (Vertex root = 0; root < 16; ++root)
    queries.push_back(engine.submit(root));
  for (const QueryRef& query : queries) {
    query->wait();
    ASSERT_EQ(query->state(), QueryState::Done) << query->result().error;
    EXPECT_TRUE(query->result().batched);
    expect_matches_reference(query->result());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.done, 16u);
  EXPECT_EQ(stats.batched_queries, 16u);
  EXPECT_EQ(stats.session_queries, 0u);
}

TEST_F(ServeEngineTest, SessionQueriesMatchReference) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  QueryOptions options;
  options.batchable = false;
  std::vector<QueryRef> queries;
  for (Vertex root = 0; root < 8; ++root)
    queries.push_back(engine.submit(root, options));
  for (const QueryRef& query : queries) {
    query->wait();
    ASSERT_EQ(query->state(), QueryState::Done) << query->result().error;
    EXPECT_FALSE(query->result().batched);
    expect_matches_reference(query->result());
  }
  EXPECT_EQ(engine.stats().session_queries, 8u);
}

TEST_F(ServeEngineTest, MixedPathsAgreeOnResults) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  QueryOptions session;
  session.batchable = false;
  const Vertex root = 3;
  const QueryRef batched = engine.submit(root);
  const QueryRef solo = engine.submit(root, session);
  batched->wait();
  solo->wait();
  ASSERT_EQ(batched->state(), QueryState::Done);
  ASSERT_EQ(solo->state(), QueryState::Done);
  EXPECT_EQ(batched->result().level, solo->result().level);
  EXPECT_EQ(batched->result().visited, solo->result().visited);
}

TEST_F(ServeEngineTest, MixedBfsAndAnalyticsTraffic) {
  // Analytics programs share the dispatcher with BFS traffic: one
  // superstep per tick, interleaved with levels of the concurrent BFS
  // queries — and every answer must still match its serial reference.
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  const QueryRef cc = engine.submit_analytics(QueryKind::Components);
  const QueryRef pr = engine.submit_analytics(QueryKind::PageRank);
  const QueryRef tc = engine.submit_analytics(QueryKind::Triangles);
  std::vector<QueryRef> traversals;
  for (Vertex root = 0; root < 8; ++root)
    traversals.push_back(engine.submit(root));

  for (const QueryRef& query : traversals) {
    query->wait();
    ASSERT_EQ(query->state(), QueryState::Done) << query->result().error;
    expect_matches_reference(query->result());
  }

  cc->wait();
  ASSERT_EQ(cc->state(), QueryState::Done) << cc->result().error;
  EXPECT_EQ(cc->result().kind, QueryKind::Components);
  const std::vector<Vertex> labels = testref::reference_components(full_);
  ASSERT_EQ(cc->result().labels, labels);
  std::vector<bool> seen(labels.size(), false);
  std::int64_t distinct = 0;
  for (const Vertex label : labels)
    if (!seen[static_cast<std::size_t>(label)]) {
      seen[static_cast<std::size_t>(label)] = true;
      ++distinct;
    }
  EXPECT_EQ(cc->result().component_count, distinct);
  EXPECT_GT(cc->result().supersteps, 0);

  pr->wait();
  ASSERT_EQ(pr->state(), QueryState::Done) << pr->result().error;
  EXPECT_EQ(pr->result().kind, QueryKind::PageRank);
  ASSERT_EQ(pr->result().ranks.size(), labels.size());
  const std::vector<double> expected_ranks = testref::reference_pagerank(
      full_, EngineConfig{}.pagerank.damping, pr->result().supersteps);
  for (std::size_t v = 0; v < expected_ranks.size(); ++v)
    ASSERT_NEAR(pr->result().ranks[v], expected_ranks[v], 1e-9) << "v=" << v;

  tc->wait();
  ASSERT_EQ(tc->state(), QueryState::Done) << tc->result().error;
  EXPECT_EQ(tc->result().kind, QueryKind::Triangles);
  EXPECT_EQ(tc->result().triangles, testref::reference_triangles(full_));

  // The done counter is bumped after waiters wake; give it a beat.
  EngineStats stats = engine.stats();
  for (int spin = 0; spin < 1000 && stats.done != 11u; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = engine.stats();
  }
  EXPECT_EQ(stats.analytics_queries, 3u);
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.done, 11u);
}

TEST_F(ServeEngineTest, BoundedQueueRejects) {
  EngineConfig config;
  config.autostart = false;  // queue can only fill while nothing drains it
  config.queue_capacity = 2;
  QueryEngine engine{storage_, topology_, pool_, config};
  const QueryRef a = engine.submit(0);
  const QueryRef b = engine.submit(1);
  const QueryRef c = engine.submit(2);
  EXPECT_EQ(c->state(), QueryState::Rejected);
  EXPECT_TRUE(c->finished());
  EXPECT_FALSE(a->finished());
  engine.start();
  engine.drain();
  EXPECT_EQ(a->state(), QueryState::Done);
  EXPECT_EQ(b->state(), QueryState::Done);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.done, 2u);
}

TEST_F(ServeEngineTest, DeadlineExpiresWhileQueued) {
  EngineConfig config;
  config.autostart = false;
  QueryEngine engine{storage_, topology_, pool_, config};
  QueryOptions options;
  options.deadline_ms = 0.01;  // expires long before start()
  const QueryRef query = engine.submit(0, options);
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  engine.start();
  query->wait();
  EXPECT_EQ(query->state(), QueryState::DeadlineExpired);
  EXPECT_TRUE(query->result().level.empty());  // never ran a level
  EXPECT_GT(query->result().queue_wait_ms, 0.0);
}

TEST_F(ServeEngineTest, CancelBeforeStart) {
  EngineConfig config;
  config.autostart = false;
  QueryEngine engine{storage_, topology_, pool_, config};
  const QueryRef query = engine.submit(0);
  query->cancel();
  engine.start();
  query->wait();
  EXPECT_EQ(query->state(), QueryState::Cancelled);
}

TEST_F(ServeEngineTest, MaxLevelsTruncatesBothPaths) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  QueryOptions khop;
  khop.max_levels = 2;
  QueryOptions khop_session = khop;
  khop_session.batchable = false;
  const QueryRef batched = engine.submit(0, khop);
  const QueryRef solo = engine.submit(0, khop_session);
  batched->wait();
  solo->wait();
  ASSERT_EQ(batched->state(), QueryState::Done);
  ASSERT_EQ(solo->state(), QueryState::Done);
  const ReferenceBfsResult ref = reference_bfs(full_, 0);
  for (const QueryRef& query : {batched, solo}) {
    const QueryResult& result = query->result();
    EXPECT_LE(result.depth, 2);
    for (std::size_t v = 0; v < result.level.size(); ++v) {
      if (ref.level[v] >= 0 && ref.level[v] <= 2)
        EXPECT_EQ(result.level[v], ref.level[v]) << "v=" << v;
      else
        EXPECT_EQ(result.level[v], -1) << "v=" << v;
    }
  }
}

TEST_F(ServeEngineTest, ShutdownRejectsLateSubmits) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  engine.shutdown();
  const QueryRef late = engine.submit(0);
  EXPECT_EQ(late->state(), QueryState::Rejected);
}

// Fault containment: with the forward graph on a faulty device and a zero
// error budget, session queries degrade to the DRAM bottom-up fallback —
// every query still completes with reference-exact levels, and queries
// untouched by faults report no degradation.
TEST_F(ServeEngineTest, FaultsAreContainedPerQuery) {
  testutil::ScopedTestDir scratch{"serve_fault"};
  const std::string& dir = scratch.path();
  DeviceProfile profile = DeviceProfile::by_name("pcie_flash");
  profile.time_scale = 0.001;
  auto device = std::make_shared<NvmDevice>(profile);
  ExternalForwardGraph external{forward_, device, dir};
  FaultPlan plan;
  plan.seed = 99;
  plan.read_error_rate = 0.02;
  device->set_fault_plan(plan);

  GraphStorage storage;
  storage.forward_external = &external;
  storage.backward_dram = &backward_;
  QueryEngine engine{storage, topology_, pool_, EngineConfig{}};
  QueryOptions options;
  options.batchable = false;  // sessions: the NVM-touching path
  std::vector<QueryRef> queries;
  for (Vertex root = 0; root < 8; ++root)
    queries.push_back(engine.submit(root, options));
  int degraded = 0;
  for (const QueryRef& query : queries) {
    query->wait();
    ASSERT_EQ(query->state(), QueryState::Done) << query->result().error;
    expect_matches_reference(query->result());
    if (query->result().degraded) ++degraded;
  }
  // The plan's rate makes some but not all queries hit a fault; either way
  // no fault may spread beyond its own query.
  EXPECT_EQ(engine.stats().failed, 0u);
  engine.shutdown();
}

// Goodput accounting: qps counts only Done queries. A regression divided
// (issued - rejected) by wall time, which reported healthy "throughput"
// for a run where every query missed its deadline; that number now lives
// in offered_qps instead.
TEST_F(ServeEngineTest, LoadGenQpsIsGoodputNotOfferedLoad) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  LoadGenConfig load;
  load.clients = 2;
  load.queries_per_client = 8;
  load.options.deadline_ms = 1e-4;  // expires before any level can run
  const LoadGenReport report = run_load(engine, edges_.vertex_count(), load);

  EXPECT_EQ(report.issued, 16u);
  EXPECT_GT(report.deadline_expired, 0u);
  ASSERT_GT(report.seconds, 0.0);
  // qps reconstructs from Done alone; offered_qps from admitted load.
  EXPECT_NEAR(report.qps, static_cast<double>(report.done) / report.seconds,
              1e-9);
  EXPECT_NEAR(report.offered_qps,
              static_cast<double>(report.issued - report.rejected) /
                  report.seconds,
              1e-9);
  // With expirations in the mix the two must split apart — the old
  // formula made them identical.
  EXPECT_LT(report.qps, report.offered_qps);
}

TEST_F(ServeEngineTest, LoadGenHealthyRunQpsMatchesOfferedLoad) {
  QueryEngine engine{storage_, topology_, pool_, EngineConfig{}};
  LoadGenConfig load;
  load.clients = 2;
  load.queries_per_client = 4;  // no deadline: every query completes
  const LoadGenReport report = run_load(engine, edges_.vertex_count(), load);
  EXPECT_EQ(report.done, report.issued);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_NEAR(report.qps, report.offered_qps, 1e-9);
  EXPECT_GT(report.qps, 0.0);
}

// Determinism: replaying the same seeded trace through a deferred-start
// engine yields byte-identical per-query results and identical
// deterministic engine stats.
TEST_F(ServeEngineTest, SeededTraceReplaysIdentically) {
  const std::vector<Vertex> trace =
      generate_trace(123, 40, edges_.vertex_count());

  struct Replay {
    std::vector<std::vector<std::int32_t>> level;
    std::vector<std::vector<Vertex>> parent;
    std::vector<std::int64_t> visited;
    std::vector<std::int32_t> depth;
    std::vector<QueryState> state;
    EngineStats stats;
  };
  const auto run_once = [&] {
    EngineConfig config;
    config.autostart = false;  // whole trace queued -> batch formation is
                               // a pure function of admission order
    QueryEngine engine{storage_, topology_, pool_, config};
    std::vector<QueryRef> queries;
    for (const Vertex root : trace) queries.push_back(engine.submit(root));
    engine.start();
    engine.drain();
    Replay replay;
    for (const QueryRef& query : queries) {
      const QueryResult& result = query->result();
      replay.level.push_back(result.level);
      replay.parent.push_back(result.parent);
      replay.visited.push_back(result.visited);
      replay.depth.push_back(result.depth);
      replay.state.push_back(result.state);
    }
    replay.stats = engine.stats();
    return replay;
  };

  const Replay first = run_once();
  const Replay second = run_once();
  EXPECT_EQ(first.level, second.level);
  EXPECT_EQ(first.parent, second.parent);
  EXPECT_EQ(first.visited, second.visited);
  EXPECT_EQ(first.depth, second.depth);
  EXPECT_EQ(first.state, second.state);
  EXPECT_EQ(first.stats.submitted, second.stats.submitted);
  EXPECT_EQ(first.stats.done, second.stats.done);
  EXPECT_EQ(first.stats.batches, second.stats.batches);
  EXPECT_EQ(first.stats.batched_queries, second.stats.batched_queries);
  EXPECT_EQ(first.stats.session_queries, second.stats.session_queries);
}

TEST(BatchPlannerTest, PacksFifoAndDedupsRoots) {
  std::deque<QueryRef> queued;
  const auto enqueue = [&](Vertex root) {
    queued.push_back(
        std::make_shared<Query>(queued.size() + 1, root, QueryOptions{}));
  };
  enqueue(5);
  enqueue(9);
  enqueue(5);  // rider on lane 0
  enqueue(2);
  const BatchPlan plan = plan_batch(queued, 8);
  EXPECT_TRUE(queued.empty());
  ASSERT_EQ(plan.width(), 3u);
  EXPECT_EQ(plan.roots, (std::vector<Vertex>{5, 9, 2}));
  ASSERT_EQ(plan.queries.size(), 4u);
  EXPECT_EQ(plan.lane_of, (std::vector<std::size_t>{0, 1, 0, 2}));
}

TEST(BatchPlannerTest, LaneCapStopsInOrder) {
  std::deque<QueryRef> queued;
  for (Vertex root = 0; root < 6; ++root)
    queued.push_back(
        std::make_shared<Query>(root + 1, root, QueryOptions{}));
  const BatchPlan plan = plan_batch(queued, 4);
  EXPECT_EQ(plan.width(), 4u);
  EXPECT_EQ(plan.queries.size(), 4u);
  ASSERT_EQ(queued.size(), 2u);  // FIFO remainder, order preserved
  EXPECT_EQ(queued[0]->root(), 4);
  EXPECT_EQ(queued[1]->root(), 5);
}

TEST(BatchPlannerTest, QueryCapBoundsRiders) {
  // Regression: make_batch once planned with no rider cap, so a skewed
  // root distribution let one batch swallow an unbounded queue.
  std::deque<QueryRef> queued;
  for (std::size_t i = 0; i < 10; ++i)
    queued.push_back(std::make_shared<Query>(i + 1, 7, QueryOptions{}));
  const BatchPlan plan = plan_batch(queued, 8, 4);
  EXPECT_EQ(plan.width(), 1u);
  EXPECT_EQ(plan.queries.size(), 4u);
  EXPECT_EQ(queued.size(), 6u);  // the rest waits for the next batch
}

TEST(BatchPlannerTest, EmptyQueueYieldsEmptyPlan) {
  std::deque<QueryRef> queued;
  EXPECT_TRUE(plan_batch(queued, 64).empty());
}

// Satellite regression: a single-root flood must be split across batches
// by max_batch_queries instead of riding one batch unboundedly.
TEST_F(ServeEngineTest, SingleRootFloodRespectsRiderCap) {
  EngineConfig config;
  config.autostart = false;  // whole flood queued before any planning
  config.queue_capacity = 512;
  config.max_batch_queries = 50;
  QueryEngine engine{storage_, topology_, pool_, config};
  std::vector<QueryRef> queries;
  for (int i = 0; i < 300; ++i) queries.push_back(engine.submit(11));
  engine.start();
  engine.drain();
  for (const QueryRef& query : queries) {
    ASSERT_EQ(query->state(), QueryState::Done) << query->result().error;
    expect_matches_reference(query->result());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.batched_queries, 300u);
  // 300 riders at <= 50 per batch = at least 6 batches.
  EXPECT_GE(stats.batches, 6u);
  engine.shutdown();
}

TEST_F(ServeEngineTest, TenantQuotaRejectsImmediately) {
  EngineConfig config;
  config.autostart = false;  // nothing drains: in-flight stays up
  config.tenant_quota = 2;
  QueryEngine engine{storage_, topology_, pool_, config};
  QueryOptions t0;
  t0.tenant = 0;
  QueryOptions t1;
  t1.tenant = 1;
  const QueryRef a = engine.submit(0, t0);
  const QueryRef b = engine.submit(1, t0);
  const QueryRef c = engine.submit(2, t0);  // tenant 0 over quota
  const QueryRef d = engine.submit(3, t1);  // tenant 1 unaffected
  EXPECT_EQ(c->state(), QueryState::Rejected);
  EXPECT_EQ(c->result().error, "tenant quota exceeded");
  EXPECT_FALSE(a->finished());
  EXPECT_FALSE(b->finished());
  EXPECT_FALSE(d->finished());
  EXPECT_EQ(engine.stats().quota_rejected, 1u);
  engine.start();
  engine.drain();
  // Quota released at finalize: tenant 0 can submit again.
  const QueryRef e = engine.submit(4, t0);
  e->wait();
  EXPECT_EQ(e->state(), QueryState::Done);
}

TEST_F(ServeEngineTest, HighReserveKeepsHeadroomForHighLane) {
  EngineConfig config;
  config.autostart = false;
  config.queue_capacity = 4;
  config.high_reserve = 2;  // normal lane saturates at 2
  QueryEngine engine{storage_, topology_, pool_, config};
  QueryOptions high;
  high.priority = Priority::High;
  const QueryRef n1 = engine.submit(0);
  const QueryRef n2 = engine.submit(1);
  const QueryRef n3 = engine.submit(2);  // normal beyond capacity - reserve
  EXPECT_EQ(n3->state(), QueryState::Rejected);
  const QueryRef h1 = engine.submit(3, high);
  const QueryRef h2 = engine.submit(4, high);
  EXPECT_FALSE(h1->finished());  // reserved headroom admits the high lane
  EXPECT_FALSE(h2->finished());
  const QueryRef h3 = engine.submit(5, high);  // full is full, even for high
  EXPECT_EQ(h3->state(), QueryState::Rejected);
  engine.start();
  engine.drain();
  for (const QueryRef& q : {n1, n2, h1, h2}) EXPECT_EQ(q->state(), QueryState::Done);
}

// Cache hits must be byte-identical to the executed result (the
// differential check the CI serving job relies on), never touch the
// dispatcher, and respect the options key and generation invalidation.
TEST_F(ServeEngineTest, ResultCacheServesExactHitsAndInvalidates) {
  EngineConfig config;
  config.cache_bytes = 4 << 20;
  QueryEngine engine{storage_, topology_, pool_, config};
  const Vertex root = 6;
  const QueryRef cold = engine.submit(root);
  cold->wait();
  ASSERT_EQ(cold->state(), QueryState::Done);
  EXPECT_FALSE(cold->result().cache_hit);

  const QueryRef hot = engine.submit(root);
  hot->wait();
  ASSERT_EQ(hot->state(), QueryState::Done);
  EXPECT_TRUE(hot->result().cache_hit);
  // Differential: the cached answer equals the executed one, which equals
  // the serial reference.
  EXPECT_EQ(hot->result().level, cold->result().level);
  EXPECT_EQ(hot->result().visited, cold->result().visited);
  expect_matches_reference(hot->result());
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);

  // Options-mismatch bypass: a k-hop query must not be served the full
  // traversal.
  QueryOptions khop;
  khop.max_levels = 1;
  const QueryRef capped = engine.submit(root, khop);
  capped->wait();
  ASSERT_EQ(capped->state(), QueryState::Done);
  EXPECT_FALSE(capped->result().cache_hit);
  for (const std::int32_t l : capped->result().level) EXPECT_LE(l, 1);

  // Generation bump: the invalidation hook empties the cache.
  engine.invalidate_cache();
  const QueryRef after = engine.submit(root);
  after->wait();
  ASSERT_EQ(after->state(), QueryState::Done);
  EXPECT_FALSE(after->result().cache_hit);
  EXPECT_EQ(engine.cache_stats().invalidations, 1u);
}

TEST_F(ServeEngineTest, LoadGenRetriesRejectionsWithBackoff) {
  // A 1-deep queue with a deferred dispatcher start forces rejections;
  // retries must be counted separately and eventually succeed once the
  // dispatcher drains the queue.
  EngineConfig config;
  config.queue_capacity = 1;
  QueryEngine engine{storage_, topology_, pool_, config};
  LoadGenConfig load;
  load.clients = 4;
  load.queries_per_client = 8;
  load.max_retries = 50;
  load.retry_backoff_ms = 0.1;
  const LoadGenReport report = run_load(engine, edges_.vertex_count(), load);
  EXPECT_EQ(report.issued, 32u);
  // Retried-then-accepted queries are goodput, not inflation: every
  // logical outcome sums to issued regardless of how many retries ran.
  EXPECT_EQ(report.done + report.failed + report.cancelled +
                report.deadline_expired + report.rejected,
            report.issued);
  EXPECT_GT(report.done, 0u);
}

}  // namespace
}  // namespace sembfs::serve
