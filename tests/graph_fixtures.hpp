// Shared small-graph fixtures for the test suite.
#pragma once

#include "graph/edge_list.hpp"
#include "graph/csr.hpp"
#include "graph/kronecker.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs::fixtures {

// A 8-vertex undirected graph used across the BFS tests:
//
//        0 -- 1 -- 2        5 -- 6
//        |    |
//        3 -- 4              7 (isolated)
//
// BFS from 0: levels {0:0, 1:1, 3:1, 2:2, 4:2}; 5,6,7 unreachable.
inline EdgeList small_graph() {
  EdgeList edges{8};
  edges.add(0, 1);
  edges.add(1, 2);
  edges.add(0, 3);
  edges.add(1, 4);
  edges.add(3, 4);
  edges.add(5, 6);
  return edges;
}

// A path 0-1-2-3-4-5-6-7 (deep BFS, frontier of one vertex per level).
inline EdgeList path_graph(Vertex n = 8) {
  EdgeList edges{n};
  for (Vertex v = 0; v + 1 < n; ++v) edges.add(v, v + 1);
  return edges;
}

// A star: vertex 0 connected to all others (frontier explodes at level 1).
inline EdgeList star_graph(Vertex n = 16) {
  EdgeList edges{n};
  for (Vertex v = 1; v < n; ++v) edges.add(0, v);
  return edges;
}

// A complete graph K_n.
inline EdgeList complete_graph(Vertex n = 8) {
  EdgeList edges{n};
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) edges.add(u, v);
  return edges;
}

inline KroneckerParams small_kronecker(int scale = 10, int edge_factor = 8,
                                       std::uint64_t seed = 42) {
  KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  return params;
}

}  // namespace sembfs::fixtures
