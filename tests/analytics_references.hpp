// Simple single-threaded in-memory references for the analytics programs.
//
// Deliberately naive — a BFS flood fill, a textbook synchronous PageRank,
// a sorted-adjacency triangle intersect — so a bug in the engine's
// frontier/scatter machinery cannot hide in a shared implementation.
// Components and triangle counts are exact; PageRank is compared
// epsilon-bounded by running the reference for the same number of
// synchronous iterations the engine executed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sembfs::testref {

/// Per-vertex component label = smallest vertex id in the component
/// (BFS flood fill, the same fixpoint label propagation converges to).
inline std::vector<Vertex> reference_components(const Csr& csr) {
  const Vertex n = csr.global_vertex_count();
  std::vector<Vertex> label(static_cast<std::size_t>(n), kNoVertex);
  std::vector<Vertex> queue;
  for (Vertex root = 0; root < n; ++root) {
    if (label[static_cast<std::size_t>(root)] != kNoVertex) continue;
    label[static_cast<std::size_t>(root)] = root;
    queue.clear();
    queue.push_back(root);
    std::size_t head = 0;
    while (head < queue.size()) {
      const Vertex v = queue[head++];
      for (const Vertex w : csr.neighbors(v)) {
        if (label[static_cast<std::size_t>(w)] == kNoVertex) {
          label[static_cast<std::size_t>(w)] = root;
          queue.push_back(w);
        }
      }
    }
  }
  return label;
}

/// `iterations` synchronous PageRank steps with dangling-mass
/// redistribution: rank' = (1-d)/n + d*(sum_in + dangling/n). Matches the
/// engine's update rule exactly; only the float summation order differs.
inline std::vector<double> reference_pagerank(const Csr& csr, double damping,
                                              std::int32_t iterations) {
  const auto n = static_cast<std::size_t>(csr.global_vertex_count());
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::int32_t iter = 0; iter < iterations; ++iter) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      const auto adj = csr.neighbors(static_cast<Vertex>(v));
      if (adj.empty()) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(adj.size());
      for (const Vertex w : adj) next[static_cast<std::size_t>(w)] += share;
    }
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    for (std::size_t v = 0; v < n; ++v)
      next[v] = base + damping * next[v];
    rank.swap(next);
  }
  return rank;
}

/// Exact global triangle count over the undirected graph: each triangle
/// {u < v < w} counted once via sorted-adjacency intersection. Duplicate
/// edges and self-loops are dropped the same way the engine's
/// sort+unique adjacency gathering drops them.
inline std::int64_t reference_triangles(const Csr& csr) {
  const Vertex n = csr.global_vertex_count();
  std::vector<std::vector<Vertex>> adj(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    const auto span = csr.neighbors(v);
    auto& a = adj[static_cast<std::size_t>(v)];
    a.assign(span.begin(), span.end());
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  std::int64_t triangles = 0;
  for (Vertex v = 0; v < n; ++v) {
    const auto& av = adj[static_cast<std::size_t>(v)];
    for (const Vertex w : av) {
      if (w <= v) continue;
      const auto& aw = adj[static_cast<std::size_t>(w)];
      // Intersect the tails > w of adj(v) and adj(w).
      auto iv = std::upper_bound(av.begin(), av.end(), w);
      auto iw = std::upper_bound(aw.begin(), aw.end(), w);
      while (iv != av.end() && iw != aw.end()) {
        if (*iv < *iw)
          ++iv;
        else if (*iw < *iv)
          ++iw;
        else {
          ++triangles;
          ++iv;
          ++iw;
        }
      }
    }
  }
  return triangles;
}

}  // namespace sembfs::testref
