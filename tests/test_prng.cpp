#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sembfs {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoroshiro128, DeterministicForSeed) {
  Xoroshiro128 a{7};
  Xoroshiro128 b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoroshiro128, NextDoubleInUnitInterval) {
  Xoroshiro128 rng{123};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoroshiro128, NextDoubleMeanNearHalf) {
  Xoroshiro128 rng{99};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoroshiro128, NextBelowRespectsBound) {
  Xoroshiro128 rng{5};
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoroshiro128, NextBelowOneIsAlwaysZero) {
  Xoroshiro128 rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoroshiro128, NextBelowCoversSmallRange) {
  Xoroshiro128 rng{17};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(DeriveSeed, StreamsAreIndependent) {
  const std::uint64_t base = 12345;
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(base, s));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions in a small sample
}

TEST(DeriveSeed, DeterministicPerStream) {
  EXPECT_EQ(derive_seed(1, 5), derive_seed(1, 5));
  EXPECT_NE(derive_seed(1, 5), derive_seed(2, 5));
  EXPECT_NE(derive_seed(1, 5), derive_seed(1, 6));
}

TEST(Xoroshiro128, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoroshiro128::min() == 0);
  static_assert(Xoroshiro128::max() == ~std::uint64_t{0});
  Xoroshiro128 rng{3};
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace sembfs
