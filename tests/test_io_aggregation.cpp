#include "graph/external_csr.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class IoAggregationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/sembfs_agg";
    std::filesystem::remove_all(dir_);
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 51), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 2};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    external_ = std::make_unique<ExternalForwardGraph>(forward_, device_,
                                                       dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ThreadPool pool_{4};
  std::string dir_;
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalForwardGraph> external_;
};

TEST_F(IoAggregationTest, BatchedFetchMatchesPerVertexFetch) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < edges_.vertex_count(); v += 7) batch.push_back(v);

  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched);

  std::vector<Vertex> single;
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single) << "v=" << batch[i];
  }
}

TEST_F(IoAggregationTest, UnsortedAndDuplicateBatch) {
  ExternalCsrPartition& part = external_->partition(0);
  const std::vector<Vertex> batch = {90, 3, 90, 512, 3, 0};
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single) << "slot " << i;
  }
}

TEST_F(IoAggregationTest, EmptyBatchIssuesNothing) {
  ExternalCsrPartition& part = external_->partition(0);
  device_->stats().reset();
  std::vector<std::vector<Vertex>> batched;
  EXPECT_EQ(part.fetch_neighbors_batch({}, batched), 0u);
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_F(IoAggregationTest, AggregationReducesRequestCount) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 100; v < 164; ++v) batch.push_back(v);  // 64 consecutive

  std::uint64_t per_vertex = 0;
  std::vector<Vertex> single;
  for (const Vertex v : batch) per_vertex += part.fetch_neighbors(v, single);

  std::vector<std::vector<Vertex>> batched;
  const std::uint64_t aggregated =
      part.fetch_neighbors_batch(batch, batched);
  EXPECT_LT(aggregated, per_vertex / 4);
}

TEST_F(IoAggregationTest, ZeroGapStillCorrect) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch = {5, 6, 7, 1000, 1001};
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched, /*merge_gap_bytes=*/0);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single);
  }
}

TEST_F(IoAggregationTest, TinyMaxRequestStillCorrect) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < 64; ++v) batch.push_back(v);
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched, 4096, /*max_request=*/64);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single);
  }
}

TEST_F(IoAggregationTest, AggregatedBfsMatchesReference) {
  const BackwardGraph backward =
      BackwardGraph::build(edges_, partition_, CsrBuildOptions{}, pool_);
  const Csr full = build_csr(edges_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_external = external_.get();
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};

  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;  // maximize the aggregated path
  config.aggregate_io = true;

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const BfsResult result = runner.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "v=" << v;
}

TEST_F(IoAggregationTest, AggregatedBfsIssuesFewerRequests) {
  const BackwardGraph backward =
      BackwardGraph::build(edges_, partition_, CsrBuildOptions{}, pool_);
  const Csr full = build_csr(edges_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_external = external_.get();
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;

  BfsConfig plain;
  plain.mode = BfsMode::TopDownOnly;
  const std::uint64_t chunked = runner.run(root, plain).nvm_requests;

  BfsConfig aggregated = plain;
  aggregated.aggregate_io = true;
  const std::uint64_t merged = runner.run(root, aggregated).nvm_requests;
  EXPECT_LT(merged, chunked);
}

TEST_F(IoAggregationTest, AggregationRaisesAvgRequestSize) {
  const BackwardGraph backward =
      BackwardGraph::build(edges_, partition_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_external = external_.get();
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;

  BfsConfig plain;
  plain.mode = BfsMode::TopDownOnly;
  device_->stats().reset();
  runner.run(root, plain);
  const double plain_rq = device_->stats().snapshot().avg_request_sectors;

  BfsConfig aggregated = plain;
  aggregated.aggregate_io = true;
  device_->stats().reset();
  runner.run(root, aggregated);
  const double merged_rq = device_->stats().snapshot().avg_request_sectors;
  EXPECT_GT(merged_rq, plain_rq);  // the Figure-13 "aggregate I/O" effect
}

}  // namespace
}  // namespace sembfs
