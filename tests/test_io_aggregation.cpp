#include "graph/external_csr.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class IoAggregationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 51), pool_);
    partition_ = VertexPartition{edges_.vertex_count(), 2};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    external_ = std::make_unique<ExternalForwardGraph>(forward_, device_,
                                                       dir_.path());
  }
  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"agg"};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalForwardGraph> external_;
};

TEST_F(IoAggregationTest, BatchedFetchMatchesPerVertexFetch) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < edges_.vertex_count(); v += 7) batch.push_back(v);

  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched);

  std::vector<Vertex> single;
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single) << "v=" << batch[i];
  }
}

TEST_F(IoAggregationTest, UnsortedAndDuplicateBatch) {
  ExternalCsrPartition& part = external_->partition(0);
  const std::vector<Vertex> batch = {90, 3, 90, 512, 3, 0};
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single) << "slot " << i;
  }
}

TEST_F(IoAggregationTest, EmptyBatchIssuesNothing) {
  ExternalCsrPartition& part = external_->partition(0);
  device_->stats().reset();
  std::vector<std::vector<Vertex>> batched;
  EXPECT_EQ(part.fetch_neighbors_batch({}, batched), 0u);
  EXPECT_EQ(device_->stats().request_count(), 0u);
}

TEST_F(IoAggregationTest, AggregationReducesRequestCount) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 100; v < 164; ++v) batch.push_back(v);  // 64 consecutive

  std::uint64_t per_vertex = 0;
  std::vector<Vertex> single;
  for (const Vertex v : batch) per_vertex += part.fetch_neighbors(v, single);

  std::vector<std::vector<Vertex>> batched;
  const std::uint64_t aggregated =
      part.fetch_neighbors_batch(batch, batched);
  EXPECT_LT(aggregated, per_vertex / 4);
}

TEST_F(IoAggregationTest, ZeroGapStillCorrect) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch = {5, 6, 7, 1000, 1001};
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched, /*merge_gap_bytes=*/0);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single);
  }
}

TEST_F(IoAggregationTest, TinyMaxRequestStillCorrect) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < 64; ++v) batch.push_back(v);
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched, 4096, /*max_request=*/64);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single);
  }
}

TEST_F(IoAggregationTest, AllEmptyBatchNeedsOnlyIndexReads) {
  ExternalCsrPartition& part = external_->partition(0);
  const Csr& dram = forward_.partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < edges_.vertex_count() && batch.size() < 8; ++v)
    if (dram.degree(v) == 0) batch.push_back(v);
  ASSERT_FALSE(batch.empty()) << "fixture needs isolated vertices";

  device_->stats().reset();
  std::vector<std::vector<Vertex>> batched(3, std::vector<Vertex>{Vertex{7}});
  const std::uint64_t requests = part.fetch_neighbors_batch(batch, batched);
  ASSERT_EQ(batched.size(), batch.size());
  for (const auto& adjacency : batched) EXPECT_TRUE(adjacency.empty());
  EXPECT_GT(requests, 0u);  // the index phase still runs
  EXPECT_EQ(device_->stats().request_count(), requests);
}

TEST_F(IoAggregationTest, AdjacencyLargerThanMaxRequestStillCorrect) {
  ExternalCsrPartition& part = external_->partition(0);
  const Csr& dram = forward_.partition(0);
  Vertex hub = 0;
  for (Vertex v = 1; v < edges_.vertex_count(); ++v)
    if (dram.degree(v) > dram.degree(hub)) hub = v;
  const std::uint64_t hub_bytes =
      static_cast<std::uint64_t>(dram.degree(hub)) * sizeof(Vertex);
  ASSERT_GT(hub_bytes, 256u) << "fixture needs a hub";

  // A max_request smaller than the hub's own adjacency: merging is
  // all-or-nothing per slot, so the run survives merge_ranges intact and
  // is sliced into <= max_request device reads at issue time.
  const std::vector<Vertex> batch = {hub, 1, hub};
  std::vector<std::vector<Vertex>> batched;
  part.fetch_neighbors_batch(batch, batched, 4096, /*max_request=*/256);
  std::vector<Vertex> single;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    part.fetch_neighbors(batch[i], single);
    ASSERT_EQ(batched[i], single) << "slot " << i;
  }
}

TEST_F(IoAggregationTest, OversizeRunSplitsAtRequestCap) {
  // Regression: a single adjacency run longer than max_request used to be
  // issued as ONE unsplit device request, silently violating the cap the
  // caller set to bound per-request device latency.
  ExternalCsrPartition& part = external_->partition(0);
  const Csr& dram = forward_.partition(0);
  Vertex hub = 0;
  for (Vertex v = 1; v < edges_.vertex_count(); ++v)
    if (dram.degree(v) > dram.degree(hub)) hub = v;
  const std::uint64_t hub_bytes =
      static_cast<std::uint64_t>(dram.degree(hub)) * sizeof(Vertex);
  constexpr std::uint32_t kCap = 256;
  ASSERT_GT(hub_bytes, kCap) << "fixture needs a hub";

  const std::vector<Vertex> batch = {hub};
  std::vector<std::vector<Vertex>> batched;
  const std::uint64_t capped =
      part.fetch_neighbors_batch(batch, batched, 4096, kCap);
  // Index phase: one 16-byte request. Value phase: the hub's run sliced at
  // the cap.
  const std::uint64_t value_requests = (hub_bytes + kCap - 1) / kCap;
  EXPECT_EQ(capped, 1 + value_requests);
  std::vector<Vertex> single;
  part.fetch_neighbors(hub, single);
  ASSERT_EQ(batched[0], single);

  // An uncapped fetch of the same batch needs far fewer requests — the cap
  // is what forces the split, not the run length.
  const std::uint64_t uncapped =
      part.fetch_neighbors_batch(batch, batched, 4096, 1 << 20);
  EXPECT_LT(uncapped, capped);
}

TEST_F(IoAggregationTest, AsyncOversizeRunSplitsLikeSync) {
  // The async scheduler path must slice oversize runs identically, or
  // request accounting diverges between the sync and prefetch paths.
  ExternalCsrPartition& part = external_->partition(0);
  const Csr& dram = forward_.partition(0);
  IoScheduler scheduler{4};
  Vertex hub = 0;
  for (Vertex v = 1; v < edges_.vertex_count(); ++v)
    if (dram.degree(v) > dram.degree(hub)) hub = v;
  constexpr std::uint32_t kCap = 256;

  const std::vector<Vertex> batch = {hub, 1, hub, 42};
  std::vector<std::vector<Vertex>> sync_out;
  const std::uint64_t sync_requests =
      part.fetch_neighbors_batch(batch, sync_out, 4096, kCap);

  PendingNeighborsBatch pending =
      part.start_fetch_neighbors_batch(batch, scheduler, 4096, kCap);
  ASSERT_TRUE(pending.valid());
  std::vector<std::vector<Vertex>> async_out;
  const std::uint64_t async_requests = pending.wait(async_out);

  EXPECT_EQ(async_requests, sync_requests);
  ASSERT_EQ(async_out.size(), sync_out.size());
  for (std::size_t i = 0; i < sync_out.size(); ++i)
    ASSERT_EQ(async_out[i], sync_out[i]) << "slot " << i;
}

TEST_F(IoAggregationTest, BatchAtPartitionSourceBoundary) {
  for (std::size_t k = 0; k < external_->node_count(); ++k) {
    ExternalCsrPartition& part = external_->partition(k);
    const VertexRange range = part.source_range();
    const std::vector<Vertex> batch = {range.begin, range.end - 1,
                                       range.begin};
    std::vector<std::vector<Vertex>> batched;
    part.fetch_neighbors_batch(batch, batched);
    std::vector<Vertex> single;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      part.fetch_neighbors(batch[i], single);
      ASSERT_EQ(batched[i], single) << "node " << k << " slot " << i;
    }
  }
}

TEST_F(IoAggregationTest, DuplicateHeavyBatchDoesNotMultiplyRequests) {
  ExternalCsrPartition& part = external_->partition(0);
  Vertex v = 0;
  while (forward_.partition(0).degree(v) == 0) ++v;
  const std::vector<Vertex> once = {v};
  std::vector<std::vector<Vertex>> batched;
  const std::uint64_t single_requests =
      part.fetch_neighbors_batch(once, batched);

  const std::vector<Vertex> many(64, v);
  const std::uint64_t dup_requests =
      part.fetch_neighbors_batch(many, batched);
  // Contained ranges merge: 64 copies cost the same I/O as one.
  EXPECT_EQ(dup_requests, single_requests);
  for (const auto& adjacency : batched) ASSERT_EQ(adjacency, batched.front());
}

TEST_F(IoAggregationTest, AsyncBatchMatchesSyncBatch) {
  ExternalCsrPartition& part = external_->partition(0);
  IoScheduler scheduler{4};
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < edges_.vertex_count(); v += 5) batch.push_back(v);

  std::vector<std::vector<Vertex>> sync_out;
  const std::uint64_t sync_requests =
      part.fetch_neighbors_batch(batch, sync_out);

  PendingNeighborsBatch pending =
      part.start_fetch_neighbors_batch(batch, scheduler);
  ASSERT_TRUE(pending.valid());
  std::vector<std::vector<Vertex>> async_out;
  const std::uint64_t async_requests = pending.wait(async_out);

  EXPECT_EQ(async_requests, sync_requests);
  ASSERT_EQ(async_out.size(), sync_out.size());
  for (std::size_t i = 0; i < sync_out.size(); ++i)
    ASSERT_EQ(async_out[i], sync_out[i]) << "slot " << i;
}

TEST_F(IoAggregationTest, ManyPendingBatchesInFlightAtOnce) {
  ExternalCsrPartition& part = external_->partition(0);
  IoScheduler scheduler{3};
  constexpr std::size_t kBatches = 16;
  std::vector<std::vector<Vertex>> batches(kBatches);
  std::vector<PendingNeighborsBatch> pending;
  for (std::size_t b = 0; b < kBatches; ++b) {
    for (Vertex v = static_cast<Vertex>(b); v < edges_.vertex_count();
         v += kBatches)
      batches[b].push_back(v);
    pending.push_back(part.start_fetch_neighbors_batch(batches[b], scheduler));
  }
  std::vector<std::vector<Vertex>> out;
  std::vector<Vertex> single;
  for (std::size_t b = 0; b < kBatches; ++b) {
    pending[b].wait(out);
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      part.fetch_neighbors(batches[b][i], single);
      ASSERT_EQ(out[i], single) << "batch " << b << " slot " << i;
    }
  }
}

TEST_F(IoAggregationTest, ChunkCacheCutsRepeatBatchRequests) {
  ExternalCsrPartition& part = external_->partition(0);
  std::vector<Vertex> batch;
  for (Vertex v = 0; v < edges_.vertex_count(); v += 3) batch.push_back(v);

  ChunkCache& cache = external_->enable_chunk_cache(8 << 20);
  std::vector<std::vector<Vertex>> cold_out;
  const std::uint64_t cold = part.fetch_neighbors_batch(batch, cold_out);
  std::vector<std::vector<Vertex>> warm_out;
  const std::uint64_t warm = part.fetch_neighbors_batch(batch, warm_out);
  EXPECT_LT(warm, cold);
  EXPECT_GT(cache.stats().hits, 0u);
  for (std::size_t i = 0; i < batch.size(); ++i)
    ASSERT_EQ(warm_out[i], cold_out[i]);

  // Detaching restores the direct path and its request counts.
  external_->disable_chunk_cache();
  EXPECT_EQ(part.cache(), nullptr);
  std::vector<std::vector<Vertex>> plain_out;
  EXPECT_EQ(part.fetch_neighbors_batch(batch, plain_out), cold);
}

TEST_F(IoAggregationTest, EnableChunkCacheIsIdempotentPerCapacity) {
  ChunkCache& first = external_->enable_chunk_cache(1 << 20);
  ChunkCache& again = external_->enable_chunk_cache(1 << 20);
  EXPECT_EQ(&first, &again);  // unchanged capacity keeps the warm cache
  ChunkCache& rebuilt = external_->enable_chunk_cache(2 << 20);
  EXPECT_EQ(rebuilt.capacity_bytes(), std::size_t{2} << 20);
  IoScheduler& sched = external_->enable_io_scheduler(4);
  EXPECT_EQ(&sched, &external_->enable_io_scheduler(4));
  EXPECT_EQ(external_->enable_io_scheduler(2).queue_depth(), 2u);
}

TEST_F(IoAggregationTest, AggregatedBfsMatchesReference) {
  const BackwardGraph backward =
      BackwardGraph::build(edges_, partition_, CsrBuildOptions{}, pool_);
  const Csr full = build_csr(edges_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_external = external_.get();
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};

  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;  // maximize the aggregated path
  config.aggregate_io = true;

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;
  const BfsResult result = runner.run(root, config);
  const ReferenceBfsResult ref = reference_bfs(full, root);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "v=" << v;
}

TEST_F(IoAggregationTest, AggregatedBfsIssuesFewerRequests) {
  const BackwardGraph backward =
      BackwardGraph::build(edges_, partition_, CsrBuildOptions{}, pool_);
  const Csr full = build_csr(edges_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_external = external_.get();
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};

  Vertex root = 0;
  while (full.degree(root) == 0) ++root;

  BfsConfig plain;
  plain.mode = BfsMode::TopDownOnly;
  const std::uint64_t chunked = runner.run(root, plain).nvm_requests;

  BfsConfig aggregated = plain;
  aggregated.aggregate_io = true;
  const std::uint64_t merged = runner.run(root, aggregated).nvm_requests;
  EXPECT_LT(merged, chunked);
}

TEST_F(IoAggregationTest, AggregationRaisesAvgRequestSize) {
  const BackwardGraph backward =
      BackwardGraph::build(edges_, partition_, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_external = external_.get();
  storage.backward_dram = &backward;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;

  BfsConfig plain;
  plain.mode = BfsMode::TopDownOnly;
  device_->stats().reset();
  runner.run(root, plain);
  const double plain_rq = device_->stats().snapshot().avg_request_sectors;

  BfsConfig aggregated = plain;
  aggregated.aggregate_io = true;
  device_->stats().reset();
  runner.run(root, aggregated);
  const double merged_rq = device_->stats().snapshot().avg_request_sectors;
  EXPECT_GT(merged_rq, plain_rq);  // the Figure-13 "aggregate I/O" effect
}

}  // namespace
}  // namespace sembfs
