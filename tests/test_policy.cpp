#include "bfs/policy.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

PolicyInput input(Direction cur, std::int64_t n_all, std::int64_t prev,
                  std::int64_t now) {
  PolicyInput in;
  in.current = cur;
  in.n_all = n_all;
  in.prev_frontier = prev;
  in.cur_frontier = now;
  return in;
}

// --- The paper's rule (Section III-C) ---

TEST(FrontierRatioPolicy, SwitchesToBottomUpWhenGrowingPastThreshold) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  // n/alpha = 100; frontier grew 50 -> 200 > 100: switch.
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 50, 200)),
            Direction::BottomUp);
}

TEST(FrontierRatioPolicy, StaysTopDownWhenGrowingBelowThreshold) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 50, 80)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, StaysTopDownWhenShrinkingEvenIfLarge) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  // Both conditions are required: frontier must be GROWING.
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 500, 200)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, SwitchesBackWhenShrinkingBelowBeta) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  // n/beta = 10; frontier shrank 50 -> 5 < 10: switch back.
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 50, 5)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, StaysBottomUpWhenShrinkingAboveBeta) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 50, 20)),
            Direction::BottomUp);
}

TEST(FrontierRatioPolicy, StaysBottomUpWhenGrowing) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 5, 2000)),
            Direction::BottomUp);
}

TEST(FrontierRatioPolicy, SmallAlphaSwitchesEagerly) {
  // alpha = n means threshold n/alpha = 1 vertex.
  SwitchPolicy eager{PolicyKind::FrontierRatio, 1e6, 1e5};
  EXPECT_EQ(eager.decide(input(Direction::TopDown, 1'000'000, 1, 2)),
            Direction::BottomUp);
  // alpha = 1 means threshold = n: never reachable.
  SwitchPolicy never{PolicyKind::FrontierRatio, 1.0, 1e5};
  EXPECT_EQ(never.decide(input(Direction::TopDown, 1'000'000, 1,
                               999'999)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, EqualFrontierIsNeitherGrowingNorShrinking) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 200, 200)),
            Direction::TopDown);
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 5, 5)),
            Direction::BottomUp);
}

// --- Beamer's edge-count rule (extension) ---

TEST(EdgeRatioPolicy, SwitchesOnFrontierEdgeMass) {
  SwitchPolicy p{PolicyKind::EdgeRatio, 14.0, 24.0};
  PolicyInput in = input(Direction::TopDown, 1'000'000, 10, 100);
  in.frontier_edges = 10'000;
  in.unvisited_edges = 100'000;  // m_u / alpha ~= 7143 < m_f: switch
  EXPECT_EQ(p.decide(in), Direction::BottomUp);
  in.frontier_edges = 1'000;  // below threshold: stay
  EXPECT_EQ(p.decide(in), Direction::TopDown);
}

TEST(EdgeRatioPolicy, SwitchesBackOnSmallFrontier) {
  SwitchPolicy p{PolicyKind::EdgeRatio, 14.0, 24.0};
  PolicyInput in = input(Direction::BottomUp, 1'000'000, 50'000,
                         1'000'000 / 24 - 1);
  EXPECT_EQ(p.decide(in), Direction::TopDown);
  in.cur_frontier = 1'000'000 / 24 + 1;
  EXPECT_EQ(p.decide(in), Direction::BottomUp);
}

// Regression: the BU->TD branch once ignored the Section III-C "frontier
// shrinking" precondition that the frontier-ratio rule applies, so a
// still-GROWING frontier that merely started below n/beta (typical right
// after an early TD->BU switch on a skewed graph) bounced straight back to
// top-down at peak frontier width.
TEST(EdgeRatioPolicy, StaysBottomUpWhileFrontierStillGrows) {
  SwitchPolicy p{PolicyKind::EdgeRatio, 1e4, 1e5};
  // n/beta = 10; frontier grew 5 -> 8, both below the threshold.
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 5, 8)),
            Direction::BottomUp);
  // A flat frontier is not shrinking either.
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 8, 8)),
            Direction::BottomUp);
}

// Table-driven sweep of the Section III-C switch conditions as applied by
// the edge-ratio rule: every (trend x threshold) combination on both
// direction edges.
TEST(EdgeRatioPolicy, SectionIIICSwitchTable) {
  const SwitchPolicy p{PolicyKind::EdgeRatio, 14.0, 24.0};
  constexpr std::int64_t n = 1'000'000;  // n/beta ~= 41667
  struct Case {
    const char* name;
    Direction current;
    std::int64_t prev, cur;    // frontier sizes (trend + beta threshold)
    std::int64_t m_f, m_u;     // edge masses (alpha threshold)
    Direction expected;
  };
  const Case cases[] = {
      {"TD: heavy frontier switches", Direction::TopDown, 10, 100, 10'000,
       100'000, Direction::BottomUp},
      {"TD: light frontier stays", Direction::TopDown, 10, 100, 1'000,
       100'000, Direction::TopDown},
      {"BU: shrinking below n/beta switches back", Direction::BottomUp,
       50'000, 40'000, 0, 0, Direction::TopDown},
      {"BU: shrinking above n/beta stays", Direction::BottomUp, 50'000,
       42'000, 0, 0, Direction::BottomUp},
      {"BU: growing below n/beta stays (regression)", Direction::BottomUp,
       100, 1'000, 0, 0, Direction::BottomUp},
      {"BU: flat below n/beta stays", Direction::BottomUp, 1'000, 1'000, 0,
       0, Direction::BottomUp},
  };
  for (const Case& c : cases) {
    PolicyInput in = input(c.current, n, c.prev, c.cur);
    in.frontier_edges = c.m_f;
    in.unvisited_edges = c.m_u;
    EXPECT_EQ(p.decide(in), c.expected) << c.name;
  }
}

// Both rules gate the BU->TD edge identically (frontier trend + n/beta),
// so on inputs where only frontier sizes matter they must agree.
TEST(EdgeRatioPolicy, BottomUpEdgeAgreesWithFrontierRatioRule) {
  const SwitchPolicy edge{PolicyKind::EdgeRatio, 14.0, 1e5};
  const SwitchPolicy frontier{PolicyKind::FrontierRatio, 14.0, 1e5};
  constexpr std::int64_t n = 1'000'000;  // n/beta = 10
  const std::int64_t prevs[] = {5, 9, 12, 50};
  const std::int64_t curs[] = {5, 8, 9, 11, 20};
  for (const std::int64_t prev : prevs) {
    for (const std::int64_t cur : curs) {
      const PolicyInput in = input(Direction::BottomUp, n, prev, cur);
      EXPECT_EQ(edge.decide(in), frontier.decide(in))
          << "prev=" << prev << " cur=" << cur;
    }
  }
}

}  // namespace
}  // namespace sembfs
