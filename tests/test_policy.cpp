#include "bfs/policy.hpp"

#include <gtest/gtest.h>

namespace sembfs {
namespace {

PolicyInput input(Direction cur, std::int64_t n_all, std::int64_t prev,
                  std::int64_t now) {
  PolicyInput in;
  in.current = cur;
  in.n_all = n_all;
  in.prev_frontier = prev;
  in.cur_frontier = now;
  return in;
}

// --- The paper's rule (Section III-C) ---

TEST(FrontierRatioPolicy, SwitchesToBottomUpWhenGrowingPastThreshold) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  // n/alpha = 100; frontier grew 50 -> 200 > 100: switch.
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 50, 200)),
            Direction::BottomUp);
}

TEST(FrontierRatioPolicy, StaysTopDownWhenGrowingBelowThreshold) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 50, 80)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, StaysTopDownWhenShrinkingEvenIfLarge) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  // Both conditions are required: frontier must be GROWING.
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 500, 200)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, SwitchesBackWhenShrinkingBelowBeta) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  // n/beta = 10; frontier shrank 50 -> 5 < 10: switch back.
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 50, 5)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, StaysBottomUpWhenShrinkingAboveBeta) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 50, 20)),
            Direction::BottomUp);
}

TEST(FrontierRatioPolicy, StaysBottomUpWhenGrowing) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 5, 2000)),
            Direction::BottomUp);
}

TEST(FrontierRatioPolicy, SmallAlphaSwitchesEagerly) {
  // alpha = n means threshold n/alpha = 1 vertex.
  SwitchPolicy eager{PolicyKind::FrontierRatio, 1e6, 1e5};
  EXPECT_EQ(eager.decide(input(Direction::TopDown, 1'000'000, 1, 2)),
            Direction::BottomUp);
  // alpha = 1 means threshold = n: never reachable.
  SwitchPolicy never{PolicyKind::FrontierRatio, 1.0, 1e5};
  EXPECT_EQ(never.decide(input(Direction::TopDown, 1'000'000, 1,
                               999'999)),
            Direction::TopDown);
}

TEST(FrontierRatioPolicy, EqualFrontierIsNeitherGrowingNorShrinking) {
  SwitchPolicy p{PolicyKind::FrontierRatio, 1e4, 1e5};
  EXPECT_EQ(p.decide(input(Direction::TopDown, 1'000'000, 200, 200)),
            Direction::TopDown);
  EXPECT_EQ(p.decide(input(Direction::BottomUp, 1'000'000, 5, 5)),
            Direction::BottomUp);
}

// --- Beamer's edge-count rule (extension) ---

TEST(EdgeRatioPolicy, SwitchesOnFrontierEdgeMass) {
  SwitchPolicy p{PolicyKind::EdgeRatio, 14.0, 24.0};
  PolicyInput in = input(Direction::TopDown, 1'000'000, 10, 100);
  in.frontier_edges = 10'000;
  in.unvisited_edges = 100'000;  // m_u / alpha ~= 7143 < m_f: switch
  EXPECT_EQ(p.decide(in), Direction::BottomUp);
  in.frontier_edges = 1'000;  // below threshold: stay
  EXPECT_EQ(p.decide(in), Direction::TopDown);
}

TEST(EdgeRatioPolicy, SwitchesBackOnSmallFrontier) {
  SwitchPolicy p{PolicyKind::EdgeRatio, 14.0, 24.0};
  PolicyInput in = input(Direction::BottomUp, 1'000'000, 50'000,
                         1'000'000 / 24 - 1);
  EXPECT_EQ(p.decide(in), Direction::TopDown);
  in.cur_frontier = 1'000'000 / 24 + 1;
  EXPECT_EQ(p.decide(in), Direction::BottomUp);
}

}  // namespace
}  // namespace sembfs
