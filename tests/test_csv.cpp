#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sembfs {
namespace {

TEST(CsvWriter, RendersHeaderAndRows) {
  CsvWriter w({"scale", "teps"});
  w.add_row({"16", "1.5e8"});
  w.add_row({"17", "1.4e8"});
  EXPECT_EQ(w.render(), "scale,teps\n16,1.5e8\n17,1.4e8\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, EscapedFieldRoundTripsInRender) {
  CsvWriter w({"desc"});
  w.add_row({"DRAM, 64 GB"});
  EXPECT_EQ(w.render(), "desc\n\"DRAM, 64 GB\"\n");
}

TEST(CsvWriter, WritesFile) {
  const std::string path = testing::TempDir() + "/sembfs_csv_test.csv";
  CsvWriter w({"k", "v"});
  w.add_row({"a", "1"});
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "k,v\na,1\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, WriteFileFailsOnBadPath) {
  CsvWriter w({"k"});
  EXPECT_FALSE(w.write_file("/nonexistent-dir-xyz/file.csv"));
}

// Regression: a full disk surfaces at the fclose flush (the small document
// fits in stdio's buffer, so fwrite itself succeeds) and used to be
// reported as success. /dev/full fails every flush with ENOSPC.
TEST(CsvWriter, WriteFileReportsFlushFailure) {
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);
  CsvWriter w({"k"});
  w.add_row({"v"});
  EXPECT_FALSE(w.write_file("/dev/full"));
}

TEST(CsvWriterDeath, RejectsArityMismatch) {
  CsvWriter w({"a", "b"});
  EXPECT_DEATH(w.add_row({"1"}), "Precondition");
}

}  // namespace
}  // namespace sembfs
