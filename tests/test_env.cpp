#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sembfs {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("SEMBFS_TEST_VAR");
    ::unsetenv("SEMBFS_SCALE");
    ::unsetenv("SEMBFS_THREADS");
  }
};

TEST_F(EnvTest, IntFallbackWhenUnset) {
  EXPECT_EQ(env_int("SEMBFS_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, IntParsesValue) {
  ::setenv("SEMBFS_TEST_VAR", "42", 1);
  EXPECT_EQ(env_int("SEMBFS_TEST_VAR", 7), 42);
}

TEST_F(EnvTest, IntFallbackOnGarbage) {
  ::setenv("SEMBFS_TEST_VAR", "12abc", 1);
  EXPECT_EQ(env_int("SEMBFS_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, IntNegative) {
  ::setenv("SEMBFS_TEST_VAR", "-3", 1);
  EXPECT_EQ(env_int("SEMBFS_TEST_VAR", 7), -3);
}

TEST_F(EnvTest, StringFallbackAndValue) {
  EXPECT_EQ(env_string("SEMBFS_TEST_VAR", "fb"), "fb");
  ::setenv("SEMBFS_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("SEMBFS_TEST_VAR", "fb"), "hello");
}

TEST_F(EnvTest, EmptyStringUsesFallback) {
  ::setenv("SEMBFS_TEST_VAR", "", 1);
  EXPECT_EQ(env_string("SEMBFS_TEST_VAR", "fb"), "fb");
  EXPECT_EQ(env_int("SEMBFS_TEST_VAR", 9), 9);
}

TEST_F(EnvTest, DoubleParses) {
  ::setenv("SEMBFS_TEST_VAR", "2.5e-3", 1);
  EXPECT_DOUBLE_EQ(env_double("SEMBFS_TEST_VAR", 1.0), 2.5e-3);
}

TEST_F(EnvTest, BenchEnvDefaults) {
  const BenchEnv env = BenchEnv::resolve();
  EXPECT_EQ(env.scale, 16);
  EXPECT_EQ(env.edge_factor, 16);
  EXPECT_EQ(env.roots, 8);
  EXPECT_EQ(env.numa_nodes, 4);
  EXPECT_GE(env.threads, 1);
  EXPECT_EQ(env.workdir, "/tmp/sembfs");
}

TEST_F(EnvTest, BenchEnvOverrides) {
  ::setenv("SEMBFS_SCALE", "20", 1);
  ::setenv("SEMBFS_THREADS", "3", 1);
  const BenchEnv env = BenchEnv::resolve();
  EXPECT_EQ(env.scale, 20);
  EXPECT_EQ(env.threads, 3);
}

}  // namespace
}  // namespace sembfs
