#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace sembfs::obs {
namespace {

// --- bucket scheme properties -------------------------------------------

TEST(HistogramBuckets, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
    EXPECT_EQ(Histogram::bucket_upper_bound(v), v);
  }
}

TEST(HistogramBuckets, LowerBoundRoundTrips) {
  // The lower bound of every bucket must map back to that bucket, and the
  // value just below it to the previous bucket.
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "lo=" << lo;
    EXPECT_EQ(Histogram::bucket_index(lo - 1), i - 1) << "lo=" << lo;
  }
}

TEST(HistogramBuckets, UpperBoundIsInclusive) {
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t hi = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(hi), i);
    EXPECT_EQ(Histogram::bucket_index(hi + 1), i + 1);
  }
}

TEST(HistogramBuckets, PowerOfTwoBoundarySweep) {
  // 2^k-1, 2^k, 2^k+1 for every representable exponent: the index must be
  // monotone and 2^k must start a new power-of-two range (sub-bucket 0).
  for (int k = 2; k < 64; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    const std::size_t below = Histogram::bucket_index(p - 1);
    const std::size_t at = Histogram::bucket_index(p);
    const std::size_t above = Histogram::bucket_index(p + 1);
    EXPECT_EQ(at, static_cast<std::size_t>(k - 1) * 4) << "k=" << k;
    EXPECT_EQ(below + 1, at) << "k=" << k;
    EXPECT_LE(at, above) << "k=" << k;
    EXPECT_EQ(Histogram::bucket_lower_bound(at), p) << "k=" << k;
  }
}

TEST(HistogramBuckets, EveryValueFitsAndWidthIsBounded) {
  EXPECT_EQ(
      Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
      Histogram::kBucketCount - 1);
  // Relative width <= 25% of the lower bound (2 significant bits).
  for (std::size_t i = 4; i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    const std::uint64_t width = Histogram::bucket_upper_bound(i) - lo + 1;
    EXPECT_LE(width * 4, lo) << "bucket " << i;
  }
}

// --- recording and statistics -------------------------------------------

TEST(Histogram, RecordsCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.record(10);
  h.record(30);
  h.record(20);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 60u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 30u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  const HistogramSnapshot s = Histogram{}.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileOfSingleValue) {
  Histogram h;
  h.record(1000);
  const HistogramSnapshot s = h.snapshot();
  // Clamped to the observed [min, max] regardless of bucket width.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantileEstimatesUniformSeries) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  // Bucket resolution is 25%, so estimates must land within ~13% of the
  // exact rank statistic (half a bucket width).
  const struct {
    double q;
    double exact;
  } cases[] = {{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
  for (const auto& c : cases) {
    const double est = s.quantile(c.q);
    EXPECT_NEAR(est, c.exact, c.exact * 0.13) << "q=" << c.q;
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantileIsMonotoneInQ) {
  Histogram h;
  for (std::uint64_t v = 0; v < 4096; v += 7) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  double prev = s.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = s.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t) * 1000 + (i % 100));
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, (kThreads - 1) * 1000 + 99);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  h.record(7);  // usable after reset
  EXPECT_EQ(h.snapshot().min, 7u);
}

}  // namespace
}  // namespace sembfs::obs
