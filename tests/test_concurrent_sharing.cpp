// Cross-query sharing of the NVM I/O stack and the serving engine's
// client surface, hammered from many threads. These tests exist primarily
// for the TSan CI job: the serving engine makes one ChunkCache and one
// IoScheduler serve EVERY concurrent query, so data races here are
// serving-wide corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "nvm/chunk_cache.hpp"
#include "util/prng.hpp"
#include "nvm/io_scheduler.hpp"
#include "nvm/storage_file.hpp"
#include "serve/engine.hpp"
#include "serve/load_gen.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class ConcurrentSharingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    file_ = std::make_unique<NvmFile>(device_, path());
    payload_.resize(256 * 1024);
    std::iota(payload_.begin(), payload_.end(), 0);
    file_->write(0, std::as_bytes(std::span<const char>{payload_}));
  }
  std::string path() const { return dir_.path() + "/shared.bin"; }

  void expect_bytes(std::span<const std::byte> got, std::uint64_t offset) {
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(static_cast<char>(got[i]), payload_[offset + i])
          << "offset=" << offset << " i=" << i;
  }

  testutil::ScopedTestDir dir_{"concurrent_sharing"};
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  std::vector<char> payload_;
};

// Many reader threads share one ChunkCache over one file: every read must
// return exact file bytes regardless of concurrent insert/evict traffic.
// The cache is deliberately smaller than the file so eviction churns.
TEST_F(ConcurrentSharingTest, ChunkCacheSharedByReaderThreads) {
  ChunkCache cache{32 * 1024};  // 8 chunks for a 64-chunk file
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 200;
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Xoroshiro128 rng{derive_seed(7, static_cast<std::uint64_t>(t))};
      std::vector<std::byte> out;
      for (int i = 0; i < kReadsPerThread; ++i) {
        const std::uint64_t size = 1 + rng.next_below(12000);
        const std::uint64_t offset =
            rng.next_below(payload_.size() - size);
        out.resize(size);
        cache.read(*file_, offset, out);
        expect_bytes(out, offset);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  const ChunkCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// Several submitter threads share one IoScheduler and one ChunkCache —
// the serving engine's exact sharing shape (every query's prefetches land
// on the same scheduler/cache pair).
TEST_F(ConcurrentSharingTest, IoSchedulerAndCacheSharedBySubmitters) {
  ChunkCache cache{64 * 1024};
  IoScheduler scheduler{4};
  constexpr int kThreads = 6;
  constexpr int kReadsPerThread = 120;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Xoroshiro128 rng{derive_seed(11, static_cast<std::uint64_t>(t))};
      std::vector<std::vector<std::byte>> buffers(kReadsPerThread);
      std::vector<std::future<IoResult>> pending;
      std::vector<std::uint64_t> offsets;
      pending.reserve(kReadsPerThread);
      for (int i = 0; i < kReadsPerThread; ++i) {
        const std::uint64_t size = 64 + rng.next_below(8000);
        const std::uint64_t offset =
            rng.next_below(payload_.size() - size);
        buffers[i].resize(size);
        offsets.push_back(offset);
        pending.push_back(
            scheduler.submit_read(*file_, offset, buffers[i], &cache));
      }
      for (int i = 0; i < kReadsPerThread; ++i) {
        const IoResult result = pending[i].get();
        if (!result.ok) {
          ++failures;
          continue;
        }
        expect_bytes(buffers[i], offsets[i]);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// The engine's client surface under contention: many threads submitting,
// waiting, polling and cancelling against one live engine. Runs under
// TSan in CI; the assertions are liveness (every query terminal) and
// accounting consistency.
TEST(ConcurrentServeTest, ManyClientsSubmitWaitCancel) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 23), pool);
  const VertexPartition partition{edges.vertex_count(), 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  const NumaTopology topology{2, 1};

  serve::EngineConfig config;
  config.queue_capacity = 64;
  serve::QueryEngine engine{storage, topology, pool, config};

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 12;
  std::atomic<int> nonterminal{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Xoroshiro128 rng{derive_seed(31, static_cast<std::uint64_t>(c))};
      for (int i = 0; i < kQueriesPerClient; ++i) {
        serve::QueryOptions options;
        options.batchable = rng.next_below(2) == 0;
        const auto root = static_cast<Vertex>(
            rng.next_below(static_cast<std::uint64_t>(edges.vertex_count())));
        const serve::QueryRef query = engine.submit(root, options);
        if (rng.next_below(4) == 0) query->cancel();  // racy on purpose
        query->wait();
        if (!query->finished()) ++nonterminal;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  engine.drain();
  EXPECT_EQ(nonterminal.load(), 0);

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(stats.done + stats.failed + stats.cancelled +
                stats.deadline_expired + stats.rejected,
            stats.submitted);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(stats.failed, 0u);  // DRAM-only storage cannot take I/O faults
}

// Closed-loop load generator sanity on a live engine (also the TSan
// coverage for its client threads).
TEST(ConcurrentServeTest, LoadGenReportAccounting) {
  ThreadPool pool{4};
  const EdgeList edges =
      generate_kronecker(fixtures::small_kronecker(9, 8, 29), pool);
  const VertexPartition partition{edges.vertex_count(), 2};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  const NumaTopology topology{2, 1};
  serve::QueryEngine engine{storage, topology, pool, serve::EngineConfig{}};

  serve::LoadGenConfig load;
  load.clients = 4;
  load.queries_per_client = 8;
  const serve::LoadGenReport report =
      serve::run_load(engine, edges.vertex_count(), load);
  EXPECT_EQ(report.issued, 32u);
  EXPECT_EQ(report.done, 32u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
}

}  // namespace
}  // namespace sembfs
