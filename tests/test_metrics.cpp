#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sembfs::obs {
namespace {

// Tests use their own registries; the global one is shared with the
// instrumented subsystems and would see their traffic.

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Same name in a different kind namespace is a different instrument.
  Gauge& g = reg.gauge("x");
  g.set(-5);
  EXPECT_EQ(reg.counter("x").value(), 3u);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads intern a private name, all hammer a shared one.
      Counter& shared = reg.counter("shared");
      Counter& mine = reg.counter("t" + std::to_string(t % 4));
      Histogram& h = reg.histogram("lat");
      for (int i = 0; i < kIters; ++i) {
        shared.add();
        mine.add();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t private_total = 0;
  for (int t = 0; t < 4; ++t)
    private_total += reg.counter("t" + std::to_string(t)).value();
  EXPECT_EQ(private_total, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zebra").add(1);
  reg.counter("apple").add(2);
  reg.counter("mango").add(3);
  reg.gauge("depth").set(4);
  reg.histogram("lat").record(7);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "apple");
  EXPECT_EQ(snap.counters[1].first, "mango");
  EXPECT_EQ(snap.counters[2].first, "zebra");
  EXPECT_EQ(snap.counters[2].second, 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsNames) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(9);
  reg.histogram("h").record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);           // same handle, zeroed
  EXPECT_EQ(&reg.counter("c"), &c);   // name still interned
  EXPECT_EQ(reg.snapshot().histograms[0].second.count, 0u);
}

TEST(EnabledFlag, TogglesAndDefaultsOff) {
  // The suite never leaves this on; instrumented code in other tests
  // depends on the default-off state.
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(GlobalRegistry, IsASingleton) {
  EXPECT_EQ(&metrics(), &metrics());
}

}  // namespace
}  // namespace sembfs::obs
