#include "bfs/bottom_up.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class BottomUpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = fixtures::small_graph();
    partition_ = VertexPartition{edges_.vertex_count(), 2};
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
  }

  ThreadPool pool_{4};
  NumaTopology topology_{2, 2};
  EdgeList edges_;
  VertexPartition partition_;
  BackwardGraph backward_;
};

TEST_F(BottomUpTest, ClaimsSameFrontierAsTopDownWould) {
  BfsStatus status{8};
  status.reset(0);
  const StepResult r =
      bottom_up_step(backward_, status, 1, topology_, pool_, 2);
  EXPECT_EQ(r.claimed, 2);  // 1 and 3 find 0 in the frontier
  const std::set<Vertex> next(status.next().begin(), status.next().end());
  EXPECT_EQ(next, (std::set<Vertex>{1, 3}));
  EXPECT_EQ(status.parent(1), 0);
  EXPECT_EQ(status.parent(3), 0);
}

TEST_F(BottomUpTest, ParentIsAlwaysFrontierMember) {
  BfsStatus status{8};
  status.reset(0);
  bottom_up_step(backward_, status, 1, topology_, pool_, 2);
  status.advance();  // frontier = {1, 3}
  bottom_up_step(backward_, status, 2, topology_, pool_, 2);
  EXPECT_TRUE(status.is_visited(2));
  EXPECT_TRUE(status.is_visited(4));
  EXPECT_EQ(status.parent(2), 1);
  EXPECT_TRUE(status.parent(4) == 1 || status.parent(4) == 3);
}

TEST_F(BottomUpTest, EarlyExitScansNoMoreAfterHit) {
  // From a full frontier every unvisited vertex stops at its first
  // neighbor: scanned == number of unvisited-with-edges vertices... at most
  // scanned <= sum of degrees; with early exit it is strictly less for
  // vertices whose first neighbor is already in the frontier.
  ThreadPool pool{4};
  const EdgeList edges = fixtures::complete_graph(8);
  const VertexPartition partition{8, 2};
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const NumaTopology topo{2, 2};
  BfsStatus status{8};
  status.reset(0);
  const StepResult r = bottom_up_step(backward, status, 1, topo, pool, 2);
  EXPECT_EQ(r.claimed, 7);
  // K8: every unvisited vertex stops at vertex 0; wherever 0 sits in each
  // adjacency list, total scanned stays within [7, 7*7].
  EXPECT_LE(r.scanned_edges, 49);
  EXPECT_GE(r.scanned_edges, 7);
}

TEST_F(BottomUpTest, UnreachableComponentNeverClaimed) {
  BfsStatus status{8};
  status.reset(0);
  for (int level = 1; level <= 4; ++level) {
    bottom_up_step(backward_, status, level, topology_, pool_, 2);
    status.advance();
  }
  EXPECT_EQ(status.parent(5), kNoVertex);
  EXPECT_EQ(status.parent(6), kNoVertex);
  EXPECT_EQ(status.parent(7), kNoVertex);
  EXPECT_EQ(status.visited_count(), 5);
}

TEST_F(BottomUpTest, EmptyFrontierClaimsNothing) {
  BfsStatus status{8};
  status.reset(0);
  status.advance();  // frontier empty
  const StepResult r =
      bottom_up_step(backward_, status, 1, topology_, pool_, 2);
  EXPECT_EQ(r.claimed, 0);
}

TEST_F(BottomUpTest, BitmapOutputMatchesQueueOutput) {
  // The same search run twice, once per output representation, must build
  // identical trees — only the next-frontier container differs.
  BfsStatus queue_status{8};
  BfsStatus bitmap_status{8};
  queue_status.reset(0);
  bitmap_status.reset(0);
  for (int level = 1; level <= 4; ++level) {
    const StepResult q =
        bottom_up_step(backward_, queue_status, level, topology_, pool_, 2,
                       BottomUpOutput::Queue);
    const StepResult b =
        bottom_up_step(backward_, bitmap_status, level, topology_, pool_, 2,
                       BottomUpOutput::Bitmap);
    EXPECT_EQ(q.claimed, b.claimed) << "level " << level;
    queue_status.advance();
    bitmap_status.advance();
    EXPECT_EQ(queue_status.frontier_size(), bitmap_status.frontier_size())
        << "level " << level;
  }
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_EQ(queue_status.level(v), bitmap_status.level(v)) << "v=" << v;
    EXPECT_EQ(queue_status.parent(v) == kNoVertex,
              bitmap_status.parent(v) == kNoVertex)
        << "v=" << v;
  }
}

TEST_F(BottomUpTest, BitmapOutputFrontierSupportsNextSweep) {
  // A bitmap-rep frontier must drive the following bottom-up level without
  // any queue materialization: in_frontier reads the bitmap directly.
  BfsStatus status{8};
  status.reset(0);
  bottom_up_step(backward_, status, 1, topology_, pool_, 2,
                 BottomUpOutput::Bitmap);
  status.advance();
  ASSERT_EQ(status.frontier_rep(), FrontierRep::Bitmap);
  EXPECT_EQ(status.frontier_size(), 2);  // {1, 3}
  bottom_up_step(backward_, status, 2, topology_, pool_, 2,
                 BottomUpOutput::Bitmap);
  status.advance();
  EXPECT_TRUE(status.is_visited(2));
  EXPECT_TRUE(status.is_visited(4));
  EXPECT_EQ(status.parent(2), 1);
}

TEST_F(BottomUpTest, HybridBitmapOutputMatchesDramQueue) {
  const std::string dir = ::testing::TempDir() + "/sembfs_bu_hybrid_bm";
  std::filesystem::remove_all(dir);
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  HybridBackwardGraph hybrid{backward_, 1, device, dir};

  BfsStatus dram_status{8};
  BfsStatus hybrid_status{8};
  dram_status.reset(0);
  hybrid_status.reset(0);
  for (int level = 1; level <= 3; ++level) {
    bottom_up_step(backward_, dram_status, level, topology_, pool_, 2);
    bottom_up_step_hybrid(hybrid, hybrid_status, level, topology_, pool_, 2,
                          BottomUpOutput::Bitmap);
    dram_status.advance();
    hybrid_status.advance();
  }
  for (Vertex v = 0; v < 8; ++v)
    EXPECT_EQ(dram_status.level(v), hybrid_status.level(v)) << "v=" << v;
  std::filesystem::remove_all(dir);
}

TEST_F(BottomUpTest, HybridVariantMatchesDram) {
  const std::string dir = ::testing::TempDir() + "/sembfs_bu_hybrid";
  std::filesystem::remove_all(dir);
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  HybridBackwardGraph hybrid{backward_, 1, device, dir};

  BfsStatus dram_status{8};
  BfsStatus hybrid_status{8};
  dram_status.reset(0);
  hybrid_status.reset(0);
  for (int level = 1; level <= 3; ++level) {
    bottom_up_step(backward_, dram_status, level, topology_, pool_, 2);
    bottom_up_step_hybrid(hybrid, hybrid_status, level, topology_, pool_, 2);
    dram_status.advance();
    hybrid_status.advance();
  }
  for (Vertex v = 0; v < 8; ++v)
    EXPECT_EQ(dram_status.level(v), hybrid_status.level(v)) << "v=" << v;
  std::filesystem::remove_all(dir);
}

TEST_F(BottomUpTest, HybridCountsNvmWork) {
  const std::string dir = ::testing::TempDir() + "/sembfs_bu_hybrid2";
  std::filesystem::remove_all(dir);
  auto device = std::make_shared<NvmDevice>(DeviceProfile::dram());
  HybridBackwardGraph hybrid{backward_, 0, device, dir};  // all on NVM

  BfsStatus status{8};
  status.reset(0);
  const StepResult r =
      bottom_up_step_hybrid(hybrid, status, 1, topology_, pool_, 2);
  EXPECT_EQ(r.claimed, 2);
  EXPECT_GT(hybrid.nvm_edges_examined(), 0u);
  EXPECT_EQ(hybrid.dram_edges_examined(), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sembfs
