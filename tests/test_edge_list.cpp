#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include "graph/types.hpp"
#include "util/prng.hpp"

namespace sembfs {
namespace {

TEST(EdgeList, StartsEmpty) {
  EdgeList edges{10};
  EXPECT_EQ(edges.edge_count(), 0u);
  EXPECT_EQ(edges.vertex_count(), 10);
  EXPECT_EQ(edges.max_endpoint(), -1);
}

TEST(EdgeList, AddAndAccess) {
  EdgeList edges{10};
  edges.add(1, 2);
  edges.add(Edge{3, 4});
  ASSERT_EQ(edges.edge_count(), 2u);
  EXPECT_EQ(edges[0], (Edge{1, 2}));
  EXPECT_EQ(edges[1], (Edge{3, 4}));
  EXPECT_EQ(edges.max_endpoint(), 4);
}

TEST(EdgeList, SelfLoopCount) {
  EdgeList edges{5};
  edges.add(0, 0);
  edges.add(1, 2);
  edges.add(3, 3);
  EXPECT_EQ(edges.self_loop_count(), 2u);
}

TEST(EdgeList, RangeBasedIteration) {
  EdgeList edges{4};
  edges.add(0, 1);
  edges.add(2, 3);
  int count = 0;
  for (const Edge& e : edges) {
    EXPECT_GE(e.u, 0);
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(EdgeList, ConstructFromVector) {
  EdgeList edges{5, {{0, 1}, {2, 3}}};
  EXPECT_EQ(edges.edge_count(), 2u);
}

TEST(EdgeListDeath, RejectsOutOfRangeEndpoint) {
  EdgeList edges{4};
  EXPECT_DEATH(edges.add(0, 4), "Precondition");
  EXPECT_DEATH(edges.add(-1, 0), "Precondition");
}

TEST(PackedEdge, RoundTripsSmallValues) {
  const Edge e{12345, 67890};
  EXPECT_EQ(PackedEdge::pack(e).unpack(), e);
}

TEST(PackedEdge, RoundTrips48BitBoundaries) {
  const Vertex max48 = (Vertex{1} << 48) - 1;
  for (const Edge e : {Edge{0, 0}, Edge{max48, 0}, Edge{0, max48},
                       Edge{max48, max48}, Edge{max48 - 1, 1}}) {
    EXPECT_EQ(PackedEdge::pack(e).unpack(), e);
  }
}

TEST(PackedEdge, RoundTripsRandomValues) {
  Xoroshiro128 rng{2024};
  const std::uint64_t mask48 = (1ull << 48) - 1;
  for (int i = 0; i < 1000; ++i) {
    const Edge e{static_cast<Vertex>(rng.next() & mask48),
                 static_cast<Vertex>(rng.next() & mask48)};
    ASSERT_EQ(PackedEdge::pack(e).unpack(), e);
  }
}

TEST(PackedEdge, TwelveBytes) {
  EXPECT_EQ(sizeof(PackedEdge), 12u);  // Figure 3's 12 B/edge edge list
}

}  // namespace
}  // namespace sembfs
