#include "analytics/distances.hpp"

#include <gtest/gtest.h>

#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class DistancesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = fixtures::path_graph(8);
    partition_ = VertexPartition{8, 2};
    forward_ = ForwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                   pool_);
    backward_ = BackwardGraph::build(edges_, partition_, CsrBuildOptions{},
                                     pool_);
    GraphStorage storage;
    storage.forward_dram = &forward_;
    storage.backward_dram = &backward_;
    runner_ = std::make_unique<HybridBfsRunner>(storage, NumaTopology{2, 2},
                                                pool_);
  }

  ThreadPool pool_{4};
  EdgeList edges_;
  VertexPartition partition_;
  ForwardGraph forward_;
  BackwardGraph backward_;
  std::unique_ptr<HybridBfsRunner> runner_;
};

TEST_F(DistancesTest, PathGraphFromEndpoint) {
  const std::vector<Vertex> sources = {0};
  const DistanceStats stats = sample_distances(*runner_, sources);
  // Distances 0..7, one vertex each.
  ASSERT_EQ(stats.histogram.size(), 8u);
  for (const auto count : stats.histogram) EXPECT_EQ(count, 1);
  EXPECT_EQ(stats.reachable_pairs, 8);
  EXPECT_DOUBLE_EQ(stats.mean_distance, 3.5);
  EXPECT_EQ(stats.median_distance, 3);
  EXPECT_EQ(stats.max_observed, 7);
  EXPECT_EQ(stats.effective_diameter, 7);  // ceil-90% of 8 pairs needs d=7
}

TEST_F(DistancesTest, MultipleSourcesAccumulate) {
  const std::vector<Vertex> sources = {0, 7};
  const DistanceStats stats = sample_distances(*runner_, sources);
  EXPECT_EQ(stats.sampled_sources, 2);
  EXPECT_EQ(stats.reachable_pairs, 16);
  EXPECT_DOUBLE_EQ(stats.mean_distance, 3.5);  // symmetric
}

TEST(AccumulateLevels, SkipsUnreached) {
  std::vector<std::int64_t> histogram;
  const std::vector<std::int32_t> levels = {0, 1, -1, 2, 1, -1};
  accumulate_levels(levels, histogram);
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_EQ(histogram[0], 1);
  EXPECT_EQ(histogram[1], 2);
  EXPECT_EQ(histogram[2], 1);
}

TEST(SummarizeHistogram, EmptyHistogram) {
  const DistanceStats stats = summarize_histogram({}, 3);
  EXPECT_EQ(stats.reachable_pairs, 0);
  EXPECT_EQ(stats.mean_distance, 0.0);
  EXPECT_EQ(stats.sampled_sources, 3);
}

TEST(SummarizeHistogram, EffectiveDiameterAt90thPercentile) {
  // 100 pairs: 50 at d=1, 39 at d=2, 11 at d=3 -> 89% within 2, 100%
  // within 3: effective diameter = 3.
  const DistanceStats stats = summarize_histogram({0, 50, 39, 11}, 1);
  EXPECT_EQ(stats.effective_diameter, 3);
  // 90 within 2 -> exactly 90%: effective diameter = 2.
  const DistanceStats exact = summarize_histogram({0, 50, 40, 10}, 1);
  EXPECT_EQ(exact.effective_diameter, 2);
}

TEST(SummarizeHistogram, MedianFromCumulative) {
  const DistanceStats stats = summarize_histogram({1, 1, 6, 1, 1}, 1);
  EXPECT_EQ(stats.median_distance, 2);
}

TEST_F(DistancesTest, StarGraphTwoHopWorld) {
  const EdgeList star = fixtures::star_graph(32);
  const VertexPartition partition{32, 2};
  const ForwardGraph fg =
      ForwardGraph::build(star, partition, CsrBuildOptions{}, pool_);
  const BackwardGraph bg =
      BackwardGraph::build(star, partition, CsrBuildOptions{}, pool_);
  GraphStorage storage;
  storage.forward_dram = &fg;
  storage.backward_dram = &bg;
  HybridBfsRunner runner{storage, NumaTopology{2, 2}, pool_};
  const std::vector<Vertex> sources = {5};  // a leaf
  const DistanceStats stats = sample_distances(runner, sources);
  EXPECT_EQ(stats.max_observed, 2);
  EXPECT_EQ(stats.histogram[1], 1);   // the hub
  EXPECT_EQ(stats.histogram[2], 30);  // the other leaves
}

}  // namespace
}  // namespace sembfs
