#include "graph/kronecker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/csr.hpp"
#include "graph/degree.hpp"

namespace sembfs {
namespace {

KroneckerParams params_for(int scale, std::uint64_t seed = 1) {
  KroneckerParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = seed;
  return p;
}

TEST(Kronecker, ProducesSpecifiedCounts) {
  ThreadPool pool{2};
  const KroneckerParams p = params_for(8);
  const EdgeList edges = generate_kronecker(p, pool);
  EXPECT_EQ(edges.vertex_count(), 256);
  EXPECT_EQ(edges.edge_count(), 256u * 8u);
}

TEST(Kronecker, EndpointsInRange) {
  ThreadPool pool{2};
  const EdgeList edges = generate_kronecker(params_for(9), pool);
  for (const Edge& e : edges) {
    ASSERT_GE(e.u, 0);
    ASSERT_LT(e.u, 512);
    ASSERT_GE(e.v, 0);
    ASSERT_LT(e.v, 512);
  }
}

TEST(Kronecker, DeterministicForSeed) {
  ThreadPool pool{4};
  const EdgeList a = generate_kronecker(params_for(8, 7), pool);
  const EdgeList b = generate_kronecker(params_for(8, 7), pool);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Kronecker, DifferentSeedsDiffer) {
  ThreadPool pool{2};
  const EdgeList a = generate_kronecker(params_for(8, 1), pool);
  const EdgeList b = generate_kronecker(params_for(8, 2), pool);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.edge_count(); ++i)
    if (a[i] == b[i]) ++same;
  EXPECT_LT(same, a.edge_count() / 10);
}

TEST(Kronecker, IndependentOfThreadCount) {
  ThreadPool pool1{1};
  ThreadPool pool8{8};
  const EdgeList a = generate_kronecker(params_for(9, 3), pool1);
  const EdgeList b = generate_kronecker(params_for(9, 3), pool8);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Kronecker, RangeGenerationMatchesBulk) {
  ThreadPool pool{2};
  const KroneckerParams p = params_for(8, 5);
  const EdgeList bulk = generate_kronecker(p, pool);
  std::vector<Edge> range(100);
  generate_kronecker_range(p, 50, 150, range);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(range[i], bulk[50 + i]);
}

TEST(Kronecker, PermutationIsBijective) {
  const KroneckerParams p = params_for(10);
  const std::vector<Vertex> perm = kronecker_permutation(p);
  std::set<Vertex> image(perm.begin(), perm.end());
  EXPECT_EQ(image.size(), perm.size());
  EXPECT_EQ(*image.begin(), 0);
  EXPECT_EQ(*image.rbegin(), static_cast<Vertex>(perm.size()) - 1);
}

TEST(Kronecker, IdentityPermutationWhenDisabled) {
  KroneckerParams p = params_for(6);
  p.permute_vertices = false;
  const std::vector<Vertex> perm = kronecker_permutation(p);
  for (std::size_t i = 0; i < perm.size(); ++i)
    EXPECT_EQ(perm[i], static_cast<Vertex>(i));
}

TEST(Kronecker, SkewedDegreeDistribution) {
  // R-MAT with A=0.57 must produce hubs: max degree >> mean degree.
  ThreadPool pool{4};
  KroneckerParams p;
  p.scale = 12;
  p.edge_factor = 16;
  p.seed = 11;
  const EdgeList edges = generate_kronecker(p, pool);
  CsrBuildOptions opts;
  const Csr csr = build_csr(edges, opts, pool);
  const DegreeStats stats = compute_degree_stats(csr);
  EXPECT_GT(stats.max_degree, 10 * static_cast<std::int64_t>(stats.mean_degree));
  EXPECT_GT(stats.isolated_count, 0);  // power-law graphs strand vertices
}

TEST(Kronecker, PermutationHidesDegreeOrder) {
  // Without permutation, low vertex IDs are the hubs (quadrant A bias).
  // With permutation the correlation between ID and degree must vanish.
  ThreadPool pool{4};
  KroneckerParams p = params_for(11, 9);
  p.edge_factor = 16;
  const EdgeList permuted = generate_kronecker(p, pool);
  CsrBuildOptions opts;
  const Csr csr = build_csr(permuted, opts, pool);
  const Vertex n = csr.global_vertex_count();
  std::int64_t low_half = 0;
  std::int64_t high_half = 0;
  for (Vertex v = 0; v < n; ++v)
    (v < n / 2 ? low_half : high_half) += csr.degree(v);
  // Balanced within 20% — unpermuted R-MAT would be > 2x lopsided.
  const double ratio =
      static_cast<double>(low_half) / static_cast<double>(high_half);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(KroneckerDeath, RejectsBadScale) {
  std::vector<Edge> out(1);
  KroneckerParams p = params_for(0);
  EXPECT_DEATH(generate_kronecker_range(p, 0, 1, out), "Precondition");
}

}  // namespace
}  // namespace sembfs
