#include "graph/io_text.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "graph_fixtures.hpp"
#include "nvm/storage_file.hpp"

namespace sembfs {
namespace {

class IoTextTest : public ::testing::Test {
 protected:
  std::string path() const {
    // Unique per test: ctest runs every case as its own process, and a
    // shared path lets one process truncate a file another is reading.
    return ::testing::TempDir() + "/sembfs_text_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".txt";
  }
  void write(const std::string& content) const {
    std::ofstream out{path()};
    out << content;
  }
  void TearDown() override { remove_file_if_exists(path()); }
};

TEST_F(IoTextTest, RoundTrip) {
  const EdgeList original = fixtures::small_graph();
  write_edge_list_text(original, path());
  const EdgeList loaded = read_edge_list_text(path());
  ASSERT_EQ(loaded.edge_count(), original.edge_count());
  EXPECT_EQ(loaded.vertex_count(), original.vertex_count());
  for (std::size_t i = 0; i < original.edge_count(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

TEST_F(IoTextTest, ParsesSnapStyleInput) {
  write("# A comment header\n"
        "# another\n"
        "0 1\n"
        "\n"
        "1 2  # trailing comment\n"
        "   3   4   \n");
  const EdgeList edges = read_edge_list_text(path());
  ASSERT_EQ(edges.edge_count(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
  EXPECT_EQ(edges[2], (Edge{3, 4}));
  EXPECT_EQ(edges.vertex_count(), 5);  // inferred: max endpoint + 1
}

TEST_F(IoTextTest, DeclaredVertexCountHonored) {
  write("0 1\n");
  TextReadOptions options;
  options.vertex_count = 100;
  EXPECT_EQ(read_edge_list_text(path(), options).vertex_count(), 100);
}

TEST_F(IoTextTest, EndpointBeyondDeclaredCountFails) {
  write("0 99\n");
  TextReadOptions options;
  options.vertex_count = 10;
  EXPECT_THROW(read_edge_list_text(path(), options), std::runtime_error);
}

TEST_F(IoTextTest, SelfLoopFiltering) {
  write("0 0\n0 1\n2 2\n");
  TextReadOptions options;
  options.skip_self_loops = true;
  const EdgeList edges = read_edge_list_text(path(), options);
  ASSERT_EQ(edges.edge_count(), 1u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
}

TEST_F(IoTextTest, MalformedLineReportsLineNumber) {
  write("0 1\nnot numbers\n");
  try {
    read_edge_list_text(path());
    FAIL() << "expected exception";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos);
  }
}

TEST_F(IoTextTest, ExtraFieldRejected) {
  write("0 1 2\n");
  EXPECT_THROW(read_edge_list_text(path()), std::runtime_error);
}

TEST_F(IoTextTest, NegativeEndpointRejected) {
  write("0 -1\n");
  EXPECT_THROW(read_edge_list_text(path()), std::runtime_error);
}

TEST_F(IoTextTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_text("/no/such/file.txt"), std::runtime_error);
}

TEST_F(IoTextTest, EmptyFileYieldsEmptyList) {
  write("# only comments\n\n");
  const EdgeList edges = read_edge_list_text(path());
  EXPECT_EQ(edges.edge_count(), 0u);
  EXPECT_EQ(edges.vertex_count(), 0);
}

}  // namespace
}  // namespace sembfs
