#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sembfs {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.018);
  EXPECT_LT(s, 2.0);  // generous bound for a loaded CI box
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.018);
}

TEST(Timer, UnitsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = t.seconds();
  const double ms = t.milliseconds();
  EXPECT_NEAR(ms, s * 1e3, s * 1e3);  // within 2x (second reading is later)
  EXPECT_GT(t.nanoseconds(), 4'000'000u);
}

TEST(Timer, MonotoneNonDecreasing) {
  Timer t;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = t.seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(AccumulatingTimer, SumsIntervals) {
  AccumulatingTimer t;
  for (int i = 0; i < 3; ++i) {
    t.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    t.stop();
  }
  EXPECT_GE(t.seconds(), 0.027);
}

TEST(AccumulatingTimer, ExcludesPausedTime) {
  AccumulatingTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  const double after_first = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // paused
  EXPECT_DOUBLE_EQ(t.seconds(), after_first);
}

TEST(AccumulatingTimer, ResetZeroes) {
  AccumulatingTimer t;
  t.start();
  t.stop();
  t.reset();
  EXPECT_EQ(t.seconds(), 0.0);
}

}  // namespace
}  // namespace sembfs
