#include "util/bitmap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace sembfs {
namespace {

TEST(BitmapTailMask, CoversZeroToSixtyFour) {
  EXPECT_EQ(bitmap_tail_mask(0), 0u);
  EXPECT_EQ(bitmap_tail_mask(1), 1u);
  EXPECT_EQ(bitmap_tail_mask(63), ~std::uint64_t{0} >> 1);
  EXPECT_EQ(bitmap_tail_mask(64), ~std::uint64_t{0});  // no shift-by-64 UB
}

TEST(BitmapWords, ForEachSetInWordVisitsAscending) {
  const std::uint64_t word =
      (std::uint64_t{1} << 0) | (std::uint64_t{1} << 13) |
      (std::uint64_t{1} << 63);
  std::vector<std::size_t> seen;
  for_each_set_in_word(word, 128, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{128, 141, 191}));
  for_each_set_in_word(0, 0, [&](std::size_t) { FAIL(); });
}

TEST(Bitmap, StartsEmpty) {
  Bitmap b{100};
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(Bitmap, SetTestReset) {
  Bitmap b{130};
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitmap, ClearZeroesEverything) {
  Bitmap b{200};
  for (std::size_t i = 0; i < 200; i += 3) b.set(i);
  ASSERT_GT(b.count(), 0u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, ForEachSetVisitsInOrder) {
  Bitmap b{300};
  const std::vector<std::size_t> expected = {0, 1, 63, 64, 65, 128, 299};
  for (const auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(Bitmap, SwapExchangesContentAndSize) {
  Bitmap a{64};
  Bitmap b{128};
  a.set(3);
  b.set(100);
  a.swap(b);
  EXPECT_EQ(a.size(), 128u);
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(b.test(3));
}

TEST(Bitmap, ResizeResetsContent) {
  Bitmap b{64};
  b.set(10);
  b.resize(256);
  EXPECT_EQ(b.size(), 256u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, CountOnWordBoundarySizes) {
  for (const std::size_t bits : {1u, 63u, 64u, 65u, 127u, 128u}) {
    Bitmap b{bits};
    for (std::size_t i = 0; i < bits; ++i) b.set(i);
    EXPECT_EQ(b.count(), bits) << "bits=" << bits;
  }
}

TEST(Bitmap, WordBoundaryBitsLandInAdjacentWords) {
  Bitmap b{130};
  b.set(63);
  b.set(64);
  ASSERT_EQ(b.word_count(), 3u);
  EXPECT_EQ(b.word(0), std::uint64_t{1} << 63);
  EXPECT_EQ(b.word(1), std::uint64_t{1});
  EXPECT_EQ(b.word(2), 0u);
}

TEST(Bitmap, TailWordBitsBeyondSizeStayZero) {
  // The word-parallel kernels read whole words; bits >= size() in the last
  // partial word must never be set, or count()/sweeps would see ghosts.
  Bitmap b{70};
  for (std::size_t i = 0; i < 70; ++i) b.set(i);
  EXPECT_EQ(b.count(), 70u);
  ASSERT_EQ(b.word_count(), 2u);
  EXPECT_EQ(b.word(1), bitmap_tail_mask(6));
}

TEST(Bitmap, CountOnPartialTailWord) {
  Bitmap b{100};
  b.set(0);
  b.set(64);
  b.set(99);  // last valid bit of the partial tail word
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitmap, OrWithMergesAcrossWordsAndTail) {
  Bitmap a{130};
  Bitmap b{130};
  a.set(0);
  a.set(64);
  b.set(63);
  b.set(64);
  b.set(129);
  a.or_with(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_TRUE(a.test(0));
  EXPECT_TRUE(a.test(63));
  EXPECT_TRUE(a.test(64));
  EXPECT_TRUE(a.test(129));
  EXPECT_EQ(b.count(), 3u);  // source untouched
}

TEST(Bitmap, SetAtomicRacesOnSharedWordsLoseNoBits) {
  constexpr std::size_t kBits = 1 << 12;
  constexpr int kThreads = 8;
  Bitmap b{kBits};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, t] {
      // Every thread writes a distinct residue class mod kThreads, so all
      // threads hammer every word concurrently.
      for (std::size_t i = static_cast<std::size_t>(t); i < kBits;
           i += kThreads)
        b.set_atomic(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(b.count(), kBits);
}

TEST(Bitmap, ClearParallelZeroesLargeBitmap) {
  constexpr std::size_t kBits = 1 << 21;  // 1<<15 words: the parallel path
  Bitmap b{kBits};
  for (std::size_t i = 0; i < kBits; i += 97) b.set(i);
  ASSERT_GT(b.count(), 0u);
  ThreadPool pool{4};
  b.clear_parallel(pool);
  EXPECT_EQ(b.count(), 0u);

  Bitmap small{128};  // below the serial threshold
  small.set(5);
  small.clear_parallel(pool);
  EXPECT_EQ(small.count(), 0u);
}

TEST(AtomicBitmap, WordLoadsSeeSetBits) {
  AtomicBitmap b{130};
  b.set(63);
  b.set(64);
  EXPECT_EQ(b.word(0), std::uint64_t{1} << 63);
  EXPECT_EQ(b.word(1), std::uint64_t{1});
  EXPECT_EQ(b.word_count(), 3u);
}

TEST(AtomicBitmap, TrySetReportsFirstWinnerOnly) {
  AtomicBitmap b{64};
  EXPECT_TRUE(b.try_set(5));
  EXPECT_FALSE(b.try_set(5));
  EXPECT_TRUE(b.test(5));
}

TEST(AtomicBitmap, SetIsIdempotent) {
  AtomicBitmap b{64};
  b.set(7);
  b.set(7);
  EXPECT_EQ(b.count(), 1u);
}

TEST(AtomicBitmap, ConcurrentTrySetHasExactlyOneWinnerPerBit) {
  constexpr std::size_t kBits = 4096;
  constexpr int kThreads = 8;
  AtomicBitmap b{kBits};
  std::vector<std::size_t> wins(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, &wins, t] {
      std::size_t w = 0;
      for (std::size_t i = 0; i < kBits; ++i)
        if (b.try_set(i)) ++w;
      wins[t] = w;
    });
  }
  for (auto& t : threads) t.join();
  std::size_t total = 0;
  for (const auto w : wins) total += w;
  EXPECT_EQ(total, kBits);  // every bit claimed exactly once
  EXPECT_EQ(b.count(), kBits);
}

TEST(AtomicBitmap, SnapshotMatches) {
  AtomicBitmap a{130};
  a.set(0);
  a.set(129);
  a.set(64);
  Bitmap plain;
  a.snapshot(plain);
  EXPECT_EQ(plain.size(), 130u);
  EXPECT_EQ(plain.count(), 3u);
  EXPECT_TRUE(plain.test(0));
  EXPECT_TRUE(plain.test(64));
  EXPECT_TRUE(plain.test(129));
}

TEST(AtomicBitmap, ClearAfterUse) {
  AtomicBitmap b{128};
  b.set(1);
  b.set(127);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.try_set(1));  // claimable again
}

}  // namespace
}  // namespace sembfs
