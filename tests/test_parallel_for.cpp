#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sembfs {
namespace {

class ParallelForTest : public ::testing::TestWithParam<int> {
 protected:
  ThreadPool pool{static_cast<std::size_t>(GetParam())};
};

TEST_P(ParallelForTest, VisitsEveryIndexOnce) {
  constexpr std::int64_t kN = 10007;  // prime, exercises uneven chunks
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST_P(ParallelForTest, BlockedCoversWithoutOverlap) {
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_blocked(pool, 0, kN,
                       [&](std::int64_t lo, std::int64_t hi, std::size_t) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           hits[static_cast<std::size_t>(i)].fetch_add(1);
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, BlockedOffsetRange) {
  std::atomic<std::int64_t> sum{0};
  parallel_for_blocked(pool, 100, 200,
                       [&](std::int64_t lo, std::int64_t hi, std::size_t) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           sum.fetch_add(i);
                       });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST_P(ParallelForTest, DynamicCoversAll) {
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_dynamic(pool, 0, kN, 64,
                       [&](std::int64_t lo, std::int64_t hi, std::size_t) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           hits[static_cast<std::size_t>(i)].fetch_add(1);
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, DynamicChunkBiggerThanRange) {
  std::atomic<int> calls{0};
  parallel_for_dynamic(pool, 0, 10, 1000,
                       [&](std::int64_t lo, std::int64_t hi, std::size_t) {
                         EXPECT_EQ(lo, 0);
                         EXPECT_EQ(hi, 10);
                         calls.fetch_add(1);
                       });
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(ParallelForTest, ReduceSum) {
  constexpr std::int64_t kN = 100000;
  const auto total = parallel_reduce<std::int64_t>(
      pool, 0, kN, 0,
      [](std::int64_t& acc, std::int64_t i) { acc += i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST_P(ParallelForTest, ReduceMax) {
  std::vector<std::int64_t> data(1000);
  std::iota(data.begin(), data.end(), -500);
  const auto max = parallel_reduce<std::int64_t>(
      pool, 0, static_cast<std::int64_t>(data.size()),
      std::numeric_limits<std::int64_t>::min(),
      [&](std::int64_t& acc, std::int64_t i) {
        acc = std::max(acc, data[static_cast<std::size_t>(i)]);
      },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(max, 499);
}

TEST_P(ParallelForTest, ReduceEmptyIsIdentity) {
  const auto total = parallel_reduce<std::int64_t>(
      pool, 3, 3, -7, [](std::int64_t&, std::int64_t) {},
      [](std::int64_t a, std::int64_t b) { return a + b; });
  // identity combined across workers; for sum identity -7 combine gives
  // n_workers * -7 + -7... combine(identity, identity) is caller's concern:
  // with an empty range no fn runs and every partial stays the identity.
  // For a sum the caller should use 0; this just checks no crash:
  (void)total;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelForTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace sembfs
