#include "bfs/baselines_external.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "bfs/reference_bfs.hpp"
#include "graph_fixtures.hpp"
#include "test_util.hpp"

namespace sembfs {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = generate_kronecker(fixtures::small_kronecker(10, 8, 41), pool_);
    full_ = build_csr(edges_, CsrBuildOptions{}, pool_);
    device_ = std::make_shared<NvmDevice>(DeviceProfile::dram());
    external_csr_ = std::make_unique<ExternalCsrPartition>(
        full_, device_, dir_.path(), /*node_id=*/0);
    external_edges_ = std::make_unique<ExternalEdgeList>(
        device_, dir_.path() + "/edges.bin", edges_.vertex_count());
    external_edges_->append_all(edges_);
    root_ = 0;
    while (full_.degree(root_) == 0) ++root_;
  }
  ThreadPool pool_{4};
  testutil::ScopedTestDir dir_{"baselines"};
  EdgeList edges_;
  Csr full_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalCsrPartition> external_csr_;
  std::unique_ptr<ExternalEdgeList> external_edges_;
  Vertex root_ = 0;
};

TEST_F(BaselinesTest, PearceMatchesReferenceLevels) {
  const ExternalBfsResult result =
      pearce_async_bfs(*external_csr_, edges_.vertex_count(), root_, pool_);
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  ASSERT_EQ(result.level.size(), ref.level.size());
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "v=" << v;
  EXPECT_EQ(result.visited, ref.visited);
  EXPECT_EQ(result.teps_edge_count, ref.teps_edge_count);
}

TEST_F(BaselinesTest, PearceGeneratesDeviceTrafficPerExpansion) {
  device_->stats().reset();
  const ExternalBfsResult result =
      pearce_async_bfs(*external_csr_, edges_.vertex_count(), root_, pool_);
  EXPECT_GT(result.nvm_requests, 0u);
  EXPECT_EQ(device_->stats().request_count(), result.nvm_requests);
  // Semi-external property: at least one index request per visited vertex.
  EXPECT_GE(result.nvm_requests,
            static_cast<std::uint64_t>(result.visited));
}

TEST_F(BaselinesTest, PearceScansAtLeastComponentEdges) {
  const ExternalBfsResult result =
      pearce_async_bfs(*external_csr_, edges_.vertex_count(), root_, pool_);
  // Label correcting expands every visited vertex fully at least once.
  EXPECT_GE(result.scanned_edges, 2 * result.teps_edge_count);
}

TEST_F(BaselinesTest, PearceBatchSizeDoesNotChangeResult) {
  PearceBfsConfig small;
  small.batch_size = 1;
  const ExternalBfsResult a = pearce_async_bfs(
      *external_csr_, edges_.vertex_count(), root_, pool_, small);
  const ExternalBfsResult b =
      pearce_async_bfs(*external_csr_, edges_.vertex_count(), root_, pool_);
  EXPECT_EQ(a.level, b.level);
}

TEST_F(BaselinesTest, StreamingMatchesReferenceLevels) {
  const ExternalBfsResult result = streaming_scan_bfs(*external_edges_, root_);
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  for (Vertex v = 0; v < edges_.vertex_count(); ++v)
    ASSERT_EQ(result.level[v], ref.level[v]) << "v=" << v;
  EXPECT_EQ(result.visited, ref.visited);
}

TEST_F(BaselinesTest, StreamingNeedsDepthPlusSweeps) {
  const ExternalBfsResult result = streaming_scan_bfs(*external_edges_, root_);
  const ReferenceBfsResult ref = reference_bfs(full_, root_);
  std::int32_t depth = 0;
  for (const auto l : ref.level) depth = std::max(depth, l);
  // At least one sweep per level in the worst ordering is NOT guaranteed
  // (a single sweep can propagate many levels if edges happen to be
  // ordered favourably), but it always needs >= 2 sweeps (work + fixpoint
  // check) and scans all edges every sweep.
  EXPECT_GE(result.sweeps, 2);
  EXPECT_EQ(result.scanned_edges % (2 * static_cast<std::int64_t>(
                                            edges_.edge_count() -
                                            edges_.self_loop_count())),
            0);
  (void)depth;
}

TEST_F(BaselinesTest, StreamingScansWholeListEverySweep) {
  const ExternalBfsResult result = streaming_scan_bfs(*external_edges_, root_);
  const std::int64_t per_sweep =
      2 * static_cast<std::int64_t>(edges_.edge_count() -
                                    edges_.self_loop_count());
  EXPECT_EQ(result.scanned_edges, result.sweeps * per_sweep);
}

TEST_F(BaselinesTest, SmallGraphsByHand) {
  // Path graph: deep BFS stresses the label-correcting requeues.
  const EdgeList path = fixtures::path_graph(16);
  const Csr csr = build_csr(path, CsrBuildOptions{}, pool_);
  ExternalCsrPartition ext{csr, device_, dir_.path() + "/path", 0};
  const ExternalBfsResult result =
      pearce_async_bfs(ext, path.vertex_count(), 0, pool_);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(result.level[v], v);
}

TEST_F(BaselinesTest, IsolatedRootTerminatesImmediately) {
  const EdgeList graph = fixtures::small_graph();
  const Csr csr = build_csr(graph, CsrBuildOptions{}, pool_);
  ExternalCsrPartition ext{csr, device_, dir_.path() + "/iso", 0};
  const ExternalBfsResult result =
      pearce_async_bfs(ext, graph.vertex_count(), 7, pool_);
  EXPECT_EQ(result.visited, 1);
  EXPECT_EQ(result.teps_edge_count, 0);
}

}  // namespace
}  // namespace sembfs
