#include "graph/graph_size.hpp"

#include <gtest/gtest.h>

#include "graph/backward_graph.hpp"
#include "graph/forward_graph.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

// The decoded paper numbers (Figure 3 at SCALE 31, Table II at SCALE 27)
// with l = 8 NUMA nodes (4 Opteron 6172 packages x 2 dies).
TEST(GraphSizeModel, ReproducesFigure3Scale31) {
  GraphSizeModel model;
  model.scale = 31;
  model.edge_factor = 16;
  model.numa_nodes = 8;
  EXPECT_NEAR(bytes_to_gib(model.edge_list_bytes()), 384.0, 0.5);
  EXPECT_NEAR(bytes_to_gib(model.forward_graph_bytes()), 640.0, 0.5);
  EXPECT_NEAR(bytes_to_gib(model.backward_graph_bytes()), 528.0, 0.5);
}

TEST(GraphSizeModel, ReproducesTable2Scale27) {
  GraphSizeModel model;
  model.scale = 27;
  model.edge_factor = 16;
  model.numa_nodes = 8;
  // Paper Table II: forward 40.1 GB, backward 33.1 GB (their "GB" = GiB).
  EXPECT_NEAR(bytes_to_gib(model.forward_graph_bytes()), 40.1, 0.5);
  EXPECT_NEAR(bytes_to_gib(model.backward_graph_bytes()), 33.1, 0.5);
}

TEST(GraphSizeModel, ForwardGrowsWithNodeCount) {
  GraphSizeModel a;
  a.numa_nodes = 4;
  GraphSizeModel b = a;
  b.numa_nodes = 8;
  EXPECT_LT(a.forward_graph_bytes(), b.forward_graph_bytes());
  EXPECT_EQ(a.backward_graph_bytes(), b.backward_graph_bytes());
}

TEST(GraphSizeModel, DoublesPerScale) {
  GraphSizeModel a;
  a.scale = 20;
  GraphSizeModel b = a;
  b.scale = 21;
  EXPECT_EQ(2 * a.edge_list_bytes(), b.edge_list_bytes());
  EXPECT_EQ(2 * a.forward_graph_bytes(), b.forward_graph_bytes());
  EXPECT_EQ(2 * a.total_bytes(), b.total_bytes());
}

TEST(GraphSizeModel, MatchesBuiltGraphsAtSmallScale) {
  // Cross-check the analytic model against real constructed graphs. The
  // model assumes no self-loop removal, so allow a small tolerance.
  ThreadPool pool{4};
  const int scale = 10;
  const int ef = 16;
  const KroneckerParams params = fixtures::small_kronecker(scale, ef, 13);
  const EdgeList edges = generate_kronecker(params, pool);
  const VertexPartition partition{edges.vertex_count(), 4};
  const ForwardGraph fg =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph bg =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);

  GraphSizeModel model;
  model.scale = scale;
  model.edge_factor = ef;
  model.numa_nodes = 4;

  const double fg_err =
      std::abs(static_cast<double>(fg.byte_size()) -
               static_cast<double>(model.forward_graph_bytes())) /
      static_cast<double>(model.forward_graph_bytes());
  const double bg_err =
      std::abs(static_cast<double>(bg.byte_size()) -
               static_cast<double>(model.backward_graph_bytes())) /
      static_cast<double>(model.backward_graph_bytes());
  EXPECT_LT(fg_err, 0.02);
  EXPECT_LT(bg_err, 0.02);
}

TEST(GraphSizeModel, EdgeListIsTwelveBytesPerEdge) {
  GraphSizeModel model;
  model.scale = 20;
  model.edge_factor = 16;
  EXPECT_EQ(model.edge_list_bytes(), model.edge_count() * 12);
}

TEST(GraphSizeModel, TotalIncludesStatus) {
  GraphSizeModel model;
  EXPECT_EQ(model.total_bytes(),
            model.forward_graph_bytes() + model.backward_graph_bytes() +
                model.bfs_status_bytes());
}

TEST(BytesToGib, Conversion) {
  EXPECT_DOUBLE_EQ(bytes_to_gib(1ull << 30), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_gib(3ull << 30), 3.0);
}

}  // namespace
}  // namespace sembfs
