// Statistical conformance of the generators: the Kronecker initiator
// probabilities and the uniform generator's endpoint distribution, tested
// with wide tolerance bands so the suite stays deterministic.
#include <gtest/gtest.h>

#include "graph/kronecker.hpp"
#include "graph/uniform.hpp"

namespace sembfs {
namespace {

TEST(KroneckerStatistics, QuadrantBiasMatchesInitiator) {
  // With vertex permutation disabled, each recursion bit of (u, v) draws
  // quadrant (0,0) with probability A = 0.57 and row 1 with probability
  // C + D = 0.24. Check the top bit's marginal over many edges.
  ThreadPool pool{4};
  KroneckerParams params;
  params.scale = 8;
  params.edge_factor = 512;  // 131072 edges -> tight sampling error
  params.seed = 99;
  params.permute_vertices = false;
  params.scramble_endpoints = false;
  const EdgeList edges = generate_kronecker(params, pool);

  std::int64_t u_high = 0;
  std::int64_t v_high_given_u_low = 0;
  std::int64_t u_low = 0;
  const Vertex top_bit = Vertex{1} << (params.scale - 1);
  for (const Edge& e : edges) {
    if ((e.u & top_bit) != 0) {
      ++u_high;
    } else {
      ++u_low;
      if ((e.v & top_bit) != 0) ++v_high_given_u_low;
    }
  }
  const double n = static_cast<double>(edges.edge_count());
  // P(u top bit set) = C + D = 0.24
  EXPECT_NEAR(static_cast<double>(u_high) / n, 0.24, 0.01);
  // P(v top bit set | u top bit clear) = B / (A + B) = 0.19/0.76 = 0.25
  EXPECT_NEAR(static_cast<double>(v_high_given_u_low) /
                  static_cast<double>(u_low),
              0.25, 0.01);
}

TEST(KroneckerStatistics, EveryBitLevelCarriesTheBias) {
  ThreadPool pool{4};
  KroneckerParams params;
  params.scale = 6;
  params.edge_factor = 1024;
  params.seed = 7;
  params.permute_vertices = false;
  params.scramble_endpoints = false;
  const EdgeList edges = generate_kronecker(params, pool);
  const double n = static_cast<double>(edges.edge_count());
  for (int bit = 0; bit < params.scale; ++bit) {
    std::int64_t set = 0;
    for (const Edge& e : edges)
      if ((e.u >> bit) & 1) ++set;
    EXPECT_NEAR(static_cast<double>(set) / n, 0.24, 0.02)
        << "bit " << bit;
  }
}

TEST(UniformStatistics, EndpointsAreUnbiased) {
  ThreadPool pool{4};
  UniformParams params;
  params.scale = 6;  // 64 vertices
  params.edge_factor = 2048;
  params.seed = 31;
  const EdgeList edges = generate_uniform(params, pool);

  std::vector<std::int64_t> hits(64, 0);
  for (const Edge& e : edges) {
    ++hits[static_cast<std::size_t>(e.u)];
    ++hits[static_cast<std::size_t>(e.v)];
  }
  const double expected =
      2.0 * static_cast<double>(edges.edge_count()) / 64.0;
  for (std::size_t v = 0; v < 64; ++v)
    EXPECT_NEAR(static_cast<double>(hits[v]), expected, expected * 0.15)
        << "v=" << v;
}

TEST(UniformStatistics, SelfLoopRateMatchesTheory) {
  // P(u == v) = 1/N; with N=64 and ~131k edges, expect ~2048 +- wide band.
  ThreadPool pool{4};
  UniformParams params;
  params.scale = 6;
  params.edge_factor = 2048;
  params.seed = 17;
  const EdgeList edges = generate_uniform(params, pool);
  const double expected =
      static_cast<double>(edges.edge_count()) / 64.0;
  EXPECT_NEAR(static_cast<double>(edges.self_loop_count()), expected,
              expected * 0.2);
}

}  // namespace
}  // namespace sembfs
