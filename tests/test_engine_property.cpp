// Randomized and structured small-graph property tests for the vertex-
// program engine. The sweep in test_differential_sweep.cpp hammers two
// generator families at scale 10; this file goes the other way — tiny
// adversarial topologies (isolated vertices, self-loops, duplicate edges,
// disconnected components, stars, paths, complete graphs) and a stream of
// seeded random graphs, every one checked against the serial references.
// On any failure the SCOPED_TRACE prints the seed/topology to rerun with.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "analytics_references.hpp"
#include "bfs/reference_bfs.hpp"
#include "engine/bfs_program.hpp"
#include "engine/components_program.hpp"
#include "engine/pagerank_program.hpp"
#include "engine/program_session.hpp"
#include "engine/triangle_program.hpp"
#include "graph_fixtures.hpp"

namespace sembfs {
namespace {

class EnginePropertyTest : public ::testing::Test {
 protected:
  ThreadPool pool_{4};
};

/// Runs all four programs over DRAM storage built from `edges` and
/// asserts each against its serial reference. Callers wrap the call in a
/// SCOPED_TRACE naming the topology or seed.
void check_engine_matches_references(const EdgeList& edges,
                                     ThreadPool& pool) {
  const Vertex n = edges.vertex_count();
  ASSERT_GE(n, 1);
  const std::size_t nodes = n >= 2 ? 2 : 1;
  const VertexPartition partition{n, nodes};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  const NumaTopology topology{nodes, pool.size() / nodes};
  const BfsConfig config;

  // BFS from the corners: vertex 0, the last vertex, and the hub — the
  // set covers isolated roots, leaves, and the densest neighborhood.
  Vertex hub = 0;
  for (Vertex v = 1; v < n; ++v)
    if (full.degree(v) > full.degree(hub)) hub = v;
  for (const Vertex root : {Vertex{0}, n - 1, hub}) {
    engine::BfsProgram program{root};
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    const ReferenceBfsResult ref = reference_bfs(full, root);
    const std::vector<std::int32_t>& levels = program.status().levels();
    for (Vertex v = 0; v < n; ++v)
      ASSERT_EQ(levels[v], ref.level[v]) << "bfs root " << root << " v " << v;
  }

  {
    engine::ComponentsProgram program;
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    const std::vector<Vertex> expected = testref::reference_components(full);
    for (Vertex v = 0; v < n; ++v)
      ASSERT_EQ(program.label(v), expected[v]) << "components v " << v;
  }

  {
    engine::PageRankProgram program;
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    ASSERT_GT(program.iterations(), 0);
    const std::vector<double> expected = testref::reference_pagerank(
        full, program.options().damping, program.iterations());
    double sum = 0.0;
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_NEAR(program.ranks()[v], expected[v], 1e-9) << "pagerank v "
                                                         << v;
      sum += program.ranks()[v];
    }
    ASSERT_NEAR(sum, 1.0, 1e-6);
  }

  {
    engine::TriangleProgram program;
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    ASSERT_EQ(program.triangles(), testref::reference_triangles(full));
  }
}

TEST_F(EnginePropertyTest, SingleVertexNoEdges) {
  SCOPED_TRACE("topology: single vertex, no edges");
  EdgeList edges{1};
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, AllIsolatedVertices) {
  SCOPED_TRACE("topology: 8 isolated vertices");
  EdgeList edges{8};
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, StarGraph) {
  SCOPED_TRACE("topology: star, center 0, 32 leaves");
  EdgeList edges{33};
  for (Vertex leaf = 1; leaf < 33; ++leaf) edges.add(0, leaf);
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, PathGraph) {
  SCOPED_TRACE("topology: path of 32 vertices");
  EdgeList edges{32};
  for (Vertex v = 0; v + 1 < 32; ++v) edges.add(v, v + 1);
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, CompleteGraph) {
  SCOPED_TRACE("topology: K16");
  EdgeList edges{16};
  for (Vertex u = 0; u < 16; ++u)
    for (Vertex v = u + 1; v < 16; ++v) edges.add(u, v);
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, DisconnectedComponentsWithIsolated) {
  SCOPED_TRACE("topology: K6 on [0,6), K6 on [8,14), isolated 6,7,14,15");
  EdgeList edges{16};
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = u + 1; v < 6; ++v) edges.add(u, v);
  for (Vertex u = 8; u < 14; ++u)
    for (Vertex v = u + 1; v < 14; ++v) edges.add(u, v);
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, SelfLoopsAndDuplicateEdges) {
  SCOPED_TRACE("topology: path with doubled edges and self-loops");
  EdgeList edges{16};
  for (Vertex v = 0; v + 1 < 16; ++v) {
    edges.add(v, v + 1);
    edges.add(v + 1, v);  // reversed duplicate
    if (v % 2 == 0) edges.add(v, v);  // self-loop
  }
  check_engine_matches_references(edges, pool_);
}

TEST_F(EnginePropertyTest, RandomizedSmallGraphs) {
  // Each seed fully determines the graph: vertex count, edge endpoints,
  // injected self-loops and duplicates. The trace names the failing seed.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE(::testing::Message() << "failing seed=" << seed);
    std::mt19937_64 rng{seed};
    const Vertex n = 2 + static_cast<Vertex>(rng() % 48);
    EdgeList edges{n};
    const std::size_t m = rng() % static_cast<std::size_t>(3 * n);
    for (std::size_t i = 0; i < m; ++i) {
      const Vertex u = static_cast<Vertex>(rng() % static_cast<std::uint64_t>(n));
      const Vertex v = rng() % 8 == 0
                           ? u  // occasional self-loop
                           : static_cast<Vertex>(
                                 rng() % static_cast<std::uint64_t>(n));
      edges.add(u, v);
      if (rng() % 4 == 0) edges.add(u, v);  // occasional duplicate
    }
    check_engine_matches_references(edges, pool_);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace sembfs
