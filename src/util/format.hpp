// Human-readable number formatting for harness output.
#pragma once

#include <cstdint>
#include <string>

namespace sembfs {

/// "40.1 GB" style binary-ish formatting. Uses decimal GB like the paper.
std::string format_bytes(std::uint64_t bytes);

/// "4.22 GTEPS" style rate formatting from edges/second.
std::string format_teps(double teps);

/// "1.E+04" scientific notation used for the alpha/beta axes in the paper.
std::string format_scientific(double v);

/// Fixed-width fixed-point, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double v, int decimals);

/// Thousands-separated integer, e.g. 1234567 -> "1,234,567".
std::string format_count(std::uint64_t v);

}  // namespace sembfs
