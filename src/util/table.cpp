#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/contracts.hpp"

namespace sembfs {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SEMBFS_EXPECTS(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  SEMBFS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void AsciiTable::add_separator() { pending_separator_ = true; }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  auto hline = [&] {
    std::string line = "+";
    for (const auto w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = hline();
  out += render_cells(headers_);
  out += hline();
  for (const auto& row : rows_) {
    if (row.separator_before) out += hline();
    out += render_cells(row.cells);
  }
  out += hline();
  return out;
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace sembfs
