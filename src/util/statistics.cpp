#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace sembfs {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  SEMBFS_EXPECTS(!sorted.empty());
  SEMBFS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleStats compute_stats(std::vector<double> values) {
  SampleStats s;
  s.n = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.first_quartile = sorted_quantile(values, 0.25);
  s.median = sorted_quantile(values, 0.50);
  s.third_quartile = sorted_quantile(values, 0.75);

  const double n = static_cast<double>(values.size());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / n;

  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1 ? std::sqrt(sq / (n - 1.0)) : 0.0;

  // Harmonic mean and its stddev as the Graph500 reference computes them:
  // hmean = n / S with S = sum(1/x); stddev via the delta method on 1/x.
  double inv_sum = 0.0;
  bool has_nonpositive = false;
  for (const double v : values) {
    if (v <= 0.0) {
      has_nonpositive = true;
      break;
    }
    inv_sum += 1.0 / v;
  }
  if (!has_nonpositive && inv_sum > 0.0) {
    s.harmonic_mean = n / inv_sum;
    if (values.size() > 1) {
      const double inv_mean = inv_sum / n;
      double inv_sq = 0.0;
      for (const double v : values)
        inv_sq += (1.0 / v - inv_mean) * (1.0 / v - inv_mean);
      const double inv_stddev = std::sqrt(inv_sq / (n - 1.0));
      // d(1/y)/dy scaling: stddev(hmean) ~ inv_stddev * hmean^2 / sqrt(n)
      s.harmonic_stddev =
          inv_stddev * s.harmonic_mean * s.harmonic_mean / std::sqrt(n);
    }
  }
  return s;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace sembfs
