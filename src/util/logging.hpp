// Tiny leveled logger. Thread-safe line-at-a-time output on stderr.
//
// The library itself is silent by default (level = Warn); examples and the
// graph500 driver raise verbosity. Printf-style to avoid iostream locking
// surprises in parallel regions.
#pragma once

#include <cstdarg>

namespace sembfs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Sets the global minimum level (messages below are dropped).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Core sink; prefer the LOG_* helpers below.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace sembfs

#define SEMBFS_LOG_DEBUG(...) \
  ::sembfs::log_message(::sembfs::LogLevel::Debug, __VA_ARGS__)
#define SEMBFS_LOG_INFO(...) \
  ::sembfs::log_message(::sembfs::LogLevel::Info, __VA_ARGS__)
#define SEMBFS_LOG_WARN(...) \
  ::sembfs::log_message(::sembfs::LogLevel::Warn, __VA_ARGS__)
#define SEMBFS_LOG_ERROR(...) \
  ::sembfs::log_message(::sembfs::LogLevel::Error, __VA_ARGS__)
