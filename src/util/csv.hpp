// CSV emission for benchmark series (machine-readable twin of AsciiTable).
#pragma once

#include <string>
#include <vector>

namespace sembfs {

/// Accumulates rows and writes an RFC-4180-ish CSV file.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders the whole document to a string.
  [[nodiscard]] std::string render() const;

  /// Writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Quotes a single field if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sembfs
