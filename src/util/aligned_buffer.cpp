#include "util/aligned_buffer.hpp"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "util/contracts.hpp"

namespace sembfs {

AlignedBuffer::AlignedBuffer(std::size_t size, std::size_t alignment)
    : size_(size), alignment_(alignment) {
  SEMBFS_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (size == 0) return;
  // std::aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, padded);
  if (p == nullptr) throw std::bad_alloc{};
  data_ = static_cast<std::byte*>(p);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

void AlignedBuffer::zero() noexcept {
  if (data_ != nullptr) std::memset(data_, 0, size_);
}

AlignedBuffer make_page_buffer(std::size_t size) {
  return AlignedBuffer{size, kPageSize};
}

AlignedBuffer make_cache_aligned_buffer(std::size_t size) {
  return AlignedBuffer{size, kCacheLineSize};
}

}  // namespace sembfs
