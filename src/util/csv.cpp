#include "util/csv.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace sembfs {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SEMBFS_EXPECTS(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  SEMBFS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out += ',';
      out += escape(cells[i]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = render();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  // fclose flushes stdio's buffer: a full disk often surfaces only here,
  // so its result is part of the write's success.
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace sembfs
