// Small GNU-style command-line option parser for the example binaries.
//
// Supports `--name value`, `--name=value`, boolean flags, defaults, and an
// auto-generated --help. Deliberately tiny: no subcommands, no positional
// metadata beyond a trailing free-argument list.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sembfs {

class OptionParser {
 public:
  explicit OptionParser(std::string program_description);

  /// Registers options. `name` is without leading dashes.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing a message) on error or on
  /// --help; callers should exit(0) when help_requested().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Option {
    Kind kind;
    std::string help;
    std::string default_text;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool flag_value = false;
  };

  Option* find(const std::string& name);
  const Option& require(const std::string& name, Kind kind) const;

  std::string description_;
  std::string program_name_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace sembfs
