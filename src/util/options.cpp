#include "util/options.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"

namespace sembfs {

OptionParser::OptionParser(std::string program_description)
    : description_(std::move(program_description)) {}

void OptionParser::add_int(const std::string& name, std::int64_t default_value,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::Int;
  opt.help = help;
  opt.int_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void OptionParser::add_double(const std::string& name, double default_value,
                              const std::string& help) {
  Option opt;
  opt.kind = Kind::Double;
  opt.help = help;
  opt.double_value = default_value;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", default_value);
  opt.default_text = buf;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void OptionParser::add_string(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  Option opt;
  opt.kind = Kind::String;
  opt.help = help;
  opt.string_value = default_value;
  opt.default_text = default_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void OptionParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.kind = Kind::Flag;
  opt.help = help;
  opt.default_text = "false";
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

OptionParser::Option* OptionParser::find(const std::string& name) {
  const auto it = options_.find(name);
  return it == options_.end() ? nullptr : &it->second;
}

const OptionParser::Option& OptionParser::require(const std::string& name,
                                                  Kind kind) const {
  const auto it = options_.find(name);
  SEMBFS_EXPECTS(it != options_.end());
  SEMBFS_EXPECTS(it->second.kind == kind);
  return it->second;
}

bool OptionParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) {
      std::fprintf(stderr, "unknown option --%s\n%s", arg.c_str(),
                   help_text().c_str());
      return false;
    }
    if (opt->kind == Kind::Flag) {
      if (has_value) {
        std::fprintf(stderr, "flag --%s does not take a value\n", arg.c_str());
        return false;
      }
      opt->flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s requires a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    char* end = nullptr;
    switch (opt->kind) {
      case Kind::Int:
        opt->int_value = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "option --%s: '%s' is not an integer\n",
                       arg.c_str(), value.c_str());
          return false;
        }
        break;
      case Kind::Double:
        opt->double_value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "option --%s: '%s' is not a number\n",
                       arg.c_str(), value.c_str());
          return false;
        }
        break;
      case Kind::String:
        opt->string_value = value;
        break;
      case Kind::Flag:
        break;  // handled above
    }
  }
  return true;
}

std::string OptionParser::help_text() const {
  std::string out = description_;
  out += "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out += "  --" + name;
    if (opt.kind != Kind::Flag) out += " <value>";
    out += "\n      " + opt.help + " (default: " + opt.default_text + ")\n";
  }
  out += "  --help\n      Show this message.\n";
  return out;
}

std::int64_t OptionParser::get_int(const std::string& name) const {
  return require(name, Kind::Int).int_value;
}

double OptionParser::get_double(const std::string& name) const {
  return require(name, Kind::Double).double_value;
}

const std::string& OptionParser::get_string(const std::string& name) const {
  return require(name, Kind::String).string_value;
}

bool OptionParser::get_flag(const std::string& name) const {
  return require(name, Kind::Flag).flag_value;
}

}  // namespace sembfs
