// Deterministic pseudo-random number generation for graph synthesis.
//
// The Graph500 generator needs per-edge reproducible randomness that is
// independent of thread scheduling, so every generator here is a small
// value type that can be seeded per work item. splitmix64 is used to derive
// stream seeds; xoroshiro128++ is the workhorse generator.
#pragma once

#include <cstdint>
#include <bit>

namespace sembfs {

/// SplitMix64 — fast seed expander (Steele, Lea, Flood 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoroshiro128++ 1.0 (Blackman, Vigna 2019). Not cryptographic.
class Xoroshiro128 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoroshiro128(std::uint64_t seed) noexcept {
    SplitMix64 sm{seed};
    s0_ = sm.next();
    s1_ = sm.next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is absorbing
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t a = s0_;
    std::uint64_t b = s1_;
    const std::uint64_t result = std::rotl(a + b, 17) + a;
    b ^= a;
    s0_ = std::rotl(a, 49) ^ b ^ (b << 21);
    s1_ = std::rotl(b, 28);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method,
  /// simplified: retry loop degenerates rarely for 64-bit).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift; bias is < 2^-64 per draw which is irrelevant for
    // graph synthesis, and keeps the generator branch-free.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
};

/// Derives a reproducible sub-seed for a given stream id (e.g. edge index),
/// so parallel workers generate identical output regardless of scheduling.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::uint64_t stream) noexcept {
  SplitMix64 sm{base ^ (0x632be59bd9b4e019ULL * (stream + 1))};
  return sm.next();
}

}  // namespace sembfs
