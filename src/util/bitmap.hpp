// Fixed-size bitmaps used for BFS frontier and visited-vertex tracking.
//
// Two flavours:
//  - Bitmap: plain single-writer bitmap (fast, no atomics).
//  - AtomicBitmap: concurrent bitmap whose set operations are lock-free and
//    report whether the caller won the race (the "claim" idiom the top-down
//    step relies on: tree(w) == -1 -> tree(w) = v must happen exactly once).
//
// Both store 64 bits per word; sizes are in bits.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace sembfs {

/// Plain (non-atomic) bitmap. Not safe for concurrent writers.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits);

  void resize(std::size_t bits);
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

  void set(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    SEMBFS_ASSERT(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept {
    return words_[w];
  }

  /// Swap contents with another bitmap of any size.
  void swap(Bitmap& other) noexcept;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

/// Concurrent bitmap. set() uses fetch_or; try_set() reports the winner.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits);

  AtomicBitmap(const AtomicBitmap&) = delete;
  AtomicBitmap& operator=(const AtomicBitmap&) = delete;
  AtomicBitmap(AtomicBitmap&&) noexcept = default;
  AtomicBitmap& operator=(AtomicBitmap&&) noexcept = default;

  void resize(std::size_t bits);
  /// Clears all bits. Not safe concurrently with writers.
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    words_[i >> 6].fetch_or(std::uint64_t{1} << (i & 63),
                            std::memory_order_relaxed);
  }

  /// Atomically sets bit i; returns true iff this call changed it 0 -> 1.
  bool try_set(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    SEMBFS_ASSERT(i < bits_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1U;
  }

  [[nodiscard]] std::size_t count() const noexcept;

  /// Copies contents into a plain Bitmap (not concurrent-safe vs writers).
  void snapshot(Bitmap& out) const;

 private:
  // unique_ptr-free: vector of atomics cannot be resized with live data,
  // which is fine — BFS sizes the bitmap once per graph.
  std::vector<std::atomic<std::uint64_t>> words_;
  std::size_t bits_ = 0;
};

}  // namespace sembfs
