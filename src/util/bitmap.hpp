// Fixed-size bitmaps used for BFS frontier and visited-vertex tracking.
//
// Two flavours:
//  - Bitmap: plain single-writer bitmap (fast, no atomics).
//  - AtomicBitmap: concurrent bitmap whose set operations are lock-free and
//    report whether the caller won the race (the "claim" idiom the top-down
//    step relies on: tree(w) == -1 -> tree(w) = v must happen exactly once).
//
// Both store 64 bits per word; sizes are in bits. Beyond the per-bit
// operations, both expose their word arrays directly: the bottom-up BFS
// kernels work 64 vertices at a time (load one visited word, skip it when
// saturated, iterate survivors via countr_zero) and merge per-worker
// frontier bitmaps word-wise, so word access is part of the contract, not
// an implementation leak. Bits at positions >= size() within the last
// word are always zero (set() rejects them), so whole-word reads never
// see garbage in the partial tail word.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "util/contracts.hpp"

namespace sembfs {

namespace bitmap_detail {
/// Number of 64-bit words needed for `bits` bits.
constexpr std::size_t words_for(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}
}  // namespace bitmap_detail

/// All-ones in bit positions [0, bits) of one word; bits must be in
/// [0, 64]. tail_mask(64) is ~0 (the shift-by-width UB is avoided).
[[nodiscard]] constexpr std::uint64_t bitmap_tail_mask(
    std::size_t bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << bits) - 1;
}

/// Calls fn(base + bit) for every set bit of `word`, ascending. The
/// word-at-a-time idiom shared by every bitmap-driven kernel: callers load
/// (and mask) a word once, then burn it down via countr_zero.
template <typename Fn>
void for_each_set_in_word(std::uint64_t word, std::size_t base, Fn&& fn) {
  while (word != 0) {
    const int bit = std::countr_zero(word);
    fn(base + static_cast<std::size_t>(bit));
    word &= word - 1;
  }
}

/// Plain (non-atomic) bitmap. Not safe for concurrent writers, except for
/// set_atomic() which may race with other set_atomic() calls.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits);

  void resize(std::size_t bits);
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

  void set(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  /// Sets bit i with a relaxed atomic OR, safe against concurrent
  /// set_atomic() on the same word (parallel frontier-bitmap rebuilds
  /// scatter arbitrary vertices, so two workers may share a word). Not
  /// ordered against plain reads in the same parallel region.
  void set_atomic(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    std::atomic_ref<std::uint64_t>{words_[i >> 6]}.fetch_or(
        std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }
  void reset(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    SEMBFS_ASSERT(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w)
      for_each_set_in_word(words_[w], w * 64, fn);
  }

  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept {
    return words_[w];
  }

  /// Direct word access for word-parallel kernels.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// Word-wise OR-merge: this |= other. Sizes must match.
  void or_with(const Bitmap& other) noexcept;

  /// Clears via `pool` (anything with ThreadPool's run(n, fn)/size()
  /// shape), partitioning the word array statically. Serial below a small
  /// threshold — zeroing a few KiB does not amortize a fork/join.
  template <typename Pool>
  void clear_parallel(Pool& pool) {
    constexpr std::size_t kSerialWords = 1 << 14;  // 128 KiB
    const std::size_t n = words_.size();
    const std::size_t workers = pool.size();
    if (n <= kSerialWords || workers <= 1) {
      clear();
      return;
    }
    std::uint64_t* const data = words_.data();
    pool.run(workers, [data, n, workers](std::size_t w) {
      const std::size_t chunk = (n + workers - 1) / workers;
      const std::size_t lo = w * chunk;
      const std::size_t hi = lo + chunk < n ? lo + chunk : n;
      for (std::size_t i = lo; i < hi; ++i) data[i] = 0;
    });
  }

  /// Swap contents with another bitmap of any size.
  void swap(Bitmap& other) noexcept;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

/// Concurrent bitmap. set() uses fetch_or; try_set() reports the winner.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits);

  AtomicBitmap(const AtomicBitmap&) = delete;
  AtomicBitmap& operator=(const AtomicBitmap&) = delete;
  AtomicBitmap(AtomicBitmap&&) noexcept = default;
  AtomicBitmap& operator=(AtomicBitmap&&) noexcept = default;

  void resize(std::size_t bits);
  /// Clears all bits. Not safe concurrently with writers.
  void clear() noexcept;
  /// Sets every bit in [0, size()) — tail bits beyond size() stay zero, so
  /// whole-word reads keep seeing a saturated tail. Not safe concurrently
  /// with writers. The incremental BFS repair kernel seeds its "done"
  /// bitmap this way and then punches out only the wave members, turning
  /// the word-skip sweep into a sparse-wave scan.
  void fill() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

  void set(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    words_[i >> 6].fetch_or(std::uint64_t{1} << (i & 63),
                            std::memory_order_relaxed);
  }

  /// Atomically clears bit i; returns true iff this call changed it 1 -> 0
  /// (the repair kernel's wave-membership dedup).
  bool try_reset(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_and(~mask, std::memory_order_acq_rel);
    return (old & mask) != 0;
  }

  /// Atomically sets bit i; returns true iff this call changed it 0 -> 1.
  bool try_set(std::size_t i) noexcept {
    SEMBFS_ASSERT(i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    SEMBFS_ASSERT(i < bits_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1U;
  }

  /// Relaxed load of word w — the bottom-up sweep's unit of work. A word
  /// whose masked complement is zero is fully visited and costs one load
  /// for 64 vertices. Concurrent set()s may or may not be reflected;
  /// callers must tolerate stale zeros (the sweep does: a vertex never
  /// shows visited before its claim).
  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept {
    return words_[w].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t count() const noexcept;

  /// Copies contents into a plain Bitmap (not concurrent-safe vs writers).
  void snapshot(Bitmap& out) const;

 private:
  // unique_ptr-free: vector of atomics cannot be resized with live data,
  // which is fine — BFS sizes the bitmap once per graph.
  std::vector<std::atomic<std::uint64_t>> words_;
  std::size_t bits_ = 0;
};

}  // namespace sembfs
