// Lightweight contract checks in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations abort with a source location so
// that broken invariants fail loudly in both debug and release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sembfs {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace sembfs

// Precondition on the caller.
#define SEMBFS_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                            \
          : ::sembfs::contract_violation("Precondition", #cond, __FILE__,   \
                                         __LINE__))

// Postcondition on the callee.
#define SEMBFS_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                             \
          : ::sembfs::contract_violation("Postcondition", #cond, __FILE__,   \
                                         __LINE__))

// Internal invariant.
#define SEMBFS_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                           \
          : ::sembfs::contract_violation("Invariant", #cond, __FILE__,     \
                                         __LINE__))
