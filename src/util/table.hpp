// Minimal ASCII table renderer for the benchmark harness output.
//
// Every figure/table bench prints its series as an aligned text table so the
// paper's rows can be eyeballed against the measured ones without plotting.
#pragma once

#include <string>
#include <vector>

namespace sembfs {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Adds a data row. Must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator before the next row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table (header, separator, rows) with column alignment.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace sembfs
