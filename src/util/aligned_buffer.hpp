// RAII owner for page/cache-line aligned raw memory.
//
// BFS status data (bitmaps, parent arrays) and I/O staging buffers want
// alignment stronger than operator new guarantees: cache-line alignment to
// avoid false sharing between emulated NUMA nodes, and page alignment for
// buffers handed to pread(2) on the simulated NVM devices.
#pragma once

#include <cstddef>
#include <span>

namespace sembfs {

inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kPageSize = 4096;

/// Owning, aligned, uninitialized byte buffer. Move-only.
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;
  /// Allocates `size` bytes aligned to `alignment` (a power of two).
  AlignedBuffer(std::size_t size, std::size_t alignment);
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t alignment() const noexcept { return alignment_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::span<std::byte> bytes() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }

  /// Typed view over the buffer; `size()` must be a multiple of sizeof(T).
  template <typename T>
  [[nodiscard]] std::span<T> as() noexcept {
    return {reinterpret_cast<T*>(data_), size_ / sizeof(T)};
  }

  void zero() noexcept;

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = 0;
};

/// Convenience factories.
AlignedBuffer make_page_buffer(std::size_t size);
AlignedBuffer make_cache_aligned_buffer(std::size_t size);

}  // namespace sembfs
