// Environment-variable overrides shared by every bench binary.
//
// The bench harness must run argument-free (`for b in build/bench/*; do $b;
// done`), so scale/threads/etc. are taken from SEMBFS_* variables with
// small, fast defaults.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sembfs {

/// Reads an integer env var; returns fallback when unset or malformed.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a string env var; returns fallback when unset.
std::string env_string(const char* name, const std::string& fallback);

/// Reads a double env var; returns fallback when unset or malformed.
double env_double(const char* name, double fallback);

/// Common knobs for bench binaries, resolved once.
struct BenchEnv {
  int scale;           ///< SEMBFS_SCALE   (default 16)
  int edge_factor;     ///< SEMBFS_EDGE_FACTOR (default 16)
  int roots;           ///< SEMBFS_ROOTS   (default 8; paper uses 64)
  int threads;         ///< SEMBFS_THREADS (default hardware_concurrency)
  int numa_nodes;      ///< SEMBFS_NUMA_NODES (default 4, like the paper)
  std::uint64_t seed;  ///< SEMBFS_SEED    (default 12345)
  std::string workdir; ///< SEMBFS_WORKDIR (default /tmp/sembfs)
  /// SEMBFS_CHUNK_FORMAT (default "raw"): on-NVM adjacency layout for
  /// offloaded graphs ("raw" | "varint"). Lets the fig12/fig13 iostat
  /// sweeps rerun unchanged against compressed chunks.
  std::string chunk_format;

  static BenchEnv resolve();
};

}  // namespace sembfs
