// Summary statistics in the style of the Graph500 output block.
//
// The official benchmark reports min / first quartile / median / third
// quartile / max, plus mean and stddev, and — for TEPS — *harmonic* mean and
// harmonic stddev, because TEPS is a rate. SampleStats reproduces exactly
// that set so the graph500 driver can print a spec-shaped results block.
#pragma once

#include <cstddef>
#include <vector>

namespace sembfs {

/// Five-number summary plus means for a sample of doubles.
struct SampleStats {
  std::size_t n = 0;
  double min = 0.0;
  double first_quartile = 0.0;
  double median = 0.0;
  double third_quartile = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;          ///< sample standard deviation (n-1)
  double harmonic_mean = 0.0;   ///< n / sum(1/x)
  double harmonic_stddev = 0.0; ///< Graph500's jackknife-style estimate
};

/// Computes the full summary. `values` is copied and sorted internally.
SampleStats compute_stats(std::vector<double> values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
double sorted_quantile(const std::vector<double>& sorted, double q);

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace sembfs
