#include "util/env.hpp"

#include <cstdlib>
#include <thread>

namespace sembfs {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string{v};
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

BenchEnv BenchEnv::resolve() {
  BenchEnv env;
  env.scale = static_cast<int>(env_int("SEMBFS_SCALE", 16));
  env.edge_factor = static_cast<int>(env_int("SEMBFS_EDGE_FACTOR", 16));
  env.roots = static_cast<int>(env_int("SEMBFS_ROOTS", 8));
  const unsigned hw = std::thread::hardware_concurrency();
  env.threads = static_cast<int>(
      env_int("SEMBFS_THREADS", hw == 0 ? 1 : static_cast<int>(hw)));
  env.numa_nodes = static_cast<int>(env_int("SEMBFS_NUMA_NODES", 4));
  env.seed = static_cast<std::uint64_t>(env_int("SEMBFS_SEED", 12345));
  env.workdir = env_string("SEMBFS_WORKDIR", "/tmp/sembfs");
  env.chunk_format = env_string("SEMBFS_CHUNK_FORMAT", "raw");
  return env;
}

}  // namespace sembfs
