#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace sembfs {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 7> units = {
      "B", "KB", "MB", "GB", "TB", "PB", "EB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1000.0 && u + 1 < units.size()) {
    v /= 1000.0;
    ++u;
  }
  char buf[32];
  if (u == 0)
    std::snprintf(buf, sizeof buf, "%.0f %s", v, units[u]);
  else
    std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  return buf;
}

std::string format_teps(double teps) {
  char buf[32];
  if (teps >= 1e9)
    std::snprintf(buf, sizeof buf, "%.2f GTEPS", teps / 1e9);
  else if (teps >= 1e6)
    std::snprintf(buf, sizeof buf, "%.2f MTEPS", teps / 1e6);
  else if (teps >= 1e3)
    std::snprintf(buf, sizeof buf, "%.2f KTEPS", teps / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.2f TEPS", teps);
  return buf;
}

std::string format_scientific(double v) {
  char buf[32];
  // Paper style: "1.E+04".
  const int exp = v > 0 ? static_cast<int>(std::floor(std::log10(v))) : 0;
  const double mant = v > 0 ? v / std::pow(10.0, exp) : 0.0;
  if (std::abs(mant - 1.0) < 1e-9)
    std::snprintf(buf, sizeof buf, "1.E+%02d", exp);
  else
    std::snprintf(buf, sizeof buf, "%.1fE+%02d", mant, exp);
  return buf;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace sembfs
