#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace sembfs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;
  char stack_buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof stack_buf, fmt, args);
  va_end(args);

  const char* text = stack_buf;
  std::vector<char> heap_buf;
  if (needed < 0) {
    text = "<log formatting error>";
  } else if (static_cast<std::size_t>(needed) >= sizeof stack_buf) {
    // Message longer than the stack buffer: format again into a buffer
    // sized from the first pass so nothing is truncated.
    heap_buf.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args_copy);
    text = heap_buf.data();
  }
  va_end(args_copy);

  const std::lock_guard<std::mutex> lock{g_mutex};
  std::fprintf(stderr, "[sembfs %s] %s\n", level_name(level), text);
}

}  // namespace sembfs
