#include "util/bitmap.hpp"

#include <bit>

namespace sembfs {

namespace {
constexpr std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }
}  // namespace

Bitmap::Bitmap(std::size_t bits) : words_(words_for(bits), 0), bits_(bits) {}

void Bitmap::resize(std::size_t bits) {
  words_.assign(words_for(bits), 0);
  bits_ = bits;
}

void Bitmap::clear() noexcept { std::fill(words_.begin(), words_.end(), 0); }

std::size_t Bitmap::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += std::popcount(w);
  return total;
}

void Bitmap::swap(Bitmap& other) noexcept {
  words_.swap(other.words_);
  std::swap(bits_, other.bits_);
}

AtomicBitmap::AtomicBitmap(std::size_t bits)
    : words_(words_for(bits)), bits_(bits) {
  clear();
}

void AtomicBitmap::resize(std::size_t bits) {
  words_ = std::vector<std::atomic<std::uint64_t>>(words_for(bits));
  bits_ = bits;
  clear();
}

void AtomicBitmap::clear() noexcept {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

std::size_t AtomicBitmap::count() const noexcept {
  std::size_t total = 0;
  for (const auto& w : words_)
    total += std::popcount(w.load(std::memory_order_relaxed));
  return total;
}

void AtomicBitmap::snapshot(Bitmap& out) const {
  out.resize(bits_);
  for (std::size_t i = 0; i < bits_; ++i)
    if (test(i)) out.set(i);
}

}  // namespace sembfs
