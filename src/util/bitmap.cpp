#include "util/bitmap.hpp"

#include <algorithm>
#include <bit>

namespace sembfs {

using bitmap_detail::words_for;

Bitmap::Bitmap(std::size_t bits) : words_(words_for(bits), 0), bits_(bits) {}

void Bitmap::resize(std::size_t bits) {
  words_.assign(words_for(bits), 0);
  bits_ = bits;
}

void Bitmap::clear() noexcept { std::fill(words_.begin(), words_.end(), 0); }

std::size_t Bitmap::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += std::popcount(w);
  return total;
}

void Bitmap::or_with(const Bitmap& other) noexcept {
  SEMBFS_ASSERT(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    words_[i] |= other.words_[i];
}

void Bitmap::swap(Bitmap& other) noexcept {
  words_.swap(other.words_);
  std::swap(bits_, other.bits_);
}

AtomicBitmap::AtomicBitmap(std::size_t bits)
    : words_(words_for(bits)), bits_(bits) {
  clear();
}

void AtomicBitmap::resize(std::size_t bits) {
  words_ = std::vector<std::atomic<std::uint64_t>>(words_for(bits));
  bits_ = bits;
  clear();
}

void AtomicBitmap::clear() noexcept {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void AtomicBitmap::fill() noexcept {
  if (words_.empty()) return;
  for (auto& w : words_) w.store(~std::uint64_t{0}, std::memory_order_relaxed);
  // Keep the partial tail word's dead bits zero (see the class contract).
  words_.back().store(bitmap_tail_mask(bits_ - (words_.size() - 1) * 64),
                      std::memory_order_relaxed);
}

std::size_t AtomicBitmap::count() const noexcept {
  std::size_t total = 0;
  for (const auto& w : words_)
    total += std::popcount(w.load(std::memory_order_relaxed));
  return total;
}

void AtomicBitmap::snapshot(Bitmap& out) const {
  out.resize(bits_);
  const std::span<std::uint64_t> dst = out.words();
  for (std::size_t w = 0; w < words_.size(); ++w)
    dst[w] = words_[w].load(std::memory_order_relaxed);
}

}  // namespace sembfs
