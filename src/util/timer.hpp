// Monotonic wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace sembfs {

/// Stopwatch over the steady clock. Construction starts it.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }
  [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time across start/stop pairs (per-level timing).
class AccumulatingTimer {
 public:
  void start() noexcept { timer_.reset(); }
  void stop() noexcept { total_ += timer_.seconds(); }
  void reset() noexcept { total_ = 0.0; }
  [[nodiscard]] double seconds() const noexcept { return total_; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace sembfs
