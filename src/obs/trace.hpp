// Per-level trace spans for BFS runs.
//
// The paper's core claims are per-level phenomena (Figures 10/11: which
// direction each level ran, how many edges it scanned, how hard the NVM
// device was hit), and the hybrid's behaviour is decided level-by-level by
// SwitchPolicy. A TraceLog records one span per executed level, folding in
// the LevelStats the session already computes PLUS the exact PolicyInput
// the switch policy saw after that level and the direction it decided —
// so a trace answers "why did level 7 run bottom-up?" without re-running.
//
// A TraceLog is passed by pointer through BfsConfig (nullptr = tracing
// off, the default). It is independent of the metrics registry: traces
// are per-run event records, metrics are process-wide aggregates.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "bfs/level_stats.hpp"
#include "bfs/policy.hpp"

namespace sembfs::obs {

/// One executed BFS level.
struct TraceSpan {
  int run = 0;                   ///< BFS-run ordinal within the log
  std::int64_t root = -1;        ///< root vertex of the run
  std::int32_t level = 0;        ///< level the span covers
  Direction direction = Direction::TopDown;  ///< direction the level RAN
  double start_seconds = 0.0;    ///< level start, relative to the log epoch
  double duration_seconds = 0.0;
  LevelStats stats;              ///< the session's per-level record
  /// What the switch policy was shown after this level completed…
  PolicyInput policy_input;
  /// …and the direction it chose for the next level. For forced modes
  /// (top-down-only / bottom-up-only) `policy_evaluated` is false and
  /// `decision` simply repeats the forced direction.
  Direction decision = Direction::TopDown;
  bool policy_evaluated = false;
};

class TraceLog {
 public:
  TraceLog() : epoch_(std::chrono::steady_clock::now()) {}

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Registers a new BFS run; spans of that run carry the returned id.
  int begin_run(std::int64_t root);

  /// Appends one span (thread-safe).
  void record(TraceSpan span);

  /// Seconds since the log was created — the time base for span starts.
  [[nodiscard]] double seconds_since_epoch() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  [[nodiscard]] std::vector<TraceSpan> spans() const;
  [[nodiscard]] std::size_t span_count() const;

  void clear();

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  int next_run_ = 0;
  std::vector<TraceSpan> spans_;
};

}  // namespace sembfs::obs
