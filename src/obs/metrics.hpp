// Low-overhead metrics registry: named counters, gauges and latency
// histograms shared by every instrumented subsystem (NVM device, I/O
// scheduler, chunk cache, BFS session, thread pool).
//
// Design constraints (the FlashGraph/Graphyti lesson — a semi-external
// engine lives or dies by its I/O stack, so the instrumentation must be
// cheap enough to leave compiled in):
//  - Disabled mode is the default and costs a SINGLE BRANCH per event: one
//    relaxed atomic load of the process-wide enabled flag. No clock reads,
//    no stores, no locks.
//  - Enabled counters are sharded across cache-line-padded per-thread
//    slots, so 48 BFS workers bumping `nvm.requests` never contend on one
//    line; value() folds the shards.
//  - Handles (Counter&/Gauge&/Histogram&) are stable for the process
//    lifetime: instrumented objects resolve names once at construction and
//    keep raw pointers. The registry itself is a leaked singleton so no
//    static-destruction-order hazard exists for worker threads that
//    outlive main().
//
// Naming convention: `<subsystem>.<metric>[_<unit>]`, e.g.
// `nvm.queue_wait_us`, `chunk_cache.hits` (see docs/OBSERVABILITY.md for
// the full catalogue).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace sembfs::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};

/// Small dense id for the calling thread, assigned on first use.
inline std::size_t this_thread_ordinal() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}
}  // namespace detail

/// True while metric collection is on. Instrumentation sites gate on this
/// before taking timestamps or touching counters; when false the whole
/// event costs exactly this load + branch.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips collection on/off (off by default). Toggling does not clear
/// accumulated values; see MetricsRegistry::reset().
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event counter, sharded to keep concurrent adds off a single
/// cache line. add() does NOT check enabled() — call sites gate.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::this_thread_ordinal() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Everything the registry holds, copied out at one instant (name-sorted,
/// so exports are deterministic).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name -> instrument table. Registration (counter()/gauge()/histogram())
/// takes a mutex and is meant for construction time; the returned
/// references stay valid for the registry's lifetime, so hot paths never
/// look names up again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every registered instrument (names stay registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every built-in instrumentation site uses.
/// Intentionally leaked: I/O and pool worker threads may record into it
/// during static destruction.
MetricsRegistry& metrics();

}  // namespace sembfs::obs
