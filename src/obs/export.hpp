// Exporters for the observability subsystem: metrics (JSON + CSV) and
// trace spans (JSON). Schemas are documented in docs/OBSERVABILITY.md and
// versioned via the top-level "schema" key so downstream tooling can
// detect drift.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"

namespace sembfs::obs {

/// Renders a metrics snapshot as a JSON document with top-level keys
/// "schema", "counters", "gauges", "histograms". Histograms carry count /
/// sum / min / max / mean, p50/p90/p99 estimates, and their non-empty
/// buckets as inclusive upper bounds.
[[nodiscard]] std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Renders a metrics snapshot as CSV with columns kind,name,key,value —
/// one row per counter/gauge, one row per histogram summary statistic and
/// per non-empty bucket (key "le_<bound>").
[[nodiscard]] CsvWriter metrics_to_csv(const MetricsSnapshot& snapshot);

/// Renders a trace log as a JSON document with top-level keys "schema" and
/// "spans"; each span records the level outcome plus the PolicyInput and
/// direction decision.
[[nodiscard]] std::string trace_to_json(const TraceLog& log);

/// Writes `content` to `path`, reporting buffered-write failures surfaced
/// at fclose (full disk) as well as open/write errors.
[[nodiscard]] bool write_text_file(const std::string& path,
                                   const std::string& content);

// Convenience one-shot writers; return false on any I/O failure.
[[nodiscard]] bool write_metrics_json(const MetricsRegistry& registry,
                                      const std::string& path);
[[nodiscard]] bool write_metrics_csv(const MetricsRegistry& registry,
                                     const std::string& path);
[[nodiscard]] bool write_trace_json(const TraceLog& log,
                                    const std::string& path);

}  // namespace sembfs::obs
