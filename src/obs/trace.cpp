#include "obs/trace.hpp"

namespace sembfs::obs {

int TraceLog::begin_run(std::int64_t root) {
  const std::lock_guard<std::mutex> lock{mutex_};
  (void)root;  // runs are identified positionally; the root is on each span
  return next_run_++;
}

void TraceLog::record(TraceSpan span) {
  const std::lock_guard<std::mutex> lock{mutex_};
  spans_.push_back(span);
}

std::vector<TraceSpan> TraceLog::spans() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return spans_;
}

std::size_t TraceLog::span_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return spans_.size();
}

void TraceLog::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  spans_.clear();
  next_run_ = 0;
}

}  // namespace sembfs::obs
