#include "obs/metrics.hpp"

#include <algorithm>

namespace sembfs::obs {

namespace {

template <typename Map, typename Instrument>
Instrument& intern(std::mutex& mutex, Map& map, std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex};
  auto it = map.find(std::string{name});
  if (it == map.end()) {
    it = map.emplace(std::string{name}, std::make_unique<Instrument>()).first;
  }
  return *it->second;
}

template <typename Map, typename Out, typename Extract>
void collect_sorted(const Map& map, Out& out, Extract&& extract) {
  out.reserve(map.size());
  for (const auto& [name, instrument] : map)
    out.emplace_back(name, extract(*instrument));
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return intern<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return intern<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return intern<decltype(histograms_), Histogram>(mutex_, histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  MetricsSnapshot s;
  collect_sorted(counters_, s.counters,
                 [](const Counter& c) { return c.value(); });
  collect_sorted(gauges_, s.gauges, [](const Gauge& g) { return g.value(); });
  collect_sorted(histograms_, s.histograms,
                 [](const Histogram& h) { return h.snapshot(); });
  return s;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  // Leaked on purpose; see the header's lifetime notes.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace sembfs::obs
