// Log-bucketed latency histogram (HdrHistogram-style, 2 significant bits).
//
// Values (integer microseconds in the built-in instrumentation) are binned
// into log-linear buckets: each power-of-two range is split into 4 linear
// sub-buckets, so any recorded value lands in a bucket whose width is at
// most 25% of its lower bound — tight enough for p50/p90/p99 latency
// estimates while keeping the whole histogram a fixed 252 atomic counters
// (~2 KiB, no allocation, no locking on record()).
//
// record() is wait-free: one relaxed fetch_add on the bucket plus relaxed
// updates of count/sum/min/max. Like Counter, it does NOT check
// obs::enabled() — instrumentation sites gate before taking the timestamps
// that produce the value in the first place.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace sembfs::obs {

/// Point-in-time copy of a Histogram, with the derived statistics.
struct HistogramSnapshot {
  static constexpr std::size_t kBucketCount = 252;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBucketCount> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimates the q-quantile (q in [0,1]) by linear interpolation inside
  /// the bucket holding the target rank; the estimate is clamped to the
  /// exact observed [min, max]. Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;
};

class Histogram {
 public:
  static constexpr std::size_t kBucketCount = HistogramSnapshot::kBucketCount;

  /// Bucket holding `value`: values < 4 get exact buckets 0..3; above
  /// that, bucket (e-1)*4 + (top 2 bits below the leading bit), where e is
  /// the leading bit's position. Monotone in `value`.
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t value) noexcept {
    if (value < 4) return static_cast<std::size_t>(value);
    const int e = 63 - std::countl_zero(value);
    const auto sub = static_cast<std::size_t>((value >> (e - 2)) & 3);
    return static_cast<std::size_t>(e - 1) * 4 + sub;
  }

  /// Smallest value that maps to bucket `index`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower_bound(
      std::size_t index) noexcept {
    if (index < 4) return index;
    const std::size_t e = index / 4 + 1;
    const std::uint64_t sub = index % 4;
    return (4 + sub) << (e - 2);
  }

  /// Largest value that maps to bucket `index` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(
      std::size_t index) noexcept {
    return index + 1 < kBucketCount
               ? bucket_lower_bound(index + 1) - 1
               : std::numeric_limits<std::uint64_t>::max();
  }

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

  void reset() noexcept;

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace sembfs::obs
