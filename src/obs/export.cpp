#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace sembfs::obs {

namespace {

constexpr const char* kMetricsSchema = "sembfs.metrics.v1";
constexpr const char* kTraceSchema = "sembfs.trace.v1";

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":" + fmt_u64(h.count);
  out += ",\"sum\":" + fmt_u64(h.sum);
  out += ",\"min\":" + fmt_u64(h.min);
  out += ",\"max\":" + fmt_u64(h.max);
  out += ",\"mean\":" + fmt_double(h.mean());
  out += ",\"p50\":" + fmt_double(h.quantile(0.50));
  out += ",\"p90\":" + fmt_double(h.quantile(0.90));
  out += ",\"p99\":" + fmt_double(h.quantile(0.99));
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"le\":" + fmt_u64(Histogram::bucket_upper_bound(i)) +
           ",\"count\":" + fmt_u64(h.buckets[i]) + '}';
  }
  out += "]}";
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"schema\":";
  append_json_string(out, kMetricsSchema);
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, snapshot.counters[i].first);
    out += ':' + fmt_u64(snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, snapshot.gauges[i].first);
    out += ':' + fmt_i64(snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, snapshot.histograms[i].first);
    out += ':';
    append_histogram_json(out, snapshot.histograms[i].second);
  }
  out += "}}\n";
  return out;
}

CsvWriter metrics_to_csv(const MetricsSnapshot& snapshot) {
  CsvWriter csv({"kind", "name", "key", "value"});
  for (const auto& [name, value] : snapshot.counters)
    csv.add_row({"counter", name, "value", fmt_u64(value)});
  for (const auto& [name, value] : snapshot.gauges)
    csv.add_row({"gauge", name, "value", fmt_i64(value)});
  for (const auto& [name, h] : snapshot.histograms) {
    csv.add_row({"histogram", name, "count", fmt_u64(h.count)});
    csv.add_row({"histogram", name, "sum", fmt_u64(h.sum)});
    csv.add_row({"histogram", name, "min", fmt_u64(h.min)});
    csv.add_row({"histogram", name, "max", fmt_u64(h.max)});
    csv.add_row({"histogram", name, "mean", fmt_double(h.mean())});
    csv.add_row({"histogram", name, "p50", fmt_double(h.quantile(0.50))});
    csv.add_row({"histogram", name, "p90", fmt_double(h.quantile(0.90))});
    csv.add_row({"histogram", name, "p99", fmt_double(h.quantile(0.99))});
    for (std::size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
      if (h.buckets[i] == 0) continue;
      csv.add_row({"histogram", name,
                   "le_" + fmt_u64(Histogram::bucket_upper_bound(i)),
                   fmt_u64(h.buckets[i])});
    }
  }
  return csv;
}

std::string trace_to_json(const TraceLog& log) {
  const std::vector<TraceSpan> spans = log.spans();
  std::string out = "{\"schema\":";
  append_json_string(out, kTraceSchema);
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i != 0) out += ',';
    out += "{\"run\":" + fmt_i64(s.run);
    out += ",\"root\":" + fmt_i64(s.root);
    out += ",\"level\":" + fmt_i64(s.level);
    out += ",\"direction\":";
    append_json_string(out, direction_name(s.direction));
    out += ",\"start_s\":" + fmt_double(s.start_seconds);
    out += ",\"duration_s\":" + fmt_double(s.duration_seconds);
    out += ",\"frontier_vertices\":" + fmt_i64(s.stats.frontier_vertices);
    out += ",\"claimed_vertices\":" + fmt_i64(s.stats.claimed_vertices);
    out += ",\"scanned_edges\":" + fmt_i64(s.stats.scanned_edges);
    out += ",\"avg_degree\":" + fmt_double(s.stats.avg_degree);
    out += ",\"nvm_requests\":" + fmt_u64(s.stats.nvm_requests);
    out += ",\"io_failures\":" + fmt_u64(s.stats.io_failures);
    out += ",\"degraded\":";
    out += s.stats.degraded ? "true" : "false";
    out += ",\"policy\":{\"evaluated\":";
    out += s.policy_evaluated ? "true" : "false";
    out += ",\"n_all\":" + fmt_i64(s.policy_input.n_all);
    out += ",\"prev_frontier\":" + fmt_i64(s.policy_input.prev_frontier);
    out += ",\"cur_frontier\":" + fmt_i64(s.policy_input.cur_frontier);
    out += ",\"frontier_edges\":" + fmt_i64(s.policy_input.frontier_edges);
    out += ",\"unvisited_edges\":" + fmt_i64(s.policy_input.unvisited_edges);
    out += ",\"decision\":";
    append_json_string(out, direction_name(s.decision));
    out += "}}";
  }
  out += "]}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  // fclose flushes the stdio buffer; a full disk surfaces here.
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

bool write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path) {
  return write_text_file(path, metrics_to_json(registry.snapshot()));
}

bool write_metrics_csv(const MetricsRegistry& registry,
                       const std::string& path) {
  return metrics_to_csv(registry.snapshot()).write_file(path);
}

bool write_trace_json(const TraceLog& log, const std::string& path) {
  return write_text_file(path, trace_to_json(log));
}

}  // namespace sembfs::obs
