#include "obs/histogram.hpp"

#include <algorithm>

namespace sembfs::obs {

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; don't blur them with bucket
  // interpolation.
  if (q == 0.0) return static_cast<double>(min);
  if (q == 1.0) return static_cast<double>(max);
  // 0-based target rank; rank 0 is the smallest sample.
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) continue;
    const auto first = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (rank < static_cast<double>(cumulative)) {
      // Interpolate at the center of the target sample's share of the
      // bucket's value range.
      const double frac =
          (rank - first + 0.5) / static_cast<double>(buckets[i]);
      const auto lo = static_cast<double>(Histogram::bucket_lower_bound(i));
      const auto hi =
          static_cast<double>(Histogram::bucket_upper_bound(i)) + 1.0;
      const double estimate = lo + frac * (hi - lo);
      return std::clamp(estimate, static_cast<double>(min),
                        static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t raw_min = min_.load(std::memory_order_relaxed);
  s.min = raw_min == std::numeric_limits<std::uint64_t>::max() ? 0 : raw_min;
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBucketCount; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace sembfs::obs
