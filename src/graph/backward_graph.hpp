// The backward graph: per-NUMA-node CSR partitions used by the bottom-up
// direction (paper Section IV-A / Figure 6, right).
//
// Partition k holds only the source vertices of node k's range — the
// *unvisited* vertices that node's threads sweep — with their complete
// adjacency lists, so a bottom-up sweep touches only node-local memory.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "numa/partition.hpp"

namespace sembfs {

class BackwardGraph {
 public:
  BackwardGraph() = default;

  static BackwardGraph build(const EdgeList& edges,
                             const VertexPartition& partition,
                             const CsrBuildOptions& options, ThreadPool& pool);

  /// Streaming build from an NVM-resident edge list (paper Step 2).
  static BackwardGraph build_stream(Vertex vertex_count,
                                    const EdgeStream& stream,
                                    const VertexPartition& partition,
                                    const CsrBuildOptions& options,
                                    ThreadPool& pool);

  /// Wraps an already-built whole-graph CSR (sources = destinations = all
  /// vertices) as a single-partition backward graph (see
  /// ForwardGraph::wrap_whole).
  static BackwardGraph wrap_whole(Csr csr);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] const Csr& partition(std::size_t node) const noexcept {
    return partitions_[node];
  }
  [[nodiscard]] const VertexPartition& vertex_partition() const noexcept {
    return vertex_partition_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return vertex_partition_.vertex_count();
  }

  /// Adjacency list of global vertex v (routed to the owning partition).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return partitions_[vertex_partition_.node_of(v)].neighbors(v);
  }

  [[nodiscard]] std::int64_t entry_count() const noexcept;
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

 private:
  VertexPartition vertex_partition_;
  std::vector<Csr> partitions_;
};

}  // namespace sembfs
