#include "graph/serialize.hpp"

#include <cstring>
#include <stdexcept>

#include "nvm/storage_file.hpp"
#include "nvm/varint.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'M', 'B', 'F', 'S', 'G', '2'};
constexpr char kMagicV1[8] = {'S', 'E', 'M', 'B', 'F', 'S', 'G', '1'};
constexpr std::uint32_t kKindCsr = 1;
constexpr std::uint32_t kKindEdgeList = 2;

struct Header {
  char magic[8];
  std::uint32_t kind;
  std::uint32_t flags;
  std::uint64_t a;
  std::uint64_t b;
};
static_assert(sizeof(Header) == 32);

Header read_header(const StorageFile& file, std::uint32_t expected_kind,
                   const std::string& path) {
  Header header{};
  file.pread_exact(0, std::as_writable_bytes(std::span<Header>{&header, 1}));
  if (std::memcmp(header.magic, kMagicV1, sizeof kMagicV1) == 0)
    throw std::runtime_error(
        "'" + path +
        "' was written by an older sembfs (format v1); regenerate it with "
        "this binary");
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("'" + path + "' is not a sembfs graph file");
  if (header.kind != expected_kind)
    throw std::runtime_error("'" + path + "' holds a different graph kind");
  return header;
}

template <typename T>
void write_array(const StorageFile& file, std::uint64_t& offset,
                 std::span<const T> data) {
  file.pwrite_exact(offset, std::as_bytes(data));
  offset += data.size_bytes();
}

template <typename T>
void read_array(const StorageFile& file, std::uint64_t& offset,
                std::span<T> data) {
  file.pread_exact(offset, std::as_writable_bytes(data));
  offset += data.size_bytes();
}

}  // namespace

void save_csr(const Csr& csr, const std::string& path, ChunkFormat format) {
  StorageFile file = StorageFile::create(path);
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.kind = kKindCsr;
  header.flags = static_cast<std::uint32_t>(format);
  header.a = static_cast<std::uint64_t>(csr.global_vertex_count());
  header.b = 0;
  std::uint64_t offset = 0;
  write_array<Header>(file, offset, {&header, 1});

  // Ranges + array lengths, then the arrays.
  const std::int64_t meta[6] = {
      csr.source_range().begin,        csr.source_range().end,
      csr.destination_range().begin,   csr.destination_range().end,
      static_cast<std::int64_t>(csr.index().size()),
      static_cast<std::int64_t>(csr.values().size())};
  write_array<std::int64_t>(file, offset, meta);
  write_array<std::int64_t>(file, offset, csr.index());
  if (format == ChunkFormat::kVarint) {
    // One zigzag/delta stream over the whole values array, length-prefixed
    // so the loader can size its read without scanning.
    std::vector<std::byte> encoded;
    encode_adjacency_block(std::span<const std::int64_t>{csr.values()},
                           encoded);
    const std::uint64_t encoded_len = encoded.size();
    write_array<std::uint64_t>(file, offset, {&encoded_len, 1});
    write_array<std::byte>(file, offset, encoded);
  } else {
    write_array<Vertex>(file, offset, csr.values());
  }
  file.sync();
}

Csr load_csr(const std::string& path) {
  StorageFile file = StorageFile::open_readonly(path);
  const Header header = read_header(file, kKindCsr, path);
  std::uint64_t offset = sizeof(Header);

  std::int64_t meta[6];
  read_array<std::int64_t>(file, offset, meta);
  if (meta[4] < 1 || meta[5] < 0)
    throw std::runtime_error("'" + path + "': corrupt CSR metadata");
  const auto format = parse_chunk_format(header.flags);
  if (!format.has_value())
    throw std::runtime_error("'" + path + "': unknown CSR values encoding");

  std::vector<std::int64_t> index(static_cast<std::size_t>(meta[4]));
  std::vector<Vertex> values(static_cast<std::size_t>(meta[5]));
  read_array<std::int64_t>(file, offset, std::span<std::int64_t>{index});
  if (*format == ChunkFormat::kVarint) {
    std::uint64_t encoded_len = 0;
    read_array<std::uint64_t>(file, offset, {&encoded_len, 1});
    if (encoded_len > file.size() - std::min<std::uint64_t>(offset, file.size()))
      throw std::runtime_error("'" + path + "': corrupt CSR values stream");
    std::vector<std::byte> encoded(static_cast<std::size_t>(encoded_len));
    read_array<std::byte>(file, offset, std::span<std::byte>{encoded});
    decode_adjacency_block(std::span<const std::byte>{encoded},
                           std::span<std::int64_t>{values});
  } else {
    read_array<Vertex>(file, offset, std::span<Vertex>{values});
  }

  return Csr::from_parts(static_cast<Vertex>(header.a),
                         VertexRange{meta[0], meta[1]},
                         VertexRange{meta[2], meta[3]}, std::move(index),
                         std::move(values));
}

void save_edge_list(const EdgeList& edges, const std::string& path) {
  StorageFile file = StorageFile::create(path);
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.kind = kKindEdgeList;
  header.a = static_cast<std::uint64_t>(edges.vertex_count());
  header.b = edges.edge_count();
  std::uint64_t offset = 0;
  write_array<Header>(file, offset, {&header, 1});

  constexpr std::size_t kBatch = 1 << 16;
  std::vector<PackedEdge> packed;
  const auto span = edges.edges();
  std::size_t done = 0;
  while (done < span.size()) {
    const std::size_t len = std::min(kBatch, span.size() - done);
    packed.resize(len);
    for (std::size_t i = 0; i < len; ++i)
      packed[i] = PackedEdge::pack(span[done + i]);
    write_array<PackedEdge>(file, offset, packed);
    done += len;
  }
  file.sync();
}

EdgeList load_edge_list(const std::string& path) {
  StorageFile file = StorageFile::open_readonly(path);
  const Header header = read_header(file, kKindEdgeList, path);
  std::uint64_t offset = sizeof(Header);

  EdgeList edges{static_cast<Vertex>(header.a)};
  edges.reserve(static_cast<std::size_t>(header.b));
  constexpr std::size_t kBatch = 1 << 16;
  std::vector<PackedEdge> packed;
  std::uint64_t remaining = header.b;
  while (remaining > 0) {
    const std::size_t len =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBatch, remaining));
    packed.resize(len);
    read_array<PackedEdge>(file, offset, std::span<PackedEdge>{packed});
    for (const PackedEdge& p : packed) edges.add(p.unpack());
    remaining -= len;
  }
  return edges;
}

}  // namespace sembfs
