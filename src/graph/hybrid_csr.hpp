// Partially-offloaded backward graph (paper Sections V-A, V-C, VI-E).
//
// The bottom-up step usually finds a frontier parent within the first few
// neighbors of an unvisited vertex, so most of each adjacency list is never
// read. The hybrid layout exploits that: the first `dram_edges_per_vertex`
// neighbors of every vertex stay in DRAM; the remainder is offloaded to an
// NVM value file and only streamed (in 4 KiB chunks) when the DRAM prefix
// fails to terminate the search. Per-tier access counters feed Figure 14
// (access ratio to the backward graph on NVM vs DRAM size reduction).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/backward_graph.hpp"
#include "nvm/chunk_format.hpp"
#include "nvm/compressed_file.hpp"
#include "nvm/external_array.hpp"
#include "nvm/nvm_device.hpp"
#include "numa/partition.hpp"
#include "util/contracts.hpp"

namespace sembfs {

class HybridBackwardPartition {
 public:
  /// Splits `csr` (one backward partition): first `dram_edges_per_vertex`
  /// neighbors per vertex stay in DRAM, the rest go to an NVM file.
  /// With ChunkFormat::kVarint the NVM remainder file is stored as
  /// delta/varint blobs behind a CompressedBlockFile; the streamed
  /// bottom-up / MS-BFS read path is format-oblivious.
  HybridBackwardPartition(const Csr& csr, std::int64_t dram_edges_per_vertex,
                          std::shared_ptr<NvmDevice> device,
                          const std::string& dir, std::size_t node_id,
                          std::uint32_t chunk_bytes = 4096,
                          ChunkFormat format = ChunkFormat::kRaw);

  [[nodiscard]] VertexRange source_range() const noexcept { return sources_; }
  [[nodiscard]] std::int64_t dram_edges_per_vertex() const noexcept {
    return dram_cap_;
  }

  [[nodiscard]] ChunkFormat format() const noexcept { return format_; }
  [[nodiscard]] std::uint64_t dram_byte_size() const noexcept;
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  /// Uncompressed size of the NVM remainder (what kRaw would occupy).
  [[nodiscard]] std::uint64_t nvm_raw_byte_size() const noexcept {
    return static_cast<std::uint64_t>(nvm_entry_count_) * sizeof(Vertex);
  }
  [[nodiscard]] std::int64_t dram_entry_count() const noexcept {
    return static_cast<std::int64_t>(dram_values_.size());
  }
  [[nodiscard]] std::int64_t nvm_entry_count() const noexcept {
    return nvm_entry_count_;
  }

  /// Visits neighbors of global vertex v in storage order: DRAM prefix
  /// first, then the NVM remainder streamed chunk-wise. `fn(Vertex)` returns
  /// false to stop early (bottom-up parent found). `scratch` is the
  /// caller's staging buffer for NVM chunks (reused across calls).
  /// Edge-examination counters are updated per tier.
  template <typename Fn>
  void visit_neighbors(Vertex v, std::vector<Vertex>& scratch, Fn&& fn) {
    SEMBFS_ASSERT(sources_.contains(v));
    const auto local = static_cast<std::size_t>(v - sources_.begin);
    // The tier counters are shared by every sweep worker (and, under the
    // serving engine, every concurrent query); a per-edge fetch_add on
    // them turns the hottest loop in the bottom-up sweep into a cache-line
    // ping-pong. Accumulate locally and flush once per call — a device
    // fault unwinding mid-call drops that call's counts, which the
    // informational Figure-14 ratios tolerate.
    std::uint64_t dram_seen = 0;
    std::uint64_t nvm_seen = 0;
    bool stopped = false;
    // DRAM prefix.
    const std::int64_t db = dram_index_[local];
    const std::int64_t de = dram_index_[local + 1];
    for (std::int64_t i = db; i < de; ++i) {
      ++dram_seen;
      if (!fn(dram_values_[static_cast<std::size_t>(i)])) {
        stopped = true;
        break;
      }
    }
    if (!stopped) {
      // NVM remainder, streamed.
      const std::int64_t nb = nvm_index_[local];
      const std::int64_t ne = nvm_index_[local + 1];
      const std::size_t chunk_elems = chunk_bytes_ / sizeof(Vertex);
      std::int64_t pos = nb;
      while (pos < ne && !stopped) {
        const std::size_t len = static_cast<std::size_t>(
            std::min<std::int64_t>(static_cast<std::int64_t>(chunk_elems),
                                   ne - pos));
        scratch.resize(len);
        nvm_values_->read(static_cast<std::uint64_t>(pos),
                          std::span<Vertex>{scratch});
        for (std::size_t i = 0; i < len; ++i) {
          ++nvm_seen;
          if (!fn(scratch[i])) {
            stopped = true;
            break;
          }
        }
        pos += static_cast<std::int64_t>(len);
      }
    }
    if (dram_seen != 0)
      dram_examined_.fetch_add(dram_seen, std::memory_order_relaxed);
    if (nvm_seen != 0)
      nvm_examined_.fetch_add(nvm_seen, std::memory_order_relaxed);
  }

  /// Full degree of global vertex v (no device I/O — both index arrays are
  /// DRAM-resident).
  [[nodiscard]] std::int64_t degree(Vertex v) const noexcept {
    const auto local = static_cast<std::size_t>(v - sources_.begin);
    return (dram_index_[local + 1] - dram_index_[local]) +
           (nvm_index_[local + 1] - nvm_index_[local]);
  }

  [[nodiscard]] std::uint64_t dram_edges_examined() const noexcept {
    return dram_examined_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t nvm_edges_examined() const noexcept {
    return nvm_examined_.load(std::memory_order_relaxed);
  }
  void reset_counters() noexcept {
    dram_examined_.store(0, std::memory_order_relaxed);
    nvm_examined_.store(0, std::memory_order_relaxed);
  }

 private:
  VertexRange sources_;
  std::int64_t dram_cap_ = 0;
  std::uint32_t chunk_bytes_ = 4096;

  std::vector<std::int64_t> dram_index_;  // local, size+1
  std::vector<Vertex> dram_values_;
  std::vector<std::int64_t> nvm_index_;   // local offsets into NVM file
  std::int64_t nvm_entry_count_ = 0;
  ChunkFormat format_ = ChunkFormat::kRaw;
  // In kVarint format this is the CompressedBlockFile wrapping the
  // physical overflow file (compressed_ aliases it).
  std::unique_ptr<NvmBackingFile> nvm_file_;
  CompressedBlockFile* compressed_ = nullptr;
  std::unique_ptr<ExternalArray<Vertex>> nvm_values_;

  std::atomic<std::uint64_t> dram_examined_{0};
  std::atomic<std::uint64_t> nvm_examined_{0};
};

/// The full partially-offloaded backward graph.
class HybridBackwardGraph {
 public:
  HybridBackwardGraph(const BackwardGraph& backward,
                      std::int64_t dram_edges_per_vertex,
                      std::shared_ptr<NvmDevice> device,
                      const std::string& dir,
                      std::uint32_t chunk_bytes = 4096,
                      ChunkFormat format = ChunkFormat::kRaw);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] HybridBackwardPartition& partition(std::size_t node) noexcept {
    return *partitions_[node];
  }
  [[nodiscard]] const VertexPartition& vertex_partition() const noexcept {
    return vertex_partition_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return vertex_partition_.vertex_count();
  }

  /// Full degree of global vertex v (no device I/O).
  [[nodiscard]] std::int64_t degree(Vertex v) const noexcept {
    return partitions_[vertex_partition_.node_of(v)]->degree(v);
  }

  [[nodiscard]] std::uint64_t dram_byte_size() const noexcept;
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  /// Uncompressed size of the NVM remainder across all partitions.
  [[nodiscard]] std::uint64_t nvm_raw_byte_size() const noexcept {
    std::uint64_t total = 0;
    for (const auto& p : partitions_) total += p->nvm_raw_byte_size();
    return total;
  }
  [[nodiscard]] std::uint64_t dram_edges_examined() const noexcept;
  [[nodiscard]] std::uint64_t nvm_edges_examined() const noexcept;
  void reset_counters() noexcept;

 private:
  VertexPartition vertex_partition_;
  std::shared_ptr<NvmDevice> device_;
  std::vector<std::unique_ptr<HybridBackwardPartition>> partitions_;
};

}  // namespace sembfs
