#include "graph/backward_graph.hpp"

namespace sembfs {

BackwardGraph BackwardGraph::build(const EdgeList& edges,
                                   const VertexPartition& partition,
                                   const CsrBuildOptions& options,
                                   ThreadPool& pool) {
  BackwardGraph bg;
  bg.vertex_partition_ = partition;
  const VertexRange all{0, edges.vertex_count()};
  bg.partitions_.reserve(partition.node_count());
  for (std::size_t k = 0; k < partition.node_count(); ++k) {
    bg.partitions_.push_back(build_csr_filtered(
        edges, partition.range_of(k), all, options, pool));
  }
  return bg;
}

BackwardGraph BackwardGraph::build_stream(Vertex vertex_count,
                                          const EdgeStream& stream,
                                          const VertexPartition& partition,
                                          const CsrBuildOptions& options,
                                          ThreadPool& pool) {
  BackwardGraph bg;
  bg.vertex_partition_ = partition;
  const VertexRange all{0, vertex_count};
  bg.partitions_.reserve(partition.node_count());
  for (std::size_t k = 0; k < partition.node_count(); ++k) {
    bg.partitions_.push_back(build_csr_filtered_stream(
        vertex_count, stream, partition.range_of(k), all, options, pool));
  }
  return bg;
}

BackwardGraph BackwardGraph::wrap_whole(Csr csr) {
  const Vertex n = csr.global_vertex_count();
  SEMBFS_EXPECTS(csr.source_range() == (VertexRange{0, n}) &&
                 csr.destination_range() == (VertexRange{0, n}));
  BackwardGraph bg;
  bg.vertex_partition_ = VertexPartition{n, 1};
  bg.partitions_.push_back(std::move(csr));
  return bg;
}

std::int64_t BackwardGraph::entry_count() const noexcept {
  std::int64_t total = 0;
  for (const auto& p : partitions_) total += p.entry_count();
  return total;
}

std::uint64_t BackwardGraph::byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p.byte_size();
  return total;
}

}  // namespace sembfs
