// Uniform (Erdos-Renyi-style) edge-list generator — the structural foil to
// the Kronecker generator. Endpoints are i.i.d. uniform over the vertex
// set, so there are no hubs: every vertex has ~Poisson(2*edge_factor)
// degree. The hybrid BFS's bottom-up advantage depends on skew (early
// exits hit hubs quickly), so this family is the natural ablation
// workload: the hybrid's edge over plain top-down should shrink
// noticeably vs the Kronecker graphs.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct UniformParams {
  int scale = 16;
  int edge_factor = 16;
  std::uint64_t seed = 12345;

  [[nodiscard]] Vertex vertex_count() const noexcept {
    return Vertex{1} << scale;
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return static_cast<std::uint64_t>(vertex_count()) *
           static_cast<std::uint64_t>(edge_factor);
  }
};

/// Deterministic for a given seed and independent of thread count.
EdgeList generate_uniform(const UniformParams& params, ThreadPool& pool);

}  // namespace sembfs
