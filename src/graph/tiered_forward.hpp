// Degree-tiered forward graph — the paper's "future work includes further
// offloading graph data especially with small edges" (Section VIII),
// implemented.
//
// Figure 11 shows the semi-external top-down direction collapsing when the
// late levels search huge numbers of ~degree-1 vertices: each costs a full
// device round trip for a handful of bytes. The tiered layout inverts the
// placement: vertices whose (partition-local) adjacency is SHORT —
// degree <= threshold — keep their forward adjacency in DRAM, where it is
// nearly free to store; only the LONG adjacency lists (the hubs, which
// dominate bytes and whose large sequential reads amortize device latency)
// live on NVM. One device round trip per degree-1 vertex becomes one DRAM
// lookup; the DRAM cost is a small fraction of the forward graph.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/external_csr.hpp"
#include "graph/forward_graph.hpp"
#include "numa/partition.hpp"
#include "util/bitmap.hpp"

namespace sembfs {

class TieredForwardPartition {
 public:
  /// Splits one forward partition: sources with partition-local degree
  /// <= `degree_threshold` stay in DRAM, the rest go to NVM files.
  TieredForwardPartition(const Csr& csr, std::int64_t degree_threshold,
                         std::shared_ptr<NvmDevice> device,
                         const std::string& dir, std::size_t node_id,
                         ThreadPool& pool, std::uint32_t chunk_bytes = 4096,
                         ChunkFormat format = ChunkFormat::kRaw);

  [[nodiscard]] VertexRange source_range() const noexcept { return sources_; }
  [[nodiscard]] std::int64_t degree_threshold() const noexcept {
    return threshold_;
  }

  [[nodiscard]] bool is_on_nvm(Vertex v) const noexcept {
    return on_nvm_.test(static_cast<std::size_t>(v - sources_.begin));
  }

  /// Fetches v's adjacency into `out`; returns device requests issued
  /// (0 when v is DRAM-resident).
  std::uint64_t fetch_neighbors(Vertex v, std::vector<Vertex>& out);

  /// The NVM sub-partition holding the hub adjacencies (format, byte
  /// sizes, compression stats).
  [[nodiscard]] const ExternalCsrPartition& nvm_partition() const noexcept {
    return *nvm_;
  }
  [[nodiscard]] std::uint64_t dram_byte_size() const noexcept;
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  [[nodiscard]] std::int64_t dram_vertex_count() const noexcept {
    return dram_vertices_;
  }
  [[nodiscard]] std::int64_t nvm_vertex_count() const noexcept {
    return nvm_vertices_;
  }

 private:
  VertexRange sources_;
  std::int64_t threshold_ = 0;
  Bitmap on_nvm_;  // indexed by local source id
  std::vector<std::int64_t> dram_index_;  // local, size+1 (0-width for NVM)
  std::vector<Vertex> dram_values_;
  std::unique_ptr<ExternalCsrPartition> nvm_;
  std::int64_t dram_vertices_ = 0;
  std::int64_t nvm_vertices_ = 0;
};

/// Full tiered forward graph: one partition per emulated NUMA node.
class TieredForwardGraph {
 public:
  TieredForwardGraph(const ForwardGraph& forward,
                     std::int64_t degree_threshold,
                     std::shared_ptr<NvmDevice> device,
                     const std::string& dir, ThreadPool& pool,
                     std::uint32_t chunk_bytes = 4096,
                     ChunkFormat format = ChunkFormat::kRaw);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] TieredForwardPartition& partition(std::size_t node) noexcept {
    return *partitions_[node];
  }
  [[nodiscard]] const VertexPartition& vertex_partition() const noexcept {
    return vertex_partition_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return vertex_partition_.vertex_count();
  }

  [[nodiscard]] std::uint64_t dram_byte_size() const noexcept;
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;

 private:
  VertexPartition vertex_partition_;
  std::shared_ptr<NvmDevice> device_;
  std::vector<std::unique_ptr<TieredForwardPartition>> partitions_;
};

}  // namespace sembfs
