// CSR (Compressed Sparse Row) adjacency storage — the Step 2 output of the
// Graph500 benchmark (paper Figure 5).
//
// A Csr instance covers a *source range* of the vertex space and may filter
// by a *destination range*. This one abstraction backs all four graph
// shapes in the paper:
//   - the whole graph:        sources = all, destinations = all
//   - a forward partition:    sources = all, destinations = one NUMA node
//     ("vertices in neighbors are divided based on the NUMA node, and
//      vertices in the frontier are duplicated across the NUMA node")
//   - a backward partition:   sources = one NUMA node, destinations = all
//     ("unvisited vertices to search are straightforwardly divided")
// The index array is local to the source range; neighbors() takes global
// vertex IDs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "numa/partition.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct CsrBuildOptions {
  /// Insert both directions of every edge (Graph500 graphs are undirected).
  bool undirected = true;
  /// Drop u == v edges (they contribute nothing to BFS).
  bool remove_self_loops = true;
  /// Sort each adjacency list ascending (needed for dedupe; nice for tests).
  bool sort_neighbors = false;
  /// Collapse duplicate (u,v) entries after sorting. Implies sort.
  bool dedupe = false;
};

class Csr {
 public:
  Csr() = default;

  [[nodiscard]] Vertex global_vertex_count() const noexcept { return n_; }
  [[nodiscard]] VertexRange source_range() const noexcept { return sources_; }
  [[nodiscard]] VertexRange destination_range() const noexcept {
    return destinations_;
  }
  /// Number of stored adjacency entries (directed half-edges).
  [[nodiscard]] std::int64_t entry_count() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }

  [[nodiscard]] bool covers_source(Vertex v) const noexcept {
    return sources_.contains(v);
  }

  /// Out-degree of global vertex v (v must lie in the source range).
  [[nodiscard]] std::int64_t degree(Vertex v) const noexcept {
    const std::int64_t i = v - sources_.begin;
    return index_[i + 1] - index_[i];
  }

  /// Adjacency list of global vertex v.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    const std::int64_t i = v - sources_.begin;
    return std::span<const Vertex>{values_}.subspan(
        static_cast<std::size_t>(index_[i]),
        static_cast<std::size_t>(index_[i + 1] - index_[i]));
  }

  [[nodiscard]] const std::vector<std::int64_t>& index() const noexcept {
    return index_;
  }
  [[nodiscard]] const std::vector<Vertex>& values() const noexcept {
    return values_;
  }

  /// DRAM footprint of the arrays, in bytes.
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return index_.size() * sizeof(std::int64_t) +
           values_.size() * sizeof(Vertex);
  }

  /// Reassembles a CSR from its raw parts (deserialization / tools).
  /// Validates the index array's shape and monotonicity.
  static Csr from_parts(Vertex global_vertex_count, VertexRange sources,
                        VertexRange destinations,
                        std::vector<std::int64_t> index,
                        std::vector<Vertex> values);

  friend Csr build_csr_filtered(const EdgeList& edges, VertexRange sources,
                                VertexRange destinations,
                                const CsrBuildOptions& options,
                                ThreadPool& pool);
  friend Csr build_csr_filtered_stream(
      Vertex vertex_count,
      const std::function<
          void(const std::function<void(std::span<const Edge>)>&)>& stream,
      VertexRange sources, VertexRange destinations,
      const CsrBuildOptions& options, ThreadPool& pool);

 private:
  Vertex n_ = 0;
  VertexRange sources_;
  VertexRange destinations_;
  std::vector<std::int64_t> index_;  // sources_.size() + 1 entries
  std::vector<Vertex> values_;
};

/// Builds a CSR over `sources`, keeping only adjacency entries whose
/// destination lies in `destinations`.
Csr build_csr_filtered(const EdgeList& edges, VertexRange sources,
                       VertexRange destinations,
                       const CsrBuildOptions& options, ThreadPool& pool);

/// Whole-graph CSR.
Csr build_csr(const EdgeList& edges, const CsrBuildOptions& options,
              ThreadPool& pool);

/// An edge source that can be streamed multiple times: each call to the
/// outer function must deliver every edge of the graph (in batches) to the
/// provided sink exactly once. ExternalEdgeList::for_each_batch wraps
/// naturally.
using EdgeStream =
    std::function<void(const std::function<void(std::span<const Edge>)>&)>;

/// Streaming variant of build_csr_filtered for NVM-resident edge lists —
/// the paper's Step 2 ("construct the forward graph on DRAM by directly
/// reading the edge list from NVM"). Streams the edges twice (count pass,
/// fill pass); only O(vertices + output) DRAM is used beyond the batches.
Csr build_csr_filtered_stream(Vertex vertex_count, const EdgeStream& stream,
                              VertexRange sources, VertexRange destinations,
                              const CsrBuildOptions& options,
                              ThreadPool& pool);

}  // namespace sembfs
