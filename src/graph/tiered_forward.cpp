#include "graph/tiered_forward.hpp"

#include <algorithm>

#include "nvm/storage_file.hpp"
#include "util/contracts.hpp"

namespace sembfs {

TieredForwardPartition::TieredForwardPartition(
    const Csr& csr, std::int64_t degree_threshold,
    std::shared_ptr<NvmDevice> device, const std::string& dir,
    std::size_t node_id, ThreadPool& pool, std::uint32_t chunk_bytes,
    ChunkFormat format)
    : sources_(csr.source_range()), threshold_(degree_threshold) {
  SEMBFS_EXPECTS(degree_threshold >= 0);
  SEMBFS_EXPECTS(device != nullptr);
  ensure_directory(dir);

  const std::int64_t local_n = sources_.size();
  on_nvm_.resize(static_cast<std::size_t>(local_n));
  dram_index_.assign(static_cast<std::size_t>(local_n) + 1, 0);

  // Split by degree; route the hub adjacency into a directed edge list so
  // the standard CSR builder produces the NVM-resident sub-graph.
  EdgeList nvm_edges{csr.global_vertex_count()};
  for (std::int64_t i = 0; i < local_n; ++i) {
    const Vertex v = sources_.begin + i;
    const std::int64_t deg = csr.degree(v);
    if (deg > threshold_) {
      on_nvm_.set(static_cast<std::size_t>(i));
      ++nvm_vertices_;
      for (const Vertex w : csr.neighbors(v)) nvm_edges.add(v, w);
      dram_index_[static_cast<std::size_t>(i) + 1] =
          dram_index_[static_cast<std::size_t>(i)];
    } else {
      ++dram_vertices_;
      dram_index_[static_cast<std::size_t>(i) + 1] =
          dram_index_[static_cast<std::size_t>(i)] + deg;
    }
  }
  dram_values_.resize(static_cast<std::size_t>(dram_index_.back()));
  for (std::int64_t i = 0; i < local_n; ++i) {
    if (on_nvm_.test(static_cast<std::size_t>(i))) continue;
    const auto adj = csr.neighbors(sources_.begin + i);
    std::copy(adj.begin(), adj.end(),
              dram_values_.begin() + dram_index_[static_cast<std::size_t>(i)]);
  }

  CsrBuildOptions options;
  options.undirected = false;       // edges are already directed half-edges
  options.remove_self_loops = false;  // source CSR is already loop-free
  const Csr nvm_csr = build_csr_filtered(
      nvm_edges, sources_, VertexRange{0, csr.global_vertex_count()},
      options, pool);
  nvm_ = std::make_unique<ExternalCsrPartition>(
      nvm_csr, std::move(device), dir, node_id + 1000, chunk_bytes,
      /*checksums=*/nullptr, format);
}

std::uint64_t TieredForwardPartition::fetch_neighbors(
    Vertex v, std::vector<Vertex>& out) {
  SEMBFS_ASSERT(sources_.contains(v));
  const auto local = static_cast<std::size_t>(v - sources_.begin);
  if (on_nvm_.test(local)) return nvm_->fetch_neighbors(v, out);
  const std::int64_t b = dram_index_[local];
  const std::int64_t e = dram_index_[local + 1];
  out.assign(dram_values_.begin() + b, dram_values_.begin() + e);
  return 0;
}

std::uint64_t TieredForwardPartition::dram_byte_size() const noexcept {
  return dram_index_.size() * sizeof(std::int64_t) +
         dram_values_.size() * sizeof(Vertex) + on_nvm_.word_count() * 8;
}

std::uint64_t TieredForwardPartition::nvm_byte_size() const noexcept {
  return nvm_->nvm_byte_size();
}

TieredForwardGraph::TieredForwardGraph(const ForwardGraph& forward,
                                       std::int64_t degree_threshold,
                                       std::shared_ptr<NvmDevice> device,
                                       const std::string& dir,
                                       ThreadPool& pool,
                                       std::uint32_t chunk_bytes,
                                       ChunkFormat format)
    : vertex_partition_(forward.vertex_partition()), device_(device) {
  partitions_.reserve(forward.node_count());
  for (std::size_t k = 0; k < forward.node_count(); ++k) {
    partitions_.push_back(std::make_unique<TieredForwardPartition>(
        forward.partition(k), degree_threshold, device_, dir, k, pool,
        chunk_bytes, format));
  }
}

std::uint64_t TieredForwardGraph::dram_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->dram_byte_size();
  return total;
}

std::uint64_t TieredForwardGraph::nvm_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->nvm_byte_size();
  return total;
}

}  // namespace sembfs
