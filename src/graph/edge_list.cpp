#include "graph/edge_list.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

EdgeList::EdgeList(Vertex vertex_count, std::vector<Edge> edges)
    : vertex_count_(vertex_count), edges_(std::move(edges)) {
  SEMBFS_EXPECTS(vertex_count >= 0);
}

void EdgeList::add(Vertex u, Vertex v) {
  SEMBFS_EXPECTS(u >= 0 && v >= 0);
  SEMBFS_EXPECTS(vertex_count_ == 0 || (u < vertex_count_ && v < vertex_count_));
  edges_.push_back(Edge{u, v});
}

Vertex EdgeList::max_endpoint() const noexcept {
  Vertex best = -1;
  for (const Edge& e : edges_) best = std::max({best, e.u, e.v});
  return best;
}

std::size_t EdgeList::self_loop_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [](const Edge& e) { return e.u == e.v; }));
}

}  // namespace sembfs
