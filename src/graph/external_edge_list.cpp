#include "graph/external_edge_list.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

ExternalEdgeList::ExternalEdgeList(std::shared_ptr<NvmDevice> device,
                                   const std::string& path,
                                   Vertex vertex_count)
    : device_(std::move(device)), vertex_count_(vertex_count) {
  SEMBFS_EXPECTS(device_ != nullptr);
  file_ = std::make_unique<NvmFile>(device_, path);
}

void ExternalEdgeList::append(std::span<const Edge> batch) {
  if (batch.empty()) return;
  std::vector<PackedEdge> packed(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    packed[i] = PackedEdge::pack(batch[i]);
  file_->write(edge_count_ * sizeof(PackedEdge),
               std::as_bytes(std::span<const PackedEdge>{packed}));
  edge_count_ += batch.size();
}

void ExternalEdgeList::append_all(const EdgeList& edges) {
  constexpr std::size_t kBatch = 1 << 18;
  const auto span = edges.edges();
  std::size_t done = 0;
  while (done < span.size()) {
    const std::size_t len = std::min(kBatch, span.size() - done);
    append(span.subspan(done, len));
    done += len;
  }
}

void ExternalEdgeList::read(std::uint64_t first, std::span<Edge> out) {
  SEMBFS_EXPECTS(first + out.size() <= edge_count_);
  if (out.empty()) return;
  std::vector<PackedEdge> packed(out.size());
  file_->read(first * sizeof(PackedEdge),
              std::as_writable_bytes(std::span<PackedEdge>{packed}));
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = packed[i].unpack();
}

EdgeList ExternalEdgeList::load_all() {
  EdgeList list{vertex_count_};
  list.reserve(static_cast<std::size_t>(edge_count_));
  for_each_batch(1 << 18, [&](std::span<const Edge> batch) {
    for (const Edge& e : batch) list.add(e);
  });
  return list;
}

}  // namespace sembfs
