// Analytic model of the NETAL data-structure sizes (paper Figure 3 and
// Table II).
//
// Decoding the paper's numbers (they are GiB, reported as "GB"):
//   edge list      = 12 * M                      (packed 48-bit endpoints)
//   forward graph  = l * N * 8  +  2 * M * 8     (per-node index arrays over
//                                                 ALL vertices + one value
//                                                 entry per directed edge)
//   backward graph = N * 8      +  2 * M * 8     (index arrays cover each
//                                                 vertex once)
// with N = 2^SCALE, M = N * edge_factor, l = number of NUMA nodes. The
// paper's machine exposes l = 8 (4 Opteron 6172 packages x 2 dies each):
// with l = 8 the model reproduces Figure 3's SCALE-31 breakdown exactly
// (384 / 640 / 528 GiB) and Table II's SCALE-27 sizes (40 / 33 GiB).
#pragma once

#include <cstdint>

namespace sembfs {

struct GraphSizeModel {
  int scale = 27;
  int edge_factor = 16;
  std::uint64_t numa_nodes = 8;

  [[nodiscard]] std::uint64_t vertex_count() const noexcept {
    return std::uint64_t{1} << scale;
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return vertex_count() * static_cast<std::uint64_t>(edge_factor);
  }

  [[nodiscard]] std::uint64_t edge_list_bytes() const noexcept {
    return 12 * edge_count();
  }
  [[nodiscard]] std::uint64_t forward_graph_bytes() const noexcept {
    return numa_nodes * vertex_count() * 8 + 2 * edge_count() * 8;
  }
  [[nodiscard]] std::uint64_t backward_graph_bytes() const noexcept {
    return vertex_count() * 8 + 2 * edge_count() * 8;
  }
  /// BFS status data as THIS implementation allocates it: parent tree,
  /// current/next frontier queues, visited + 2 frontier bitmaps. (NETAL's
  /// own status block is larger — 15.1 GiB at SCALE 27 — because it
  /// duplicates queues per node; we report both in the bench.)
  [[nodiscard]] std::uint64_t bfs_status_bytes() const noexcept {
    const std::uint64_t n = vertex_count();
    return n * 8      // parent tree
           + 2 * n * 8  // frontier / next queues
           + 3 * ((n + 7) / 8);  // visited + frontier + next bitmaps
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return forward_graph_bytes() + backward_graph_bytes() +
           bfs_status_bytes();
  }
};

/// GiB as the paper reports them ("GB" in the text).
double bytes_to_gib(std::uint64_t bytes) noexcept;

}  // namespace sembfs
