// Text edge-list I/O in the de-facto SNAP format: one "u v" pair per line,
// '#' comments, blank lines ignored. Lets the library ingest real-world
// graphs (the social networks the paper's introduction motivates) next to
// the synthetic generators.
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace sembfs {

struct TextReadOptions {
  /// 0 = infer as max endpoint + 1; otherwise the declared ID space.
  Vertex vertex_count = 0;
  /// Drop u == v lines on read.
  bool skip_self_loops = false;
};

/// Parses `path`; throws std::runtime_error on unreadable files or
/// malformed lines (message includes the line number).
EdgeList read_edge_list_text(const std::string& path,
                             const TextReadOptions& options = {});

/// Writes "u v" lines with a product/count comment header.
void write_edge_list_text(const EdgeList& edges, const std::string& path);

}  // namespace sembfs
