// The semi-external forward graph: per-NUMA-node CSR partitions whose
// index and value arrays live in files on a simulated NVM device (paper
// Section V-B-1).
//
// Per partition there are two files — the "array file" (index) and the
// "value file" — exactly as the paper describes ("our approach actually
// requires twice as many files as the number of NUMA nodes"). The BFS read
// path per frontier vertex v is:
//   1. read index[v] and index[v+1] from the array file (one 16-byte
//      device request),
//   2. read values[index[v] .. index[v+1]) from the value file in <= 4 KiB
//      chunks.
//
// Two optional I/O accelerators sit on top (both off by default, keeping
// the seed read path bit-for-bit):
//   - a ChunkCache shared by all partitions serves repeated 4 KiB chunks
//     (hub index entries and hub adjacency prefixes) from DRAM, and
//   - an IoScheduler lets the top-down step prefetch the next dequeue
//     batch's merged ranges asynchronously while the current batch's edges
//     are processed (start_fetch_neighbors_batch / PendingNeighborsBatch).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/forward_graph.hpp"
#include "nvm/chunk_cache.hpp"
#include "nvm/chunk_checksums.hpp"
#include "nvm/chunk_format.hpp"
#include "nvm/compressed_file.hpp"
#include "nvm/external_array.hpp"
#include "nvm/io_scheduler.hpp"
#include "nvm/nvm_device.hpp"
#include "numa/partition.hpp"

namespace sembfs {

/// An aggregated adjacency fetch whose merged value-range reads are in
/// flight on an IoScheduler. Obtained from
/// ExternalCsrPartition::start_fetch_neighbors_batch; wait() blocks until
/// every posted range completes and scatters the per-vertex adjacencies.
/// Move-only; must be waited (or destroyed, which waits) before the
/// frontier span or partition it references goes away.
class PendingNeighborsBatch {
 public:
  PendingNeighborsBatch() = default;
  PendingNeighborsBatch(PendingNeighborsBatch&&) = default;
  PendingNeighborsBatch& operator=(PendingNeighborsBatch&& other) noexcept;
  /// Blocks until every still-in-flight read completes: the reads hold
  /// spans into this object's staging buffers, so letting the futures go
  /// out of scope without waiting would be a use-after-free.
  ~PendingNeighborsBatch();

  /// False for a default-constructed (empty) pending batch.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Waits for all in-flight reads, fills out[i] with the adjacency of
  /// batch[i], and returns the total device requests issued (index phase +
  /// value phase). Every read is collected before any error is raised
  /// (rethrown from the first failed range), so no request is left in
  /// flight against freed staging. May be called once.
  std::uint64_t wait(std::vector<std::vector<Vertex>>& out);

  /// One batch slot's adjacency bounds in the value array (entry indices).
  struct SlotBounds {
    std::size_t slot = 0;
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

 private:
  friend class ExternalCsrPartition;

  struct ValueRead {
    std::uint64_t begin = 0;  // byte offsets within the value array
    std::uint64_t end = 0;
    std::vector<std::byte> staging;
    std::future<IoResult> done;
  };

  /// Waits out any unconsumed futures, discarding their results.
  void abandon() noexcept;

  bool valid_ = false;
  std::size_t batch_size_ = 0;
  std::uint64_t index_requests_ = 0;
  std::vector<SlotBounds> bounds_;  // sorted by value-range begin
  std::vector<ValueRead> reads_;
};

class ExternalCsrPartition {
 public:
  /// Offloads `csr` (one forward partition) to two files under `dir` on
  /// `device`. Existing files are overwritten. Per-chunk CRC32s of the
  /// offloaded bytes are recorded into `checksums` when given (so several
  /// partitions can share one registry), else into a private registry.
  /// With ChunkFormat::kVarint the value file is wrapped in a
  /// CompressedBlockFile: the device stores delta/varint blobs (its own
  /// per-blob CRCs, always verified) while every reader above still sees
  /// plain Vertex bytes; the index file stays raw either way.
  ExternalCsrPartition(const Csr& csr, std::shared_ptr<NvmDevice> device,
                       const std::string& dir, std::size_t node_id,
                       std::uint32_t chunk_bytes = 4096,
                       ChunkChecksums* checksums = nullptr,
                       ChunkFormat format = ChunkFormat::kRaw);

  /// Striped variant: the two files are spread round-robin across several
  /// physical devices (the paper's machine carried multiple flash cards).
  ExternalCsrPartition(const Csr& csr,
                       std::vector<std::shared_ptr<NvmDevice>> devices,
                       const std::string& dir, std::size_t node_id,
                       std::uint32_t chunk_bytes = 4096,
                       ChunkChecksums* checksums = nullptr,
                       ChunkFormat format = ChunkFormat::kRaw);

  [[nodiscard]] VertexRange source_range() const noexcept { return sources_; }
  [[nodiscard]] VertexRange destination_range() const noexcept {
    return destinations_;
  }
  [[nodiscard]] std::int64_t entry_count() const noexcept {
    return entry_count_;
  }
  [[nodiscard]] std::uint32_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }
  [[nodiscard]] ChunkFormat format() const noexcept { return format_; }
  /// Device bytes this partition occupies: raw index bytes plus raw or
  /// encoded value bytes depending on the format.
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  /// Decoded payload bytes (index + values as kRaw would store them).
  [[nodiscard]] std::uint64_t raw_byte_size() const noexcept;
  /// The compressed value store, or nullptr in kRaw format.
  [[nodiscard]] const CompressedBlockFile* compressed_values() const noexcept {
    return compressed_;
  }
  /// Propagates the CRC-heal re-fetch allowance to the compressed value
  /// store (no-op in kRaw format, whose healing lives in the ChunkCache).
  void set_compressed_max_refetches(int refetches) noexcept {
    if (compressed_ != nullptr) compressed_->set_max_refetches(refetches);
  }

  /// Routes all index/value reads (chunked and aggregated) through `cache`
  /// (nullptr detaches). The cache's chunk size must match this
  /// partition's.
  void attach_cache(ChunkCache* cache);
  [[nodiscard]] ChunkCache* cache() const noexcept { return cache_; }

  /// The registry holding this partition's offload-time chunk CRC32s
  /// (shared or private — see the constructors).
  [[nodiscard]] const ChunkChecksums& checksums() const noexcept {
    return *checksums_;
  }

  /// Degree of global vertex v — one index-file request.
  std::int64_t degree(Vertex v);

  /// Reads the adjacency list of global vertex v into `out` (resized).
  /// Returns the number of device requests issued (index + value chunks).
  std::uint64_t fetch_neighbors(Vertex v, std::vector<Vertex>& out);

  /// Variant reusing a caller-provided index pair fetch: reads
  /// [begin,end) adjacency entries directly.
  std::uint64_t fetch_range(std::int64_t begin, std::int64_t end,
                            std::vector<Vertex>& out);

  /// Reads the two index entries bounding v's adjacency (one request).
  std::pair<std::int64_t, std::int64_t> fetch_bounds(Vertex v);

  /// Batched, request-merging fetch (the paper's Figure-13 conclusion:
  /// "we may exploit further I/O performance of the devices by aggregating
  /// small I/O operations such as libaio"). Fetches the adjacency of every
  /// vertex in `batch` at once: index reads for nearby vertices and value
  /// reads for nearby ranges are merged into single device requests when
  /// the gap between them is <= `merge_gap_bytes` and the merged request
  /// stays <= `max_request_bytes`. Results land in out[i] for batch[i].
  /// Returns the number of device requests issued.
  std::uint64_t fetch_neighbors_batch(std::span<const Vertex> batch,
                                      std::vector<std::vector<Vertex>>& out,
                                      std::uint32_t merge_gap_bytes = 4096,
                                      std::uint32_t max_request_bytes =
                                          1 << 20);

  /// Asynchronous variant: performs the (small) index phase inline, then
  /// posts the merged value-range reads to `scheduler` and returns
  /// immediately. The caller overlaps edge processing with the in-flight
  /// reads and collects results via PendingNeighborsBatch::wait.
  PendingNeighborsBatch start_fetch_neighbors_batch(
      std::span<const Vertex> batch, IoScheduler& scheduler,
      std::uint32_t merge_gap_bytes = 4096,
      std::uint32_t max_request_bytes = 1 << 20);

 private:
  void offload(const Csr& csr, std::uint32_t chunk_bytes);
  /// Replaces value_file_ with a CompressedBlockFile built from the DRAM
  /// values (kVarint offload path).
  void compress_values(const Csr& csr, std::uint32_t chunk_bytes);
  /// Index phase of a batched fetch: merged index reads producing per-slot
  /// value bounds sorted by value-range begin. Adds issued requests to
  /// `requests`.
  std::vector<PendingNeighborsBatch::SlotBounds> batch_bounds(
      std::span<const Vertex> batch, std::uint32_t merge_gap_bytes,
      std::uint32_t max_request_bytes, std::uint64_t& requests);
  /// One aggregated (possibly multi-chunk) read at `offset` bytes into
  /// `file`, through the cache when attached. Returns requests issued.
  std::uint64_t read_merged(NvmBackingFile& file, std::uint64_t offset,
                            std::span<std::byte> staging,
                            std::uint32_t max_request_bytes);

  VertexRange sources_;
  VertexRange destinations_;
  std::int64_t entry_count_ = 0;
  std::uint32_t chunk_bytes_ = 4096;
  ChunkFormat format_ = ChunkFormat::kRaw;
  std::unique_ptr<NvmBackingFile> index_file_;
  // In kVarint format this IS the CompressedBlockFile (compressed_ aliases
  // it), so every downstream reader stays format-oblivious.
  std::unique_ptr<NvmBackingFile> value_file_;
  CompressedBlockFile* compressed_ = nullptr;
  std::unique_ptr<ExternalArray<std::int64_t>> index_;
  std::unique_ptr<ExternalArray<Vertex>> values_;
  std::unique_ptr<ChunkChecksums> owned_checksums_;  // when none was shared
  ChunkChecksums* checksums_ = nullptr;
  ChunkCache* cache_ = nullptr;
};

/// The full semi-external forward graph: one ExternalCsrPartition per node,
/// all sharing one physical NVM device.
class ExternalForwardGraph {
 public:
  /// Offloads an in-DRAM forward graph; the DRAM copy may be discarded
  /// afterwards (that is the point). ChunkFormat::kVarint stores the value
  /// files compressed (see ExternalCsrPartition).
  ExternalForwardGraph(const ForwardGraph& forward,
                       std::shared_ptr<NvmDevice> device,
                       const std::string& dir,
                       std::uint32_t chunk_bytes = 4096,
                       ChunkFormat format = ChunkFormat::kRaw);

  /// Striped variant across several physical devices.
  ExternalForwardGraph(const ForwardGraph& forward,
                       std::vector<std::shared_ptr<NvmDevice>> devices,
                       const std::string& dir,
                       std::uint32_t chunk_bytes = 4096,
                       ChunkFormat format = ChunkFormat::kRaw);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] ExternalCsrPartition& partition(std::size_t node) noexcept {
    return *partitions_[node];
  }
  [[nodiscard]] const VertexPartition& vertex_partition() const noexcept {
    return vertex_partition_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return vertex_partition_.vertex_count();
  }
  [[nodiscard]] NvmDevice& device() noexcept { return *device_; }
  [[nodiscard]] ChunkFormat format() const noexcept { return format_; }
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  /// Decoded payload bytes across all partitions (what kRaw would store);
  /// nvm_byte_size() / raw_byte_size() is the realized compression ratio.
  [[nodiscard]] std::uint64_t raw_byte_size() const noexcept;
  [[nodiscard]] std::int64_t entry_count() const noexcept;

  /// Creates a chunk cache of ~`capacity_bytes` shared by every partition
  /// and attaches it to all index/value read paths. Idempotent for an
  /// unchanged capacity (the warm cache survives across BFS runs — that is
  /// the point); a different capacity rebuilds the cache cold.
  ChunkCache& enable_chunk_cache(std::size_t capacity_bytes);
  void disable_chunk_cache();
  [[nodiscard]] ChunkCache* chunk_cache() noexcept { return cache_.get(); }

  /// Spawns (or resizes) the background I/O worker pool used by the async
  /// top-down prefetch. Idempotent for an unchanged queue depth and
  /// config; a change rebuilds the pool (after draining the old one).
  IoScheduler& enable_io_scheduler(std::size_t queue_depth,
                                   IoSchedulerConfig config = {});
  void disable_io_scheduler();
  [[nodiscard]] IoScheduler* io_scheduler() noexcept {
    return scheduler_.get();
  }

  /// The shared registry of offload-time chunk CRC32s covering every
  /// partition's index and value file.
  [[nodiscard]] const ChunkChecksums& checksums() const noexcept {
    return *checksums_;
  }

  /// Turns end-to-end corruption detection on: every chunk the cache
  /// fetches from the device is verified against the offload-time CRC32s,
  /// with up to `max_refetches` corrective re-reads per bad chunk.
  /// Requires an enabled chunk cache (verification lives on the miss
  /// path). Off by default — the no-fault benchmark path stays untouched.
  void enable_checksum_verification(int max_refetches = 1);
  void disable_checksum_verification();

 private:
  VertexPartition vertex_partition_;
  std::shared_ptr<NvmDevice> device_;
  std::uint32_t chunk_bytes_ = 4096;
  ChunkFormat format_ = ChunkFormat::kRaw;
  std::unique_ptr<ChunkChecksums> checksums_;  // before partitions_: they record into it
  std::vector<std::unique_ptr<ExternalCsrPartition>> partitions_;
  std::unique_ptr<ChunkCache> cache_;
  std::unique_ptr<IoScheduler> scheduler_;
  bool verify_checksums_ = false;  // survives a cache rebuild
  int checksum_max_refetches_ = 1;
};

}  // namespace sembfs
