// The semi-external forward graph: per-NUMA-node CSR partitions whose
// index and value arrays live in files on a simulated NVM device (paper
// Section V-B-1).
//
// Per partition there are two files — the "array file" (index) and the
// "value file" — exactly as the paper describes ("our approach actually
// requires twice as many files as the number of NUMA nodes"). The BFS read
// path per frontier vertex v is:
//   1. read index[v] and index[v+1] from the array file (one 16-byte
//      device request),
//   2. read values[index[v] .. index[v+1]) from the value file in <= 4 KiB
//      chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/forward_graph.hpp"
#include "nvm/external_array.hpp"
#include "nvm/nvm_device.hpp"
#include "numa/partition.hpp"

namespace sembfs {

class ExternalCsrPartition {
 public:
  /// Offloads `csr` (one forward partition) to two files under `dir` on
  /// `device`. Existing files are overwritten.
  ExternalCsrPartition(const Csr& csr, std::shared_ptr<NvmDevice> device,
                       const std::string& dir, std::size_t node_id,
                       std::uint32_t chunk_bytes = 4096);

  /// Striped variant: the two files are spread round-robin across several
  /// physical devices (the paper's machine carried multiple flash cards).
  ExternalCsrPartition(const Csr& csr,
                       std::vector<std::shared_ptr<NvmDevice>> devices,
                       const std::string& dir, std::size_t node_id,
                       std::uint32_t chunk_bytes = 4096);

  [[nodiscard]] VertexRange source_range() const noexcept { return sources_; }
  [[nodiscard]] VertexRange destination_range() const noexcept {
    return destinations_;
  }
  [[nodiscard]] std::int64_t entry_count() const noexcept {
    return entry_count_;
  }
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;

  /// Degree of global vertex v — one index-file request.
  std::int64_t degree(Vertex v);

  /// Reads the adjacency list of global vertex v into `out` (resized).
  /// Returns the number of device requests issued (index + value chunks).
  std::uint64_t fetch_neighbors(Vertex v, std::vector<Vertex>& out);

  /// Variant reusing a caller-provided index pair fetch: reads
  /// [begin,end) adjacency entries directly.
  std::uint64_t fetch_range(std::int64_t begin, std::int64_t end,
                            std::vector<Vertex>& out);

  /// Reads the two index entries bounding v's adjacency (one request).
  std::pair<std::int64_t, std::int64_t> fetch_bounds(Vertex v);

  /// Batched, request-merging fetch (the paper's Figure-13 conclusion:
  /// "we may exploit further I/O performance of the devices by aggregating
  /// small I/O operations such as libaio"). Fetches the adjacency of every
  /// vertex in `batch` at once: index reads for nearby vertices and value
  /// reads for nearby ranges are merged into single device requests when
  /// the gap between them is <= `merge_gap_bytes` and the merged request
  /// stays <= `max_request_bytes`. Results land in out[i] for batch[i].
  /// Returns the number of device requests issued.
  std::uint64_t fetch_neighbors_batch(std::span<const Vertex> batch,
                                      std::vector<std::vector<Vertex>>& out,
                                      std::uint32_t merge_gap_bytes = 4096,
                                      std::uint32_t max_request_bytes =
                                          1 << 20);

 private:
  void offload(const Csr& csr, std::uint32_t chunk_bytes);

  VertexRange sources_;
  VertexRange destinations_;
  std::int64_t entry_count_ = 0;
  std::unique_ptr<NvmBackingFile> index_file_;
  std::unique_ptr<NvmBackingFile> value_file_;
  std::unique_ptr<ExternalArray<std::int64_t>> index_;
  std::unique_ptr<ExternalArray<Vertex>> values_;
};

/// The full semi-external forward graph: one ExternalCsrPartition per node,
/// all sharing one physical NVM device.
class ExternalForwardGraph {
 public:
  /// Offloads an in-DRAM forward graph; the DRAM copy may be discarded
  /// afterwards (that is the point).
  ExternalForwardGraph(const ForwardGraph& forward,
                       std::shared_ptr<NvmDevice> device,
                       const std::string& dir,
                       std::uint32_t chunk_bytes = 4096);

  /// Striped variant across several physical devices.
  ExternalForwardGraph(const ForwardGraph& forward,
                       std::vector<std::shared_ptr<NvmDevice>> devices,
                       const std::string& dir,
                       std::uint32_t chunk_bytes = 4096);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] ExternalCsrPartition& partition(std::size_t node) noexcept {
    return *partitions_[node];
  }
  [[nodiscard]] const VertexPartition& vertex_partition() const noexcept {
    return vertex_partition_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return vertex_partition_.vertex_count();
  }
  [[nodiscard]] NvmDevice& device() noexcept { return *device_; }
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  [[nodiscard]] std::int64_t entry_count() const noexcept;

 private:
  VertexPartition vertex_partition_;
  std::shared_ptr<NvmDevice> device_;
  std::vector<std::unique_ptr<ExternalCsrPartition>> partitions_;
};

}  // namespace sembfs
