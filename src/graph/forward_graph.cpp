#include "graph/forward_graph.hpp"

namespace sembfs {

ForwardGraph ForwardGraph::build(const EdgeList& edges,
                                 const VertexPartition& partition,
                                 const CsrBuildOptions& options,
                                 ThreadPool& pool) {
  ForwardGraph fg;
  fg.vertex_partition_ = partition;
  const VertexRange all{0, edges.vertex_count()};
  fg.partitions_.reserve(partition.node_count());
  for (std::size_t k = 0; k < partition.node_count(); ++k) {
    fg.partitions_.push_back(build_csr_filtered(
        edges, all, partition.range_of(k), options, pool));
  }
  return fg;
}

ForwardGraph ForwardGraph::build_stream(Vertex vertex_count,
                                        const EdgeStream& stream,
                                        const VertexPartition& partition,
                                        const CsrBuildOptions& options,
                                        ThreadPool& pool) {
  ForwardGraph fg;
  fg.vertex_partition_ = partition;
  const VertexRange all{0, vertex_count};
  fg.partitions_.reserve(partition.node_count());
  for (std::size_t k = 0; k < partition.node_count(); ++k) {
    fg.partitions_.push_back(build_csr_filtered_stream(
        vertex_count, stream, all, partition.range_of(k), options, pool));
  }
  return fg;
}

ForwardGraph ForwardGraph::wrap_whole(Csr csr) {
  const Vertex n = csr.global_vertex_count();
  SEMBFS_EXPECTS(csr.source_range() == (VertexRange{0, n}) &&
                 csr.destination_range() == (VertexRange{0, n}));
  ForwardGraph fg;
  fg.vertex_partition_ = VertexPartition{n, 1};
  fg.partitions_.push_back(std::move(csr));
  return fg;
}

std::int64_t ForwardGraph::entry_count() const noexcept {
  std::int64_t total = 0;
  for (const auto& p : partitions_) total += p.entry_count();
  return total;
}

std::uint64_t ForwardGraph::byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p.byte_size();
  return total;
}

}  // namespace sembfs
