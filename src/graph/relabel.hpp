// Degree-ordered vertex relabeling, after Yasui et al. (IEEE BigData'13 —
// the paper's reference [10], the NETAL implementation the offload builds
// on). Renumbering vertices in decreasing-degree order packs the hubs into
// a small dense ID prefix: frontier bitmaps for the (hub-dominated) early
// bottom-up levels fit in a few cache lines, and adjacency lists become
// more sequential. The mapping is a bijection, so BFS results translate
// back exactly.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct Relabeling {
  /// new_id[old] = rank of `old` in decreasing-degree order.
  std::vector<Vertex> new_id;
  /// old_id[new] — the inverse permutation.
  std::vector<Vertex> old_id;

  [[nodiscard]] Vertex to_new(Vertex old_vertex) const noexcept {
    return new_id[static_cast<std::size_t>(old_vertex)];
  }
  [[nodiscard]] Vertex to_old(Vertex new_vertex) const noexcept {
    return old_id[static_cast<std::size_t>(new_vertex)];
  }

  /// Translates a per-new-vertex array (levels, parents) back to the
  /// original ID space; parent VALUES are translated too when
  /// `values_are_vertices`.
  std::vector<Vertex> restore_vertex_array(
      std::span<const Vertex> by_new_id, bool values_are_vertices) const;
  std::vector<std::int32_t> restore_level_array(
      std::span<const std::int32_t> by_new_id) const;
};

/// Builds the decreasing-degree relabeling for `edges` (ties broken by
/// original ID for determinism).
Relabeling degree_order_relabeling(const EdgeList& edges, ThreadPool& pool);

/// Applies a relabeling to an edge list (returns the renamed copy).
EdgeList apply_relabeling(const EdgeList& edges, const Relabeling& map);

}  // namespace sembfs
