// Binary (de)serialization for constructed graphs, so the expensive Step 2
// (graph construction) can be done once and reused across benchmark runs —
// a practical necessity for SCALE >= 24 workflows where construction
// dominates the wall clock.
//
// Format: little-endian, fixed 32-byte header
//   magic   "SEMBFSG2" (8 bytes)
//   kind    u32 (1 = CSR, 2 = edge list)
//   flags   u32 (CSR: the ChunkFormat of the values payload; else 0)
//   a, b    u64 metadata (CSR: vertex_count + source begin; see impl)
// followed by the arrays. A kRaw CSR stores index and values as raw
// little-endian 8-byte words; a kVarint CSR stores the index raw and the
// values as one zigzag/delta varint stream (u64 encoded length, then the
// bytes). Files written by a different endianness or format version —
// including v1 "SEMBFSG1" files, which predate the flags field meaning
// anything — are rejected, not misread.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "nvm/chunk_format.hpp"

namespace sembfs {

/// Writes `csr` (any source/destination range) to `path`. Throws on I/O
/// failure. `format` selects the values payload encoding; the loader reads
/// either transparently (the header records which was used).
void save_csr(const Csr& csr, const std::string& path,
              ChunkFormat format = ChunkFormat::kRaw);

/// Reads a CSR written by save_csr. Throws on malformed input.
Csr load_csr(const std::string& path);

/// Writes an edge list (12-byte packed edges) to `path`.
void save_edge_list(const EdgeList& edges, const std::string& path);

/// Reads an edge list written by save_edge_list.
EdgeList load_edge_list(const std::string& path);

}  // namespace sembfs
