// Binary (de)serialization for constructed graphs, so the expensive Step 2
// (graph construction) can be done once and reused across benchmark runs —
// a practical necessity for SCALE >= 24 workflows where construction
// dominates the wall clock.
//
// Format: little-endian, fixed 32-byte header
//   magic   "SEMBFSG1" (8 bytes)
//   kind    u32 (1 = CSR, 2 = edge list)
//   flags   u32 (reserved, 0)
//   a, b    u64 metadata (CSR: vertex_count + source begin; see impl)
// followed by the raw arrays. Files written by a different endianness or
// version are rejected, not misread.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace sembfs {

/// Writes `csr` (any source/destination range) to `path`. Throws on I/O
/// failure.
void save_csr(const Csr& csr, const std::string& path);

/// Reads a CSR written by save_csr. Throws on malformed input.
Csr load_csr(const std::string& path);

/// Writes an edge list (12-byte packed edges) to `path`.
void save_edge_list(const EdgeList& edges, const std::string& path);

/// Reads an edge list written by save_edge_list.
EdgeList load_edge_list(const std::string& path);

}  // namespace sembfs
