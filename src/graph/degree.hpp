// Degree statistics for constructed graphs.
//
// Figure 11 of the paper buckets per-level top-down work by *average degree
// of the searched vertices*; this module provides the degree accounting the
// analysis benches build on, plus a log2-bucketed histogram useful for
// checking that the Kronecker generator really produces a power-law-ish
// degree distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sembfs {

struct DegreeStats {
  std::int64_t vertex_count = 0;
  std::int64_t edge_entry_count = 0;  ///< sum of degrees
  std::int64_t min_degree = 0;
  std::int64_t max_degree = 0;
  double mean_degree = 0.0;
  std::int64_t median_degree = 0;
  std::int64_t isolated_count = 0;  ///< degree-0 vertices
  /// histogram[0] = degree-0 vertices, histogram[1] = degree-1 vertices,
  /// histogram[b >= 2] = #vertices with degree in [2^(b-2)+1 .. 2^(b-1)].
  std::vector<std::int64_t> log2_histogram;
};

/// Full-graph degree statistics (csr must cover all sources).
DegreeStats compute_degree_stats(const Csr& csr);

/// Degrees of an explicit vertex subset; used for per-level analysis.
double average_degree(const Csr& csr, std::span<const Vertex> vertices);

}  // namespace sembfs
