// The forward graph: per-NUMA-node CSR partitions used by the top-down
// direction (paper Section IV-A / Figure 6, left).
//
// Partition k holds *all* source vertices but only the adjacency entries
// whose destination belongs to node k's vertex range. During a top-down
// level, the threads of node k scan the (duplicated) frontier and write
// only to node-local BFS state — the delegation scheme NETAL uses to keep
// writes NUMA-local.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "numa/partition.hpp"

namespace sembfs {

class ForwardGraph {
 public:
  ForwardGraph() = default;

  /// Builds one destination-filtered CSR per partition node.
  static ForwardGraph build(const EdgeList& edges,
                            const VertexPartition& partition,
                            const CsrBuildOptions& options, ThreadPool& pool);

  /// Streaming build from an NVM-resident edge list (paper Step 2).
  static ForwardGraph build_stream(Vertex vertex_count,
                                   const EdgeStream& stream,
                                   const VertexPartition& partition,
                                   const CsrBuildOptions& options,
                                   ThreadPool& pool);

  /// Wraps an already-built whole-graph CSR (sources = destinations = all
  /// vertices) as a single-partition forward graph — the degenerate
  /// one-node topology the analytics helpers run the vertex-program
  /// engine under.
  static ForwardGraph wrap_whole(Csr csr);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] const Csr& partition(std::size_t node) const noexcept {
    return partitions_[node];
  }
  [[nodiscard]] const VertexPartition& vertex_partition() const noexcept {
    return vertex_partition_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return vertex_partition_.vertex_count();
  }

  /// Total adjacency entries across partitions (== directed edge count of
  /// the underlying graph after filtering).
  [[nodiscard]] std::int64_t entry_count() const noexcept;

  /// Total DRAM bytes across partitions.
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

 private:
  VertexPartition vertex_partition_;
  std::vector<Csr> partitions_;
};

}  // namespace sembfs
