// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <cstring>

namespace sembfs {

/// Vertex identifier. Signed so that -1 can mark "unvisited" in the BFS
/// tree, exactly like the Graph500 reference code.
using Vertex = std::int64_t;

inline constexpr Vertex kNoVertex = -1;

/// One endpoint pair of the generated edge list (undirected).
struct Edge {
  Vertex u = 0;
  Vertex v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// 12-byte packed edge with 48-bit endpoints — the on-NVM edge list format.
/// The Graph500 reference stores its edge list the same way, which is why
/// the paper's Figure 3 reports 12 bytes/edge (384 GiB at SCALE 31).
struct PackedEdge {
  unsigned char bytes[12] = {};

  static PackedEdge pack(const Edge& e) noexcept {
    PackedEdge p;
    const auto store48 = [](unsigned char* dst, std::uint64_t x) {
      for (int i = 0; i < 6; ++i) dst[i] = static_cast<unsigned char>(x >> (8 * i));
    };
    store48(p.bytes, static_cast<std::uint64_t>(e.u));
    store48(p.bytes + 6, static_cast<std::uint64_t>(e.v));
    return p;
  }

  [[nodiscard]] Edge unpack() const noexcept {
    const auto load48 = [](const unsigned char* src) {
      std::uint64_t x = 0;
      for (int i = 0; i < 6; ++i) x |= std::uint64_t{src[i]} << (8 * i);
      return static_cast<Vertex>(x);
    };
    return Edge{load48(bytes), load48(bytes + 6)};
  }
};

static_assert(sizeof(PackedEdge) == 12, "PackedEdge must be 12 bytes");

}  // namespace sembfs
