#include "graph/uniform.hpp"

#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"
#include "util/prng.hpp"

namespace sembfs {

EdgeList generate_uniform(const UniformParams& params, ThreadPool& pool) {
  SEMBFS_EXPECTS(params.scale >= 1 && params.scale <= 40);
  SEMBFS_EXPECTS(params.edge_factor >= 1);
  const std::uint64_t m = params.edge_count();
  const auto n = static_cast<std::uint64_t>(params.vertex_count());

  std::vector<Edge> edges(m);
  parallel_for_blocked(
      pool, 0, static_cast<std::int64_t>(m),
      [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t e = lo; e < hi; ++e) {
          Xoroshiro128 rng{
              derive_seed(params.seed ^ 0x756e69666f726dULL,  // "uniform"
                          static_cast<std::uint64_t>(e))};
          edges[static_cast<std::size_t>(e)] =
              Edge{static_cast<Vertex>(rng.next_below(n)),
                   static_cast<Vertex>(rng.next_below(n))};
        }
      });
  return EdgeList{params.vertex_count(), std::move(edges)};
}

}  // namespace sembfs
