#include "graph/io_text.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace sembfs {

namespace {

[[noreturn]] void malformed(const std::string& path, std::size_t line_no,
                            const std::string& line) {
  throw std::runtime_error("'" + path + "' line " +
                           std::to_string(line_no) + ": malformed edge '" +
                           line + "'");
}

}  // namespace

EdgeList read_edge_list_text(const std::string& path,
                             const TextReadOptions& options) {
  std::ifstream in{path};
  if (!in.is_open())
    throw std::runtime_error("cannot open '" + path + "'");

  std::vector<Edge> edges;
  Vertex max_endpoint = -1;
  Vertex declared_in_file = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Our own writer's header declares the ID space, preserving isolated
    // trailing vertices across a round trip.
    constexpr char kHeader[] = "# sembfs-vertices:";
    if (line.rfind(kHeader, 0) == 0) {
      declared_in_file =
          static_cast<Vertex>(std::strtoll(line.c_str() + sizeof(kHeader) - 1,
                                           nullptr, 10));
      continue;
    }
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t pos = 0;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
      ++pos;
    if (pos == line.size()) continue;

    std::istringstream fields{line};
    long long u = 0;
    long long v = 0;
    if (!(fields >> u >> v)) malformed(path, line_no, line);
    std::string trailing;
    if (fields >> trailing) malformed(path, line_no, line);
    if (u < 0 || v < 0) malformed(path, line_no, line);
    if (options.skip_self_loops && u == v) continue;
    edges.push_back(Edge{u, v});
    max_endpoint = std::max({max_endpoint, static_cast<Vertex>(u),
                             static_cast<Vertex>(v)});
  }

  Vertex n = options.vertex_count;
  if (n == 0) n = declared_in_file;
  if (n == 0) {
    n = max_endpoint + 1;
  } else if (max_endpoint >= n) {
    throw std::runtime_error("'" + path + "': endpoint " +
                             std::to_string(max_endpoint) +
                             " exceeds declared vertex count " +
                             std::to_string(n));
  }
  return EdgeList{n, std::move(edges)};
}

void write_edge_list_text(const EdgeList& edges, const std::string& path) {
  std::ofstream out{path};
  if (!out.is_open())
    throw std::runtime_error("cannot create '" + path + "'");
  out << "# sembfs-vertices: " << edges.vertex_count() << '\n';
  out << "# " << edges.edge_count() << " edges\n";
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
  if (!out.good())
    throw std::runtime_error("write failed on '" + path + "'");
}

}  // namespace sembfs
