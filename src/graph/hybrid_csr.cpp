#include "graph/hybrid_csr.hpp"

#include <algorithm>

#include "nvm/storage_file.hpp"

namespace sembfs {

HybridBackwardPartition::HybridBackwardPartition(
    const Csr& csr, std::int64_t dram_edges_per_vertex,
    std::shared_ptr<NvmDevice> device, const std::string& dir,
    std::size_t node_id, std::uint32_t chunk_bytes)
    : sources_(csr.source_range()),
      dram_cap_(dram_edges_per_vertex),
      chunk_bytes_(chunk_bytes) {
  SEMBFS_EXPECTS(dram_edges_per_vertex >= 0);
  SEMBFS_EXPECTS(device != nullptr);
  ensure_directory(dir);

  const std::int64_t local_n = sources_.size();
  dram_index_.assign(static_cast<std::size_t>(local_n) + 1, 0);
  nvm_index_.assign(static_cast<std::size_t>(local_n) + 1, 0);

  // Split sizes per vertex.
  for (std::int64_t v = 0; v < local_n; ++v) {
    const std::int64_t deg = csr.degree(sources_.begin + v);
    const std::int64_t in_dram = std::min(deg, dram_cap_);
    dram_index_[static_cast<std::size_t>(v) + 1] =
        dram_index_[static_cast<std::size_t>(v)] + in_dram;
    nvm_index_[static_cast<std::size_t>(v) + 1] =
        nvm_index_[static_cast<std::size_t>(v)] + (deg - in_dram);
  }
  nvm_entry_count_ = nvm_index_.back();

  // Fill the DRAM prefix arrays.
  dram_values_.resize(static_cast<std::size_t>(dram_index_.back()));
  for (std::int64_t v = 0; v < local_n; ++v) {
    const auto adj = csr.neighbors(sources_.begin + v);
    const std::int64_t in_dram =
        dram_index_[static_cast<std::size_t>(v) + 1] -
        dram_index_[static_cast<std::size_t>(v)];
    std::copy_n(adj.begin(), in_dram,
                dram_values_.begin() + dram_index_[static_cast<std::size_t>(v)]);
  }

  // Offload the remainder to NVM.
  const std::string path =
      dir + "/bg_node" + std::to_string(node_id) + ".overflow";
  nvm_file_ = std::make_unique<NvmFile>(std::move(device), path);
  nvm_values_ = std::make_unique<ExternalArray<Vertex>>(
      *nvm_file_, 0, static_cast<std::uint64_t>(nvm_entry_count_),
      chunk_bytes);

  std::vector<Vertex> staging;
  std::int64_t written = 0;
  for (std::int64_t v = 0; v < local_n; ++v) {
    const auto adj = csr.neighbors(sources_.begin + v);
    const std::int64_t in_dram =
        dram_index_[static_cast<std::size_t>(v) + 1] -
        dram_index_[static_cast<std::size_t>(v)];
    const std::int64_t overflow =
        static_cast<std::int64_t>(adj.size()) - in_dram;
    if (overflow <= 0) continue;
    staging.assign(adj.begin() + in_dram, adj.end());
    nvm_values_->write(static_cast<std::uint64_t>(written),
                       std::span<const Vertex>{staging});
    written += overflow;
  }
  SEMBFS_ENSURES(written == nvm_entry_count_);
  nvm_file_->sync();
}

std::uint64_t HybridBackwardPartition::dram_byte_size() const noexcept {
  return dram_index_.size() * sizeof(std::int64_t) +
         nvm_index_.size() * sizeof(std::int64_t) +
         dram_values_.size() * sizeof(Vertex);
}

std::uint64_t HybridBackwardPartition::nvm_byte_size() const noexcept {
  return static_cast<std::uint64_t>(nvm_entry_count_) * sizeof(Vertex);
}

HybridBackwardGraph::HybridBackwardGraph(const BackwardGraph& backward,
                                         std::int64_t dram_edges_per_vertex,
                                         std::shared_ptr<NvmDevice> device,
                                         const std::string& dir,
                                         std::uint32_t chunk_bytes)
    : vertex_partition_(backward.vertex_partition()), device_(device) {
  partitions_.reserve(backward.node_count());
  for (std::size_t k = 0; k < backward.node_count(); ++k) {
    partitions_.push_back(std::make_unique<HybridBackwardPartition>(
        backward.partition(k), dram_edges_per_vertex, device_, dir, k,
        chunk_bytes));
  }
}

std::uint64_t HybridBackwardGraph::dram_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->dram_byte_size();
  return total;
}

std::uint64_t HybridBackwardGraph::nvm_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->nvm_byte_size();
  return total;
}

std::uint64_t HybridBackwardGraph::dram_edges_examined() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->dram_edges_examined();
  return total;
}

std::uint64_t HybridBackwardGraph::nvm_edges_examined() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->nvm_edges_examined();
  return total;
}

void HybridBackwardGraph::reset_counters() noexcept {
  for (const auto& p : partitions_) p->reset_counters();
}

}  // namespace sembfs
