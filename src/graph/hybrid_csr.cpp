#include "graph/hybrid_csr.hpp"

#include <algorithm>

#include "nvm/storage_file.hpp"

namespace sembfs {

HybridBackwardPartition::HybridBackwardPartition(
    const Csr& csr, std::int64_t dram_edges_per_vertex,
    std::shared_ptr<NvmDevice> device, const std::string& dir,
    std::size_t node_id, std::uint32_t chunk_bytes, ChunkFormat format)
    : sources_(csr.source_range()),
      dram_cap_(dram_edges_per_vertex),
      chunk_bytes_(chunk_bytes),
      format_(format) {
  SEMBFS_EXPECTS(dram_edges_per_vertex >= 0);
  SEMBFS_EXPECTS(device != nullptr);
  ensure_directory(dir);

  const std::int64_t local_n = sources_.size();
  dram_index_.assign(static_cast<std::size_t>(local_n) + 1, 0);
  nvm_index_.assign(static_cast<std::size_t>(local_n) + 1, 0);

  // Split sizes per vertex.
  for (std::int64_t v = 0; v < local_n; ++v) {
    const std::int64_t deg = csr.degree(sources_.begin + v);
    const std::int64_t in_dram = std::min(deg, dram_cap_);
    dram_index_[static_cast<std::size_t>(v) + 1] =
        dram_index_[static_cast<std::size_t>(v)] + in_dram;
    nvm_index_[static_cast<std::size_t>(v) + 1] =
        nvm_index_[static_cast<std::size_t>(v)] + (deg - in_dram);
  }
  nvm_entry_count_ = nvm_index_.back();

  // Fill the DRAM prefix arrays.
  dram_values_.resize(static_cast<std::size_t>(dram_index_.back()));
  for (std::int64_t v = 0; v < local_n; ++v) {
    const auto adj = csr.neighbors(sources_.begin + v);
    const std::int64_t in_dram =
        dram_index_[static_cast<std::size_t>(v) + 1] -
        dram_index_[static_cast<std::size_t>(v)];
    std::copy_n(adj.begin(), in_dram,
                dram_values_.begin() + dram_index_[static_cast<std::size_t>(v)]);
  }

  // Offload the remainder to NVM: gather every per-vertex overflow run
  // into one contiguous image, then store it raw or varint-compressed.
  const std::string path =
      dir + "/bg_node" + std::to_string(node_id) + ".overflow";
  auto file = std::make_unique<NvmFile>(std::move(device), path);

  std::vector<Vertex> overflow_values;
  overflow_values.reserve(static_cast<std::size_t>(nvm_entry_count_));
  for (std::int64_t v = 0; v < local_n; ++v) {
    const auto adj = csr.neighbors(sources_.begin + v);
    const std::int64_t in_dram =
        dram_index_[static_cast<std::size_t>(v) + 1] -
        dram_index_[static_cast<std::size_t>(v)];
    if (static_cast<std::int64_t>(adj.size()) <= in_dram) continue;
    overflow_values.insert(overflow_values.end(), adj.begin() + in_dram,
                           adj.end());
  }
  SEMBFS_ENSURES(static_cast<std::int64_t>(overflow_values.size()) ==
                 nvm_entry_count_);

  if (format_ == ChunkFormat::kVarint) {
    auto compressed = std::make_unique<CompressedBlockFile>(
        std::move(file), std::span<const Vertex>{overflow_values},
        chunk_bytes);
    compressed_ = compressed.get();
    nvm_file_ = std::move(compressed);
  } else {
    constexpr std::size_t kWriteStride = 1 << 20;  // bulk construction writes
    std::size_t done = 0;
    while (done < overflow_values.size()) {
      const std::size_t len =
          std::min(kWriteStride, overflow_values.size() - done);
      file->write(done * sizeof(Vertex),
                  std::as_bytes(std::span<const Vertex>{overflow_values}
                                    .subspan(done, len)));
      done += len;
    }
    file->sync();
    nvm_file_ = std::move(file);
  }
  nvm_values_ = std::make_unique<ExternalArray<Vertex>>(
      *nvm_file_, 0, static_cast<std::uint64_t>(nvm_entry_count_),
      chunk_bytes);
}

std::uint64_t HybridBackwardPartition::dram_byte_size() const noexcept {
  return dram_index_.size() * sizeof(std::int64_t) +
         nvm_index_.size() * sizeof(std::int64_t) +
         dram_values_.size() * sizeof(Vertex);
}

std::uint64_t HybridBackwardPartition::nvm_byte_size() const noexcept {
  if (compressed_ != nullptr) return compressed_->encoded_byte_size();
  return static_cast<std::uint64_t>(nvm_entry_count_) * sizeof(Vertex);
}

HybridBackwardGraph::HybridBackwardGraph(const BackwardGraph& backward,
                                         std::int64_t dram_edges_per_vertex,
                                         std::shared_ptr<NvmDevice> device,
                                         const std::string& dir,
                                         std::uint32_t chunk_bytes,
                                         ChunkFormat format)
    : vertex_partition_(backward.vertex_partition()), device_(device) {
  partitions_.reserve(backward.node_count());
  for (std::size_t k = 0; k < backward.node_count(); ++k) {
    partitions_.push_back(std::make_unique<HybridBackwardPartition>(
        backward.partition(k), dram_edges_per_vertex, device_, dir, k,
        chunk_bytes, format));
  }
}

std::uint64_t HybridBackwardGraph::dram_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->dram_byte_size();
  return total;
}

std::uint64_t HybridBackwardGraph::nvm_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->nvm_byte_size();
  return total;
}

std::uint64_t HybridBackwardGraph::dram_edges_examined() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->dram_edges_examined();
  return total;
}

std::uint64_t HybridBackwardGraph::nvm_edges_examined() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->nvm_edges_examined();
  return total;
}

void HybridBackwardGraph::reset_counters() noexcept {
  for (const auto& p : partitions_) p->reset_counters();
}

}  // namespace sembfs
