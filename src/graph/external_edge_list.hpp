// Edge list offloaded to NVM in the Graph500 reference's packed 12-byte
// format (paper Step 1: "offload the generated edge list onto NVM"; the
// edge list is later streamed back for graph construction and validation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "nvm/nvm_device.hpp"

namespace sembfs {

class ExternalEdgeList {
 public:
  /// Creates an empty external edge list file.
  ExternalEdgeList(std::shared_ptr<NvmDevice> device, const std::string& path,
                   Vertex vertex_count);

  [[nodiscard]] Vertex vertex_count() const noexcept { return vertex_count_; }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return edge_count_;
  }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return edge_count_ * sizeof(PackedEdge);
  }

  /// Appends a batch of edges (packs to 12 bytes each).
  void append(std::span<const Edge> batch);

  /// Offloads a whole in-memory edge list.
  void append_all(const EdgeList& edges);

  /// Reads edges [first, first+out.size()) back.
  void read(std::uint64_t first, std::span<Edge> out);

  /// Streams the whole list in `batch_size`-edge chunks through fn(span).
  template <typename Fn>
  void for_each_batch(std::size_t batch_size, Fn&& fn) {
    std::vector<Edge> buffer;
    std::uint64_t done = 0;
    while (done < edge_count_) {
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(batch_size, edge_count_ - done));
      buffer.resize(len);
      read(done, std::span<Edge>{buffer});
      fn(std::span<const Edge>{buffer});
      done += len;
    }
  }

  /// Reads everything back into memory (tests / small graphs).
  EdgeList load_all();

  [[nodiscard]] NvmDevice& device() noexcept { return *device_; }

 private:
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<NvmFile> file_;
  Vertex vertex_count_ = 0;
  std::uint64_t edge_count_ = 0;
};

}  // namespace sembfs
