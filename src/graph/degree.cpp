#include "graph/degree.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace sembfs {

namespace {
std::size_t bucket_of(std::int64_t degree) {
  if (degree <= 0) return 0;
  if (degree == 1) return 1;
  // degree in [2^(b-1)+1, 2^b] -> bucket b
  return static_cast<std::size_t>(
      64 - std::countl_zero(static_cast<std::uint64_t>(degree - 1)) + 1);
}
}  // namespace

DegreeStats compute_degree_stats(const Csr& csr) {
  const VertexRange range = csr.source_range();
  DegreeStats stats;
  stats.vertex_count = range.size();
  if (range.size() == 0) return stats;

  std::vector<std::int64_t> degrees(static_cast<std::size_t>(range.size()));
  for (std::int64_t v = 0; v < range.size(); ++v)
    degrees[static_cast<std::size_t>(v)] = csr.degree(range.begin + v);

  stats.edge_entry_count = 0;
  stats.min_degree = degrees.front();
  stats.max_degree = degrees.front();
  for (const std::int64_t d : degrees) {
    stats.edge_entry_count += d;
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_count;
    const std::size_t b = bucket_of(d);
    if (stats.log2_histogram.size() <= b) stats.log2_histogram.resize(b + 1);
    ++stats.log2_histogram[b];
  }
  stats.mean_degree = static_cast<double>(stats.edge_entry_count) /
                      static_cast<double>(stats.vertex_count);

  auto mid = degrees.begin() + degrees.size() / 2;
  std::nth_element(degrees.begin(), mid, degrees.end());
  stats.median_degree = *mid;
  return stats;
}

double average_degree(const Csr& csr, std::span<const Vertex> vertices) {
  if (vertices.empty()) return 0.0;
  std::int64_t total = 0;
  for (const Vertex v : vertices) {
    SEMBFS_EXPECTS(csr.covers_source(v));
    total += csr.degree(v);
  }
  return static_cast<double>(total) / static_cast<double>(vertices.size());
}

}  // namespace sembfs
