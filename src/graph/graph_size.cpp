#include "graph/graph_size.hpp"

namespace sembfs {

double bytes_to_gib(std::uint64_t bytes) noexcept {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace sembfs
