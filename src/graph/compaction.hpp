// Compaction: folding a DeltaBuffer into the canonical edge list so a new
// immutable base generation can be rebuilt (docs/MUTATIONS.md).
//
// The fold mirrors the delta's merged-view semantics exactly:
//  - every base copy of a tombstoned pair is dropped (the base CSRs carry
//    Kronecker multi-edges; a tombstone removes the pair as a unit), and
//  - every surviving inserted copy is appended (multi-edge inserts keep
//    their multiplicity).
// A BFS over the folded list rebuilt from scratch is therefore
// reference-equal to a merged-view BFS over (base, delta) — the property
// the mutation differential sweep pins.
#pragma once

#include <cstdint>

#include "graph/delta_buffer.hpp"
#include "graph/edge_list.hpp"

namespace sembfs {

struct FoldStats {
  std::size_t base_edges = 0;     ///< input list size
  std::size_t dropped = 0;        ///< base copies hidden by tombstones
  std::size_t appended = 0;       ///< surviving inserted copies
  std::size_t folded_edges = 0;   ///< output list size
};

/// Returns the edge list of the merged view: base minus tombstoned pairs
/// plus inserted copies. Order: surviving base edges first (stable), then
/// the canonical inserted pairs — CSR construction sorts anyway.
[[nodiscard]] EdgeList fold_delta(const EdgeList& base,
                                  const DeltaBuffer& delta,
                                  FoldStats* stats = nullptr);

}  // namespace sembfs
