#include "graph/mutable_graph.hpp"

#include <algorithm>
#include <utility>

#include "graph/compaction.hpp"
#include "nvm/storage_file.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace sembfs {

BaseGeneration::~BaseGeneration() {
  // Close every backend (chunk files, checksum sidecars) before retiring
  // the generation directory they live in.
  backward_hybrid_.reset();
  forward_external_.reset();
  forward_tiered_.reset();
  forward_dram_.reset();
  backward_.reset();
  if (!dir_.empty()) remove_directory_recursive(dir_);
}

GraphStorage GraphSnapshot::storage() const noexcept {
  GraphStorage s;
  if (base_->forward_external_ != nullptr) {
    s.forward_external = base_->forward_external_.get();
  } else if (base_->forward_tiered_ != nullptr) {
    s.forward_tiered = base_->forward_tiered_.get();
  } else {
    s.forward_dram = base_->forward_dram_.get();
  }
  if (base_->use_hybrid_backward_) {
    s.backward_hybrid = base_->backward_hybrid_.get();
  } else {
    s.backward_dram = base_->backward_.get();
  }
  s.delta = delta();
  return s;
}

MutableGraph::MutableGraph(EdgeList base, MutableGraphConfig config,
                           ThreadPool& pool)
    : base_(std::move(base)), config_(std::move(config)), pool_(pool) {
  vertex_count_ = base_.vertex_count();
  SEMBFS_EXPECTS(vertex_count_ > 0);
  SEMBFS_EXPECTS(config_.numa_nodes >= 1);
  const bool offloads = config_.forward != MutableForwardKind::kDram ||
                        config_.backward_dram_edges >= 0;
  SEMBFS_EXPECTS(!offloads ||
                 (config_.device != nullptr && !config_.workdir.empty()));

  auto snap = std::make_shared<GraphSnapshot>();
  snap->version_ = 0;
  snap->base_ = build_generation(0);
  current_ = std::move(snap);
}

MutableGraph::~MutableGraph() = default;

std::shared_ptr<BaseGeneration> MutableGraph::build_generation(
    std::uint64_t id) const {
  auto gen = std::make_shared<BaseGeneration>();
  gen->id_ = id;

  const VertexPartition partition{vertex_count_, config_.numa_nodes};
  CsrBuildOptions options;  // undirected, self-loop-free (defaults)
  auto forward = std::make_unique<ForwardGraph>(
      ForwardGraph::build(base_, partition, options, pool_));
  gen->backward_ = std::make_unique<BackwardGraph>(
      BackwardGraph::build(base_, partition, options, pool_));

  const bool offloads = config_.forward != MutableForwardKind::kDram ||
                        config_.backward_dram_edges >= 0;
  if (offloads) {
    gen->dir_ = config_.workdir + "/gen" + std::to_string(id);
    ensure_directory(gen->dir_);
  }
  switch (config_.forward) {
    case MutableForwardKind::kDram:
      gen->forward_dram_ = std::move(forward);
      break;
    case MutableForwardKind::kExternal:
      gen->forward_external_ = std::make_unique<ExternalForwardGraph>(
          *forward, config_.device, gen->dir_, config_.chunk_bytes,
          config_.chunk_format);
      break;  // the DRAM copy dies with `forward` — the offload's purpose
    case MutableForwardKind::kTiered:
      gen->forward_tiered_ = std::make_unique<TieredForwardGraph>(
          *forward, config_.tiered_degree_threshold, config_.device,
          gen->dir_, pool_, config_.chunk_bytes, config_.chunk_format);
      break;
  }
  if (config_.backward_dram_edges >= 0) {
    gen->backward_hybrid_ = std::make_unique<HybridBackwardGraph>(
        *gen->backward_, config_.backward_dram_edges, config_.device,
        gen->dir_, config_.chunk_bytes, config_.chunk_format);
    gen->use_hybrid_backward_ = true;
  }
  return gen;
}

std::shared_ptr<const GraphSnapshot> MutableGraph::snapshot() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return current_;
}

void MutableGraph::set_publish_hook(PublishHook hook) {
  std::lock_guard<std::mutex> lock{writer_mutex_};
  publish_hook_ = std::move(hook);
}

void MutableGraph::publish(std::shared_ptr<const GraphSnapshot> snap) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    current_ = snap;
  }
  if (publish_hook_) publish_hook_(snap);
}

std::uint64_t MutableGraph::apply(std::span<const EdgeOp> ops) {
  std::lock_guard<std::mutex> writer{writer_mutex_};
  std::shared_ptr<BaseGeneration> base;
  std::vector<EdgeOp> log;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    pending_.insert(pending_.end(), ops.begin(), ops.end());
    log = pending_;
    base = current_->base_;
  }
  // Fold the whole pending log (ops apply in order across batches) into
  // one immutable DeltaBuffer over the shared base. The base-count oracle
  // is the canonical DRAM backward graph: complete per-vertex adjacency,
  // multi-edge copies included.
  const BackwardGraph& backward = *base->backward_;
  auto delta = std::make_shared<DeltaBuffer>(DeltaBuffer::build(
      vertex_count_, log, [&](Vertex u, Vertex w) -> std::int64_t {
        const std::span<const Vertex> adj = backward.neighbors(u);
        return static_cast<std::int64_t>(std::count(adj.begin(), adj.end(), w));
      }));

  auto snap = std::make_shared<GraphSnapshot>();
  snap->base_ = std::move(base);
  snap->delta_ = std::move(delta);
  {
    std::lock_guard<std::mutex> lock{mutex_};
    snap->version_ = next_version_++;
  }
  const std::uint64_t version = snap->version_;
  publish(std::move(snap));
  return version;
}

std::uint64_t MutableGraph::compact() {
  std::lock_guard<std::mutex> writer{writer_mutex_};
  std::shared_ptr<const GraphSnapshot> before;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    before = current_;
    if (pending_.empty()) return before->version_;
  }
  // The published delta IS the folded pending log (apply rebuilds it from
  // the full log every time), so compaction folds it directly.
  const DeltaBuffer* delta = before->delta();
  SEMBFS_ASSERT(delta != nullptr);
  base_ = fold_delta(base_, *delta);

  std::uint64_t base_id;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    base_id = next_base_id_++;
  }
  auto snap = std::make_shared<GraphSnapshot>();
  snap->base_ = build_generation(base_id);
  {
    std::lock_guard<std::mutex> lock{mutex_};
    snap->version_ = next_version_++;
    pending_.clear();
    ++compactions_;
  }
  const std::uint64_t version = snap->version_;
  SEMBFS_LOG_INFO(
      "compaction: gen%llu -> gen%llu (%llu edges, version %llu)",
      static_cast<unsigned long long>(before->base_id()),
      static_cast<unsigned long long>(base_id),
      static_cast<unsigned long long>(base_.edge_count()),
      static_cast<unsigned long long>(version));
  publish(std::move(snap));
  return version;
}

MutableGraphStats MutableGraph::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  MutableGraphStats s;
  s.version = current_->version_;
  s.base_id = current_->base_->id_;
  s.compactions = compactions_;
  s.pending_ops = pending_.size();
  s.base_edges = base_.edge_count();
  if (const DeltaBuffer* delta = current_->delta(); delta != nullptr) {
    s.delta_inserts = delta->inserted_edges().size();
    s.delta_removes = delta->removed_edges().size();
    s.delta_bytes = delta->byte_size();
  }
  return s;
}

}  // namespace sembfs
