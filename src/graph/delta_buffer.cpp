#include "graph/delta_buffer.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

namespace {

struct PairKey {
  Vertex lo = 0;
  Vertex hi = 0;
  friend bool operator==(const PairKey&, const PairKey&) = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    // splitmix64-style mix of both endpoints.
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    return static_cast<std::size_t>(
        mix(static_cast<std::uint64_t>(k.lo)) ^
        (mix(static_cast<std::uint64_t>(k.hi)) << 1));
  }
};

struct PairState {
  std::int64_t inserts = 0;  // surviving inserts (later removes cancel)
  bool kill_base = false;    // tombstone every base copy of the pair
};

bool edge_less(const Edge& a, const Edge& b) noexcept {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

}  // namespace

bool DeltaBuffer::sorted_contains(const std::vector<Vertex>& sorted,
                                  Vertex w) noexcept {
  return std::binary_search(sorted.begin(), sorted.end(), w);
}

std::span<const Vertex> DeltaBuffer::inserted(Vertex v) const noexcept {
  if (!has_inserts(v)) return {};
  return per_vertex_.at(v).inserts;
}

bool DeltaBuffer::edge_removed(Vertex u, Vertex w) const noexcept {
  if (per_vertex_.empty() ||
      !has_removes_.test(static_cast<std::size_t>(u)))
    return false;
  return sorted_contains(per_vertex_.at(u).removes, w);
}

std::int64_t DeltaBuffer::degree_adjustment(Vertex v) const noexcept {
  if (!touches(v)) return 0;
  return per_vertex_.at(v).degree_adjust;
}

std::uint64_t DeltaBuffer::byte_size() const noexcept {
  // Bitmaps plus per-vertex vectors plus the canonical edge lists; the
  // constant covers each hash slot + VertexDelta header.
  constexpr std::uint64_t kPerVertexOverhead = 96;
  std::uint64_t bytes = 3 * (static_cast<std::uint64_t>(n_) + 63) / 64 * 8;
  for (const auto& [v, d] : per_vertex_) {
    bytes += kPerVertexOverhead +
             (d.inserts.size() + d.removes.size()) * sizeof(Vertex);
  }
  bytes += (inserted_edges_.size() + removed_edges_.size()) * sizeof(Edge);
  return bytes;
}

DeltaBuffer DeltaBuffer::build(Vertex vertex_count,
                               std::span<const EdgeOp> ops,
                               const BaseCountFn& base_count) {
  SEMBFS_EXPECTS(vertex_count >= 0);
  DeltaBuffer delta;
  delta.n_ = vertex_count;
  if (ops.empty()) return delta;

  // Pass 1: replay the ops in order into canonical per-pair state.
  std::unordered_map<PairKey, PairState, PairKeyHash> pairs;
  pairs.reserve(ops.size());
  for (const EdgeOp& op : ops) {
    SEMBFS_EXPECTS(op.u >= 0 && op.u < vertex_count && op.v >= 0 &&
                   op.v < vertex_count);
    SEMBFS_EXPECTS(op.u != op.v);  // self-loops contribute nothing to BFS
    const PairKey key{std::min(op.u, op.v), std::max(op.u, op.v)};
    PairState& state = pairs[key];
    if (op.kind == EdgeOp::Kind::Insert) {
      ++state.inserts;
      ++delta.insert_ops_;
    } else {
      state.inserts = 0;  // cancel earlier inserts of the pair
      state.kill_base = true;
      ++delta.remove_ops_;
    }
  }

  // Pass 2: scatter the pair states into per-endpoint structures.
  delta.touched_.resize(static_cast<std::size_t>(vertex_count));
  delta.has_inserts_.resize(static_cast<std::size_t>(vertex_count));
  delta.has_removes_.resize(static_cast<std::size_t>(vertex_count));
  for (const auto& [key, state] : pairs) {
    const Vertex u = key.lo;
    const Vertex v = key.hi;
    if (state.kill_base) {
      delta.removed_edges_.push_back(Edge{u, v});
      VertexDelta& du = delta.per_vertex_[u];
      VertexDelta& dv = delta.per_vertex_[v];
      du.removes.push_back(v);
      dv.removes.push_back(u);
      du.degree_adjust -= base_count(u, v);
      dv.degree_adjust -= base_count(v, u);
      delta.touched_.set(static_cast<std::size_t>(u));
      delta.touched_.set(static_cast<std::size_t>(v));
      delta.has_removes_.set(static_cast<std::size_t>(u));
      delta.has_removes_.set(static_cast<std::size_t>(v));
    }
    if (state.inserts > 0) {
      VertexDelta& du = delta.per_vertex_[u];
      VertexDelta& dv = delta.per_vertex_[v];
      for (std::int64_t i = 0; i < state.inserts; ++i) {
        delta.inserted_edges_.push_back(Edge{u, v});
        du.inserts.push_back(v);
        dv.inserts.push_back(u);
      }
      du.degree_adjust += state.inserts;
      dv.degree_adjust += state.inserts;
      delta.touched_.set(static_cast<std::size_t>(u));
      delta.touched_.set(static_cast<std::size_t>(v));
      delta.has_inserts_.set(static_cast<std::size_t>(u));
      delta.has_inserts_.set(static_cast<std::size_t>(v));
    }
  }

  // Deterministic layout regardless of hash iteration order.
  for (auto& [v, d] : delta.per_vertex_) {
    std::sort(d.inserts.begin(), d.inserts.end());
    std::sort(d.removes.begin(), d.removes.end());
  }
  std::sort(delta.inserted_edges_.begin(), delta.inserted_edges_.end(),
            edge_less);
  std::sort(delta.removed_edges_.begin(), delta.removed_edges_.end(),
            edge_less);
  return delta;
}

}  // namespace sembfs
