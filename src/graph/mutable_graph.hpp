// The mutable graph layer: log-structured edge updates over the sealed
// semi-external CSR storage, with snapshot-isolated publication
// (docs/MUTATIONS.md).
//
// Layering:
//  - The *base* is a generation of immutable storage backends, rebuilt
//    from the canonical edge list only by compaction: the configured
//    forward graph (DRAM / semi-external / tiered), the canonical DRAM
//    backward graph, and optionally the hybrid backward graph. External
//    and tiered generations write their chunk files into a fresh
//    <workdir>/gen<k> directory, checksummed at offload time exactly like
//    the sealed build path.
//  - Every apply() folds the whole pending op log into one immutable
//    DeltaBuffer and publishes a new GraphSnapshot sharing the current
//    base — no chunk I/O on the write path.
//  - compact() folds the pending log into the canonical edge list,
//    rebuilds the base backends into the next generation directory,
//    publishes a snapshot with an empty delta, and only then retires the
//    previous generation's files (readers pinning the old snapshot keep
//    its backends alive through shared ownership; the directory is
//    removed when the last pinned snapshot of that base dies).
//
// Snapshot isolation contract: snapshot() hands out an immutable view;
// in-flight traversals keep the shared_ptr for their whole run and are
// never migrated. New admissions call snapshot() again and see the latest
// version. Publication is a single shared_ptr store under a mutex —
// readers never block writers beyond that store.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "graph/backward_graph.hpp"
#include "graph/delta_buffer.hpp"
#include "graph/edge_list.hpp"
#include "graph/external_csr.hpp"
#include "graph/forward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "graph/tiered_forward.hpp"
#include "nvm/chunk_format.hpp"
#include "nvm/nvm_device.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

/// Which forward-graph backend each base generation builds.
enum class MutableForwardKind {
  kDram,      ///< ForwardGraph (no device)
  kExternal,  ///< ExternalForwardGraph (full offload)
  kTiered,    ///< TieredForwardGraph (DRAM short lists + NVM hubs)
};

struct MutableGraphConfig {
  MutableForwardKind forward = MutableForwardKind::kDram;
  std::size_t numa_nodes = 4;
  /// Generation directories gen0, gen1, ... are created under here.
  /// Required for kExternal / kTiered / hybrid-backward generations.
  std::string workdir;
  /// Shared device for offloaded backends (required when any backend
  /// offloads; every generation writes to the same simulated device).
  std::shared_ptr<NvmDevice> device;
  std::uint32_t chunk_bytes = 4096;
  ChunkFormat chunk_format = ChunkFormat::kRaw;
  /// kTiered only: adjacency lists longer than this live on NVM.
  std::int64_t tiered_degree_threshold = 64;
  /// >= 0: also build a HybridBackwardGraph keeping this many DRAM edges
  /// per vertex (the canonical DRAM backward graph is always built — it
  /// is the delta's base-count oracle and the repair kernel's adjacency).
  std::int64_t backward_dram_edges = -1;
};

/// One immutable base generation: the storage backends rebuilt by the
/// last compaction. Shared by every snapshot published on top of it; the
/// generation directory is removed when the last owner releases it.
class BaseGeneration {
 public:
  BaseGeneration() = default;
  ~BaseGeneration();
  BaseGeneration(const BaseGeneration&) = delete;
  BaseGeneration& operator=(const BaseGeneration&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return backward_->vertex_count();
  }
  /// The canonical complete per-vertex base adjacency (in == out for the
  /// undirected graphs): the base-count oracle and repair adjacency.
  [[nodiscard]] const BackwardGraph& backward() const noexcept {
    return *backward_;
  }

 private:
  friend class MutableGraph;
  friend class GraphSnapshot;
  std::uint64_t id_ = 0;
  std::string dir_;  // empty: nothing on disk to retire
  std::unique_ptr<ForwardGraph> forward_dram_;
  std::unique_ptr<ExternalForwardGraph> forward_external_;
  std::unique_ptr<TieredForwardGraph> forward_tiered_;
  std::unique_ptr<BackwardGraph> backward_;
  std::unique_ptr<HybridBackwardGraph> backward_hybrid_;
  bool use_hybrid_backward_ = false;
};

/// One published version of the graph: a base generation plus the delta
/// layered over it. Immutable; pin it (keep the shared_ptr) for the whole
/// traversal and every kernel reads one consistent merged view.
class GraphSnapshot {
 public:
  /// Monotonic publication counter (0 = the initial sealed graph).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t base_id() const noexcept { return base_->id(); }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return base_->vertex_count();
  }
  /// True when the merged view equals the base (empty delta) — analytics
  /// that cannot read through a delta require this.
  [[nodiscard]] bool compacted() const noexcept {
    return delta_ == nullptr || delta_->empty();
  }
  [[nodiscard]] const DeltaBuffer* delta() const noexcept {
    return delta_ != nullptr && !delta_->empty() ? delta_.get() : nullptr;
  }
  [[nodiscard]] const BaseGeneration& base() const noexcept { return *base_; }

  /// The kernel-facing view: base backends plus the delta overlay. The
  /// returned struct borrows from this snapshot — keep the snapshot alive
  /// for as long as the storage view is in use.
  [[nodiscard]] GraphStorage storage() const noexcept;

 private:
  friend class MutableGraph;
  std::uint64_t version_ = 0;
  std::shared_ptr<BaseGeneration> base_;
  std::shared_ptr<const DeltaBuffer> delta_;  // may be null (sealed view)
};

/// Statistics over the mutation log (runner/bench reporting).
struct MutableGraphStats {
  std::uint64_t version = 0;        ///< latest published version
  std::uint64_t base_id = 0;        ///< generation of the current base
  std::uint64_t compactions = 0;    ///< compact() calls so far
  std::size_t pending_ops = 0;      ///< ops since the last compaction
  std::size_t delta_inserts = 0;    ///< surviving insert ops in the delta
  std::size_t delta_removes = 0;    ///< tombstoned pairs in the delta
  std::uint64_t delta_bytes = 0;    ///< DeltaBuffer DRAM footprint
  std::size_t base_edges = 0;       ///< canonical edge list size
};

/// The mutable graph: canonical edge list + pending op log + published
/// snapshot chain. Writers (apply/compact) serialize on an internal
/// mutex; snapshot() is safe from any thread.
class MutableGraph {
 public:
  /// Seals `base` (vertex IDs in [0, vertex_count)) and builds generation
  /// 0. The pool is borrowed for this and every later rebuild.
  MutableGraph(EdgeList base, MutableGraphConfig config, ThreadPool& pool);
  ~MutableGraph();

  MutableGraph(const MutableGraph&) = delete;
  MutableGraph& operator=(const MutableGraph&) = delete;

  /// Latest published version. O(1); never blocks on a rebuild.
  [[nodiscard]] std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Appends `ops` to the pending log, folds the whole log into a fresh
  /// DeltaBuffer over the current base, and publishes the new snapshot.
  /// Returns the published version.
  std::uint64_t apply(std::span<const EdgeOp> ops);

  /// Folds the pending log into the canonical edge list, rebuilds the
  /// base backends into the next generation directory, and publishes a
  /// compacted snapshot (empty delta). No-op (returns the current
  /// version) when nothing is pending. Old generations' files are retired
  /// once their last pinned snapshot dies.
  std::uint64_t compact();

  /// Registered hook runs after every publication (apply and compact),
  /// outside the writer lock, with the fresh snapshot. The serving engine
  /// uses it to bump/migrate its result cache.
  using PublishHook =
      std::function<void(const std::shared_ptr<const GraphSnapshot>&)>;
  void set_publish_hook(PublishHook hook);

  [[nodiscard]] MutableGraphStats stats() const;
  [[nodiscard]] Vertex vertex_count() const noexcept { return vertex_count_; }
  /// Canonical sealed edge list of the *current base* (compaction folds
  /// pending ops into it). Reference stays valid until the next compact().
  [[nodiscard]] const EdgeList& base_edges() const noexcept { return base_; }

 private:
  std::shared_ptr<BaseGeneration> build_generation(std::uint64_t id) const;
  void publish(std::shared_ptr<const GraphSnapshot> snap);

  EdgeList base_;
  MutableGraphConfig config_;
  ThreadPool& pool_;
  Vertex vertex_count_ = 0;

  /// Serializes whole writer operations (apply/compact, publish hook
  /// included) so hooks observe versions in publication order.
  std::mutex writer_mutex_;
  /// Guards the published pointer and the log/stat fields below; held
  /// only for O(1) reads/stores, never across a rebuild or hook.
  mutable std::mutex mutex_;
  std::shared_ptr<const GraphSnapshot> current_;
  std::vector<EdgeOp> pending_;
  std::uint64_t next_version_ = 1;
  std::uint64_t next_base_id_ = 1;
  std::uint64_t compactions_ = 0;
  PublishHook publish_hook_;
};

}  // namespace sembfs
