#include "graph/compaction.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

namespace {

bool edge_less(const Edge& a, const Edge& b) noexcept {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

}  // namespace

EdgeList fold_delta(const EdgeList& base, const DeltaBuffer& delta,
                    FoldStats* stats) {
  const std::vector<Edge>& removed = delta.removed_edges();  // sorted unique
  const std::vector<Edge>& inserted = delta.inserted_edges();
  SEMBFS_ASSERT(std::is_sorted(removed.begin(), removed.end(), edge_less));

  EdgeList out{base.vertex_count()};
  out.reserve(base.edge_count() + inserted.size());
  std::size_t dropped = 0;
  for (const Edge& e : base.edges()) {
    const Edge canonical = e.u <= e.v ? e : Edge{e.v, e.u};
    if (!removed.empty() &&
        std::binary_search(removed.begin(), removed.end(), canonical,
                           edge_less)) {
      ++dropped;
      continue;
    }
    out.add(e);
  }
  for (const Edge& e : inserted) out.add(e);

  if (stats != nullptr) {
    stats->base_edges = base.edge_count();
    stats->dropped = dropped;
    stats->appended = inserted.size();
    stats->folded_edges = out.edge_count();
  }
  return out;
}

}  // namespace sembfs
