#include "graph/csr.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {

/// Applies fn(src, dst) for every directed half-edge implied by `e`.
template <typename Fn>
void for_each_direction(const Edge& e, bool undirected, Fn&& fn) {
  fn(e.u, e.v);
  if (undirected && e.u != e.v) fn(e.v, e.u);
}

}  // namespace

Csr build_csr_filtered(const EdgeList& edges, VertexRange sources,
                       VertexRange destinations,
                       const CsrBuildOptions& options, ThreadPool& pool) {
  const Vertex n = edges.vertex_count();
  SEMBFS_EXPECTS(n >= 0);
  SEMBFS_EXPECTS(sources.begin >= 0 && sources.end <= n);
  SEMBFS_EXPECTS(destinations.begin >= 0 && destinations.end <= n);

  Csr csr;
  csr.n_ = n;
  csr.sources_ = sources;
  csr.destinations_ = destinations;

  const std::int64_t local_n = sources.size();
  std::vector<std::atomic<std::int64_t>> counts(
      static_cast<std::size_t>(local_n));
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);

  const auto edge_span = edges.edges();
  const auto accepts = [&](Vertex src, Vertex dst) {
    if (options.remove_self_loops && src == dst) return false;
    return sources.contains(src) && destinations.contains(dst);
  };

  // Pass 1: per-source counts.
  parallel_for_blocked(
      pool, 0, static_cast<std::int64_t>(edge_span.size()),
      [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t i = lo; i < hi; ++i) {
          for_each_direction(
              edge_span[static_cast<std::size_t>(i)], options.undirected,
              [&](Vertex src, Vertex dst) {
                if (accepts(src, dst))
                  counts[static_cast<std::size_t>(src - sources.begin)]
                      .fetch_add(1, std::memory_order_relaxed);
              });
        }
      });

  // Prefix sum -> index array.
  csr.index_.assign(static_cast<std::size_t>(local_n) + 1, 0);
  for (std::int64_t v = 0; v < local_n; ++v)
    csr.index_[static_cast<std::size_t>(v) + 1] =
        csr.index_[static_cast<std::size_t>(v)] +
        counts[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);

  // Pass 2: scatter. Reuse `counts` as per-source write cursors.
  csr.values_.resize(static_cast<std::size_t>(csr.index_.back()));
  for (std::int64_t v = 0; v < local_n; ++v)
    counts[static_cast<std::size_t>(v)].store(
        csr.index_[static_cast<std::size_t>(v)], std::memory_order_relaxed);

  parallel_for_blocked(
      pool, 0, static_cast<std::int64_t>(edge_span.size()),
      [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t i = lo; i < hi; ++i) {
          for_each_direction(
              edge_span[static_cast<std::size_t>(i)], options.undirected,
              [&](Vertex src, Vertex dst) {
                if (accepts(src, dst)) {
                  const std::int64_t slot =
                      counts[static_cast<std::size_t>(src - sources.begin)]
                          .fetch_add(1, std::memory_order_relaxed);
                  csr.values_[static_cast<std::size_t>(slot)] = dst;
                }
              });
        }
      });

  if (options.sort_neighbors || options.dedupe) {
    parallel_for_blocked(
        pool, 0, local_n, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::int64_t v = lo; v < hi; ++v) {
            const auto b = csr.values_.begin() + csr.index_[static_cast<std::size_t>(v)];
            const auto e = csr.values_.begin() + csr.index_[static_cast<std::size_t>(v) + 1];
            std::sort(b, e);
          }
        });
  }

  if (options.dedupe) {
    // Compact each sorted adjacency in place, then rebuild index/values.
    std::vector<std::int64_t> new_index(csr.index_.size(), 0);
    for (std::int64_t v = 0; v < local_n; ++v) {
      const auto b = csr.values_.begin() + csr.index_[static_cast<std::size_t>(v)];
      const auto e = csr.values_.begin() + csr.index_[static_cast<std::size_t>(v) + 1];
      new_index[static_cast<std::size_t>(v) + 1] =
          new_index[static_cast<std::size_t>(v)] +
          std::distance(b, std::unique(b, e));
    }
    std::vector<Vertex> new_values(
        static_cast<std::size_t>(new_index.back()));
    for (std::int64_t v = 0; v < local_n; ++v) {
      const std::int64_t count = new_index[static_cast<std::size_t>(v) + 1] -
                                 new_index[static_cast<std::size_t>(v)];
      std::copy_n(csr.values_.begin() + csr.index_[static_cast<std::size_t>(v)],
                  count,
                  new_values.begin() + new_index[static_cast<std::size_t>(v)]);
    }
    csr.index_ = std::move(new_index);
    csr.values_ = std::move(new_values);
  }

  SEMBFS_ENSURES(csr.index_.size() ==
                 static_cast<std::size_t>(local_n) + 1);
  return csr;
}

Csr build_csr_filtered_stream(Vertex vertex_count, const EdgeStream& stream,
                              VertexRange sources, VertexRange destinations,
                              const CsrBuildOptions& options,
                              ThreadPool& pool) {
  SEMBFS_EXPECTS(vertex_count >= 0);
  SEMBFS_EXPECTS(sources.begin >= 0 && sources.end <= vertex_count);
  SEMBFS_EXPECTS(destinations.begin >= 0 &&
                 destinations.end <= vertex_count);
  SEMBFS_EXPECTS(!options.dedupe);  // unsupported on the streaming path

  Csr csr;
  csr.n_ = vertex_count;
  csr.sources_ = sources;
  csr.destinations_ = destinations;

  const std::int64_t local_n = sources.size();
  std::vector<std::atomic<std::int64_t>> counts(
      static_cast<std::size_t>(local_n));
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);

  const auto accepts = [&](Vertex src, Vertex dst) {
    if (options.remove_self_loops && src == dst) return false;
    return sources.contains(src) && destinations.contains(dst);
  };

  // Pass 1: stream batches, count per source in parallel within the batch.
  stream([&](std::span<const Edge> batch) {
    parallel_for_blocked(
        pool, 0, static_cast<std::int64_t>(batch.size()),
        [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::int64_t i = lo; i < hi; ++i) {
            for_each_direction(
                batch[static_cast<std::size_t>(i)], options.undirected,
                [&](Vertex src, Vertex dst) {
                  if (accepts(src, dst))
                    counts[static_cast<std::size_t>(src - sources.begin)]
                        .fetch_add(1, std::memory_order_relaxed);
                });
          }
        });
  });

  csr.index_.assign(static_cast<std::size_t>(local_n) + 1, 0);
  for (std::int64_t v = 0; v < local_n; ++v)
    csr.index_[static_cast<std::size_t>(v) + 1] =
        csr.index_[static_cast<std::size_t>(v)] +
        counts[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);

  // Pass 2: stream again, scatter.
  csr.values_.resize(static_cast<std::size_t>(csr.index_.back()));
  for (std::int64_t v = 0; v < local_n; ++v)
    counts[static_cast<std::size_t>(v)].store(
        csr.index_[static_cast<std::size_t>(v)], std::memory_order_relaxed);

  stream([&](std::span<const Edge> batch) {
    parallel_for_blocked(
        pool, 0, static_cast<std::int64_t>(batch.size()),
        [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::int64_t i = lo; i < hi; ++i) {
            for_each_direction(
                batch[static_cast<std::size_t>(i)], options.undirected,
                [&](Vertex src, Vertex dst) {
                  if (accepts(src, dst)) {
                    const std::int64_t slot =
                        counts[static_cast<std::size_t>(src - sources.begin)]
                            .fetch_add(1, std::memory_order_relaxed);
                    csr.values_[static_cast<std::size_t>(slot)] = dst;
                  }
                });
          }
        });
  });

  if (options.sort_neighbors || options.dedupe) {
    parallel_for_blocked(
        pool, 0, local_n, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::int64_t v = lo; v < hi; ++v) {
            std::sort(
                csr.values_.begin() + csr.index_[static_cast<std::size_t>(v)],
                csr.values_.begin() +
                    csr.index_[static_cast<std::size_t>(v) + 1]);
          }
        });
  }

  return csr;
}

Csr Csr::from_parts(Vertex global_vertex_count, VertexRange sources,
                    VertexRange destinations,
                    std::vector<std::int64_t> index,
                    std::vector<Vertex> values) {
  SEMBFS_EXPECTS(global_vertex_count >= 0);
  SEMBFS_EXPECTS(sources.begin >= 0 && sources.end <= global_vertex_count);
  SEMBFS_EXPECTS(index.size() ==
                 static_cast<std::size_t>(sources.size()) + 1);
  SEMBFS_EXPECTS(index.front() == 0);
  SEMBFS_EXPECTS(index.back() == static_cast<std::int64_t>(values.size()));
  for (std::size_t i = 1; i < index.size(); ++i)
    SEMBFS_EXPECTS(index[i - 1] <= index[i]);
  for (const Vertex v : values)
    SEMBFS_EXPECTS(destinations.contains(v));

  Csr csr;
  csr.n_ = global_vertex_count;
  csr.sources_ = sources;
  csr.destinations_ = destinations;
  csr.index_ = std::move(index);
  csr.values_ = std::move(values);
  return csr;
}

Csr build_csr(const EdgeList& edges, const CsrBuildOptions& options,
              ThreadPool& pool) {
  const VertexRange all{0, edges.vertex_count()};
  return build_csr_filtered(edges, all, all, options, pool);
}

}  // namespace sembfs
