// In-memory edge list — the Step 1 output of the Graph500 benchmark.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sembfs {

class EdgeList {
 public:
  EdgeList() = default;
  /// Declares the vertex-ID space [0, vertex_count) the edges live in.
  explicit EdgeList(Vertex vertex_count) : vertex_count_(vertex_count) {}
  EdgeList(Vertex vertex_count, std::vector<Edge> edges);

  void reserve(std::size_t n) { edges_.reserve(n); }
  void add(Vertex u, Vertex v);
  void add(const Edge& e) { add(e.u, e.v); }

  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] Vertex vertex_count() const noexcept { return vertex_count_; }
  void set_vertex_count(Vertex n) noexcept { vertex_count_ = n; }

  [[nodiscard]] std::span<const Edge> edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::span<Edge> edges() noexcept { return edges_; }
  [[nodiscard]] const Edge& operator[](std::size_t i) const noexcept {
    return edges_[i];
  }

  /// Largest endpoint appearing in the list, or -1 when empty.
  [[nodiscard]] Vertex max_endpoint() const noexcept;

  /// Count of edges with u == v.
  [[nodiscard]] std::size_t self_loop_count() const noexcept;

  [[nodiscard]] auto begin() const noexcept { return edges_.begin(); }
  [[nodiscard]] auto end() const noexcept { return edges_.end(); }

 private:
  Vertex vertex_count_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace sembfs
