// In-DRAM delta buffer of edge insertions and deletions layered over the
// sealed CSR graphs — the log-structured write side of the mutable graph
// (docs/MUTATIONS.md).
//
// The base graphs (ForwardGraph / ExternalForwardGraph / TieredForwardGraph
// / BackwardGraph / HybridBackwardGraph) stay immutable; every mutation
// batch is folded into one immutable DeltaBuffer, and the traversal kernels
// read the *merged view*: base adjacency minus tombstoned pairs, plus the
// inserted neighbors. Edges are undirected (Graph500 semantics), so an op
// on (u, v) affects both endpoints' adjacency.
//
// Tombstone semantics (the contract the mutation differential sweep pins):
//  - remove(u, v) kills *every* base copy of the pair — the base CSRs are
//    built without dedupe, so Kronecker multi-edges are removed as a unit —
//    and cancels any insert of the pair earlier in the same op sequence.
//  - insert(u, v) adds one adjacency copy per op (multi-edges allowed,
//    matching the base representation).
//  - ops apply in order: remove-then-insert leaves the pair present exactly
//    once (the tombstone only filters *base* entries, never the surviving
//    inserts); insert-then-remove leaves it absent.
//
// Lookup cost: two bitmap tests for untouched vertices (the overwhelmingly
// common case — kernels pay O(1) per vertex until a mutation lands near
// it), a hash lookup plus binary searches for touched ones.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "numa/partition.hpp"
#include "util/bitmap.hpp"

namespace sembfs {

/// One edge mutation. Self-loops are rejected at build time (they
/// contribute nothing to BFS and the base builders drop them too).
struct EdgeOp {
  enum class Kind : std::uint8_t { Insert, Remove };
  Kind kind = Kind::Insert;
  Vertex u = 0;
  Vertex v = 0;

  static EdgeOp insert(Vertex u, Vertex v) noexcept {
    return {Kind::Insert, u, v};
  }
  static EdgeOp remove(Vertex u, Vertex v) noexcept {
    return {Kind::Remove, u, v};
  }
  friend bool operator==(const EdgeOp&, const EdgeOp&) = default;
};

class DeltaBuffer {
 public:
  /// Returns the number of copies of destination `w` in the *base*
  /// adjacency of `u` — needed so degree_adjustment() can subtract exactly
  /// the entries a tombstone hides. The mutable graph supplies this from
  /// its canonical DRAM backward graph.
  using BaseCountFn = std::function<std::int64_t(Vertex u, Vertex w)>;

  DeltaBuffer() = default;  ///< empty buffer over zero vertices

  /// Folds `ops` (applied in order) over a base graph with `vertex_count`
  /// vertices. Throws via contract violation on out-of-range endpoints or
  /// self-loops.
  static DeltaBuffer build(Vertex vertex_count, std::span<const EdgeOp> ops,
                           const BaseCountFn& base_count);

  [[nodiscard]] Vertex vertex_count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return per_vertex_.empty(); }
  /// Raw op counts (before cancellation), for stats/reporting.
  [[nodiscard]] std::size_t insert_ops() const noexcept { return insert_ops_; }
  [[nodiscard]] std::size_t remove_ops() const noexcept { return remove_ops_; }
  /// True when any pair carries a tombstone — the incremental BFS repair
  /// path only handles insertion-only deltas and recomputes otherwise.
  [[nodiscard]] bool has_deletes() const noexcept {
    return !removed_edges_.empty();
  }

  /// O(1): does any insert or tombstone touch v's adjacency?
  [[nodiscard]] bool touches(Vertex v) const noexcept {
    return !per_vertex_.empty() && touched_.test(static_cast<std::size_t>(v));
  }
  [[nodiscard]] bool has_inserts(Vertex v) const noexcept {
    return !per_vertex_.empty() &&
           has_inserts_.test(static_cast<std::size_t>(v));
  }

  /// Sorted inserted neighbors of v (with multiplicity). Empty span when
  /// nothing was inserted at v.
  [[nodiscard]] std::span<const Vertex> inserted(Vertex v) const noexcept;

  /// True when the pair (u, w) is tombstoned — every base copy is hidden.
  [[nodiscard]] bool edge_removed(Vertex u, Vertex w) const noexcept;

  /// Signed correction to v's base degree under the merged view:
  /// inserted copies minus tombstone-hidden base copies.
  [[nodiscard]] std::int64_t degree_adjustment(Vertex v) const noexcept;

  /// Canonical (u < v) inserted pairs, sorted, with multiplicity — the
  /// seed list for incremental BFS repair and compaction rebuilds.
  [[nodiscard]] const std::vector<Edge>& inserted_edges() const noexcept {
    return inserted_edges_;
  }
  /// Canonical (u < v) tombstoned pairs, sorted, unique.
  [[nodiscard]] const std::vector<Edge>& removed_edges() const noexcept {
    return removed_edges_;
  }

  /// Approximate DRAM footprint (docs/MUTATIONS.md memory math).
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

  /// Merged-view adjacency: calls fn(w) for every base neighbor whose pair
  /// survives the tombstones, then for every inserted neighbor of v that
  /// lies in `destinations` — the destination filter mirrors the forward
  /// partitions, which only store node-local destinations. Pass the full
  /// range for unfiltered (backward / whole-graph) adjacency.
  template <typename Fn>
  void for_each_merged(Vertex v, std::span<const Vertex> base,
                       VertexRange destinations, Fn&& fn) const {
    if (!touches(v)) {
      for (const Vertex w : base) fn(w);
      return;
    }
    const VertexDelta& d = per_vertex_.at(v);
    if (d.removes.empty()) {
      for (const Vertex w : base) fn(w);
    } else {
      for (const Vertex w : base)
        if (!sorted_contains(d.removes, w)) fn(w);
    }
    for (const Vertex w : d.inserts)
      if (destinations.contains(w)) fn(w);
  }

  template <typename Fn>
  void for_each_merged(Vertex v, std::span<const Vertex> base,
                       Fn&& fn) const {
    for_each_merged(v, base, VertexRange{0, n_}, static_cast<Fn&&>(fn));
  }

 private:
  struct VertexDelta {
    std::vector<Vertex> inserts;  // sorted, with multiplicity
    std::vector<Vertex> removes;  // sorted, unique tombstones
    std::int64_t degree_adjust = 0;
  };

  static bool sorted_contains(const std::vector<Vertex>& sorted,
                              Vertex w) noexcept;

  Vertex n_ = 0;
  Bitmap touched_;      // insert or tombstone lands in v's adjacency
  Bitmap has_inserts_;  // at least one inserted neighbor at v
  Bitmap has_removes_;  // at least one tombstone at v
  std::unordered_map<Vertex, VertexDelta> per_vertex_;
  std::vector<Edge> inserted_edges_;
  std::vector<Edge> removed_edges_;
  std::size_t insert_ops_ = 0;
  std::size_t remove_ops_ = 0;
};

}  // namespace sembfs
