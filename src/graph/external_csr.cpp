#include "graph/external_csr.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "nvm/storage_file.hpp"
#include "nvm/striped_file.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {

// Construction-time bulk writes go in large strides; the 4 KiB chunk
// discipline only applies to the BFS read path.
constexpr std::size_t kWriteStride = 1 << 20;  // elements per write batch

template <typename T>
void write_array(ExternalArray<T>& dst, const std::vector<T>& src) {
  std::size_t done = 0;
  while (done < src.size()) {
    const std::size_t len = std::min(kWriteStride, src.size() - done);
    dst.write(done, std::span<const T>{src}.subspan(done, len));
    done += len;
  }
}

}  // namespace

ExternalCsrPartition::ExternalCsrPartition(const Csr& csr,
                                           std::shared_ptr<NvmDevice> device,
                                           const std::string& dir,
                                           std::size_t node_id,
                                           std::uint32_t chunk_bytes,
                                           ChunkChecksums* checksums,
                                           ChunkFormat format)
    : sources_(csr.source_range()),
      destinations_(csr.destination_range()),
      entry_count_(csr.entry_count()),
      chunk_bytes_(chunk_bytes),
      format_(format),
      checksums_(checksums) {
  SEMBFS_EXPECTS(device != nullptr);
  ensure_directory(dir);
  const std::string stem = dir + "/fg_node" + std::to_string(node_id);
  index_file_ = std::make_unique<NvmFile>(device, stem + ".index");
  value_file_ = std::make_unique<NvmFile>(device, stem + ".value");
  offload(csr, chunk_bytes);
}

ExternalCsrPartition::ExternalCsrPartition(
    const Csr& csr, std::vector<std::shared_ptr<NvmDevice>> devices,
    const std::string& dir, std::size_t node_id, std::uint32_t chunk_bytes,
    ChunkChecksums* checksums, ChunkFormat format)
    : sources_(csr.source_range()),
      destinations_(csr.destination_range()),
      entry_count_(csr.entry_count()),
      chunk_bytes_(chunk_bytes),
      format_(format),
      checksums_(checksums) {
  SEMBFS_EXPECTS(!devices.empty());
  ensure_directory(dir);
  const std::string stem = dir + "/fg_node" + std::to_string(node_id);
  index_file_ =
      std::make_unique<StripedNvmFile>(devices, stem + ".index");
  value_file_ =
      std::make_unique<StripedNvmFile>(std::move(devices), stem + ".value");
  offload(csr, chunk_bytes);
}

void ExternalCsrPartition::compress_values(const Csr& csr,
                                           std::uint32_t chunk_bytes) {
  // The CompressedBlockFile adopts the physical value file and becomes the
  // value_file_ every downstream reader (ExternalArray, merged fetches,
  // the IoScheduler jobs) sees: they keep addressing decoded bytes while
  // the device stores varint blobs. Its per-blob CRCs make the value path
  // self-verifying, so nothing is recorded in the shared chunk registry
  // (the ChunkCache skips chunks without a recorded checksum).
  auto compressed = std::make_unique<CompressedBlockFile>(
      std::move(value_file_), std::span<const Vertex>{csr.values()},
      chunk_bytes);
  compressed_ = compressed.get();
  value_file_ = std::move(compressed);
}

void ExternalCsrPartition::offload(const Csr& csr,
                                   std::uint32_t chunk_bytes) {
  if (checksums_ == nullptr) {
    owned_checksums_ = std::make_unique<ChunkChecksums>(chunk_bytes);
    checksums_ = owned_checksums_.get();
  }
  SEMBFS_EXPECTS(checksums_->chunk_bytes() == chunk_bytes);
  index_ = std::make_unique<ExternalArray<std::int64_t>>(
      *index_file_, 0, csr.index().size(), chunk_bytes);
  write_array(*index_, csr.index());
  if (format_ == ChunkFormat::kVarint) {
    compress_values(csr, chunk_bytes);
  }
  values_ = std::make_unique<ExternalArray<Vertex>>(
      *value_file_, 0, csr.values().size(), chunk_bytes);
  if (format_ == ChunkFormat::kRaw) {
    write_array(*values_, csr.values());
  }
  // Checksum the offloaded bytes from the DRAM source (no device reads):
  // these CRCs are the ground truth the read path verifies against. The
  // compressed value store carries its own per-blob CRCs instead.
  checksums_->record_buffer(*index_file_, index_->base_offset(),
                            std::as_bytes(std::span{csr.index()}));
  if (format_ == ChunkFormat::kRaw) {
    checksums_->record_buffer(*value_file_, values_->base_offset(),
                              std::as_bytes(std::span{csr.values()}));
  }
}

std::uint64_t ExternalCsrPartition::nvm_byte_size() const noexcept {
  const std::uint64_t value_bytes = compressed_ != nullptr
                                        ? compressed_->encoded_byte_size()
                                        : values_->byte_size();
  return index_->byte_size() + value_bytes;
}

std::uint64_t ExternalCsrPartition::raw_byte_size() const noexcept {
  return index_->byte_size() + values_->byte_size();
}

void ExternalCsrPartition::attach_cache(ChunkCache* cache) {
  SEMBFS_EXPECTS(cache == nullptr || cache->chunk_bytes() == chunk_bytes_);
  cache_ = cache;
  index_->set_cache(cache);
  values_->set_cache(cache);
}

std::pair<std::int64_t, std::int64_t> ExternalCsrPartition::fetch_bounds(
    Vertex v) {
  SEMBFS_EXPECTS(sources_.contains(v));
  const auto local = static_cast<std::uint64_t>(v - sources_.begin);
  std::int64_t bounds[2];
  index_->read(local, std::span<std::int64_t>{bounds, 2});
  return {bounds[0], bounds[1]};
}

std::int64_t ExternalCsrPartition::degree(Vertex v) {
  const auto [b, e] = fetch_bounds(v);
  return e - b;
}

std::uint64_t ExternalCsrPartition::fetch_range(std::int64_t begin,
                                                std::int64_t end,
                                                std::vector<Vertex>& out) {
  SEMBFS_EXPECTS(begin >= 0 && begin <= end);
  SEMBFS_EXPECTS(end <= entry_count_);
  out.resize(static_cast<std::size_t>(end - begin));
  if (out.empty()) return 0;
  return values_->read(static_cast<std::uint64_t>(begin),
                       std::span<Vertex>{out});
}

std::uint64_t ExternalCsrPartition::fetch_neighbors(Vertex v,
                                                    std::vector<Vertex>& out) {
  SEMBFS_EXPECTS(sources_.contains(v));
  const auto local = static_cast<std::uint64_t>(v - sources_.begin);
  std::int64_t bounds[2];
  // The bounds fetch is usually one device request, but an index pair
  // straddling a chunk boundary (or hitting the cache) changes that —
  // count what the read layer actually issued.
  const std::uint64_t index_requests =
      index_->read(local, std::span<std::int64_t>{bounds, 2});
  return index_requests + fetch_range(bounds[0], bounds[1], out);
}

namespace {

/// A half-open byte range produced by merging nearby requests.
struct MergedRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Greedily merges sorted byte ranges whose gap is <= merge_gap and whose
/// union stays <= max_request. A range already contained in the current
/// merge (duplicate batch vertices, nested adjacencies) always merges,
/// regardless of max_request.
template <typename It, typename BeginFn, typename EndFn>
std::vector<MergedRange> merge_ranges(It first, It last, BeginFn begin_of,
                                      EndFn end_of, std::uint64_t merge_gap,
                                      std::uint64_t max_request) {
  std::vector<MergedRange> merged;
  for (It it = first; it != last; ++it) {
    const std::uint64_t b = begin_of(*it);
    const std::uint64_t e = end_of(*it);
    if (b == e) continue;
    if (!merged.empty() && b <= merged.back().end + merge_gap &&
        (e <= merged.back().end ||
         e - merged.back().begin <= max_request)) {
      merged.back().end = std::max(merged.back().end, e);
    } else {
      merged.push_back({b, e});
    }
  }
  return merged;
}

using SlotBounds = PendingNeighborsBatch::SlotBounds;

/// Byte range of one slot's adjacency within the value array.
std::uint64_t value_begin_bytes(const SlotBounds& s) {
  return static_cast<std::uint64_t>(s.begin) * sizeof(Vertex);
}
std::uint64_t value_end_bytes(const SlotBounds& s) {
  return static_cast<std::uint64_t>(s.end) * sizeof(Vertex);
}

/// Delivers adjacencies out of one fetched value range: consumes bounds
/// (starting at `cursor`) whose byte range lies within
/// [range_begin, range_end) — empty adjacencies are cleared in passing.
void deliver_values(std::span<const SlotBounds> bounds, std::size_t& cursor,
                    std::uint64_t range_begin, std::uint64_t range_end,
                    const std::byte* staging,
                    std::vector<std::vector<Vertex>>& out) {
  while (cursor < bounds.size()) {
    const SlotBounds& sb = bounds[cursor];
    if (sb.begin == sb.end) {  // empty adjacency: no bytes to deliver
      out[sb.slot].clear();
      ++cursor;
      continue;
    }
    const std::uint64_t b = value_begin_bytes(sb);
    const std::uint64_t e = value_end_bytes(sb);
    if (b < range_begin || e > range_end) break;
    auto& adjacency = out[sb.slot];
    adjacency.resize(static_cast<std::size_t>(sb.end - sb.begin));
    std::memcpy(adjacency.data(), staging + (b - range_begin), e - b);
    ++cursor;
  }
}

}  // namespace

std::uint64_t ExternalCsrPartition::read_merged(
    NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> staging,
    std::uint32_t max_request_bytes) {
  if (cache_ != nullptr)
    return cache_->read(file, offset, staging, max_request_bytes);
  // One aggregated request per merged range (libaio-style) — except that a
  // single adjacency run longer than the cap (a hub vertex) must still be
  // issued in max_request_bytes slices: merge_ranges never splits a run
  // (deliver_values needs each slot inside one fetched range), so the cap
  // is enforced here, at issue time.
  const std::size_t cap =
      max_request_bytes > 0 ? max_request_bytes : staging.size();
  std::uint64_t requests = 0;
  std::size_t done = 0;
  while (done < staging.size()) {
    const std::size_t len = std::min(cap, staging.size() - done);
    file.read(offset + done, staging.subspan(done, len));
    done += len;
    ++requests;
  }
  return requests;
}

std::vector<SlotBounds> ExternalCsrPartition::batch_bounds(
    std::span<const Vertex> batch, std::uint32_t merge_gap_bytes,
    std::uint32_t max_request_bytes, std::uint64_t& requests) {
  // Sort batch slots by vertex so index reads for nearby vertices merge.
  std::vector<std::size_t> sorted_slots(batch.size());
  for (std::size_t i = 0; i < sorted_slots.size(); ++i) sorted_slots[i] = i;
  std::sort(sorted_slots.begin(), sorted_slots.end(),
            [&](std::size_t a, std::size_t b) { return batch[a] < batch[b]; });

  const auto index_byte_range = [&](std::size_t slot) {
    SEMBFS_EXPECTS(sources_.contains(batch[slot]));
    const auto local =
        static_cast<std::uint64_t>(batch[slot] - sources_.begin);
    return std::pair<std::uint64_t, std::uint64_t>{
        local * sizeof(std::int64_t), (local + 2) * sizeof(std::int64_t)};
  };
  const auto merged = merge_ranges(
      sorted_slots.begin(), sorted_slots.end(),
      [&](std::size_t s) { return index_byte_range(s).first; },
      [&](std::size_t s) { return index_byte_range(s).second; },
      merge_gap_bytes, max_request_bytes);

  std::vector<SlotBounds> bounds(batch.size());
  std::vector<std::byte> staging;
  std::size_t cursor = 0;
  for (const MergedRange& range : merged) {
    staging.resize(range.end - range.begin);
    requests += read_merged(*index_file_, index_->base_offset() + range.begin,
                            std::span<std::byte>{staging}, max_request_bytes);
    // Deliver bounds to every slot whose index pair lies in this range.
    while (cursor < sorted_slots.size()) {
      const std::size_t slot = sorted_slots[cursor];
      const auto [b, e] = index_byte_range(slot);
      if (b < range.begin || e > range.end) break;
      std::int64_t pair[2];
      std::memcpy(pair, staging.data() + (b - range.begin), sizeof pair);
      bounds[cursor] = {slot, pair[0], pair[1]};
      ++cursor;
    }
  }
  SEMBFS_ASSERT(cursor == sorted_slots.size());

  // Value phase consumes bounds in value-file offset order.
  std::sort(bounds.begin(), bounds.end(),
            [](const SlotBounds& a, const SlotBounds& b) {
              return a.begin < b.begin;
            });
  return bounds;
}

std::uint64_t ExternalCsrPartition::fetch_neighbors_batch(
    std::span<const Vertex> batch, std::vector<std::vector<Vertex>>& out,
    std::uint32_t merge_gap_bytes, std::uint32_t max_request_bytes) {
  out.resize(batch.size());
  if (batch.empty()) return 0;
  std::uint64_t requests = 0;

  const std::vector<SlotBounds> bounds =
      batch_bounds(batch, merge_gap_bytes, max_request_bytes, requests);
  const auto merged =
      merge_ranges(bounds.begin(), bounds.end(), value_begin_bytes,
                   value_end_bytes, merge_gap_bytes, max_request_bytes);

  std::vector<std::byte> staging;
  std::size_t cursor = 0;
  for (const MergedRange& range : merged) {
    staging.resize(range.end - range.begin);
    requests += read_merged(*value_file_,
                            values_->base_offset() + range.begin,
                            std::span<std::byte>{staging}, max_request_bytes);
    deliver_values(bounds, cursor, range.begin, range.end, staging.data(),
                   out);
  }
  // Trailing empty-adjacency slots (no merged range consumed them).
  for (; cursor < bounds.size(); ++cursor) {
    SEMBFS_ASSERT(bounds[cursor].begin == bounds[cursor].end);
    out[bounds[cursor].slot].clear();
  }
  return requests;
}

PendingNeighborsBatch ExternalCsrPartition::start_fetch_neighbors_batch(
    std::span<const Vertex> batch, IoScheduler& scheduler,
    std::uint32_t merge_gap_bytes, std::uint32_t max_request_bytes) {
  PendingNeighborsBatch pending;
  pending.valid_ = true;
  pending.batch_size_ = batch.size();
  if (batch.empty()) return pending;

  // Index phase inline: it is tiny (16 B per vertex, heavily merged and
  // cache-friendly) and the value ranges depend on it.
  pending.bounds_ = batch_bounds(batch, merge_gap_bytes, max_request_bytes,
                                 pending.index_requests_);
  const auto merged =
      merge_ranges(pending.bounds_.begin(), pending.bounds_.end(),
                   value_begin_bytes, value_end_bytes, merge_gap_bytes,
                   max_request_bytes);

  // Value phase in flight: one scheduler job per merged range.
  pending.reads_.reserve(merged.size());
  for (const MergedRange& range : merged) {
    PendingNeighborsBatch::ValueRead read;
    read.begin = range.begin;
    read.end = range.end;
    read.staging.resize(range.end - range.begin);
    read.done = scheduler.submit_read(
        *value_file_, values_->base_offset() + range.begin,
        std::span<std::byte>{read.staging}, cache_, max_request_bytes);
    pending.reads_.push_back(std::move(read));
  }
  return pending;
}

std::uint64_t PendingNeighborsBatch::wait(
    std::vector<std::vector<Vertex>>& out) {
  SEMBFS_EXPECTS(valid_);
  out.resize(batch_size_);
  // Collect every completion before touching any staging buffer: if one
  // range failed, the others must still land before their staging can be
  // released, and only then is the failure rethrown.
  std::vector<IoResult> results;
  results.reserve(reads_.size());
  for (ValueRead& read : reads_) results.push_back(read.done.get());
  valid_ = false;
  for (const IoResult& result : results) {
    if (!result.ok) {
      reads_.clear();
      bounds_.clear();
      result.value_or_throw();
    }
  }
  std::uint64_t requests = index_requests_;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    requests += results[i].requests;
    deliver_values(bounds_, cursor, reads_[i].begin, reads_[i].end,
                   reads_[i].staging.data(), out);
  }
  for (; cursor < bounds_.size(); ++cursor) {
    SEMBFS_ASSERT(bounds_[cursor].begin == bounds_[cursor].end);
    out[bounds_[cursor].slot].clear();
  }
  reads_.clear();
  bounds_.clear();
  return requests;
}

void PendingNeighborsBatch::abandon() noexcept {
  for (ValueRead& read : reads_) {
    if (read.done.valid()) read.done.wait();
  }
  reads_.clear();
  bounds_.clear();
  valid_ = false;
}

PendingNeighborsBatch& PendingNeighborsBatch::operator=(
    PendingNeighborsBatch&& other) noexcept {
  if (this != &other) {
    abandon();  // our own reads still reference our staging buffers
    valid_ = std::exchange(other.valid_, false);
    batch_size_ = other.batch_size_;
    index_requests_ = other.index_requests_;
    bounds_ = std::move(other.bounds_);
    reads_ = std::move(other.reads_);
  }
  return *this;
}

PendingNeighborsBatch::~PendingNeighborsBatch() { abandon(); }

ExternalForwardGraph::ExternalForwardGraph(const ForwardGraph& forward,
                                           std::shared_ptr<NvmDevice> device,
                                           const std::string& dir,
                                           std::uint32_t chunk_bytes,
                                           ChunkFormat format)
    : vertex_partition_(forward.vertex_partition()),
      device_(device),
      chunk_bytes_(chunk_bytes),
      format_(format),
      checksums_(std::make_unique<ChunkChecksums>(chunk_bytes)) {
  SEMBFS_EXPECTS(device_ != nullptr);
  partitions_.reserve(forward.node_count());
  for (std::size_t k = 0; k < forward.node_count(); ++k) {
    partitions_.push_back(std::make_unique<ExternalCsrPartition>(
        forward.partition(k), device_, dir, k, chunk_bytes,
        checksums_.get(), format));
  }
}

ExternalForwardGraph::ExternalForwardGraph(
    const ForwardGraph& forward,
    std::vector<std::shared_ptr<NvmDevice>> devices, const std::string& dir,
    std::uint32_t chunk_bytes, ChunkFormat format)
    : vertex_partition_(forward.vertex_partition()),
      device_(devices.empty() ? nullptr : devices.front()),
      chunk_bytes_(chunk_bytes),
      format_(format),
      checksums_(std::make_unique<ChunkChecksums>(chunk_bytes)) {
  SEMBFS_EXPECTS(!devices.empty());
  partitions_.reserve(forward.node_count());
  for (std::size_t k = 0; k < forward.node_count(); ++k) {
    partitions_.push_back(std::make_unique<ExternalCsrPartition>(
        forward.partition(k), devices, dir, k, chunk_bytes,
        checksums_.get(), format));
  }
}

std::uint64_t ExternalForwardGraph::nvm_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->nvm_byte_size();
  return total;
}

std::uint64_t ExternalForwardGraph::raw_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->raw_byte_size();
  return total;
}

std::int64_t ExternalForwardGraph::entry_count() const noexcept {
  std::int64_t total = 0;
  for (const auto& p : partitions_) total += p->entry_count();
  return total;
}

ChunkCache& ExternalForwardGraph::enable_chunk_cache(
    std::size_t capacity_bytes) {
  SEMBFS_EXPECTS(capacity_bytes > 0);
  if (cache_ == nullptr || cache_->capacity_bytes() != capacity_bytes) {
    for (auto& p : partitions_) p->attach_cache(nullptr);
    cache_ = std::make_unique<ChunkCache>(capacity_bytes, chunk_bytes_);
    if (verify_checksums_)
      cache_->set_checksums(checksums_.get(), checksum_max_refetches_);
    for (auto& p : partitions_) p->attach_cache(cache_.get());
  }
  return *cache_;
}

void ExternalForwardGraph::disable_chunk_cache() {
  for (auto& p : partitions_) p->attach_cache(nullptr);
  cache_.reset();
}

void ExternalForwardGraph::enable_checksum_verification(int max_refetches) {
  SEMBFS_EXPECTS(cache_ != nullptr);
  verify_checksums_ = true;
  checksum_max_refetches_ = max_refetches;
  cache_->set_checksums(checksums_.get(), max_refetches);
  // Compressed value stores verify on their own CRCs; align their heal
  // allowance with the cache's.
  for (auto& p : partitions_) p->set_compressed_max_refetches(max_refetches);
}

void ExternalForwardGraph::disable_checksum_verification() {
  verify_checksums_ = false;
  if (cache_ != nullptr) cache_->set_checksums(nullptr);
}

IoScheduler& ExternalForwardGraph::enable_io_scheduler(
    std::size_t queue_depth, IoSchedulerConfig config) {
  SEMBFS_EXPECTS(queue_depth >= 1);
  if (scheduler_ == nullptr || scheduler_->queue_depth() != queue_depth ||
      !(scheduler_->config() == config))
    scheduler_ = std::make_unique<IoScheduler>(queue_depth, config);
  return *scheduler_;
}

void ExternalForwardGraph::disable_io_scheduler() { scheduler_.reset(); }

}  // namespace sembfs
