#include "graph/kronecker.hpp"

#include <bit>

#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"
#include "util/prng.hpp"

namespace sembfs {

namespace {

// Deterministic bijective vertex-label scramble, in the style of the
// Graph500 reference generator: multiplication by seed-derived odd
// constants modulo 2^scale interleaved with bit reversals. This replaces an
// explicit O(N) permutation table so that edge generation can stream.
struct Scrambler {
  std::uint64_t mul0;
  std::uint64_t mul1;
  std::uint64_t add0;
  int shift;  // 64 - scale

  static Scrambler from_seed(std::uint64_t seed, int scale) {
    SplitMix64 sm{seed ^ 0x9e3779b97f4a7c15ULL};
    Scrambler s;
    s.mul0 = sm.next() | 1;  // odd -> bijective mod 2^64
    s.mul1 = sm.next() | 1;
    s.add0 = sm.next();
    s.shift = 64 - scale;
    return s;
  }

  [[nodiscard]] Vertex apply(Vertex v) const noexcept {
    auto x = static_cast<std::uint64_t>(v);
    x += add0;
    x *= mul0;
    x = reverse_bits(x) >> shift;
    x *= mul1;
    x = reverse_bits(x) >> shift;
    return static_cast<Vertex>(x);
  }

  static std::uint64_t reverse_bits(std::uint64_t x) noexcept {
    x = ((x & 0x5555555555555555ULL) << 1) | ((x >> 1) & 0x5555555555555555ULL);
    x = ((x & 0x3333333333333333ULL) << 2) | ((x >> 2) & 0x3333333333333333ULL);
    x = ((x & 0x0f0f0f0f0f0f0f0fULL) << 4) | ((x >> 4) & 0x0f0f0f0f0f0f0f0fULL);
    // byte reversal (std::byteswap is C++23; keep this C++20-clean)
    x = ((x & 0x00ff00ff00ff00ffULL) << 8) | ((x >> 8) & 0x00ff00ff00ff00ffULL);
    x = ((x & 0x0000ffff0000ffffULL) << 16) | ((x >> 16) & 0x0000ffff0000ffffULL);
    x = (x << 32) | (x >> 32);
    return x;
  }
};

Edge generate_one(const KroneckerParams& p, std::uint64_t edge_index,
                  const Scrambler& scrambler) {
  Xoroshiro128 rng{derive_seed(p.seed, edge_index)};
  const double ab = p.a + p.b;
  const double c_norm = p.c / (1.0 - ab);
  const double a_norm = p.a / ab;

  Vertex u = 0;
  Vertex v = 0;
  for (int ib = 0; ib < p.scale; ++ib) {
    const bool ii_bit = rng.next_double() > ab;
    const double threshold = ii_bit ? c_norm : a_norm;
    const bool jj_bit = rng.next_double() > threshold;
    u |= static_cast<Vertex>(ii_bit) << ib;
    v |= static_cast<Vertex>(jj_bit) << ib;
  }
  if (p.permute_vertices) {
    u = scrambler.apply(u);
    v = scrambler.apply(v);
  }
  if (p.scramble_endpoints && (rng.next() & 1) != 0) std::swap(u, v);
  return Edge{u, v};
}

}  // namespace

void generate_kronecker_range(const KroneckerParams& params,
                              std::uint64_t first, std::uint64_t last,
                              std::span<Edge> out) {
  SEMBFS_EXPECTS(params.scale >= 1 && params.scale <= 48);
  SEMBFS_EXPECTS(params.a > 0 && params.b >= 0 && params.c >= 0 &&
                 params.a + params.b + params.c < 1.0);
  SEMBFS_EXPECTS(last >= first);
  SEMBFS_EXPECTS(out.size() >= last - first);
  const Scrambler scrambler =
      Scrambler::from_seed(params.seed, params.scale);
  for (std::uint64_t e = first; e < last; ++e)
    out[e - first] = generate_one(params, e, scrambler);
}

EdgeList generate_kronecker(const KroneckerParams& params, ThreadPool& pool) {
  SEMBFS_EXPECTS(params.scale >= 1 && params.scale <= 40);
  const std::uint64_t m = params.edge_count();
  std::vector<Edge> edges(m);
  const Scrambler scrambler =
      Scrambler::from_seed(params.seed, params.scale);
  parallel_for_blocked(
      pool, 0, static_cast<std::int64_t>(m),
      [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t e = lo; e < hi; ++e)
          edges[static_cast<std::size_t>(e)] =
              generate_one(params, static_cast<std::uint64_t>(e), scrambler);
      });
  return EdgeList{params.vertex_count(), std::move(edges)};
}

std::vector<Vertex> kronecker_permutation(const KroneckerParams& params) {
  std::vector<Vertex> perm(static_cast<std::size_t>(params.vertex_count()));
  if (!params.permute_vertices) {
    for (std::size_t i = 0; i < perm.size(); ++i)
      perm[i] = static_cast<Vertex>(i);
    return perm;
  }
  const Scrambler scrambler =
      Scrambler::from_seed(params.seed, params.scale);
  for (std::size_t i = 0; i < perm.size(); ++i)
    perm[i] = scrambler.apply(static_cast<Vertex>(i));
  return perm;
}

}  // namespace sembfs
