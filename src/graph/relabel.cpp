#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace sembfs {

std::vector<Vertex> Relabeling::restore_vertex_array(
    std::span<const Vertex> by_new_id, bool values_are_vertices) const {
  SEMBFS_EXPECTS(by_new_id.size() == old_id.size());
  std::vector<Vertex> by_old(by_new_id.size());
  for (std::size_t new_v = 0; new_v < by_new_id.size(); ++new_v) {
    Vertex value = by_new_id[new_v];
    if (values_are_vertices && value != kNoVertex)
      value = to_old(value);
    by_old[static_cast<std::size_t>(old_id[new_v])] = value;
  }
  return by_old;
}

std::vector<std::int32_t> Relabeling::restore_level_array(
    std::span<const std::int32_t> by_new_id) const {
  SEMBFS_EXPECTS(by_new_id.size() == old_id.size());
  std::vector<std::int32_t> by_old(by_new_id.size());
  for (std::size_t new_v = 0; new_v < by_new_id.size(); ++new_v)
    by_old[static_cast<std::size_t>(old_id[new_v])] = by_new_id[new_v];
  return by_old;
}

Relabeling degree_order_relabeling(const EdgeList& edges, ThreadPool& pool) {
  (void)pool;  // degree counting is O(m) serial; fine at build time
  const Vertex n = edges.vertex_count();
  SEMBFS_EXPECTS(n >= 0);

  std::vector<std::int64_t> degree(static_cast<std::size_t>(n), 0);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }

  Relabeling map;
  map.old_id.resize(static_cast<std::size_t>(n));
  std::iota(map.old_id.begin(), map.old_id.end(), 0);
  std::sort(map.old_id.begin(), map.old_id.end(),
            [&](Vertex a, Vertex b) {
              const std::int64_t da = degree[static_cast<std::size_t>(a)];
              const std::int64_t db = degree[static_cast<std::size_t>(b)];
              return da != db ? da > db : a < b;
            });
  map.new_id.resize(static_cast<std::size_t>(n));
  for (Vertex new_v = 0; new_v < n; ++new_v)
    map.new_id[static_cast<std::size_t>(map.old_id[new_v])] = new_v;
  return map;
}

EdgeList apply_relabeling(const EdgeList& edges, const Relabeling& map) {
  SEMBFS_EXPECTS(map.new_id.size() ==
                 static_cast<std::size_t>(edges.vertex_count()));
  EdgeList renamed{edges.vertex_count()};
  renamed.reserve(edges.edge_count());
  for (const Edge& e : edges)
    renamed.add(map.to_new(e.u), map.to_new(e.v));
  return renamed;
}

}  // namespace sembfs
