#include "engine/components_program.hpp"

#include <algorithm>
#include <string>

#include "engine/scatter.hpp"
#include "graph/backward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"

namespace sembfs::engine {

void ComponentsProgram::init(EngineContext& ctx) {
  const Vertex n = ctx.vertex_count();
  if (!initialized_ ||
      static_cast<Vertex>(labels_.size()) != n) {
    labels_ = std::vector<std::atomic<Vertex>>(static_cast<std::size_t>(n));
    active_.emplace(n);
  }
  parallel_for(*ctx.pool, 0, n, [&](std::int64_t v) {
    labels_[static_cast<std::size_t>(v)].store(static_cast<Vertex>(v),
                                               std::memory_order_relaxed);
  });
  active_->seed_all();
  initialized_ = true;
}

bool ComponentsProgram::converged(const EngineContext& ctx) const {
  (void)ctx;
  return initialized_ && active_->size() == 0;
}

std::vector<Vertex> ComponentsProgram::labels() const {
  std::vector<Vertex> out(labels_.size());
  for (std::size_t v = 0; v < labels_.size(); ++v)
    out[v] = labels_[v].load(std::memory_order_relaxed);
  return out;
}

StepResult ComponentsProgram::step(EngineContext& ctx, Direction direction) {
  if (direction == Direction::BottomUp) return pull_step(ctx);

  ThreadPool& pool = *ctx.pool;
  const BfsConfig& config = *ctx.config;
  active_->begin_bitmap_next(pool.size());
  std::vector<std::int64_t> improved(pool.size(), 0);

  const auto edge_fn = [&](std::size_t w, std::size_t /*node*/, Vertex u,
                           std::span<const Vertex> adj) {
    const Vertex lu =
        labels_[static_cast<std::size_t>(u)].load(std::memory_order_relaxed);
    Bitmap& next = active_->worker_next(w);
    for (const Vertex dst : adj) {
      if (labels_[static_cast<std::size_t>(dst)].load(
              std::memory_order_relaxed) <= lu)
        continue;
      if (atomic_fetch_min(labels_[static_cast<std::size_t>(dst)], lu)) {
        next.set(static_cast<std::size_t>(dst));
        ++improved[w];
      }
    }
  };

  const std::span<const Vertex> queue{active_->queue()};
  const DeltaBuffer* const delta = ctx.storage.delta;
  ScatterStats scatter;
  if (ctx.storage.forward_dram != nullptr) {
    scatter = scatter_active(*ctx.storage.forward_dram, queue, *ctx.topology,
                             pool, config.batch_size, edge_fn, delta);
  } else if (ctx.storage.forward_tiered != nullptr) {
    scatter = scatter_active(*ctx.storage.forward_tiered, queue,
                             *ctx.topology, pool, config.batch_size, edge_fn,
                             delta);
  } else {
    ExternalForwardGraph& external = *ctx.storage.forward_external;
    ScatterIoOptions io;
    io.batch_size = config.batch_size;
    io.aggregate_io = config.aggregate_io;
    io.merge_gap_bytes = config.aggregate_merge_gap;
    io.max_request_bytes = config.aggregate_max_request;
    io.scheduler = external.io_scheduler();
    io.io_error_budget = config.io_error_budget;
    io.delta = delta;
    scatter = scatter_active(external, queue, *ctx.topology, pool, io,
                             edge_fn);
  }

  StepResult result;
  result.scanned_edges = scatter.scanned_edges;
  result.nvm_requests = scatter.nvm_requests;
  result.io_failures = scatter.io_failures;
  result.aborted = scatter.aborted;
  for (const std::int64_t c : improved) result.claimed += c;
  return result;
}

StepResult ComponentsProgram::pull_step(EngineContext& ctx) {
  if (ctx.storage.backward_dram == nullptr &&
      ctx.storage.backward_hybrid == nullptr) {
    throw NvmIoError(
        "components pull superstep " + std::to_string(ctx.superstep) +
        " requires a backward graph and none is attached");
  }
  ThreadPool& pool = *ctx.pool;
  const Vertex n = ctx.vertex_count();
  const DeltaBuffer* const delta = ctx.storage.delta;
  active_->begin_bitmap_next(pool.size());

  std::vector<std::int64_t> improved(pool.size(), 0);
  std::vector<std::int64_t> scanned(pool.size(), 0);

  // Merged-view in-neighbors of v beyond the base adjacency: the delta's
  // inserted copies (undirected — both endpoints carry them).
  const auto min_over_inserts = [&](Vertex v, Vertex best,
                                    std::int64_t& scans) -> Vertex {
    if (delta == nullptr || !delta->has_inserts(v)) return best;
    for (const Vertex u : delta->inserted(v)) {
      ++scans;
      best = std::min(best, labels_[static_cast<std::size_t>(u)].load(
                                std::memory_order_relaxed));
    }
    return best;
  };

  // Full sweep: every vertex recomputes its label from its complete
  // in-adjacency (single writer per vertex — plain stores suffice, and
  // the sweep's correctness is independent of the current active set).
  if (ctx.storage.backward_dram != nullptr) {
    const BackwardGraph& backward = *ctx.storage.backward_dram;
    parallel_for_blocked(pool, 0, n,
                         [&](std::int64_t lo, std::int64_t hi,
                             std::size_t w) {
      Bitmap& next = active_->worker_next(w);
      for (std::int64_t v = lo; v < hi; ++v) {
        const std::span<const Vertex> adj =
            backward.neighbors(static_cast<Vertex>(v));
        scanned[w] += static_cast<std::int64_t>(adj.size());
        Vertex best = labels_[static_cast<std::size_t>(v)].load(
            std::memory_order_relaxed);
        for (const Vertex u : adj) {
          if (delta != nullptr && delta->edge_removed(v, u)) continue;
          best = std::min(best, labels_[static_cast<std::size_t>(u)].load(
                                    std::memory_order_relaxed));
        }
        best = min_over_inserts(static_cast<Vertex>(v), best, scanned[w]);
        if (best < labels_[static_cast<std::size_t>(v)].load(
                       std::memory_order_relaxed)) {
          labels_[static_cast<std::size_t>(v)].store(
              best, std::memory_order_relaxed);
          next.set(static_cast<std::size_t>(v));
          ++improved[w];
        }
      }
    });
  } else {
    HybridBackwardGraph& backward = *ctx.storage.backward_hybrid;
    const VertexPartition& partition = backward.vertex_partition();
    parallel_for_blocked(pool, 0, n,
                         [&](std::int64_t lo, std::int64_t hi,
                             std::size_t w) {
      Bitmap& next = active_->worker_next(w);
      std::vector<Vertex> scratch;
      for (std::int64_t v = lo; v < hi; ++v) {
        Vertex best = labels_[static_cast<std::size_t>(v)].load(
            std::memory_order_relaxed);
        // Device faults here propagate as NvmIoError, exactly like the
        // BFS degrade path's backward reads.
        backward.partition(partition.node_of(v))
            .visit_neighbors(static_cast<Vertex>(v), scratch,
                             [&](Vertex u) {
                               ++scanned[w];
                               if (delta != nullptr &&
                                   delta->edge_removed(v, u))
                                 return true;
                               best = std::min(
                                   best,
                                   labels_[static_cast<std::size_t>(u)].load(
                                       std::memory_order_relaxed));
                               return true;
                             });
        best = min_over_inserts(static_cast<Vertex>(v), best, scanned[w]);
        if (best < labels_[static_cast<std::size_t>(v)].load(
                       std::memory_order_relaxed)) {
          labels_[static_cast<std::size_t>(v)].store(
              best, std::memory_order_relaxed);
          next.set(static_cast<std::size_t>(v));
          ++improved[w];
        }
      }
    });
  }

  StepResult result;
  for (const std::int64_t c : improved) result.claimed += c;
  for (const std::int64_t s : scanned) result.scanned_edges += s;
  return result;
}

StepResult ComponentsProgram::degrade(EngineContext& ctx) {
  // Monotone min labels: the failed push superstep's partial improvements
  // are kept, and one full backward sweep completes the superstep.
  return pull_step(ctx);
}

}  // namespace sembfs::engine
