// Triangle counting as a vertex program.
//
// Node-iterator counting over sorted post-relabel adjacency: for every
// ordered pair u < v with {u,v} an edge, the count of common neighbors
// w > v is added, so each triangle u < v < w is counted exactly once.
// Adjacencies are gathered as the union of the forward partitions (the
// partitions are destination-filtered, so the union is the full list),
// sorted and dedup'd in-program — self-loops and duplicate edges cannot
// produce phantom triangles.
//
// The program is push-only and has no frontier: a cursor sweeps the
// vertex range in fixed slices, one slice per superstep, so the serving
// engine can interleave a long count with BFS traffic at superstep
// granularity. On semi-external storage a failed adjacency fetch is
// healed by re-reading the vertex from the DRAM backward graph (exact
// under fault injection); only a vertex with no intact source at all
// counts as an I/O failure, which then fails the run — a partial triangle
// count is not a usable result, and there is no cheaper way to redo it.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/vertex_program.hpp"

namespace sembfs::engine {

struct TriangleOptions {
  /// Vertices processed per superstep (the serve-interleaving grain).
  std::int64_t vertices_per_step = 4096;
};

class TriangleProgram final : public VertexProgram {
 public:
  explicit TriangleProgram(TriangleOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "triangles";
  }
  [[nodiscard]] const char* metric_prefix() const noexcept override {
    return "engine.tc";
  }

  void init(EngineContext& ctx) override;
  [[nodiscard]] ActiveSet* active_set() noexcept override { return nullptr; }
  [[nodiscard]] bool supports_pull() const noexcept override { return false; }
  [[nodiscard]] Direction choose_direction(
      const PolicyInput& in, const SwitchPolicy& policy) override {
    (void)in;
    (void)policy;
    return Direction::TopDown;
  }
  StepResult step(EngineContext& ctx, Direction direction) override;
  [[nodiscard]] bool converged(const EngineContext& ctx) const override;

  /// Total triangles counted so far (final once converged).
  [[nodiscard]] std::int64_t triangles() const noexcept { return triangles_; }
  /// Vertices processed so far.
  [[nodiscard]] std::int64_t cursor() const noexcept { return cursor_; }
  [[nodiscard]] const TriangleOptions& options() const noexcept {
    return options_;
  }

 private:
  TriangleOptions options_;
  std::int64_t cursor_ = 0;
  std::int64_t triangles_ = 0;
  Vertex n_ = 0;
  bool initialized_ = false;
};

}  // namespace sembfs::engine
