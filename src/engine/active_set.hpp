// ActiveSet: the dual queue/bitmap vertex set that drives one superstep of
// any vertex-centric program — extracted from the PR-4 BFS frontier so the
// same machinery serves BFS, label propagation, and every future program.
//
// ## Dual representation
//
// A steady-state pull (bottom-up) superstep activates a large fraction of
// all vertices, so funnelling them through per-worker vectors, a serial
// concat, and a bit-by-bit bitmap rebuild is pure overhead: the natural
// output of a dense sweep is a bitmap. The set therefore tracks which
// representation currently holds the membership (ActiveSetRep):
//
//  - Queue:  `queue()` vector and `bitmap()` both valid — what scatter
//    (push) steps need for dequeueing. Produced by set_next() /
//    set_next_merged() followed by advance().
//  - Bitmap: only `bitmap()` is valid; the queue is materialized lazily by
//    ensure_queue() when (and only when) a direction switch back to push
//    needs it. Produced by per-worker next bitmaps (begin_bitmap_next() +
//    worker_next()) merged word-wise by advance().
//
// Writers fill a *next* set during a superstep (either per-worker queues
// merged by set_next_merged, or per-worker bitmaps); advance() promotes
// next -> current. The membership bitmap of the CURRENT set is always
// valid in both representations, so gather (pull) steps can test
// `contains()` cheaply regardless of how the previous superstep wrote it.
//
// BfsStatus composes an ActiveSet as its frontier and forwards its legacy
// frontier API to it, so the PR-4 kernels are unchanged clients.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/bitmap.hpp"

namespace sembfs {
class ThreadPool;
}  // namespace sembfs

namespace sembfs::engine {

/// Which structure currently holds the active set (see file comment).
enum class ActiveSetRep {
  Queue,   ///< vertex vector + membership bitmap
  Bitmap,  ///< membership bitmap only; queue materialized on demand
};

class ActiveSet {
 public:
  explicit ActiveSet(Vertex vertex_count);

  [[nodiscard]] Vertex vertex_count() const noexcept { return n_; }

  /// Empties the set (current and next) and restores the Queue rep. Worker
  /// next bitmaps are re-zeroed defensively (a run abandoned mid-superstep
  /// can leave bits set).
  void clear();
  /// clear() + activate exactly `v`.
  void seed(Vertex v);
  /// clear() + activate every vertex in [0, vertex_count()) — the common
  /// seeding of fixpoint programs (label propagation starts everywhere).
  /// The set comes up in Queue rep with a sorted queue.
  void seed_all();

  [[nodiscard]] ActiveSetRep rep() const noexcept { return rep_; }
  /// Membership test against the CURRENT set; valid in both reps.
  [[nodiscard]] bool contains(Vertex v) const noexcept {
    return bits_.test(static_cast<std::size_t>(v));
  }
  /// The active vertex queue. Only valid in Queue rep — call
  /// ensure_queue() first after a bitmap-producing superstep.
  [[nodiscard]] const std::vector<Vertex>& queue() const noexcept {
    SEMBFS_ASSERT(rep_ == ActiveSetRep::Queue);
    return queue_;
  }
  /// Membership bitmap of the current set. Valid in BOTH reps.
  [[nodiscard]] const Bitmap& bitmap() const noexcept { return bits_; }
  [[nodiscard]] std::int64_t size() const noexcept {
    return rep_ == ActiveSetRep::Queue
               ? static_cast<std::int64_t>(queue_.size())
               : count_;
  }

  /// Materializes the queue from the bitmap (no-op in Queue rep). The
  /// queue comes out sorted by vertex id. Returns true iff a conversion
  /// actually happened.
  bool ensure_queue(ThreadPool& pool);
  /// Serial variant for pool-free callers (tests, small graphs).
  bool ensure_queue();

  /// Replaces the pending next set (driver-side, serial).
  void set_next(std::vector<Vertex> next) {
    next_ = std::move(next);
    pending_ = ActiveSetRep::Queue;
  }
  [[nodiscard]] std::vector<Vertex>& next() noexcept { return next_; }

  /// Parallel concat of per-worker next buffers: serial prefix-sum of the
  /// buffer sizes, then the pool scatters each buffer at its offset.
  void set_next_merged(std::vector<std::vector<Vertex>>& buffers,
                       ThreadPool& pool);

  /// Declares that this superstep's next set will be produced as
  /// per-worker bitmaps. Allocates/readies `workers` bitmaps of
  /// vertex_count() bits; bits are cleared lazily by advance()'s merge, so
  /// this is O(1) after the first superstep.
  void begin_bitmap_next(std::size_t workers);
  /// Worker w's private next bitmap (plain set(), no atomics — single
  /// writer by construction).
  [[nodiscard]] Bitmap& worker_next(std::size_t w) noexcept {
    return worker_next_bits_[w];
  }

  /// Promotes next -> current. Queue-pending supersteps swap the queue and
  /// rebuild the membership bitmap; bitmap-pending supersteps OR-merge the
  /// per-worker bitmaps word-wise (clearing them for reuse) and leave the
  /// queue unmaterialized. The pool overload parallelizes both paths.
  void advance();
  void advance(ThreadPool& pool);

  /// DRAM footprint of the set's structures, in bytes.
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

 private:
  void advance_queue_serial();
  void advance_bitmap_serial();

  Vertex n_ = 0;
  Bitmap bits_;
  std::vector<Vertex> queue_;
  std::vector<Vertex> next_;
  /// Per-worker next bitmaps (bitmap mode only; empty until the first
  /// begin_bitmap_next). Invariant: all-zero outside a superstep.
  std::vector<Bitmap> worker_next_bits_;
  ActiveSetRep rep_ = ActiveSetRep::Queue;
  ActiveSetRep pending_ = ActiveSetRep::Queue;
  /// Set-bit count of bits_ (maintained in Bitmap rep, where the queue's
  /// size() is unavailable).
  std::int64_t count_ = 0;
};

}  // namespace sembfs::engine
