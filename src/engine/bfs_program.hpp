// BFS re-expressed as a vertex program.
//
// The program delegates every superstep to the PR-4 kernels
// (top_down_step / top_down_step_tiered / top_down_step_external,
// bottom_up_step / bottom_up_step_hybrid) over a regular BfsStatus, so an
// engine-driven BFS is reference-exact against BfsSession by construction
// — same claims, same frontier representation, same degrade path. What
// moves into the engine is the loop around the kernels (ProgramSession).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bfs/bfs_status.hpp"
#include "engine/vertex_program.hpp"

namespace sembfs::engine {

class BfsProgram final : public VertexProgram {
 public:
  explicit BfsProgram(Vertex root) : root_(root) {}

  [[nodiscard]] const char* name() const noexcept override { return "bfs"; }
  /// "bfs" on purpose: the engine then emits the exact bfs.* counter names
  /// the obs CI job asserts, whichever driver ran the search.
  [[nodiscard]] const char* metric_prefix() const noexcept override {
    return "bfs";
  }
  [[nodiscard]] Vertex root() const noexcept override { return root_; }

  void init(EngineContext& ctx) override;
  [[nodiscard]] ActiveSet* active_set() noexcept override {
    return &status_->active_set();
  }
  StepResult step(EngineContext& ctx, Direction direction) override;
  [[nodiscard]] bool converged(const EngineContext& ctx) const override;
  [[nodiscard]] bool supports_degrade() const noexcept override {
    return true;
  }
  StepResult degrade(EngineContext& ctx) override;

  /// The traversal state (valid after the session constructor ran init()).
  [[nodiscard]] const BfsStatus& status() const noexcept { return *status_; }
  [[nodiscard]] BfsStatus& status() noexcept { return *status_; }

 private:
  Vertex root_;
  std::optional<BfsStatus> status_;
};

}  // namespace sembfs::engine
