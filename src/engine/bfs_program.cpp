#include "engine/bfs_program.hpp"

#include <string>
#include <utility>

#include "util/contracts.hpp"

namespace sembfs::engine {

void BfsProgram::init(EngineContext& ctx) {
  const Vertex n = ctx.vertex_count();
  SEMBFS_EXPECTS(root_ >= 0 && root_ < n);
  if (!status_.has_value() || status_->vertex_count() != n)
    status_.emplace(n);
  status_->reset(root_);
}

StepResult BfsProgram::step(EngineContext& ctx, Direction direction) {
  const BfsConfig& config = *ctx.config;
  const DeltaBuffer* const delta = ctx.storage.delta;
  if (direction == Direction::TopDown) {
    if (ctx.storage.forward_dram != nullptr) {
      return top_down_step(*ctx.storage.forward_dram, *status_, ctx.superstep,
                           *ctx.topology, *ctx.pool, config.batch_size,
                           delta);
    }
    if (ctx.storage.forward_tiered != nullptr) {
      return top_down_step_tiered(*ctx.storage.forward_tiered, *status_,
                                  ctx.superstep, *ctx.topology, *ctx.pool,
                                  config.batch_size, delta);
    }
    ExternalForwardGraph& external = *ctx.storage.forward_external;
    // The session already ran prepare_external_storage().
    ExternalTopDownOptions options = external_step_options(external, config);
    options.delta = delta;
    return top_down_step_external(external, *status_, ctx.superstep,
                                  *ctx.topology, *ctx.pool, options);
  }
  if (ctx.storage.backward_dram != nullptr) {
    return bottom_up_step(*ctx.storage.backward_dram, *status_, ctx.superstep,
                          *ctx.topology, *ctx.pool, config.bottom_up_chunk,
                          ctx.pull_output, delta);
  }
  return bottom_up_step_hybrid(*ctx.storage.backward_hybrid, *status_,
                               ctx.superstep, *ctx.topology, *ctx.pool,
                               config.bottom_up_chunk, ctx.pull_output, delta);
}

bool BfsProgram::converged(const EngineContext& ctx) const {
  (void)ctx;
  return status_.has_value() && status_->frontier_size() == 0;
}

StepResult BfsProgram::degrade(EngineContext& ctx) {
  if (ctx.storage.backward_dram == nullptr &&
      ctx.storage.backward_hybrid == nullptr) {
    throw NvmIoError(
        "top-down superstep " + std::to_string(ctx.superstep) +
        " exceeded its I/O error budget and no backward graph is attached "
        "for a degraded bottom-up retry");
  }
  // Same protocol as BfsSession::degrade_level: the partial top-down
  // claims are valid, the bottom-up sweep skips them via the visited
  // bitmap, and the redo stays on Queue output so its next list can be
  // merged with the partial top-down list saved here.
  std::vector<Vertex> partial = std::move(status_->next());
  status_->set_next({});
  StepResult redo;
  if (ctx.storage.backward_dram != nullptr) {
    redo = bottom_up_step(*ctx.storage.backward_dram, *status_, ctx.superstep,
                          *ctx.topology, *ctx.pool,
                          ctx.config->bottom_up_chunk, BottomUpOutput::Queue,
                          ctx.storage.delta);
  } else {
    redo = bottom_up_step_hybrid(*ctx.storage.backward_hybrid, *status_,
                                 ctx.superstep, *ctx.topology, *ctx.pool,
                                 ctx.config->bottom_up_chunk,
                                 BottomUpOutput::Queue, ctx.storage.delta);
  }
  std::vector<Vertex>& next = status_->next();
  next.insert(next.end(), partial.begin(), partial.end());
  return redo;
}

}  // namespace sembfs::engine
