// The vertex-program contract: what the semi-external engine runs.
//
// A VertexProgram is a level-synchronous computation expressed as
// supersteps over the engine's storage backends (DRAM / semi-external /
// tiered forward, DRAM / hybrid backward — the same GraphStorage the
// hybrid BFS uses). The ProgramSession drives the loop; the program
// supplies the per-superstep work:
//
//   init()              sizes and seeds per-vertex state
//   active_set()        the frontier (dual queue/bitmap ActiveSet), or
//                       nullptr for always-all-active programs (PageRank,
//                       triangle counting)
//   step(ctx, dir)      one superstep in the given direction; push
//                       (TopDown) scans active vertices over the forward
//                       partitions, pull (BottomUp) sweeps the backward
//                       graph
//   converged(ctx)      authoritative termination, checked before every
//                       superstep (frontier-driven programs converge when
//                       the set empties; PageRank keeps a tolerance,
//                       triangle counting a cursor)
//   degrade(ctx)        redo a push superstep that exceeded its I/O error
//                       budget without forward-graph I/O (the BFS/CC/PR
//                       fallback: a backward-graph pull)
//
// Direction selection generalizes the BFS switch policy: in Hybrid mode
// the session builds the same PolicyInput the BFS session builds (active
// counts standing in for frontier counts) and asks choose_direction();
// the default defers to the configured SwitchPolicy, and push-only
// programs simply pin TopDown. Forced modes in BfsConfig bypass the hook.
//
// Containment contract: step() must never let a device exception cross
// the thread-pool boundary. Forward-side (push) failures are contained
// into StepResult::io_failures / aborted — the session then degrades or
// throws NvmIoError. Backward-side (pull/degrade) failures may propagate
// as NvmIoError, exactly like the BFS degrade path.
#pragma once

#include <cstdint>

#include "bfs/bottom_up.hpp"
#include "bfs/hybrid_bfs.hpp"
#include "bfs/level_stats.hpp"
#include "bfs/policy.hpp"
#include "bfs/top_down.hpp"
#include "engine/active_set.hpp"
#include "graph/types.hpp"
#include "numa/topology.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs::engine {

/// Everything a program needs to run one superstep. Owned by the
/// ProgramSession; pointers are non-null for the session's lifetime.
struct EngineContext {
  GraphStorage storage;
  const NumaTopology* topology = nullptr;
  ThreadPool* pool = nullptr;
  const BfsConfig* config = nullptr;
  /// 1-based superstep the next step() executes (the BFS level number).
  std::int32_t superstep = 1;
  /// Next-set representation a pull superstep should emit, resolved by
  /// the session from config->frontier_mode and the current density
  /// (meaningless for programs without an active set).
  BottomUpOutput pull_output = BottomUpOutput::Queue;

  [[nodiscard]] Vertex vertex_count() const noexcept {
    return storage.vertex_count();
  }
};

class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// Prefix for the session's per-program obs metrics ("<prefix>.levels",
  /// "<prefix>.level_us", ...). The BFS program returns "bfs" so the
  /// engine emits the exact counter names the obs CI job asserts;
  /// analytics programs use "engine.<name>".
  [[nodiscard]] virtual const char* metric_prefix() const noexcept = 0;

  /// Root/seed vertex recorded in trace spans (kNoVertex when the program
  /// has no single seed).
  [[nodiscard]] virtual Vertex root() const noexcept { return kNoVertex; }

  /// Sizes and seeds per-vertex state from ctx.storage. Called once by
  /// the session constructor; must leave active_set() (if any) seeded.
  virtual void init(EngineContext& ctx) = 0;

  /// The program's frontier, or nullptr when every vertex is (implicitly)
  /// active each superstep. The session converts the set to its queue
  /// representation before push supersteps and advances it after each
  /// step.
  [[nodiscard]] virtual ActiveSet* active_set() noexcept = 0;

  /// Whether the program implements the pull (BottomUp) direction.
  /// Push-only programs are never asked to pull, and Hybrid mode pins
  /// them to TopDown (BfsMode::BottomUpOnly is rejected for them).
  [[nodiscard]] virtual bool supports_pull() const noexcept { return true; }

  /// Hybrid-mode direction choice for the coming superstep. `in` is the
  /// generalized policy input (active counts as frontier counts). The
  /// default defers to the configured switch policy.
  [[nodiscard]] virtual Direction choose_direction(
      const PolicyInput& in, const SwitchPolicy& policy) {
    return policy.decide(in);
  }

  /// Executes one superstep. Push failures must be contained into the
  /// result (see the containment contract above).
  virtual StepResult step(EngineContext& ctx, Direction direction) = 0;

  /// Authoritative termination, checked before each superstep (i.e. after
  /// the previous step's active-set advance).
  [[nodiscard]] virtual bool converged(const EngineContext& ctx) const = 0;

  /// Whether degrade() can redo a failed push superstep. Programs whose
  /// push result cannot be reconstructed without the forward graph return
  /// false; the session then surfaces NvmIoError.
  [[nodiscard]] virtual bool supports_degrade() const noexcept {
    return false;
  }

  /// Completes the current superstep without forward-graph I/O after a
  /// contained push failure (throws NvmIoError when no backward graph is
  /// attached). Only called when supports_degrade() is true.
  virtual StepResult degrade(EngineContext& ctx) {
    (void)ctx;
    return {};
  }
};

}  // namespace sembfs::engine
