// Synchronous PageRank as a vertex program.
//
// Classic iterate-to-tolerance PageRank with dangling-mass
// redistribution:
//
//   rank'[v] = (1-d)/n + d * (sum_{u->v} rank[u]/deg[u] + dangling/n)
//
// where dangling is the rank mass held by zero-degree vertices. Every
// vertex is active every iteration (active_set() is nullptr); the program
// converges when the L-infinity delta between iterations drops below the
// tolerance or the iteration cap is hit.
//
// Push (the default direction) scatters rank[u]/deg[u] over the forward
// partitions into atomically-accumulated sums; pull recomputes each
// vertex's sum from its backward adjacency with a single writer. Both
// compute the same iteration up to floating-point summation order, which
// is why the differential tests compare against the in-memory reference
// with an epsilon rather than exactly. A push superstep that exceeds its
// I/O error budget degrades to a full pull recompute — the iteration is a
// pure function of the previous ranks, so the partial push is simply
// discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/vertex_program.hpp"

namespace sembfs::engine {

struct PageRankOptions {
  double damping = 0.85;
  /// L-infinity convergence threshold between iterations.
  double tolerance = 1e-8;
  std::int32_t max_iterations = 100;
};

class PageRankProgram final : public VertexProgram {
 public:
  explicit PageRankProgram(PageRankOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "pagerank";
  }
  [[nodiscard]] const char* metric_prefix() const noexcept override {
    return "engine.pagerank";
  }

  void init(EngineContext& ctx) override;
  [[nodiscard]] ActiveSet* active_set() noexcept override { return nullptr; }
  /// PageRank iterates until tolerance, not until a frontier empties; the
  /// push direction is the engine default and pull is only worth forcing
  /// (BfsMode::BottomUpOnly) or degrading to.
  [[nodiscard]] Direction choose_direction(
      const PolicyInput& in, const SwitchPolicy& policy) override {
    (void)in;
    (void)policy;
    return Direction::TopDown;
  }
  StepResult step(EngineContext& ctx, Direction direction) override;
  [[nodiscard]] bool converged(const EngineContext& ctx) const override;
  [[nodiscard]] bool supports_degrade() const noexcept override {
    return true;
  }
  StepResult degrade(EngineContext& ctx) override;

  [[nodiscard]] const std::vector<double>& ranks() const noexcept {
    return ranks_;
  }
  [[nodiscard]] std::int32_t iterations() const noexcept {
    return iterations_;
  }
  /// L-infinity delta of the last completed iteration.
  [[nodiscard]] double last_delta() const noexcept { return last_delta_; }
  [[nodiscard]] const PageRankOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Sums incoming rank/deg contributions into sums_ via the backward
  /// graph (single writer per vertex). Used by forced pull and degrade.
  StepResult accumulate_pull(EngineContext& ctx);
  /// Applies damping/teleport/dangling to sums_ and computes the delta.
  void finalize_iteration(EngineContext& ctx);

  PageRankOptions options_;
  std::vector<double> ranks_;
  std::vector<double> inv_degree_;  ///< 1/deg, 0 for dangling vertices
  std::vector<std::atomic<double>> sums_;
  std::vector<Vertex> all_;  ///< iota active list for the push scatter
  double dangling_mass_ = 0.0;
  double last_delta_ = 0.0;
  std::int32_t iterations_ = 0;
  bool initialized_ = false;
};

}  // namespace sembfs::engine
