// Generic push-direction (scatter) executor for vertex programs.
//
// This is the top-down BFS kernel's team structure (src/bfs/top_down.cpp)
// with the claim loop abstracted out: every emulated NUMA node runs a
// thread team over the whole active list against its destination-filtered
// forward partition, dequeuing vertices in fixed batches from a per-node
// cursor, and hands each (vertex, partition-adjacency) pair to a caller
// visitor. Because partition k only holds destinations owned by node k,
// whatever per-destination state the visitor writes stays node-local —
// the same delegation scheme the BFS kernels use.
//
// Three overloads cover the three forward storages:
//  - ForwardGraph:         DRAM adjacency spans, no I/O.
//  - ExternalForwardGraph: semi-external; per-vertex chunked reads, or
//    aggregated batch reads, or double-buffered async reads against an
//    IoScheduler — selected by ScatterIoOptions exactly like
//    ExternalTopDownOptions selects them for BFS. Failed fetches are
//    contained (never thrown across the pool): counted, and past the
//    error budget every worker stops claiming batches.
//  - TieredForwardGraph:   DRAM short lists + NVM hubs; first hard
//    failure aborts, as in top_down_step_tiered.
//
// The visitor is called as
//     edge_fn(worker, node, u, std::span<const Vertex> adjacency)
// once per active vertex per partition that lists it. The executor counts
// scanned adjacency entries and I/O; claims/updates are the visitor's
// business (per-worker accumulation recommended — `worker` indexes
// [0, pool.size()) even when fewer workers participate).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <span>
#include <vector>

#include "graph/delta_buffer.hpp"
#include "graph/external_csr.hpp"
#include "graph/forward_graph.hpp"
#include "graph/tiered_forward.hpp"
#include "graph/types.hpp"
#include "numa/topology.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/contracts.hpp"

namespace sembfs::engine {

struct ScatterStats {
  std::int64_t scanned_edges = 0;  ///< adjacency entries delivered
  std::uint64_t nvm_requests = 0;  ///< device requests issued
  std::uint64_t io_failures = 0;   ///< contained fetch failures
  bool aborted = false;            ///< workers stopped early: budget exceeded

  /// True when some active vertices may not have been delivered — the
  /// superstep is incomplete and the program must degrade or fail.
  [[nodiscard]] bool io_failed() const noexcept {
    return io_failures > 0 || aborted;
  }
};

/// Semi-external knobs, mirroring ExternalTopDownOptions (the BFS session
/// builds that struct from the same BfsConfig fields this one is built
/// from — see external_step_options()).
struct ScatterIoOptions {
  int batch_size = 64;
  bool aggregate_io = false;
  std::uint32_t merge_gap_bytes = 4096;
  std::uint32_t max_request_bytes = 1 << 20;
  IoScheduler* scheduler = nullptr;
  std::uint64_t io_error_budget = 0;
  /// Mutation overlay: when non-null, adjacency is delivered through the
  /// merged view (base minus tombstones plus destination-filtered inserts).
  const DeltaBuffer* delta = nullptr;
};

namespace detail {

/// Shared per-level team state: per-node cursors over the active list plus
/// the contained-failure protocol (identical to the BFS TeamState).
struct ScatterTeam {
  explicit ScatterTeam(std::size_t nodes) : cursors(nodes) {
    for (auto& c : cursors) c.store(0, std::memory_order_relaxed);
  }
  std::vector<std::atomic<std::int64_t>> cursors;
  std::atomic<std::int64_t> scanned{0};
  std::atomic<std::uint64_t> nvm_requests{0};
  std::atomic<std::uint64_t> io_failures{0};
  std::atomic<bool> abort{false};

  void contain_failure(std::uint64_t budget) noexcept {
    const std::uint64_t failed =
        io_failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (failed > budget) abort.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool aborted() const noexcept {
    return abort.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ScatterStats stats() const noexcept {
    ScatterStats s;
    s.scanned_edges = scanned.load(std::memory_order_relaxed);
    s.nvm_requests = nvm_requests.load(std::memory_order_relaxed);
    s.io_failures = io_failures.load(std::memory_order_relaxed);
    s.aborted = abort.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace detail

/// DRAM scatter.
template <typename EdgeFn>
ScatterStats scatter_active(const ForwardGraph& forward,
                            std::span<const Vertex> active,
                            const NumaTopology& topology, ThreadPool& pool,
                            int batch_size, EdgeFn&& edge_fn,
                            const DeltaBuffer* delta = nullptr) {
  SEMBFS_EXPECTS(batch_size >= 1);
  const auto active_n = static_cast<std::int64_t>(active.size());
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  detail::ScatterTeam team{topology.node_count()};

  pool.run(workers, [&](std::size_t w) {
    std::vector<Vertex> merged;  // merged-view staging (delta only)
    std::int64_t local_scanned = 0;
    for_each_assigned_node(w, workers, forward.node_count(),
                           [&](std::size_t node) {
      const Csr& part = forward.partition(node);
      const VertexRange dest = part.destination_range();
      auto& cursor = team.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(batch_size, std::memory_order_relaxed);
        if (lo >= active_n) break;
        const std::int64_t hi =
            std::min<std::int64_t>(active_n, lo + batch_size);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex u = active[static_cast<std::size_t>(i)];
          const std::span<const Vertex> adj = part.neighbors(u);
          if (delta == nullptr || !delta->touches(u)) {
            local_scanned += static_cast<std::int64_t>(adj.size());
            edge_fn(w, node, u, adj);
            continue;
          }
          merged.clear();
          delta->for_each_merged(u, adj, dest,
                                 [&](Vertex x) { merged.push_back(x); });
          local_scanned += static_cast<std::int64_t>(merged.size());
          edge_fn(w, node, u, std::span<const Vertex>{merged});
        }
      }
    });
    team.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
  });
  return team.stats();
}

/// Semi-external scatter: synchronous chunked, aggregated, or
/// double-buffered async depending on `options` — the same three I/O modes
/// as top_down_step_external, with the same containment.
template <typename EdgeFn>
ScatterStats scatter_active(ExternalForwardGraph& forward,
                            std::span<const Vertex> active,
                            const NumaTopology& topology, ThreadPool& pool,
                            const ScatterIoOptions& options,
                            EdgeFn&& edge_fn) {
  SEMBFS_EXPECTS(options.batch_size >= 1);
  const int batch_size = options.batch_size;
  const auto active_n = static_cast<std::int64_t>(active.size());
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  detail::ScatterTeam team{topology.node_count()};

  pool.run(workers, [&](std::size_t w) {
    std::vector<Vertex> scratch;                 // per-vertex staging
    std::vector<std::vector<Vertex>> batch_adj;  // aggregated staging
    std::vector<Vertex> merged;                  // merged-view staging
    std::int64_t local_scanned = 0;
    std::uint64_t local_requests = 0;

    const auto deliver = [&](std::size_t node, Vertex u,
                             std::span<const Vertex> adj) {
      const DeltaBuffer* const delta = options.delta;
      if (delta != nullptr && delta->touches(u)) {
        merged.clear();
        delta->for_each_merged(u, adj,
                               forward.partition(node).destination_range(),
                               [&](Vertex x) { merged.push_back(x); });
        adj = std::span<const Vertex>{merged};
      }
      local_scanned += static_cast<std::int64_t>(adj.size());
      edge_fn(w, node, u, adj);
    };

    for_each_assigned_node(w, workers, forward.node_count(),
                           [&](std::size_t node) {
      ExternalCsrPartition& part = forward.partition(node);
      auto& cursor = team.cursors[node];
      const auto claim_batch = [&]() -> std::span<const Vertex> {
        if (team.aborted()) return {};  // budget exceeded: stop claiming
        const std::int64_t lo =
            cursor.fetch_add(batch_size, std::memory_order_relaxed);
        if (lo >= active_n) return {};
        const std::int64_t hi =
            std::min<std::int64_t>(active_n, lo + batch_size);
        return active.subspan(static_cast<std::size_t>(lo),
                              static_cast<std::size_t>(hi - lo));
      };
      if (options.aggregate_io && options.scheduler != nullptr) {
        // Double-buffered prefetch: batch k+1's merged value reads are in
        // flight while batch k's edges are processed.
        const auto start =
            [&](std::span<const Vertex> b) -> PendingNeighborsBatch {
          if (b.empty()) return {};
          try {
            return part.start_fetch_neighbors_batch(
                b, *options.scheduler, options.merge_gap_bytes,
                options.max_request_bytes);
          } catch (const std::exception&) {
            team.contain_failure(options.io_error_budget);
            return {};
          }
        };
        std::span<const Vertex> batch = claim_batch();
        PendingNeighborsBatch pending = start(batch);
        while (!batch.empty()) {
          const std::span<const Vertex> next = claim_batch();
          PendingNeighborsBatch next_pending = start(next);
          if (pending.valid()) {
            try {
              local_requests += pending.wait(batch_adj);
              for (std::size_t i = 0; i < batch.size(); ++i)
                deliver(node, batch[i], batch_adj[i]);
            } catch (const std::exception&) {
              team.contain_failure(options.io_error_budget);
            }
          }
          batch = next;
          pending = std::move(next_pending);
        }
      } else if (options.aggregate_io) {
        for (std::span<const Vertex> batch = claim_batch(); !batch.empty();
             batch = claim_batch()) {
          try {
            local_requests += part.fetch_neighbors_batch(
                batch, batch_adj, options.merge_gap_bytes,
                options.max_request_bytes);
          } catch (const std::exception&) {
            team.contain_failure(options.io_error_budget);
            continue;  // batch undelivered; the superstep is incomplete
          }
          for (std::size_t i = 0; i < batch.size(); ++i)
            deliver(node, batch[i], batch_adj[i]);
        }
      } else {
        for (std::span<const Vertex> batch = claim_batch(); !batch.empty();
             batch = claim_batch()) {
          for (const Vertex u : batch) {
            if (team.aborted()) break;
            try {
              local_requests += part.fetch_neighbors(u, scratch);
            } catch (const std::exception&) {
              team.contain_failure(options.io_error_budget);
              continue;  // u undelivered; the superstep is incomplete
            }
            deliver(node, u, scratch);
          }
        }
      }
    });
    team.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    team.nvm_requests.fetch_add(local_requests, std::memory_order_relaxed);
  });
  return team.stats();
}

/// Tiered scatter: DRAM short lists are free, hub fetches touch the device
/// (first hard failure aborts, as in top_down_step_tiered).
template <typename EdgeFn>
ScatterStats scatter_active(TieredForwardGraph& forward,
                            std::span<const Vertex> active,
                            const NumaTopology& topology, ThreadPool& pool,
                            int batch_size, EdgeFn&& edge_fn,
                            const DeltaBuffer* delta = nullptr) {
  SEMBFS_EXPECTS(batch_size >= 1);
  const auto active_n = static_cast<std::int64_t>(active.size());
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  detail::ScatterTeam team{topology.node_count()};

  pool.run(workers, [&](std::size_t w) {
    std::vector<Vertex> scratch;
    std::vector<Vertex> merged;  // merged-view staging (delta only)
    std::int64_t local_scanned = 0;
    std::uint64_t local_requests = 0;

    for_each_assigned_node(w, workers, forward.node_count(),
                           [&](std::size_t node) {
      TieredForwardPartition& part = forward.partition(node);
      const VertexRange dest = forward.vertex_partition().range_of(node);
      auto& cursor = team.cursors[node];
      for (;;) {
        if (team.aborted()) break;
        const std::int64_t lo =
            cursor.fetch_add(batch_size, std::memory_order_relaxed);
        if (lo >= active_n) break;
        const std::int64_t hi =
            std::min<std::int64_t>(active_n, lo + batch_size);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex u = active[static_cast<std::size_t>(i)];
          try {
            local_requests += part.fetch_neighbors(u, scratch);
          } catch (const std::exception&) {
            team.contain_failure(0);
            continue;
          }
          std::span<const Vertex> adj{scratch};
          if (delta != nullptr && delta->touches(u)) {
            merged.clear();
            delta->for_each_merged(u, adj, dest,
                                   [&](Vertex x) { merged.push_back(x); });
            adj = std::span<const Vertex>{merged};
          }
          local_scanned += static_cast<std::int64_t>(adj.size());
          edge_fn(w, node, u, adj);
        }
      }
    });
    team.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    team.nvm_requests.fetch_add(local_requests, std::memory_order_relaxed);
  });
  return team.stats();
}

}  // namespace sembfs::engine
