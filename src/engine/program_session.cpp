#include "engine/program_session.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "util/bitmap.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs::engine {

namespace {

std::string metric(const char* prefix, const char* suffix) {
  return std::string{prefix} + "." + suffix;
}

}  // namespace

ProgramSession::ProgramSession(VertexProgram& program, GraphStorage storage,
                               const NumaTopology& topology, ThreadPool& pool,
                               const BfsConfig& config)
    : program_(&program),
      topology_(topology),
      pool_(pool),
      config_(config),
      obs_levels_(&obs::metrics().counter(
          metric(program.metric_prefix(), "levels"))),
      obs_top_down_levels_(&obs::metrics().counter(
          metric(program.metric_prefix(), "top_down_levels"))),
      obs_bottom_up_levels_(&obs::metrics().counter(
          metric(program.metric_prefix(), "bottom_up_levels"))),
      obs_degraded_levels_(&obs::metrics().counter(
          metric(program.metric_prefix(), "degraded_levels"))),
      obs_direction_switches_(&obs::metrics().counter(
          metric(program.metric_prefix(), "direction_switches"))),
      obs_io_failures_(&obs::metrics().counter(
          metric(program.metric_prefix(), "io_failures"))),
      obs_frontier_conversions_(&obs::metrics().counter(
          metric(program.metric_prefix(), "frontier_conversions"))),
      obs_bitmap_levels_(&obs::metrics().counter(
          metric(program.metric_prefix(), "bitmap_frontier_levels"))),
      obs_level_us_(&obs::metrics().histogram(
          metric(program.metric_prefix(), "level_us"))),
      obs_engine_runs_(&obs::metrics().counter("engine.runs")),
      obs_engine_supersteps_(&obs::metrics().counter("engine.supersteps")),
      obs_engine_io_failures_(&obs::metrics().counter("engine.io_failures")),
      obs_engine_degraded_(
          &obs::metrics().counter("engine.degraded_supersteps")),
      obs_engine_superstep_us_(
          &obs::metrics().histogram("engine.superstep_us")) {
  ctx_.storage = storage;
  ctx_.topology = &topology_;
  ctx_.pool = &pool_;
  ctx_.config = &config_;

  // A program that cannot pull cannot honor a forced bottom-up mode.
  SEMBFS_EXPECTS(program_->supports_pull() ||
                 config_.mode != BfsMode::BottomUpOnly);

  if (config_.trace != nullptr)
    trace_run_ = config_.trace->begin_run(program_->root());
  if (obs::enabled()) {
    obs_engine_runs_->add(1);
    // Label pool workers with their emulated NUMA nodes so parallel-region
    // step times land in per-node histograms (pool.node<k>.step_us).
    std::vector<std::size_t> nodes(pool_.size());
    for (std::size_t w = 0; w < nodes.size(); ++w)
      nodes[w] = std::min(topology_.node_of_worker(w),
                          topology_.node_count() - 1);
    pool_.set_worker_nodes(nodes);
  }

  program_->init(ctx_);
  direction_ = (config_.mode == BfsMode::BottomUpOnly &&
                program_->supports_pull())
                   ? Direction::BottomUp
                   : Direction::TopDown;
  if (config_.policy.kind == PolicyKind::EdgeRatio) {
    const Vertex n = ctx_.vertex_count();
    unvisited_edges_ = parallel_reduce<std::int64_t>(
        pool_, 0, n, 0,
        [&](std::int64_t& acc, std::int64_t v) {
          acc += ctx_.storage.degree(v);
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    active_edges_ = active_edge_sum();
    unvisited_edges_ -= active_edges_;
  }
}

std::int64_t ProgramSession::active_edge_sum() const {
  const ActiveSet* active = program_->active_set();
  if (active == nullptr) {
    std::int64_t total = 0;
    for (Vertex v = 0; v < ctx_.vertex_count(); ++v)
      total += ctx_.storage.degree(v);
    return total;
  }
  if (active->rep() == ActiveSetRep::Bitmap) {
    const std::span<const std::uint64_t> words = active->bitmap().words();
    return parallel_reduce<std::int64_t>(
        pool_, 0, static_cast<std::int64_t>(words.size()), 0,
        [&](std::int64_t& acc, std::int64_t w) {
          for_each_set_in_word(words[static_cast<std::size_t>(w)],
                               static_cast<std::size_t>(w) * 64,
                               [&](std::size_t v) {
                                 acc += ctx_.storage.degree(
                                     static_cast<Vertex>(v));
                               });
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
  }
  const auto& queue = active->queue();
  return parallel_reduce<std::int64_t>(
      pool_, 0, static_cast<std::int64_t>(queue.size()), 0,
      [&](std::int64_t& acc, std::int64_t i) {
        acc += ctx_.storage.degree(queue[static_cast<std::size_t>(i)]);
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
}

BottomUpOutput ProgramSession::pull_output(
    std::int64_t cur_active) const noexcept {
  switch (config_.frontier_mode) {
    case FrontierMode::ForceQueue:
      return BottomUpOutput::Queue;
    case FrontierMode::ForceBitmap:
      return BottomUpOutput::Bitmap;
    case FrontierMode::Auto:
      break;
  }
  return cur_active >= ctx_.vertex_count() / 64 ? BottomUpOutput::Bitmap
                                                : BottomUpOutput::Queue;
}

bool ProgramSession::step() {
  if (done_) return false;
  if (config_.cancel != nullptr) {
    const StopReason stop = config_.cancel->should_stop();
    if (stop != StopReason::None) {
      stop_reason_ = stop;
      done_ = true;
      return false;
    }
  }
  if (program_->converged(ctx_)) {
    done_ = true;
    return false;
  }
  ActiveSet* const active = program_->active_set();
  if (active != nullptr && active->size() == 0) {
    done_ = true;
    return false;
  }
  const std::int64_t cur_active =
      active != nullptr ? active->size()
                        : static_cast<std::int64_t>(ctx_.vertex_count());

  obs::TraceLog* const trace = config_.trace;
  const double span_start =
      trace != nullptr ? trace->seconds_since_epoch() : 0.0;
  Timer superstep_timer;
  StepResult step_result;
  bool degraded = false;
  if (direction_ == Direction::TopDown) {
    // Pull supersteps may have produced a bitmap active set; push steps
    // dequeue, so materialize the queue now (the conversion point sits on
    // a direction switch, where the set has already thinned).
    if (active != nullptr && active->ensure_queue(pool_) && obs::enabled())
      obs_frontier_conversions_->add(1);
    if (ctx_.storage.forward_external != nullptr)
      prepare_external_storage(*ctx_.storage.forward_external, config_);
    step_result = program_->step(ctx_, Direction::TopDown);
    scanned_push_ += step_result.scanned_edges;
    io_failures_ += step_result.io_failures;
    if (step_result.io_failed()) {
      if (!program_->supports_degrade()) {
        throw NvmIoError(
            "engine superstep " + std::to_string(superstep_) +
            " of program '" + program_->name() +
            "' exceeded its I/O error budget and the program cannot "
            "degrade");
      }
      // Graceful degradation: redo the incomplete push superstep without
      // forward-graph I/O, keeping whatever the push already applied.
      const StepResult redo = program_->degrade(ctx_);
      step_result.claimed += redo.claimed;
      step_result.scanned_edges += redo.scanned_edges;
      step_result.nvm_requests += redo.nvm_requests;
      scanned_pull_ += redo.scanned_edges;
      ++degraded_supersteps_;
      degraded = true;
    }
  } else {
    ctx_.pull_output = pull_output(cur_active);
    if (active != nullptr && ctx_.pull_output == BottomUpOutput::Bitmap &&
        obs::enabled())
      obs_bitmap_levels_->add(1);
    step_result = program_->step(ctx_, Direction::BottomUp);
    scanned_pull_ += step_result.scanned_edges;
    io_failures_ += step_result.io_failures;
  }
  const double seconds = superstep_timer.seconds();
  elapsed_seconds_ += seconds;
  nvm_requests_ += step_result.nvm_requests;

  LevelStats stats;
  stats.level = superstep_;
  stats.direction = direction_;
  stats.frontier_vertices = cur_active;
  stats.claimed_vertices = step_result.claimed;
  stats.scanned_edges = step_result.scanned_edges;
  stats.seconds = seconds;
  stats.avg_degree =
      cur_active > 0 ? static_cast<double>(step_result.scanned_edges) /
                           static_cast<double>(cur_active)
                     : 0.0;
  stats.nvm_requests = step_result.nvm_requests;
  stats.io_failures = step_result.io_failures;
  stats.degraded = degraded;
  superstep_stats_.push_back(stats);

  if (active != nullptr) active->advance(pool_);
  const std::int64_t next_active =
      active != nullptr ? active->size()
                        : static_cast<std::int64_t>(ctx_.vertex_count());

  if (config_.policy.kind == PolicyKind::EdgeRatio) {
    active_edges_ = active_edge_sum();
    unvisited_edges_ -= active_edges_;
  }

  // Built unconditionally: forced modes skip the decision but the trace
  // still records what the policy WOULD have been shown.
  PolicyInput in;
  in.current = stats.direction;
  in.n_all = ctx_.vertex_count();
  in.prev_frontier = cur_active;
  in.cur_frontier = next_active;
  in.frontier_edges = active_edges_;
  in.unvisited_edges = unvisited_edges_;
  const bool policy_evaluated =
      config_.mode == BfsMode::Hybrid && program_->supports_pull();
  if (policy_evaluated)
    direction_ = program_->choose_direction(in, config_.policy);

  if (obs::enabled()) {
    obs_levels_->add(1);
    obs_engine_supersteps_->add(1);
    (stats.direction == Direction::TopDown ? obs_top_down_levels_
                                           : obs_bottom_up_levels_)
        ->add(1);
    if (degraded) {
      obs_degraded_levels_->add(1);
      obs_engine_degraded_->add(1);
    }
    if (stats.io_failures != 0) {
      obs_io_failures_->add(stats.io_failures);
      obs_engine_io_failures_->add(stats.io_failures);
    }
    if (direction_ != stats.direction) obs_direction_switches_->add(1);
    const auto us =
        seconds <= 0.0 ? std::uint64_t{0}
                       : static_cast<std::uint64_t>(seconds * 1e6);
    obs_level_us_->record(us);
    obs_engine_superstep_us_->record(us);
  }
  if (trace != nullptr) {
    obs::TraceSpan span;
    span.run = trace_run_;
    span.root = program_->root();
    span.level = stats.level;
    span.direction = stats.direction;
    span.start_seconds = span_start;
    span.duration_seconds = trace->seconds_since_epoch() - span_start;
    span.stats = stats;
    span.policy_input = in;
    span.decision = direction_;
    span.policy_evaluated = policy_evaluated;
    trace->record(span);
  }

  ++superstep_;
  ctx_.superstep = superstep_;
  if (program_->converged(ctx_) || (active != nullptr && next_active == 0))
    done_ = true;
  return !done_;
}

std::int32_t ProgramSession::run() {
  while (step()) {
  }
  return supersteps_executed();
}

}  // namespace sembfs::engine
