// The engine's superstep loop: BfsSession's level loop generalized to any
// VertexProgram. One session runs one program over one GraphStorage to
// convergence (or cancellation), reproducing the BFS session's duties
// superstep by superstep:
//
//   - cancel/deadline poll at superstep granularity (the same preemption
//     point the serving engine relies on),
//   - bitmap->queue conversion of the active set before push supersteps,
//   - semi-external storage prep (chunk cache, checksums, I/O scheduler
//     with a fresh error budget) before push supersteps,
//   - graceful degradation when a push superstep exceeds its I/O error
//     budget and the program can redo it from the backward graph,
//   - density-driven pull output selection (FrontierMode),
//   - per-superstep LevelStats, switch-policy evaluation, obs metrics
//     under the program's prefix plus engine-wide aggregates, and trace
//     spans.
//
// BfsSession remains the dedicated BFS fast path; ProgramSession running
// a BfsProgram executes the same kernels over the same BfsStatus and is
// reference-exact against it (tests/test_differential_sweep.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "bfs/cancel.hpp"
#include "engine/vertex_program.hpp"
#include "obs/metrics.hpp"

namespace sembfs::engine {

class ProgramSession {
 public:
  /// Borrows `program` (init() is called here); storage/topology/pool and
  /// the config must outlive the session.
  ProgramSession(VertexProgram& program, GraphStorage storage,
                 const NumaTopology& topology, ThreadPool& pool,
                 const BfsConfig& config);

  /// Executes ONE superstep. Returns true while the program can continue;
  /// false once converged, cancelled, or past its deadline. No-op after
  /// done().
  bool step();

  /// Steps to completion. Returns the number of supersteps executed.
  std::int32_t run();

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] StopReason stop_reason() const noexcept {
    return stop_reason_;
  }
  /// The superstep step() would execute next (1 after construction).
  [[nodiscard]] std::int32_t next_superstep() const noexcept {
    return superstep_;
  }
  /// Supersteps executed so far.
  [[nodiscard]] std::int32_t supersteps_executed() const noexcept {
    return superstep_ - 1;
  }
  [[nodiscard]] Direction next_direction() const noexcept {
    return direction_;
  }
  [[nodiscard]] const std::vector<LevelStats>& supersteps() const noexcept {
    return superstep_stats_;
  }
  [[nodiscard]] double seconds() const noexcept { return elapsed_seconds_; }
  [[nodiscard]] std::int64_t scanned_edges_push() const noexcept {
    return scanned_push_;
  }
  [[nodiscard]] std::int64_t scanned_edges_pull() const noexcept {
    return scanned_pull_;
  }
  [[nodiscard]] std::uint64_t nvm_requests() const noexcept {
    return nvm_requests_;
  }
  [[nodiscard]] std::uint64_t io_failures() const noexcept {
    return io_failures_;
  }
  [[nodiscard]] std::int32_t degraded_supersteps() const noexcept {
    return degraded_supersteps_;
  }
  [[nodiscard]] const EngineContext& context() const noexcept { return ctx_; }

 private:
  [[nodiscard]] BottomUpOutput pull_output(
      std::int64_t cur_active) const noexcept;
  /// Degree sum over the current active set (EdgeRatio policy bookkeeping).
  [[nodiscard]] std::int64_t active_edge_sum() const;

  VertexProgram* program_;
  NumaTopology topology_;  ///< by value: ctor arg may be a temporary
  ThreadPool& pool_;
  BfsConfig config_;
  EngineContext ctx_;

  Direction direction_ = Direction::TopDown;
  std::int32_t superstep_ = 1;
  bool done_ = false;
  StopReason stop_reason_ = StopReason::None;
  double elapsed_seconds_ = 0.0;
  std::int64_t scanned_push_ = 0;
  std::int64_t scanned_pull_ = 0;
  std::uint64_t nvm_requests_ = 0;
  std::uint64_t io_failures_ = 0;
  std::int32_t degraded_supersteps_ = 0;
  std::int64_t active_edges_ = 0;
  std::int64_t unvisited_edges_ = 0;
  std::vector<LevelStats> superstep_stats_;

  /// Run id within config_.trace (0 when tracing is off).
  int trace_run_ = 0;

  // Per-program-prefix observability handles, resolved at construction.
  obs::Counter* obs_levels_;
  obs::Counter* obs_top_down_levels_;
  obs::Counter* obs_bottom_up_levels_;
  obs::Counter* obs_degraded_levels_;
  obs::Counter* obs_direction_switches_;
  obs::Counter* obs_io_failures_;
  obs::Counter* obs_frontier_conversions_;
  obs::Counter* obs_bitmap_levels_;
  obs::Histogram* obs_level_us_;
  // Engine-wide aggregates across all programs.
  obs::Counter* obs_engine_runs_;
  obs::Counter* obs_engine_supersteps_;
  obs::Counter* obs_engine_io_failures_;
  obs::Counter* obs_engine_degraded_;
  obs::Histogram* obs_engine_superstep_us_;
};

}  // namespace sembfs::engine
