#include "engine/triangle_program.hpp"

#include <algorithm>
#include <exception>

#include "graph/backward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"

namespace sembfs::engine {

namespace {

struct AdjFetch {
  std::uint64_t requests = 0;
  bool healed = false;  ///< forward fetch failed, backward copy used
  bool failed = false;  ///< no intact source for this adjacency
};

/// Gathers v's full adjacency (union of the destination-filtered forward
/// partitions), sorted and dedup'd. A forward fetch failure falls back to
/// the backward graph's complete per-vertex adjacency — same edges, so
/// the count stays exact under fault injection.
AdjFetch full_adjacency(EngineContext& ctx, Vertex v,
                        std::vector<Vertex>& out,
                        std::vector<Vertex>& scratch) {
  out.clear();
  AdjFetch result;
  bool ok = true;
  if (ctx.storage.forward_dram != nullptr) {
    const ForwardGraph& forward = *ctx.storage.forward_dram;
    for (std::size_t k = 0; k < forward.node_count(); ++k) {
      const std::span<const Vertex> adj = forward.partition(k).neighbors(v);
      out.insert(out.end(), adj.begin(), adj.end());
    }
  } else if (ctx.storage.forward_tiered != nullptr) {
    TieredForwardGraph& forward = *ctx.storage.forward_tiered;
    for (std::size_t k = 0; k < forward.node_count() && ok; ++k) {
      try {
        result.requests += forward.partition(k).fetch_neighbors(v, scratch);
        out.insert(out.end(), scratch.begin(), scratch.end());
      } catch (const std::exception&) {
        ok = false;
      }
    }
  } else {
    ExternalForwardGraph& forward = *ctx.storage.forward_external;
    for (std::size_t k = 0; k < forward.node_count() && ok; ++k) {
      try {
        result.requests += forward.partition(k).fetch_neighbors(v, scratch);
        out.insert(out.end(), scratch.begin(), scratch.end());
      } catch (const std::exception&) {
        ok = false;
      }
    }
  }
  if (!ok) {
    out.clear();
    if (ctx.storage.backward_dram != nullptr) {
      const std::span<const Vertex> adj =
          ctx.storage.backward_dram->neighbors(v);
      out.assign(adj.begin(), adj.end());
      result.healed = true;
    } else if (ctx.storage.backward_hybrid != nullptr) {
      HybridBackwardGraph& backward = *ctx.storage.backward_hybrid;
      try {
        backward.partition(backward.vertex_partition().node_of(v))
            .visit_neighbors(v, scratch, [&](Vertex u) {
              out.push_back(u);
              return true;
            });
        result.healed = true;
      } catch (const std::exception&) {
        out.clear();
        result.failed = true;
      }
    } else {
      result.failed = true;
    }
  }
  // Merged view: drop tombstoned pairs, append inserted neighbors (the
  // backward fallback holds the same base adjacency, so the merge is
  // uniform across sources). Dedup below absorbs insert multiplicity.
  const DeltaBuffer* const delta = ctx.storage.delta;
  if (delta != nullptr && delta->touches(v)) {
    std::erase_if(out, [&](Vertex w) { return delta->edge_removed(v, w); });
    const std::span<const Vertex> ins = delta->inserted(v);
    out.insert(out.end(), ins.begin(), ins.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return result;
}

}  // namespace

void TriangleProgram::init(EngineContext& ctx) {
  SEMBFS_EXPECTS(options_.vertices_per_step >= 1);
  n_ = ctx.vertex_count();
  cursor_ = 0;
  triangles_ = 0;
  initialized_ = true;
}

bool TriangleProgram::converged(const EngineContext& ctx) const {
  (void)ctx;
  return initialized_ && cursor_ >= static_cast<std::int64_t>(n_);
}

StepResult TriangleProgram::step(EngineContext& ctx, Direction direction) {
  SEMBFS_EXPECTS(direction == Direction::TopDown);
  ThreadPool& pool = *ctx.pool;
  const std::int64_t lo = cursor_;
  const std::int64_t hi =
      std::min<std::int64_t>(static_cast<std::int64_t>(n_),
                             lo + options_.vertices_per_step);

  struct WorkerTally {
    std::int64_t triangles = 0;
    std::int64_t scanned = 0;
    std::uint64_t requests = 0;
    std::uint64_t healed = 0;
    std::uint64_t failed = 0;
  };
  std::vector<WorkerTally> tally(pool.size());

  parallel_for_dynamic(pool, lo, hi, 16,
                       [&](std::int64_t block_lo, std::int64_t block_hi,
                           std::size_t w) {
    WorkerTally& t = tally[w];
    std::vector<Vertex> adj_u;
    std::vector<Vertex> adj_v;
    std::vector<Vertex> scratch;
    for (std::int64_t vi = block_lo; vi < block_hi; ++vi) {
      const auto u = static_cast<Vertex>(vi);
      const AdjFetch fu = full_adjacency(ctx, u, adj_u, scratch);
      t.requests += fu.requests;
      if (fu.healed) ++t.healed;
      if (fu.failed) {
        ++t.failed;
        continue;
      }
      t.scanned += static_cast<std::int64_t>(adj_u.size());
      for (const Vertex v : adj_u) {
        if (v <= u) continue;
        const AdjFetch fv = full_adjacency(ctx, v, adj_v, scratch);
        t.requests += fv.requests;
        if (fv.healed) ++t.healed;
        if (fv.failed) {
          ++t.failed;
          continue;
        }
        t.scanned += static_cast<std::int64_t>(adj_v.size());
        // Common neighbors w > v of the sorted lists: each match is one
        // triangle u < v < w.
        auto a = std::upper_bound(adj_u.begin(), adj_u.end(), v);
        auto b = std::upper_bound(adj_v.begin(), adj_v.end(), v);
        while (a != adj_u.end() && b != adj_v.end()) {
          if (*a < *b) {
            ++a;
          } else if (*b < *a) {
            ++b;
          } else {
            ++t.triangles;
            ++a;
            ++b;
          }
        }
      }
    }
  });

  StepResult result;
  result.claimed = hi - lo;
  std::uint64_t healed = 0;
  for (const WorkerTally& t : tally) {
    triangles_ += t.triangles;
    result.scanned_edges += t.scanned;
    result.nvm_requests += t.requests;
    result.io_failures += t.failed;
    healed += t.healed;
  }
  if (healed != 0 && obs::enabled())
    obs::metrics().counter("engine.tc.healed_fetches").add(healed);
  cursor_ = hi;
  return result;
}

}  // namespace sembfs::engine
