// Label-propagation connected components as a vertex program.
//
// Every vertex starts labeled with its own id and active. A push
// superstep scatters each active vertex's current label over the forward
// partitions, improving neighbors via an atomic min; a pull superstep
// sweeps ALL vertices over the backward graph and takes the min over
// their full in-adjacency (single writer per vertex, plain stores). In
// both directions a vertex whose label improved becomes active for the
// next superstep, so the fixpoint — every vertex labeled with the
// smallest vertex id in its component, identical to the components_bfs
// oracle — is reached exactly regardless of the push/pull interleaving
// the switch policy picks.
//
// Degrade: label propagation is monotone (labels only decrease), so the
// partial improvements of a failed push superstep are harmless and a
// full backward pull completes the superstep without forward-graph I/O.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "engine/active_set.hpp"
#include "engine/vertex_program.hpp"

namespace sembfs::engine {

class ComponentsProgram final : public VertexProgram {
 public:
  ComponentsProgram() = default;

  [[nodiscard]] const char* name() const noexcept override {
    return "components";
  }
  [[nodiscard]] const char* metric_prefix() const noexcept override {
    return "engine.cc";
  }

  void init(EngineContext& ctx) override;
  [[nodiscard]] ActiveSet* active_set() noexcept override {
    return &*active_;
  }
  StepResult step(EngineContext& ctx, Direction direction) override;
  [[nodiscard]] bool converged(const EngineContext& ctx) const override;
  [[nodiscard]] bool supports_degrade() const noexcept override {
    return true;
  }
  StepResult degrade(EngineContext& ctx) override;

  /// Current label of v (the component's smallest vertex id at the
  /// fixpoint).
  [[nodiscard]] Vertex label(Vertex v) const noexcept {
    return labels_[static_cast<std::size_t>(v)].load(
        std::memory_order_relaxed);
  }
  /// Copies the label array into a plain vector.
  [[nodiscard]] std::vector<Vertex> labels() const;

 private:
  /// One full backward-graph min sweep over all vertices (the pull
  /// superstep and the degrade fallback).
  StepResult pull_step(EngineContext& ctx);

  std::vector<std::atomic<Vertex>> labels_;
  std::optional<ActiveSet> active_;
  bool initialized_ = false;
};

}  // namespace sembfs::engine
