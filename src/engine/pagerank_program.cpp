#include "engine/pagerank_program.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "engine/scatter.hpp"
#include "graph/backward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"

namespace sembfs::engine {

namespace {

/// fetch_add for doubles via a relaxed CAS loop (std::atomic<double>'s
/// fetch_add is C++20 but spotty across toolchains; the accumulations
/// commute so relaxed ordering suffices — visibility comes from the
/// pool join).
void atomic_add(std::atomic<double>& slot, double value) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void PageRankProgram::init(EngineContext& ctx) {
  const Vertex n = ctx.vertex_count();
  const auto count = static_cast<std::size_t>(n);
  ranks_.assign(count, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  inv_degree_.assign(count, 0.0);
  sums_ = std::vector<std::atomic<double>>(count);
  all_.resize(count);
  std::iota(all_.begin(), all_.end(), Vertex{0});
  parallel_for(*ctx.pool, 0, n, [&](std::int64_t v) {
    const std::int64_t deg = ctx.storage.degree(v);
    inv_degree_[static_cast<std::size_t>(v)] =
        deg > 0 ? 1.0 / static_cast<double>(deg) : 0.0;
  });
  iterations_ = 0;
  last_delta_ = 0.0;
  initialized_ = true;
}

bool PageRankProgram::converged(const EngineContext& ctx) const {
  (void)ctx;
  if (!initialized_) return false;
  if (iterations_ >= options_.max_iterations) return true;
  return iterations_ > 0 && last_delta_ < options_.tolerance;
}

StepResult PageRankProgram::step(EngineContext& ctx, Direction direction) {
  ThreadPool& pool = *ctx.pool;
  const Vertex n = ctx.vertex_count();
  parallel_for(pool, 0, n, [&](std::int64_t v) {
    sums_[static_cast<std::size_t>(v)].store(0.0, std::memory_order_relaxed);
  });
  dangling_mass_ = parallel_reduce<double>(
      pool, 0, n, 0.0,
      [&](double& acc, std::int64_t v) {
        if (inv_degree_[static_cast<std::size_t>(v)] == 0.0)
          acc += ranks_[static_cast<std::size_t>(v)];
      },
      [](double a, double b) { return a + b; });

  if (direction == Direction::BottomUp) {
    StepResult result = accumulate_pull(ctx);
    finalize_iteration(ctx);
    result.claimed = n;
    return result;
  }

  const BfsConfig& config = *ctx.config;
  const auto edge_fn = [&](std::size_t /*w*/, std::size_t /*node*/, Vertex u,
                           std::span<const Vertex> adj) {
    const double contrib = ranks_[static_cast<std::size_t>(u)] *
                           inv_degree_[static_cast<std::size_t>(u)];
    if (contrib == 0.0) return;
    for (const Vertex dst : adj)
      atomic_add(sums_[static_cast<std::size_t>(dst)], contrib);
  };

  const DeltaBuffer* const delta = ctx.storage.delta;
  ScatterStats scatter;
  if (ctx.storage.forward_dram != nullptr) {
    scatter = scatter_active(*ctx.storage.forward_dram, all_, *ctx.topology,
                             pool, config.batch_size, edge_fn, delta);
  } else if (ctx.storage.forward_tiered != nullptr) {
    scatter = scatter_active(*ctx.storage.forward_tiered, all_, *ctx.topology,
                             pool, config.batch_size, edge_fn, delta);
  } else {
    ExternalForwardGraph& external = *ctx.storage.forward_external;
    ScatterIoOptions io;
    io.batch_size = config.batch_size;
    io.aggregate_io = config.aggregate_io;
    io.merge_gap_bytes = config.aggregate_merge_gap;
    io.max_request_bytes = config.aggregate_max_request;
    io.scheduler = external.io_scheduler();
    io.io_error_budget = config.io_error_budget;
    io.delta = delta;
    scatter = scatter_active(external, all_, *ctx.topology, pool, io,
                             edge_fn);
  }

  StepResult result;
  result.scanned_edges = scatter.scanned_edges;
  result.nvm_requests = scatter.nvm_requests;
  result.io_failures = scatter.io_failures;
  result.aborted = scatter.aborted;
  if (result.io_failed()) {
    // Incomplete accumulation — the session will call degrade(), which
    // recomputes this iteration from scratch. Do NOT finalize here.
    return result;
  }
  finalize_iteration(ctx);
  result.claimed = n;
  return result;
}

StepResult PageRankProgram::accumulate_pull(EngineContext& ctx) {
  if (ctx.storage.backward_dram == nullptr &&
      ctx.storage.backward_hybrid == nullptr) {
    throw NvmIoError(
        "pagerank pull superstep " + std::to_string(ctx.superstep) +
        " requires a backward graph and none is attached");
  }
  ThreadPool& pool = *ctx.pool;
  const Vertex n = ctx.vertex_count();
  const DeltaBuffer* const delta = ctx.storage.delta;
  std::vector<std::int64_t> scanned(pool.size(), 0);

  // Merged-view extension of v's in-adjacency: the delta's inserted copies.
  const auto sum_over_inserts = [&](Vertex v, double sum,
                                    std::int64_t& scans) -> double {
    if (delta == nullptr || !delta->has_inserts(v)) return sum;
    for (const Vertex u : delta->inserted(v)) {
      ++scans;
      sum += ranks_[static_cast<std::size_t>(u)] *
             inv_degree_[static_cast<std::size_t>(u)];
    }
    return sum;
  };

  if (ctx.storage.backward_dram != nullptr) {
    const BackwardGraph& backward = *ctx.storage.backward_dram;
    parallel_for_blocked(pool, 0, n,
                         [&](std::int64_t lo, std::int64_t hi,
                             std::size_t w) {
      for (std::int64_t v = lo; v < hi; ++v) {
        const std::span<const Vertex> adj =
            backward.neighbors(static_cast<Vertex>(v));
        scanned[w] += static_cast<std::int64_t>(adj.size());
        double sum = 0.0;
        for (const Vertex u : adj) {
          if (delta != nullptr && delta->edge_removed(v, u)) continue;
          sum += ranks_[static_cast<std::size_t>(u)] *
                 inv_degree_[static_cast<std::size_t>(u)];
        }
        sum = sum_over_inserts(static_cast<Vertex>(v), sum, scanned[w]);
        sums_[static_cast<std::size_t>(v)].store(sum,
                                                 std::memory_order_relaxed);
      }
    });
  } else {
    HybridBackwardGraph& backward = *ctx.storage.backward_hybrid;
    const VertexPartition& partition = backward.vertex_partition();
    parallel_for_blocked(pool, 0, n,
                         [&](std::int64_t lo, std::int64_t hi,
                             std::size_t w) {
      std::vector<Vertex> scratch;
      for (std::int64_t v = lo; v < hi; ++v) {
        double sum = 0.0;
        backward.partition(partition.node_of(v))
            .visit_neighbors(static_cast<Vertex>(v), scratch,
                             [&](Vertex u) {
                               ++scanned[w];
                               if (delta != nullptr &&
                                   delta->edge_removed(v, u))
                                 return true;
                               sum += ranks_[static_cast<std::size_t>(u)] *
                                      inv_degree_[static_cast<std::size_t>(u)];
                               return true;
                             });
        sum = sum_over_inserts(static_cast<Vertex>(v), sum, scanned[w]);
        sums_[static_cast<std::size_t>(v)].store(sum,
                                                 std::memory_order_relaxed);
      }
    });
  }
  StepResult result;
  for (const std::int64_t s : scanned) result.scanned_edges += s;
  return result;
}

void PageRankProgram::finalize_iteration(EngineContext& ctx) {
  ThreadPool& pool = *ctx.pool;
  const Vertex n = ctx.vertex_count();
  if (n == 0) {
    ++iterations_;
    last_delta_ = 0.0;
    return;
  }
  const double d = options_.damping;
  const double base =
      (1.0 - d) / static_cast<double>(n) +
      d * dangling_mass_ / static_cast<double>(n);
  last_delta_ = parallel_reduce<double>(
      pool, 0, n, 0.0,
      [&](double& acc, std::int64_t v) {
        const auto i = static_cast<std::size_t>(v);
        const double next =
            base + d * sums_[i].load(std::memory_order_relaxed);
        acc = std::max(acc, std::fabs(next - ranks_[i]));
        ranks_[i] = next;
      },
      [](double a, double b) { return std::max(a, b); });
  ++iterations_;
}

StepResult PageRankProgram::degrade(EngineContext& ctx) {
  // The iteration is a pure function of the previous ranks: discard the
  // partial push accumulation and recompute the whole iteration from the
  // backward graph.
  StepResult redo = accumulate_pull(ctx);
  finalize_iteration(ctx);
  redo.claimed = ctx.vertex_count();
  return redo;
}

}  // namespace sembfs::engine
