#include "engine/active_set.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/contracts.hpp"

namespace sembfs::engine {

namespace {
// Below these sizes a fork/join costs more than the work it spreads.
constexpr std::size_t kSerialScatterItems = 1 << 14;
constexpr std::size_t kSerialWords = 1 << 13;  // 64 KiB of bitmap
}  // namespace

ActiveSet::ActiveSet(Vertex vertex_count)
    : n_(vertex_count), bits_(static_cast<std::size_t>(vertex_count)) {
  SEMBFS_EXPECTS(vertex_count >= 1);
}

void ActiveSet::clear() {
  bits_.clear();
  queue_.clear();
  next_.clear();
  // Defensive: a run abandoned mid-superstep can leave worker bits set.
  for (Bitmap& b : worker_next_bits_) b.clear();
  rep_ = ActiveSetRep::Queue;
  pending_ = ActiveSetRep::Queue;
  count_ = 0;
}

void ActiveSet::seed(Vertex v) {
  SEMBFS_EXPECTS(v >= 0 && v < n_);
  clear();
  queue_.push_back(v);
  bits_.set(static_cast<std::size_t>(v));
  count_ = 1;
}

void ActiveSet::seed_all() {
  clear();
  queue_.resize(static_cast<std::size_t>(n_));
  std::iota(queue_.begin(), queue_.end(), Vertex{0});
  for (Vertex v = 0; v < n_; ++v) bits_.set(static_cast<std::size_t>(v));
  count_ = n_;
}

void ActiveSet::set_next_merged(std::vector<std::vector<Vertex>>& buffers,
                                ThreadPool& pool) {
  std::vector<std::size_t> offsets(buffers.size() + 1, 0);
  for (std::size_t b = 0; b < buffers.size(); ++b)
    offsets[b + 1] = offsets[b] + buffers[b].size();
  const std::size_t total = offsets.back();
  next_.resize(total);
  pending_ = ActiveSetRep::Queue;
  if (total == 0) return;

  Vertex* const dst = next_.data();
  if (total < kSerialScatterItems || pool.size() <= 1) {
    for (std::size_t b = 0; b < buffers.size(); ++b)
      std::copy(buffers[b].begin(), buffers[b].end(), dst + offsets[b]);
    return;
  }
  // One scatter task per buffer: buffers are per-worker, so their count
  // matches the pool's parallelism and their sizes are roughly balanced
  // (the step's dynamic chunk cursor load-balanced the claims).
  const std::size_t tasks = buffers.size();
  pool.run(std::min(pool.size(), tasks), [&](std::size_t w) {
    for (std::size_t b = w; b < tasks; b += pool.size())
      std::copy(buffers[b].begin(), buffers[b].end(), dst + offsets[b]);
  });
}

void ActiveSet::begin_bitmap_next(std::size_t workers) {
  SEMBFS_EXPECTS(workers >= 1);
  while (worker_next_bits_.size() < workers)
    worker_next_bits_.emplace_back(static_cast<std::size_t>(n_));
  pending_ = ActiveSetRep::Bitmap;
}

void ActiveSet::advance_queue_serial() {
  queue_.swap(next_);
  next_.clear();
  bits_.clear();
  for (const Vertex v : queue_) bits_.set(static_cast<std::size_t>(v));
  rep_ = ActiveSetRep::Queue;
  count_ = static_cast<std::int64_t>(queue_.size());
}

void ActiveSet::advance_bitmap_serial() {
  const std::size_t words = bits_.word_count();
  const std::span<std::uint64_t> out = bits_.words();
  std::int64_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t acc = 0;
    for (Bitmap& b : worker_next_bits_) {
      const std::uint64_t word = b.words()[w];
      if (word != 0) {
        acc |= word;
        b.words()[w] = 0;  // restore the all-zero invariant for reuse
      }
    }
    out[w] = acc;
    count += std::popcount(acc);
  }
  queue_.clear();
  next_.clear();
  rep_ = ActiveSetRep::Bitmap;
  count_ = count;
}

void ActiveSet::advance() {
  if (pending_ == ActiveSetRep::Bitmap) {
    advance_bitmap_serial();
  } else {
    advance_queue_serial();
  }
  pending_ = ActiveSetRep::Queue;
}

void ActiveSet::advance(ThreadPool& pool) {
  const std::size_t words = bits_.word_count();
  if (pool.size() <= 1 || words < kSerialWords) {
    advance();
    return;
  }
  if (pending_ == ActiveSetRep::Bitmap) {
    // Word-parallel OR-merge of the per-worker bitmaps, counting as we go
    // and clearing the sources for the next bitmap superstep.
    const std::span<std::uint64_t> out = bits_.words();
    std::vector<Bitmap>& sources = worker_next_bits_;
    count_ = parallel_reduce<std::int64_t>(
        pool, 0, static_cast<std::int64_t>(words), 0,
        [&](std::int64_t& acc, std::int64_t w) {
          const auto wi = static_cast<std::size_t>(w);
          std::uint64_t merged = 0;
          for (Bitmap& b : sources) {
            const std::uint64_t word = b.words()[wi];
            if (word != 0) {
              merged |= word;
              b.words()[wi] = 0;
            }
          }
          out[wi] = merged;
          acc += std::popcount(merged);
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    queue_.clear();
    next_.clear();
    rep_ = ActiveSetRep::Bitmap;
  } else {
    queue_.swap(next_);
    next_.clear();
    bits_.clear_parallel(pool);
    const auto queue_n = static_cast<std::int64_t>(queue_.size());
    if (queue_n < static_cast<std::int64_t>(kSerialScatterItems)) {
      for (const Vertex v : queue_) bits_.set(static_cast<std::size_t>(v));
    } else {
      // Arbitrary vertices share words, so the parallel rebuild needs the
      // atomic (relaxed fetch_or) bit sets.
      parallel_for(pool, 0, queue_n, [&](std::int64_t i) {
        bits_.set_atomic(
            static_cast<std::size_t>(queue_[static_cast<std::size_t>(i)]));
      });
    }
    rep_ = ActiveSetRep::Queue;
    count_ = queue_n;
  }
  pending_ = ActiveSetRep::Queue;
}

bool ActiveSet::ensure_queue() {
  if (rep_ == ActiveSetRep::Queue) return false;
  queue_.clear();
  queue_.reserve(static_cast<std::size_t>(count_));
  bits_.for_each_set(
      [&](std::size_t v) { queue_.push_back(static_cast<Vertex>(v)); });
  rep_ = ActiveSetRep::Queue;
  return true;
}

bool ActiveSet::ensure_queue(ThreadPool& pool) {
  if (rep_ == ActiveSetRep::Queue) return false;
  const std::size_t words = bits_.word_count();
  if (pool.size() <= 1 || words < kSerialWords) return ensure_queue();

  // Three passes over word blocks: popcount per block, serial exclusive
  // prefix over the (few) blocks, then scatter each block's set bits at
  // its offset. The queue comes out sorted by vertex id, which also gives
  // the next push superstep a cache-friendly dequeue order.
  constexpr std::size_t kBlockWords = 2048;  // 128 Ki vertices per block
  const std::size_t blocks = (words + kBlockWords - 1) / kBlockWords;
  std::vector<std::size_t> offsets(blocks + 1, 0);
  const std::span<const std::uint64_t> bits = bits_.words();
  parallel_for(pool, 0, static_cast<std::int64_t>(blocks),
               [&](std::int64_t block) {
                 const auto b = static_cast<std::size_t>(block);
                 const std::size_t lo = b * kBlockWords;
                 const std::size_t hi = std::min(words, lo + kBlockWords);
                 std::size_t count = 0;
                 for (std::size_t w = lo; w < hi; ++w)
                   count += std::popcount(bits[w]);
                 offsets[b + 1] = count;
               });
  for (std::size_t b = 0; b < blocks; ++b) offsets[b + 1] += offsets[b];
  SEMBFS_ASSERT(offsets[blocks] == static_cast<std::size_t>(count_));
  queue_.resize(offsets[blocks]);
  Vertex* const dst = queue_.data();
  parallel_for(pool, 0, static_cast<std::int64_t>(blocks),
               [&](std::int64_t block) {
                 const auto b = static_cast<std::size_t>(block);
                 const std::size_t lo = b * kBlockWords;
                 const std::size_t hi = std::min(words, lo + kBlockWords);
                 std::size_t at = offsets[b];
                 for (std::size_t w = lo; w < hi; ++w)
                   for_each_set_in_word(bits[w], w * 64, [&](std::size_t v) {
                     dst[at++] = static_cast<Vertex>(v);
                   });
               });
  rep_ = ActiveSetRep::Queue;
  return true;
}

std::uint64_t ActiveSet::byte_size() const noexcept {
  const auto n = static_cast<std::uint64_t>(n_);
  return (n + 7) / 8                                  // membership bitmap
         + worker_next_bits_.size() * ((n + 7) / 8)   // bitmap-mode next
         + (queue_.capacity() + next_.capacity()) * sizeof(Vertex);
}

}  // namespace sembfs::engine
