// Graph500 Step 4 — result validation.
//
// Checks the five spec properties of a claimed BFS tree:
//   1. the root's parent is itself and its level is 0;
//   2. every reached vertex has a reached parent exactly one level above;
//   3. both endpoints of every edge are either reached or unreached, and
//      reached endpoints differ by at most one level;
//   4. every reached non-root vertex's (vertex, parent) tree link is a real
//      edge of the graph;
//   5. the number of reached vertices matches the tree.
// The edge list may be streamed from NVM (the paper validates against the
// offloaded edge list) or supplied in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/external_edge_list.hpp"
#include "graph/types.hpp"

namespace sembfs {

struct ValidationResult {
  bool ok = true;
  std::string error;            ///< first failure description
  std::int64_t reached = 0;     ///< vertices with parent != -1
  std::int64_t edges_checked = 0;
  std::int64_t self_loops_skipped = 0;

  explicit operator bool() const noexcept { return ok; }
};

/// Core validator over a streaming edge source: `stream` must invoke its
/// callback for every edge batch of the graph exactly once.
ValidationResult validate_bfs(
    Vertex vertex_count, Vertex root, std::span<const Vertex> parent,
    std::span<const std::int32_t> level,
    const std::function<void(
        const std::function<void(std::span<const Edge>)>&)>& stream);

/// In-memory edge list convenience overload.
ValidationResult validate_bfs(const EdgeList& edges, Vertex root,
                              std::span<const Vertex> parent,
                              std::span<const std::int32_t> level);

/// NVM-resident edge list overload (streams in batches, paper Step 4).
ValidationResult validate_bfs(ExternalEdgeList& edges, Vertex root,
                              std::span<const Vertex> parent,
                              std::span<const std::int32_t> level);

}  // namespace sembfs
