#include "bfs/bottom_up.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "bfs/sweep.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {

struct TeamState {
  explicit TeamState(std::size_t nodes, std::size_t workers)
      : cursors(nodes), buffers(workers) {
    for (auto& c : cursors) c.store(0, std::memory_order_relaxed);
  }
  std::vector<std::atomic<std::int64_t>> cursors;  // offset within node range
  std::vector<std::vector<Vertex>> buffers;        // Queue output only
  std::atomic<std::int64_t> claimed{0};
  std::atomic<std::int64_t> scanned{0};
  std::atomic<std::uint64_t> nvm_requests{0};
  std::atomic<std::uint64_t> words_swept{0};
  std::atomic<std::uint64_t> words_skipped{0};
};

StepResult finish(TeamState& state, BfsStatus& status, ThreadPool& pool,
                  BottomUpOutput output) {
  if (output == BottomUpOutput::Queue)
    status.set_next_merged(state.buffers, pool);
  // Bitmap output: the claims are already in the per-worker bitmaps that
  // begin_bitmap_next() registered; advance() merges them word-wise.

  if (obs::enabled()) {
    static obs::Counter* const swept =
        &obs::metrics().counter("bfs.bottom_up.words_swept");
    static obs::Counter* const skipped =
        &obs::metrics().counter("bfs.bottom_up.words_skipped");
    swept->add(state.words_swept.load(std::memory_order_relaxed));
    skipped->add(state.words_skipped.load(std::memory_order_relaxed));
  }

  StepResult result;
  result.claimed = state.claimed.load(std::memory_order_relaxed);
  result.scanned_edges = state.scanned.load(std::memory_order_relaxed);
  result.nvm_requests = state.nvm_requests.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

StepResult bottom_up_step(const BackwardGraph& backward, BfsStatus& status,
                          std::int32_t level, const NumaTopology& topology,
                          ThreadPool& pool, std::int64_t chunk,
                          BottomUpOutput output, const DeltaBuffer* delta) {
  SEMBFS_EXPECTS(chunk >= 1);
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};
  if (output == BottomUpOutput::Bitmap) status.begin_bitmap_next(workers);
  const AtomicBitmap& visited = status.visited_bitmap();

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    Bitmap* const out_bits =
        output == BottomUpOutput::Bitmap ? &status.worker_next(w) : nullptr;
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;
    std::uint64_t local_swept = 0;
    std::uint64_t local_skipped = 0;

    for_each_assigned_node(w, workers, backward.node_count(), [&](std::size_t node) {
      const Csr& part = backward.partition(node);
      const VertexRange range = part.source_range();
      auto& cursor = state.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= range.size()) break;
        const std::int64_t hi =
            std::min<std::int64_t>(range.size(), lo + chunk);
        const auto [swept, skipped] = sweep_unvisited(
            visited, range.begin + lo, range.begin + hi, [&](Vertex vtx) {
              // Single-writer per vertex: each unvisited vertex is swept
              // by exactly one worker per level, so the plain
              // release-store claim needs no CAS.
              const auto claim = [&](Vertex candidate) {
                status.claim_bottom_up(vtx, candidate, level);
                if (out_bits != nullptr) {
                  out_bits->set(static_cast<std::size_t>(vtx));
                } else {
                  out.push_back(vtx);
                }
                ++local_claimed;
              };
              // Delta-inserted in-neighbors first: DRAM-cheap, and an
              // early exit here skips the base scan entirely.
              if (delta != nullptr && delta->has_inserts(vtx)) {
                for (const Vertex candidate : delta->inserted(vtx)) {
                  ++local_scanned;
                  if (status.in_frontier(candidate)) {
                    claim(candidate);
                    return;  // bottom-up early exit
                  }
                }
              }
              for (const Vertex candidate : part.neighbors(vtx)) {
                ++local_scanned;
                if (status.in_frontier(candidate) &&
                    (delta == nullptr ||
                     !delta->edge_removed(vtx, candidate))) {
                  claim(candidate);
                  break;  // bottom-up early exit
                }
              }
            });
        local_swept += swept;
        local_skipped += skipped;
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    state.words_swept.fetch_add(local_swept, std::memory_order_relaxed);
    state.words_skipped.fetch_add(local_skipped, std::memory_order_relaxed);
  });

  return finish(state, status, pool, output);
}

StepResult bottom_up_step_hybrid(HybridBackwardGraph& backward,
                                 BfsStatus& status, std::int32_t level,
                                 const NumaTopology& topology,
                                 ThreadPool& pool, std::int64_t chunk,
                                 BottomUpOutput output,
                                 const DeltaBuffer* delta) {
  SEMBFS_EXPECTS(chunk >= 1);
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};
  if (output == BottomUpOutput::Bitmap) status.begin_bitmap_next(workers);
  const AtomicBitmap& visited = status.visited_bitmap();

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    Bitmap* const out_bits =
        output == BottomUpOutput::Bitmap ? &status.worker_next(w) : nullptr;
    std::vector<Vertex> scratch;  // NVM chunk staging
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;
    std::uint64_t local_swept = 0;
    std::uint64_t local_skipped = 0;

    for_each_assigned_node(w, workers, backward.node_count(), [&](std::size_t node) {
      HybridBackwardPartition& part = backward.partition(node);
      const VertexRange range = part.source_range();
      auto& cursor = state.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= range.size()) break;
        const std::int64_t hi =
            std::min<std::int64_t>(range.size(), lo + chunk);
        const auto [swept, skipped] = sweep_unvisited(
            visited, range.begin + lo, range.begin + hi, [&](Vertex vtx) {
              const auto claim = [&](Vertex candidate) {
                status.claim_bottom_up(vtx, candidate, level);
                if (out_bits != nullptr) {
                  out_bits->set(static_cast<std::size_t>(vtx));
                } else {
                  out.push_back(vtx);
                }
                ++local_claimed;
              };
              // Delta-inserted in-neighbors first — DRAM-cheap, and an
              // early exit here avoids touching the NVM tail at all.
              if (delta != nullptr && delta->has_inserts(vtx)) {
                for (const Vertex candidate : delta->inserted(vtx)) {
                  ++local_scanned;
                  if (status.in_frontier(candidate)) {
                    claim(candidate);
                    return;
                  }
                }
              }
              part.visit_neighbors(vtx, scratch, [&](Vertex candidate) {
                ++local_scanned;
                if (status.in_frontier(candidate) &&
                    (delta == nullptr ||
                     !delta->edge_removed(vtx, candidate))) {
                  claim(candidate);
                  return false;  // stop scanning this vertex
                }
                return true;
              });
            });
        local_swept += swept;
        local_skipped += skipped;
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    state.words_swept.fetch_add(local_swept, std::memory_order_relaxed);
    state.words_skipped.fetch_add(local_skipped, std::memory_order_relaxed);
  });

  return finish(state, status, pool, output);
}

}  // namespace sembfs
