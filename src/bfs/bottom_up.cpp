#include "bfs/bottom_up.hpp"

#include <algorithm>
#include <atomic>

#include "util/contracts.hpp"

namespace sembfs {

namespace {

struct TeamState {
  explicit TeamState(std::size_t nodes, std::size_t workers)
      : cursors(nodes), buffers(workers) {}
  std::vector<std::atomic<std::int64_t>> cursors;  // offset within node range
  std::vector<std::vector<Vertex>> buffers;
  std::atomic<std::int64_t> claimed{0};
  std::atomic<std::int64_t> scanned{0};
  std::atomic<std::uint64_t> nvm_requests{0};
};

StepResult finish(TeamState& state, BfsStatus& status) {
  std::vector<Vertex> next;
  std::size_t total = 0;
  for (const auto& b : state.buffers) total += b.size();
  next.reserve(total);
  for (const auto& b : state.buffers)
    next.insert(next.end(), b.begin(), b.end());
  status.set_next(std::move(next));

  StepResult result;
  result.claimed = state.claimed.load(std::memory_order_relaxed);
  result.scanned_edges = state.scanned.load(std::memory_order_relaxed);
  result.nvm_requests = state.nvm_requests.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

StepResult bottom_up_step(const BackwardGraph& backward, BfsStatus& status,
                          std::int32_t level, const NumaTopology& topology,
                          ThreadPool& pool, std::int64_t chunk) {
  SEMBFS_EXPECTS(chunk >= 1);
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};
  for (auto& c : state.cursors) c.store(0, std::memory_order_relaxed);

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;

    for_each_assigned_node(w, workers, backward.node_count(), [&](std::size_t node) {
      const Csr& part = backward.partition(node);
      const VertexRange range = part.source_range();
      auto& cursor = state.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= range.size()) break;
        const std::int64_t hi =
            std::min<std::int64_t>(range.size(), lo + chunk);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex vtx = range.begin + i;
          if (status.is_visited(vtx)) continue;
          for (const Vertex candidate : part.neighbors(vtx)) {
            ++local_scanned;
            if (status.in_frontier(candidate)) {
              // Single-writer per vertex: each unvisited vertex is swept by
              // exactly one worker per level, so the claim must succeed.
              const bool won = status.claim(vtx, candidate, level);
              SEMBFS_ASSERT(won);
              out.push_back(vtx);
              ++local_claimed;
              break;  // bottom-up early exit
            }
          }
        }
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
  });

  return finish(state, status);
}

StepResult bottom_up_step_hybrid(HybridBackwardGraph& backward,
                                 BfsStatus& status, std::int32_t level,
                                 const NumaTopology& topology,
                                 ThreadPool& pool, std::int64_t chunk) {
  SEMBFS_EXPECTS(chunk >= 1);
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};
  for (auto& c : state.cursors) c.store(0, std::memory_order_relaxed);

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    std::vector<Vertex> scratch;  // NVM chunk staging
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;

    for_each_assigned_node(w, workers, backward.node_count(), [&](std::size_t node) {
      HybridBackwardPartition& part = backward.partition(node);
      const VertexRange range = part.source_range();
      auto& cursor = state.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= range.size()) break;
        const std::int64_t hi =
            std::min<std::int64_t>(range.size(), lo + chunk);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex vtx = range.begin + i;
          if (status.is_visited(vtx)) continue;
          part.visit_neighbors(vtx, scratch, [&](Vertex candidate) {
            ++local_scanned;
            if (status.in_frontier(candidate)) {
              const bool won = status.claim(vtx, candidate, level);
              SEMBFS_ASSERT(won);
              out.push_back(vtx);
              ++local_claimed;
              return false;  // stop scanning this vertex
            }
            return true;
          });
        }
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
  });

  return finish(state, status);
}

}  // namespace sembfs
