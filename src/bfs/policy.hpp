// Direction-switching policies for hybrid BFS.
//
// The paper's rule (Section III-C), with thresholds alpha and beta:
//   top-down -> bottom-up when the frontier is GROWING and
//       n_frontier(i) > n_all / alpha
//   bottom-up -> top-down when the frontier is SHRINKING and
//       n_frontier(i) < n_all / beta
//
// Beamer's original edge-count heuristic (SC'12) is provided as an
// extension for the ablation bench: switch TD->BU when m_f > m_u / alpha_b
// and BU->TD when the frontier is SHRINKING and n_f < n / beta_b, where
// m_f = edges incident to the frontier and m_u = edges incident to
// unvisited vertices. The shrinking precondition on the BU->TD edge is the
// same Section III-C guard the frontier-ratio rule applies — both rules
// must refuse to switch back while the frontier is still growing.
#pragma once

#include <cstdint>

#include "bfs/level_stats.hpp"

namespace sembfs {

enum class PolicyKind {
  FrontierRatio,  ///< the paper's rule (frontier-size based)
  EdgeRatio,      ///< Beamer's rule (edge-count based)
};

/// Everything a policy may look at when deciding the next direction.
struct PolicyInput {
  Direction current = Direction::TopDown;
  std::int64_t n_all = 0;             ///< total vertices
  std::int64_t prev_frontier = 0;     ///< n_frontier(i-1)
  std::int64_t cur_frontier = 0;      ///< n_frontier(i)
  std::int64_t frontier_edges = 0;    ///< m_f (EdgeRatio only)
  std::int64_t unvisited_edges = 0;   ///< m_u (EdgeRatio only)
};

struct SwitchPolicy {
  PolicyKind kind = PolicyKind::FrontierRatio;
  double alpha = 1e4;
  double beta = 1e5;

  /// Direction for the NEXT level given this level's outcome.
  [[nodiscard]] Direction decide(const PolicyInput& in) const noexcept;
};

}  // namespace sembfs
