// Cooperative cancellation and deadlines for level-stepped searches.
//
// A CancelToken is the one-way channel from a query's owner (a client
// thread, the serving engine's admission logic) to the search executing it.
// The search never blocks on the token: BfsSession::step() — and the
// serving engine between MS-BFS levels — polls should_stop() at level
// granularity and winds down cleanly, leaving the partial BFS state valid
// for snapshot_result(). Level granularity is deliberate: a level is the
// natural preemption point of the level-synchronous driver, and checking
// any finer would put an atomic load inside the per-edge hot loops.
//
// Thread-safety: request_cancel() may be called from any thread at any
// time, concurrently with the search polling the token. set_deadline() is
// an owner-side setup call — make it before handing the token to a search
// (the serving engine sets it at admission time, which charges queue wait
// against the deadline).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace sembfs {

/// Why a polling search stopped early (BfsSession::stop_reason()).
enum class StopReason {
  None,       ///< not stopped — the search ran to exhaustion
  Cancelled,  ///< request_cancel() was observed
  Deadline,   ///< the token's deadline passed
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cooperative stop; safe from any thread, idempotent.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms an absolute deadline. Owner-side setup: call before the search
  /// starts polling. A zero time_point (the default) means no deadline.
  void set_deadline(std::chrono::steady_clock::time_point t) noexcept {
    deadline_ns_.store(t.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  /// Convenience: deadline `ms` milliseconds from now (<= 0 disarms).
  void set_deadline_after_ms(double ms) noexcept {
    if (ms <= 0.0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds{
                     static_cast<std::int64_t>(ms * 1e6)});
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  /// Milliseconds until the armed deadline (negative once past); +infinity
  /// when no deadline is armed. Owner-side read — the serving engine's
  /// batch planner uses it as the slack term of its captured input.
  [[nodiscard]] double deadline_remaining_ms() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return std::numeric_limits<double>::infinity();
    const std::int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    return static_cast<double>(d - now) * 1e-6;
  }
  [[nodiscard]] bool deadline_expired() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  /// The poll the search runs between levels: one atomic load when idle,
  /// plus a clock read only while a deadline is armed.
  [[nodiscard]] StopReason should_stop() const noexcept {
    if (cancel_requested()) return StopReason::Cancelled;
    if (deadline_expired()) return StopReason::Deadline;
    return StopReason::None;
  }

  /// Re-arms the token for reuse (slot-pooled queries). Owner-side only —
  /// never while a search is polling.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock ns-since-epoch; 0 = no deadline.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace sembfs
