#include "bfs/validate.hpp"

#include <cstdio>

namespace sembfs {

namespace {

std::string describe_vertex(const char* what, Vertex v) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s (vertex %lld)", what,
                static_cast<long long>(v));
  return buf;
}

}  // namespace

ValidationResult validate_bfs(
    Vertex vertex_count, Vertex root, std::span<const Vertex> parent,
    std::span<const std::int32_t> level,
    const std::function<void(
        const std::function<void(std::span<const Edge>)>&)>& stream) {
  ValidationResult result;
  auto fail = [&](std::string message) {
    if (result.ok) {
      result.ok = false;
      result.error = std::move(message);
    }
  };

  if (parent.size() != static_cast<std::size_t>(vertex_count) ||
      level.size() != static_cast<std::size_t>(vertex_count)) {
    fail("parent/level array size mismatch");
    return result;
  }
  if (root < 0 || root >= vertex_count) {
    fail("root out of range");
    return result;
  }

  // Property 1: root self-parented at level 0.
  if (parent[static_cast<std::size_t>(root)] != root)
    fail("root is not its own parent");
  if (level[static_cast<std::size_t>(root)] != 0)
    fail("root level is not 0");

  // Property 2: parent/level consistency for every reached vertex.
  for (Vertex w = 0; w < vertex_count; ++w) {
    const Vertex p = parent[static_cast<std::size_t>(w)];
    const std::int32_t lw = level[static_cast<std::size_t>(w)];
    if (p == kNoVertex) {
      if (lw != -1) fail(describe_vertex("unreached vertex has a level", w));
      continue;
    }
    ++result.reached;
    if (w == root) continue;
    if (p < 0 || p >= vertex_count) {
      fail(describe_vertex("parent out of range", w));
      continue;
    }
    if (parent[static_cast<std::size_t>(p)] == kNoVertex)
      fail(describe_vertex("parent of reached vertex is unreached", w));
    if (lw <= 0 || lw >= static_cast<std::int32_t>(vertex_count))
      fail(describe_vertex("level out of range", w));
    if (lw != level[static_cast<std::size_t>(p)] + 1)
      fail(describe_vertex("level is not parent level + 1", w));
  }

  // Properties 3 and 4 need one pass over the edge list.
  std::vector<std::uint8_t> tree_edge_seen(
      static_cast<std::size_t>(vertex_count), 0);
  stream([&](std::span<const Edge> batch) {
    for (const Edge& e : batch) {
      if (e.u == e.v) {
        ++result.self_loops_skipped;
        continue;
      }
      ++result.edges_checked;
      const bool u_reached =
          parent[static_cast<std::size_t>(e.u)] != kNoVertex;
      const bool v_reached =
          parent[static_cast<std::size_t>(e.v)] != kNoVertex;
      if (u_reached != v_reached)
        fail("edge spans reached and unreached vertices (" +
             std::to_string(e.u) + "," + std::to_string(e.v) + ")");
      if (u_reached && v_reached) {
        const std::int32_t lu = level[static_cast<std::size_t>(e.u)];
        const std::int32_t lv = level[static_cast<std::size_t>(e.v)];
        if (lu - lv > 1 || lv - lu > 1)
          fail("edge endpoints more than one level apart (" +
               std::to_string(e.u) + "," + std::to_string(e.v) + ")");
      }
      if (parent[static_cast<std::size_t>(e.u)] == e.v)
        tree_edge_seen[static_cast<std::size_t>(e.u)] = 1;
      if (parent[static_cast<std::size_t>(e.v)] == e.u)
        tree_edge_seen[static_cast<std::size_t>(e.v)] = 1;
    }
  });

  for (Vertex w = 0; w < vertex_count; ++w) {
    if (w == root) continue;
    if (parent[static_cast<std::size_t>(w)] != kNoVertex &&
        tree_edge_seen[static_cast<std::size_t>(w)] == 0)
      fail(describe_vertex("tree link is not an edge of the graph", w));
  }

  return result;
}

ValidationResult validate_bfs(const EdgeList& edges, Vertex root,
                              std::span<const Vertex> parent,
                              std::span<const std::int32_t> level) {
  return validate_bfs(
      edges.vertex_count(), root, parent, level,
      [&](const std::function<void(std::span<const Edge>)>& sink) {
        sink(edges.edges());
      });
}

ValidationResult validate_bfs(ExternalEdgeList& edges, Vertex root,
                              std::span<const Vertex> parent,
                              std::span<const std::int32_t> level) {
  return validate_bfs(
      edges.vertex_count(), root, parent, level,
      [&](const std::function<void(std::span<const Edge>)>& sink) {
        edges.for_each_batch(1 << 16, [&](std::span<const Edge> batch) {
          sink(batch);
        });
      });
}

}  // namespace sembfs
