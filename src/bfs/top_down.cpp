#include "bfs/top_down.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/contracts.hpp"

namespace sembfs {

namespace {

// Shared state for one top-down level: per-node frontier cursors and
// per-worker output buffers, merged on the pool at the end of the level.
struct TeamState {
  explicit TeamState(std::size_t nodes, std::size_t workers)
      : cursors(nodes), buffers(workers) {
    for (auto& c : cursors) c.store(0, std::memory_order_relaxed);
  }
  std::vector<std::atomic<std::int64_t>> cursors;
  std::vector<std::vector<Vertex>> buffers;
  std::atomic<std::int64_t> claimed{0};
  std::atomic<std::int64_t> scanned{0};
  std::atomic<std::uint64_t> nvm_requests{0};
  std::atomic<std::uint64_t> io_failures{0};
  std::atomic<bool> abort{false};

  /// Contains one adjacency-fetch failure: counts it and, past the budget,
  /// tells every worker to stop claiming batches. Exceptions never cross
  /// the thread-pool boundary.
  void contain_failure(std::uint64_t budget) noexcept {
    const std::uint64_t failed =
        io_failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (failed > budget) abort.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool aborted() const noexcept {
    return abort.load(std::memory_order_relaxed);
  }
};

StepResult finish(TeamState& state, BfsStatus& status, ThreadPool& pool) {
  status.set_next_merged(state.buffers, pool);

  StepResult result;
  result.claimed = state.claimed.load(std::memory_order_relaxed);
  result.scanned_edges = state.scanned.load(std::memory_order_relaxed);
  result.nvm_requests = state.nvm_requests.load(std::memory_order_relaxed);
  result.io_failures = state.io_failures.load(std::memory_order_relaxed);
  result.aborted = state.abort.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

StepResult top_down_step(const ForwardGraph& forward, BfsStatus& status,
                         std::int32_t level, const NumaTopology& topology,
                         ThreadPool& pool, int batch_size,
                         const DeltaBuffer* delta) {
  SEMBFS_EXPECTS(batch_size >= 1);
  const auto& frontier = status.frontier();
  const auto frontier_n = static_cast<std::int64_t>(frontier.size());
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;

    const auto expand = [&](Vertex v, Vertex dst) {
      ++local_scanned;
      if (!status.is_visited(dst) && status.claim(dst, v, level)) {
        out.push_back(dst);
        ++local_claimed;
      }
    };

    for_each_assigned_node(w, workers, forward.node_count(), [&](std::size_t node) {
      const Csr& part = forward.partition(node);
      auto& cursor = state.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(batch_size, std::memory_order_relaxed);
        if (lo >= frontier_n) break;
        const std::int64_t hi =
            std::min<std::int64_t>(frontier_n, lo + batch_size);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex v = frontier[static_cast<std::size_t>(i)];
          if (delta == nullptr || !delta->touches(v)) {
            for (const Vertex dst : part.neighbors(v)) expand(v, dst);
          } else {
            delta->for_each_merged(v, part.neighbors(v),
                                   part.destination_range(),
                                   [&](Vertex dst) { expand(v, dst); });
          }
        }
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
  });

  return finish(state, status, pool);
}

StepResult top_down_step_external(ExternalForwardGraph& forward,
                                  BfsStatus& status, std::int32_t level,
                                  const NumaTopology& topology,
                                  ThreadPool& pool,
                                  const ExternalTopDownOptions& options) {
  SEMBFS_EXPECTS(options.batch_size >= 1);
  const int batch_size = options.batch_size;
  const auto& frontier = status.frontier();
  const auto frontier_n = static_cast<std::int64_t>(frontier.size());
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    std::vector<Vertex> scratch;                  // per-vertex staging
    std::vector<std::vector<Vertex>> batch_adj;   // aggregated staging
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;
    std::uint64_t local_requests = 0;

    const auto expand = [&](Vertex v, Vertex dst) {
      ++local_scanned;
      if (!status.is_visited(dst) && status.claim(dst, v, level)) {
        out.push_back(dst);
        ++local_claimed;
      }
    };

    for_each_assigned_node(w, workers, forward.node_count(), [&](std::size_t node) {
      ExternalCsrPartition& part = forward.partition(node);
      const auto process = [&](Vertex v, std::span<const Vertex> adjacency) {
        if (options.delta == nullptr || !options.delta->touches(v)) {
          for (const Vertex dst : adjacency) expand(v, dst);
        } else {
          options.delta->for_each_merged(
              v, adjacency, part.destination_range(),
              [&](Vertex dst) { expand(v, dst); });
        }
      };
      auto& cursor = state.cursors[node];
      const auto claim_batch = [&]() -> std::span<const Vertex> {
        if (state.aborted()) return {};  // budget exceeded: stop claiming
        const std::int64_t lo =
            cursor.fetch_add(batch_size, std::memory_order_relaxed);
        if (lo >= frontier_n) return {};
        const std::int64_t hi =
            std::min<std::int64_t>(frontier_n, lo + batch_size);
        return {frontier.data() + lo, static_cast<std::size_t>(hi - lo)};
      };
      if (options.aggregate_io && options.scheduler != nullptr) {
        // Double-buffered prefetch: batch k+1's merged value reads are in
        // flight on the scheduler while batch k's edges are processed. A
        // failed start (the inline index phase can throw) yields an
        // invalid pending batch; the batch is skipped and counted.
        const auto start =
            [&](std::span<const Vertex> b) -> PendingNeighborsBatch {
          if (b.empty()) return {};
          try {
            return part.start_fetch_neighbors_batch(
                b, *options.scheduler, options.merge_gap_bytes,
                options.max_request_bytes);
          } catch (const std::exception&) {
            state.contain_failure(options.io_error_budget);
            return {};
          }
        };
        std::span<const Vertex> batch = claim_batch();
        PendingNeighborsBatch pending = start(batch);
        while (!batch.empty()) {
          const std::span<const Vertex> next = claim_batch();
          PendingNeighborsBatch next_pending = start(next);
          if (pending.valid()) {
            try {
              local_requests += pending.wait(batch_adj);
              for (std::size_t i = 0; i < batch.size(); ++i)
                process(batch[i], batch_adj[i]);
            } catch (const std::exception&) {
              state.contain_failure(options.io_error_budget);
            }
          }
          batch = next;
          pending = std::move(next_pending);
        }
      } else if (options.aggregate_io) {
        for (std::span<const Vertex> batch = claim_batch(); !batch.empty();
             batch = claim_batch()) {
          try {
            local_requests += part.fetch_neighbors_batch(
                batch, batch_adj, options.merge_gap_bytes,
                options.max_request_bytes);
          } catch (const std::exception&) {
            state.contain_failure(options.io_error_budget);
            continue;  // batch unexpanded; the level is marked incomplete
          }
          for (std::size_t i = 0; i < batch.size(); ++i)
            process(batch[i], batch_adj[i]);
        }
      } else {
        for (std::span<const Vertex> batch = claim_batch(); !batch.empty();
             batch = claim_batch()) {
          for (const Vertex v : batch) {
            if (state.aborted()) break;
            try {
              local_requests += part.fetch_neighbors(v, scratch);
            } catch (const std::exception&) {
              state.contain_failure(options.io_error_budget);
              continue;  // v unexpanded; the level is marked incomplete
            }
            process(v, scratch);
          }
        }
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    state.nvm_requests.fetch_add(local_requests, std::memory_order_relaxed);
  });

  return finish(state, status, pool);
}

StepResult top_down_step_tiered(TieredForwardGraph& forward,
                                BfsStatus& status, std::int32_t level,
                                const NumaTopology& topology,
                                ThreadPool& pool, int batch_size,
                                const DeltaBuffer* delta) {
  SEMBFS_EXPECTS(batch_size >= 1);
  const auto& frontier = status.frontier();
  const auto frontier_n = static_cast<std::int64_t>(frontier.size());
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  TeamState state{topology.node_count(), workers};

  pool.run(workers, [&](std::size_t w) {
    auto& out = state.buffers[w];
    std::vector<Vertex> scratch;
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;
    std::uint64_t local_requests = 0;

    const auto expand = [&](Vertex v, Vertex dst) {
      ++local_scanned;
      if (!status.is_visited(dst) && status.claim(dst, v, level)) {
        out.push_back(dst);
        ++local_claimed;
      }
    };

    for_each_assigned_node(w, workers, forward.node_count(), [&](std::size_t node) {
      TieredForwardPartition& part = forward.partition(node);
      // Tiered partitions carry the same destination filter as the forward
      // partition they were split from: node k's vertex range.
      const VertexRange dest = forward.vertex_partition().range_of(node);
      auto& cursor = state.cursors[node];
      for (;;) {
        if (state.aborted()) break;
        const std::int64_t lo =
            cursor.fetch_add(batch_size, std::memory_order_relaxed);
        if (lo >= frontier_n) break;
        const std::int64_t hi =
            std::min<std::int64_t>(frontier_n, lo + batch_size);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex v = frontier[static_cast<std::size_t>(i)];
          // Only hub adjacencies touch the device; a failed fetch is
          // contained like in the external step (first failure aborts).
          try {
            local_requests += part.fetch_neighbors(v, scratch);
          } catch (const std::exception&) {
            state.contain_failure(0);
            continue;
          }
          if (delta == nullptr || !delta->touches(v)) {
            for (const Vertex dst : scratch) expand(v, dst);
          } else {
            delta->for_each_merged(v, scratch, dest,
                                   [&](Vertex dst) { expand(v, dst); });
          }
        }
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    state.nvm_requests.fetch_add(local_requests, std::memory_order_relaxed);
  });

  return finish(state, status, pool);
}

}  // namespace sembfs
