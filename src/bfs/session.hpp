// Level-stepped BFS session: the hybrid driver's loop body exposed one
// level at a time, so callers can stop early (k-hop neighborhoods),
// inspect state between levels, or interleave their own work. This is the
// single implementation of the level loop — HybridBfsRunner::run() is a
// thin wrapper that steps a session to completion.
#pragma once

#include <cstdint>
#include <vector>

#include "bfs/bfs_status.hpp"
#include "bfs/hybrid_bfs.hpp"
#include "bfs/level_stats.hpp"
#include "numa/topology.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

class BfsSession {
 public:
  /// Borrows `status` (reset to `root`); the caller keeps ownership so a
  /// runner can reuse one status block across many searches.
  BfsSession(GraphStorage storage, const NumaTopology& topology,
             ThreadPool& pool, BfsStatus& status, Vertex root,
             const BfsConfig& config);

  /// Executes ONE level. Returns true if the search can continue (the new
  /// frontier is non-empty), false when exhausted. No-op after done().
  /// With config.cancel set, polls the token first: a fired token ends the
  /// search before the level runs (stop_reason() reports why) and the
  /// partial traversal stays valid for snapshot_result().
  bool step();

  [[nodiscard]] bool done() const noexcept { return done_; }
  /// Why the session stopped early, or StopReason::None when it ran (or is
  /// still running) to frontier exhaustion.
  [[nodiscard]] StopReason stop_reason() const noexcept {
    return stop_reason_;
  }
  /// The level step() would execute next (1 after construction).
  [[nodiscard]] std::int32_t next_level() const noexcept { return level_; }
  /// Direction the next step() will take.
  [[nodiscard]] Direction next_direction() const noexcept {
    return direction_;
  }
  [[nodiscard]] const BfsStatus& status() const noexcept { return *status_; }
  [[nodiscard]] const std::vector<LevelStats>& levels() const noexcept {
    return level_stats_;
  }
  [[nodiscard]] std::int64_t frontier_size() const noexcept {
    return status_->frontier_size();
  }

  /// Assembles the BfsResult for whatever has been traversed so far —
  /// valid both after completion and mid-search (k-hop truncation). The
  /// recorded `seconds` covers step() work only.
  BfsResult snapshot_result() const;

 private:
  GraphStorage storage_;
  NumaTopology topology_;  ///< by value: ctor arg may be a temporary
  ThreadPool& pool_;
  BfsStatus* status_;
  BfsConfig config_;
  Vertex root_;

  /// Completes the current level via the DRAM bottom-up direction after a
  /// failed top-down step, preserving the step's partial claims. Returns
  /// the fallback step's result.
  StepResult degrade_level();

  /// Resolves config_.frontier_mode into a per-level output choice for the
  /// bottom-up step (Auto is density-driven; see FrontierMode).
  [[nodiscard]] BottomUpOutput bottom_up_output(
      std::int64_t cur_frontier) const noexcept;

  Direction direction_ = Direction::TopDown;
  std::int32_t level_ = 1;
  bool done_ = false;
  StopReason stop_reason_ = StopReason::None;
  double elapsed_seconds_ = 0.0;
  std::int64_t scanned_top_down_ = 0;
  std::int64_t scanned_bottom_up_ = 0;
  std::uint64_t nvm_requests_ = 0;
  std::uint64_t io_failures_ = 0;
  std::int32_t degraded_levels_ = 0;
  std::int64_t frontier_edges_ = 0;
  std::int64_t unvisited_edges_ = 0;
  std::vector<LevelStats> level_stats_;

  /// Run id within config_.trace (0 when tracing is off).
  int trace_run_ = 0;

  // Observability handles (global registry), resolved once at construction.
  obs::Counter* obs_levels_;
  obs::Counter* obs_top_down_levels_;
  obs::Counter* obs_bottom_up_levels_;
  obs::Counter* obs_degraded_levels_;
  obs::Counter* obs_direction_switches_;
  obs::Counter* obs_io_failures_;
  obs::Counter* obs_frontier_conversions_;
  obs::Counter* obs_bitmap_levels_;
  obs::Histogram* obs_level_us_;
};

}  // namespace sembfs
