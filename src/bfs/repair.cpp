#include "bfs/repair.hpp"

#include <algorithm>
#include <utility>

#include "bfs/sweep.hpp"
#include "util/bitmap.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

namespace {

/// Pending wave members, bucketed by candidate level. Levels only ever
/// decrease during repair, so buckets are processed strictly ascending.
struct WaveBuckets {
  std::vector<std::vector<Vertex>> by_level;

  void push(std::int32_t l, Vertex v) {
    const auto idx = static_cast<std::size_t>(l);
    if (idx >= by_level.size()) by_level.resize(idx + 1);
    by_level[idx].push_back(v);
  }
};

}  // namespace

RepairOutcome repair_bfs_levels(const BackwardGraph& backward,
                                const DeltaBuffer& delta, Vertex root,
                                std::vector<std::int32_t>& level,
                                std::vector<Vertex>& parent) {
  RepairOutcome out;
  const Vertex n = backward.vertex_count();
  if (delta.has_deletes()) {
    out.reason = "delta contains deletions";
    return out;
  }
  if (static_cast<Vertex>(level.size()) != n) {
    out.reason = "level array does not cover the graph";
    return out;
  }
  if (!parent.empty() && static_cast<Vertex>(parent.size()) != n) {
    out.reason = "parent array does not cover the graph";
    return out;
  }
  if (root < 0 || root >= n || level[static_cast<std::size_t>(root)] != 0) {
    out.reason = "result is not a complete traversal from root";
    return out;
  }

  Timer timer;

  // Seeds: each inserted pair may open a shortcut in either direction.
  // done starts all-set; punching a bit makes the vertex a wave member.
  AtomicBitmap done{static_cast<std::size_t>(n)};
  done.fill();
  WaveBuckets waves;
  std::int32_t first_wave = -1;

  const auto relax = [&](Vertex from, Vertex to) {
    const auto fi = static_cast<std::size_t>(from);
    const auto ti = static_cast<std::size_t>(to);
    if (level[fi] < 0) return;  // `from` unreached: nothing to propagate
    const std::int32_t cand = level[fi] + 1;
    if (level[ti] >= 0 && level[ti] <= cand) return;
    if (level[ti] < 0) ++out.newly_reached;
    level[ti] = cand;
    if (!parent.empty()) parent[ti] = from;
    ++out.relaxed;
    waves.push(cand, to);
    done.try_reset(ti);  // may already be punched at a superseded level
    if (first_wave < 0 || cand < first_wave) first_wave = cand;
  };

  for (const Edge& e : delta.inserted_edges()) {
    SEMBFS_EXPECTS(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n);
    ++out.seeds;
    relax(e.u, e.v);
    relax(e.v, e.u);
  }

  // Ascending wave relaxation. A member whose level no longer equals the
  // wave was superseded by a shorter path; its punch is re-set lazily so
  // later sweeps skip its word again.
  for (std::int32_t l = first_wave;
       first_wave >= 0 &&
       l < static_cast<std::int32_t>(waves.by_level.size());
       ++l) {
    std::vector<Vertex> members =
        std::move(waves.by_level[static_cast<std::size_t>(l)]);
    if (members.empty()) continue;
    ++out.waves;
    const auto [lo_it, hi_it] =
        std::minmax_element(members.begin(), members.end());
    const auto [swept, skipped] = sweep_unvisited(
        done, *lo_it, *hi_it + 1, [&](Vertex v) {
          const auto vi = static_cast<std::size_t>(v);
          if (level[vi] != l) return;  // stale or future-wave punch
          done.set(vi);
          // Merged-view out-neighbors: the base backward graph carries the
          // complete per-vertex adjacency (in == out, undirected), and the
          // insert-only delta appends the fresh copies — shortcuts may
          // chain through several inserted edges inside one repair.
          delta.for_each_merged(v, backward.neighbors(v),
                                [&](Vertex w) { relax(v, w); });
        });
    out.words_swept += swept;
    out.words_skipped += skipped;
  }

  out.repaired = true;
  out.seconds = timer.seconds();
  return out;
}

}  // namespace sembfs
