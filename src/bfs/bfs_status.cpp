#include "bfs/bfs_status.hpp"

#include <algorithm>
#include <bit>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {
// Below these sizes a fork/join costs more than the work it spreads.
constexpr std::size_t kSerialScatterItems = 1 << 14;
constexpr std::size_t kSerialWords = 1 << 13;  // 64 KiB of bitmap
}  // namespace

BfsStatus::BfsStatus(Vertex vertex_count)
    : n_(vertex_count),
      parent_(static_cast<std::size_t>(vertex_count)),
      level_(static_cast<std::size_t>(vertex_count), -1),
      visited_(static_cast<std::size_t>(vertex_count)),
      frontier_bits_(static_cast<std::size_t>(vertex_count)) {
  SEMBFS_EXPECTS(vertex_count >= 1);
}

void BfsStatus::reset(Vertex root) {
  SEMBFS_EXPECTS(root >= 0 && root < n_);
  for (auto& p : parent_) p.store(kNoVertex, std::memory_order_relaxed);
  std::fill(level_.begin(), level_.end(), -1);
  visited_.clear();
  frontier_bits_.clear();
  frontier_.clear();
  next_.clear();
  // Defensive: a session abandoned mid-level can leave worker bits set.
  for (Bitmap& b : worker_next_bits_) b.clear();
  rep_ = FrontierRep::Queue;
  pending_ = FrontierRep::Queue;
  frontier_count_ = 1;

  parent_[static_cast<std::size_t>(root)].store(root,
                                                std::memory_order_relaxed);
  level_[static_cast<std::size_t>(root)] = 0;
  visited_.set(static_cast<std::size_t>(root));
  frontier_.push_back(root);
  frontier_bits_.set(static_cast<std::size_t>(root));
}

void BfsStatus::set_next_merged(std::vector<std::vector<Vertex>>& buffers,
                                ThreadPool& pool) {
  std::vector<std::size_t> offsets(buffers.size() + 1, 0);
  for (std::size_t b = 0; b < buffers.size(); ++b)
    offsets[b + 1] = offsets[b] + buffers[b].size();
  const std::size_t total = offsets.back();
  next_.resize(total);
  pending_ = FrontierRep::Queue;
  if (total == 0) return;

  Vertex* const dst = next_.data();
  if (total < kSerialScatterItems || pool.size() <= 1) {
    for (std::size_t b = 0; b < buffers.size(); ++b)
      std::copy(buffers[b].begin(), buffers[b].end(), dst + offsets[b]);
    return;
  }
  // One scatter task per buffer: buffers are per-worker, so their count
  // matches the pool's parallelism and their sizes are roughly balanced
  // (the step's dynamic chunk cursor load-balanced the claims).
  const std::size_t tasks = buffers.size();
  pool.run(std::min(pool.size(), tasks), [&](std::size_t w) {
    for (std::size_t b = w; b < tasks; b += pool.size())
      std::copy(buffers[b].begin(), buffers[b].end(), dst + offsets[b]);
  });
}

void BfsStatus::begin_bitmap_next(std::size_t workers) {
  SEMBFS_EXPECTS(workers >= 1);
  while (worker_next_bits_.size() < workers)
    worker_next_bits_.emplace_back(static_cast<std::size_t>(n_));
  pending_ = FrontierRep::Bitmap;
}

void BfsStatus::advance_queue_serial() {
  frontier_.swap(next_);
  next_.clear();
  frontier_bits_.clear();
  for (const Vertex v : frontier_)
    frontier_bits_.set(static_cast<std::size_t>(v));
  rep_ = FrontierRep::Queue;
  frontier_count_ = static_cast<std::int64_t>(frontier_.size());
}

void BfsStatus::advance_bitmap_serial() {
  const std::size_t words = frontier_bits_.word_count();
  const std::span<std::uint64_t> out = frontier_bits_.words();
  std::int64_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t acc = 0;
    for (Bitmap& b : worker_next_bits_) {
      const std::uint64_t word = b.words()[w];
      if (word != 0) {
        acc |= word;
        b.words()[w] = 0;  // restore the all-zero invariant for reuse
      }
    }
    out[w] = acc;
    count += std::popcount(acc);
  }
  frontier_.clear();
  next_.clear();
  rep_ = FrontierRep::Bitmap;
  frontier_count_ = count;
}

void BfsStatus::advance() {
  if (pending_ == FrontierRep::Bitmap) {
    advance_bitmap_serial();
  } else {
    advance_queue_serial();
  }
  pending_ = FrontierRep::Queue;
}

void BfsStatus::advance(ThreadPool& pool) {
  const std::size_t words = frontier_bits_.word_count();
  if (pool.size() <= 1 || words < kSerialWords) {
    advance();
    return;
  }
  if (pending_ == FrontierRep::Bitmap) {
    // Word-parallel OR-merge of the per-worker bitmaps, counting as we go
    // and clearing the sources for the next bitmap level.
    const std::span<std::uint64_t> out = frontier_bits_.words();
    std::vector<Bitmap>& sources = worker_next_bits_;
    frontier_count_ = parallel_reduce<std::int64_t>(
        pool, 0, static_cast<std::int64_t>(words), 0,
        [&](std::int64_t& acc, std::int64_t w) {
          const auto wi = static_cast<std::size_t>(w);
          std::uint64_t merged = 0;
          for (Bitmap& b : sources) {
            const std::uint64_t word = b.words()[wi];
            if (word != 0) {
              merged |= word;
              b.words()[wi] = 0;
            }
          }
          out[wi] = merged;
          acc += std::popcount(merged);
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    frontier_.clear();
    next_.clear();
    rep_ = FrontierRep::Bitmap;
  } else {
    frontier_.swap(next_);
    next_.clear();
    frontier_bits_.clear_parallel(pool);
    const auto frontier_n = static_cast<std::int64_t>(frontier_.size());
    if (frontier_n < static_cast<std::int64_t>(kSerialScatterItems)) {
      for (const Vertex v : frontier_)
        frontier_bits_.set(static_cast<std::size_t>(v));
    } else {
      // Arbitrary vertices share words, so the parallel rebuild needs the
      // atomic (relaxed fetch_or) bit sets.
      parallel_for(pool, 0, frontier_n, [&](std::int64_t i) {
        frontier_bits_.set_atomic(
            static_cast<std::size_t>(frontier_[static_cast<std::size_t>(i)]));
      });
    }
    rep_ = FrontierRep::Queue;
    frontier_count_ = frontier_n;
  }
  pending_ = FrontierRep::Queue;
}

bool BfsStatus::ensure_frontier_queue() {
  if (rep_ == FrontierRep::Queue) return false;
  frontier_.clear();
  frontier_.reserve(static_cast<std::size_t>(frontier_count_));
  frontier_bits_.for_each_set(
      [&](std::size_t v) { frontier_.push_back(static_cast<Vertex>(v)); });
  rep_ = FrontierRep::Queue;
  return true;
}

bool BfsStatus::ensure_frontier_queue(ThreadPool& pool) {
  if (rep_ == FrontierRep::Queue) return false;
  const std::size_t words = frontier_bits_.word_count();
  if (pool.size() <= 1 || words < kSerialWords) return ensure_frontier_queue();

  // Three passes over word blocks: popcount per block, serial exclusive
  // prefix over the (few) blocks, then scatter each block's set bits at
  // its offset. The queue comes out sorted by vertex id, which also gives
  // the next top-down level a cache-friendly dequeue order.
  constexpr std::size_t kBlockWords = 2048;  // 128 Ki vertices per block
  const std::size_t blocks = (words + kBlockWords - 1) / kBlockWords;
  std::vector<std::size_t> offsets(blocks + 1, 0);
  const std::span<const std::uint64_t> bits = frontier_bits_.words();
  parallel_for(pool, 0, static_cast<std::int64_t>(blocks),
               [&](std::int64_t block) {
                 const auto b = static_cast<std::size_t>(block);
                 const std::size_t lo = b * kBlockWords;
                 const std::size_t hi = std::min(words, lo + kBlockWords);
                 std::size_t count = 0;
                 for (std::size_t w = lo; w < hi; ++w)
                   count += std::popcount(bits[w]);
                 offsets[b + 1] = count;
               });
  for (std::size_t b = 0; b < blocks; ++b) offsets[b + 1] += offsets[b];
  SEMBFS_ASSERT(offsets[blocks] ==
                static_cast<std::size_t>(frontier_count_));
  frontier_.resize(offsets[blocks]);
  Vertex* const dst = frontier_.data();
  parallel_for(pool, 0, static_cast<std::int64_t>(blocks),
               [&](std::int64_t block) {
                 const auto b = static_cast<std::size_t>(block);
                 const std::size_t lo = b * kBlockWords;
                 const std::size_t hi = std::min(words, lo + kBlockWords);
                 std::size_t at = offsets[b];
                 for (std::size_t w = lo; w < hi; ++w)
                   for_each_set_in_word(bits[w], w * 64, [&](std::size_t v) {
                     dst[at++] = static_cast<Vertex>(v);
                   });
               });
  rep_ = FrontierRep::Queue;
  return true;
}

std::vector<Vertex> BfsStatus::parent_snapshot() const {
  std::vector<Vertex> out(parent_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i)
    out[i] = parent_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t BfsStatus::byte_size() const noexcept {
  const auto n = static_cast<std::uint64_t>(n_);
  return n * sizeof(Vertex)                 // parent
         + n * sizeof(std::int32_t)         // level
         + 2 * ((n + 7) / 8)                // visited + frontier bitmaps
         + worker_next_bits_.size() * ((n + 7) / 8)  // bitmap-mode next
         + (frontier_.capacity() + next_.capacity()) * sizeof(Vertex);
}

}  // namespace sembfs
