#include "bfs/bfs_status.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

BfsStatus::BfsStatus(Vertex vertex_count)
    : n_(vertex_count),
      parent_(static_cast<std::size_t>(vertex_count)),
      level_(static_cast<std::size_t>(vertex_count), -1),
      visited_(static_cast<std::size_t>(vertex_count)),
      active_(vertex_count) {
  SEMBFS_EXPECTS(vertex_count >= 1);
}

void BfsStatus::reset(Vertex root) {
  SEMBFS_EXPECTS(root >= 0 && root < n_);
  for (auto& p : parent_) p.store(kNoVertex, std::memory_order_relaxed);
  std::fill(level_.begin(), level_.end(), -1);
  visited_.clear();
  active_.seed(root);

  parent_[static_cast<std::size_t>(root)].store(root,
                                                std::memory_order_relaxed);
  level_[static_cast<std::size_t>(root)] = 0;
  visited_.set(static_cast<std::size_t>(root));
}

std::vector<Vertex> BfsStatus::parent_snapshot() const {
  std::vector<Vertex> out(parent_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i)
    out[i] = parent_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t BfsStatus::byte_size() const noexcept {
  const auto n = static_cast<std::uint64_t>(n_);
  return n * sizeof(Vertex)          // parent
         + n * sizeof(std::int32_t)  // level
         + (n + 7) / 8               // visited bitmap
         + active_.byte_size();      // frontier (queue/bitmap dual rep)
}

}  // namespace sembfs
