#include "bfs/reference_bfs.hpp"

#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

ReferenceBfsResult reference_bfs(const Csr& csr, Vertex root) {
  const Vertex n = csr.global_vertex_count();
  SEMBFS_EXPECTS(csr.source_range().begin == 0 &&
                 csr.source_range().end == n);
  SEMBFS_EXPECTS(root >= 0 && root < n);

  ReferenceBfsResult result;
  result.root = root;
  result.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  result.level.assign(static_cast<std::size_t>(n), -1);

  Timer timer;
  std::vector<Vertex> queue;
  queue.reserve(1024);
  queue.push_back(root);
  result.parent[static_cast<std::size_t>(root)] = root;
  result.level[static_cast<std::size_t>(root)] = 0;

  std::size_t head = 0;
  while (head < queue.size()) {
    const Vertex v = queue[head++];
    const std::int32_t next_level =
        result.level[static_cast<std::size_t>(v)] + 1;
    for (const Vertex w : csr.neighbors(v)) {
      if (result.parent[static_cast<std::size_t>(w)] == kNoVertex) {
        result.parent[static_cast<std::size_t>(w)] = v;
        result.level[static_cast<std::size_t>(w)] = next_level;
        queue.push_back(w);
      }
    }
  }
  result.seconds = timer.seconds();
  result.visited = static_cast<std::int64_t>(queue.size());

  std::int64_t degree_sum = 0;
  for (const Vertex v : queue) degree_sum += csr.degree(v);
  result.teps_edge_count = degree_sum / 2;
  result.teps = result.seconds > 0.0
                    ? static_cast<double>(result.teps_edge_count) /
                          result.seconds
                    : 0.0;
  return result;
}

}  // namespace sembfs
