// Semi-external BFS baselines from the paper's Related Work section.
//
// 1. pearce_async_bfs — in the style of Pearce et al. (SC'10, IPDPS'13):
//    a *semi-external* label-correcting traversal. Only per-vertex state
//    (level, parent) lives in DRAM; the whole CSR (index + values) lives on
//    NVM and every adjacency fetch is device I/O, overlapped across many
//    worker threads to hide latency. The paper quotes 0.05 GTEPS for a
//    SCALE 36 run of this family versus its own 4.22 GTEPS — the entire
//    point of the hybrid offload is that the bottom-up direction keeps the
//    hot data in DRAM, while this baseline pays device latency for every
//    edge it expands.
//
// 2. streaming_scan_bfs — in the style of GraphChi's parallel sliding
//    windows (Kyrola et al., OSDI'12): iterate full sequential sweeps over
//    the NVM-resident *edge list*, relaxing `level` until a fixpoint. Pure
//    sequential bandwidth, no random I/O — but every iteration must scan
//    ALL edges, which is exactly why the paper argues PSW cannot help a
//    hybrid BFS (Section VII).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/external_csr.hpp"
#include "graph/external_edge_list.hpp"
#include "graph/types.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct ExternalBfsResult {
  Vertex root = kNoVertex;
  double seconds = 0.0;
  std::int64_t visited = 0;
  std::int64_t scanned_edges = 0;
  std::uint64_t nvm_requests = 0;
  int sweeps = 0;  ///< streaming baseline: full edge-list passes
  std::vector<Vertex> parent;
  std::vector<std::int32_t> level;
  std::int64_t teps_edge_count = 0;  ///< sum deg(visited)/2
  double teps = 0.0;
};

struct PearceBfsConfig {
  int batch_size = 64;  ///< vertices claimed per worker grab
};

/// Pearce-style asynchronous semi-external BFS. `graph` must be a
/// whole-graph external CSR (source range == [0, vertex_count)).
ExternalBfsResult pearce_async_bfs(ExternalCsrPartition& graph,
                                   Vertex vertex_count, Vertex root,
                                   ThreadPool& pool,
                                   const PearceBfsConfig& config = {});

/// GraphChi-style BFS by repeated full streaming passes over the external
/// edge list until no level improves.
ExternalBfsResult streaming_scan_bfs(ExternalEdgeList& edges, Vertex root,
                                     std::size_t batch_edges = 1 << 16);

}  // namespace sembfs
