// The hybrid (direction-optimizing) BFS driver — the paper's core
// algorithm, generic over where each graph side lives:
//
//   forward graph:  DRAM (ForwardGraph) or simulated NVM
//                   (ExternalForwardGraph) — the paper's key offload
//   backward graph: DRAM (BackwardGraph) or partially offloaded
//                   (HybridBackwardGraph, Section VI-E)
//
// The driver runs level-synchronous steps, switching direction per the
// configured SwitchPolicy, and records per-level statistics for the
// analysis benches (Figures 10-14).
#pragma once

#include <cstdint>
#include <vector>

#include "bfs/bfs_status.hpp"
#include "bfs/bottom_up.hpp"
#include "bfs/cancel.hpp"
#include "bfs/level_stats.hpp"
#include "bfs/policy.hpp"
#include "bfs/top_down.hpp"
#include "numa/topology.hpp"
#include "nvm/chunk_format.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs::obs {
class TraceLog;
}  // namespace sembfs::obs

namespace sembfs {

enum class BfsMode {
  Hybrid,        ///< policy-driven direction switching (the paper's approach)
  TopDownOnly,   ///< baseline: conventional BFS
  BottomUpOnly,  ///< baseline: bottom-up every level
};

/// How bottom-up levels emit the next frontier (docs/KERNELS.md). Top-down
/// levels always emit the queue representation — their output is sparse by
/// construction.
enum class FrontierMode {
  /// Density-driven: a bottom-up level whose *current* frontier holds at
  /// least 1 vertex per visited-bitmap word (n/64) emits a bitmap,
  /// sparser levels emit a queue. The word-wise merge costs O(n/64) per
  /// participating worker, so it only pays off on dense levels.
  Auto,
  /// Always the per-worker queue path (the pre-bitmap behavior).
  ForceQueue,
  /// Every bottom-up level emits a bitmap, regardless of density.
  ForceBitmap,
};

struct BfsConfig {
  SwitchPolicy policy;
  BfsMode mode = BfsMode::Hybrid;
  /// Next-frontier representation for bottom-up levels.
  FrontierMode frontier_mode = FrontierMode::Auto;
  int batch_size = 64;              ///< top-down frontier dequeue batch
  std::int64_t bottom_up_chunk = 1024;  ///< bottom-up sweep chunk
  /// Semi-external top-down only: merge the index/value reads of a whole
  /// dequeue batch into few large device requests (libaio-style
  /// aggregation, the paper's Figure-13 suggestion) instead of per-vertex
  /// 4 KiB chunked reads.
  bool aggregate_io = false;
  std::uint32_t aggregate_merge_gap = 4096;     ///< max gap merged over
  std::uint32_t aggregate_max_request = 1 << 20;  ///< request size cap
  /// Semi-external only: when nonzero (and aggregate_io is on), ensures
  /// the external forward graph has a background I/O scheduler with this
  /// many workers and double-buffers dequeue batches against it (batch
  /// k+1's reads overlap batch k's edge processing). 0 leaves the graph's
  /// current scheduler state untouched.
  std::size_t io_queue_depth = 0;
  /// Semi-external only: when nonzero, ensures the external forward graph
  /// carries a DRAM chunk cache of ~this many bytes serving repeated 4 KiB
  /// chunks (hub index/adjacency blocks). 0 leaves the graph's current
  /// cache state untouched, so a warm cache survives across runs.
  std::size_t chunk_cache_bytes = 0;
  /// Retry/backoff/deadline policy for the async I/O scheduler's requests
  /// (only meaningful with io_queue_depth != 0).
  RetryPolicy io_retry;
  /// Hard adjacency-fetch failures (post-retry) tolerated per top-down
  /// level before the step aborts and the session completes the level via
  /// the DRAM bottom-up direction. 0 = degrade on the first failure.
  std::uint64_t io_error_budget = 0;
  /// Semi-external only (requires chunk_cache_bytes != 0): verify every
  /// chunk fetched from the device against the offload-time CRC32s,
  /// re-fetching corrupted chunks. Off by default so the fault-free
  /// benchmark path pays no checksum cost.
  bool verify_chunk_checksums = false;
  /// On-NVM adjacency layout this run expects its external storage to use
  /// (informational plumbing: offload format is fixed at graph
  /// construction; serving/bench configs carry it here so engines and
  /// reports can label and build storage consistently).
  ChunkFormat chunk_format = ChunkFormat::kRaw;
  /// When non-null, the session appends one obs::TraceSpan per executed
  /// level (LevelStats + the PolicyInput the switch policy saw + its
  /// decision). The log must outlive every session using it. nullptr (the
  /// default) records nothing and costs nothing.
  obs::TraceLog* trace = nullptr;
  /// Cooperative cancellation/deadline token, polled by BfsSession::step()
  /// before each level (see cancel.hpp). When the token fires the session
  /// stops cleanly — done() flips, stop_reason() reports why, and
  /// snapshot_result() still returns the valid partial traversal. The
  /// token must outlive every session using it. nullptr (the default)
  /// never stops early and costs nothing.
  const CancelToken* cancel = nullptr;
};

/// Which concrete storage backs each side of the traversal. Exactly one
/// forward and one backward source must be non-null.
struct GraphStorage {
  const ForwardGraph* forward_dram = nullptr;
  ExternalForwardGraph* forward_external = nullptr;
  TieredForwardGraph* forward_tiered = nullptr;
  const BackwardGraph* backward_dram = nullptr;
  HybridBackwardGraph* backward_hybrid = nullptr;
  /// Mutation overlay (docs/MUTATIONS.md): when non-null, every kernel
  /// reads adjacency through the merged view — base entries minus
  /// tombstoned pairs, plus inserted neighbors — and degree() applies the
  /// delta's correction. nullptr (the default) is the sealed-graph path
  /// and costs nothing. The buffer must outlive every traversal using
  /// this storage view (snapshots pin it via shared ownership).
  const DeltaBuffer* delta = nullptr;

  [[nodiscard]] Vertex vertex_count() const noexcept;
  /// Full degree of v under the merged view (needed for TEPS accounting
  /// and the EdgeRatio policy). Served from whichever backward graph is
  /// attached (DRAM, one lookup) plus the delta adjustment; forward-only
  /// storage falls back to summing the destination-filtered forward
  /// partition degrees — correct, but it touches every partition and may
  /// issue device I/O for external and tiered forward graphs.
  [[nodiscard]] std::int64_t degree(Vertex v) const;
};

/// Applies `config`'s semi-external I/O knobs to `external` before a
/// top-down (push) level: ensures the chunk cache (plus checksum
/// verification when requested) and the async I/O scheduler exist, and
/// resets the scheduler's error budget so a previous level's failures
/// cannot poison this one. Idempotent — both the session and the
/// vertex-program engine call it every push level.
void prepare_external_storage(ExternalForwardGraph& external,
                              const BfsConfig& config);

/// Builds the per-level options top_down_step_external (and the engine's
/// generic scatter) consume from `config`, resolving the scheduler from
/// the graph's current state.
[[nodiscard]] ExternalTopDownOptions external_step_options(
    ExternalForwardGraph& external, const BfsConfig& config);

struct BfsResult {
  Vertex root = kNoVertex;
  double seconds = 0.0;
  std::int32_t depth = 0;            ///< number of levels executed
  std::int64_t visited = 0;          ///< vertices in the BFS tree
  std::int64_t scanned_edges_top_down = 0;
  std::int64_t scanned_edges_bottom_up = 0;
  std::uint64_t nvm_requests = 0;
  std::uint64_t io_failures = 0;     ///< contained fetch failures (all levels)
  std::int32_t degraded_levels = 0;  ///< levels completed via the fallback
  /// True when any level exceeded its I/O error budget and was completed
  /// via the DRAM bottom-up direction. The parent tree is still valid —
  /// degradation trades the semi-external I/O pattern for availability.
  bool degraded = false;
  std::vector<LevelStats> levels;
  std::vector<Vertex> parent;        ///< the BFS tree (-1 = unreached)
  std::vector<std::int32_t> level;   ///< BFS depth per vertex (-1 = unreached)

  /// Graph500 TEPS numerator: undirected edges in the root's component.
  std::int64_t teps_edge_count = 0;
  double teps = 0.0;

  [[nodiscard]] std::int64_t scanned_edges_total() const noexcept {
    return scanned_edges_top_down + scanned_edges_bottom_up;
  }
};

class HybridBfsRunner {
 public:
  HybridBfsRunner(GraphStorage storage, NumaTopology topology,
                  ThreadPool& pool);

  /// Runs one BFS from `root`. Reusable across roots (status is reset).
  BfsResult run(Vertex root, const BfsConfig& config);

  [[nodiscard]] const BfsStatus& status() const noexcept { return status_; }
  [[nodiscard]] std::uint64_t status_byte_size() const noexcept {
    return status_.byte_size();
  }

  [[nodiscard]] const GraphStorage& storage() const noexcept {
    return storage_;
  }
  [[nodiscard]] const NumaTopology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] ThreadPool& pool() const noexcept { return pool_; }

 private:
  GraphStorage storage_;
  NumaTopology topology_;
  ThreadPool& pool_;
  BfsStatus status_;
};

}  // namespace sembfs
