// BFS status data (paper Step 3: "queues, bitmaps for BFS status memories,
// and trees for search results").
//
//  - parent: the BFS tree, -1 = unvisited (Graph500 convention).
//  - level:  depth at which each vertex was claimed (validation needs it).
//  - visited bitmap: fast unvisited sweep for the bottom-up step.
//  - frontier: an engine::ActiveSet — the current level's membership
//    bitmap (always valid; it answers bottom-up's "v in frontier?") plus,
//    on demand, the vertex queue that drives top-down dequeueing.
//
// ## Dual frontier representation
//
// The dual queue/bitmap frontier introduced in PR 4 now lives in
// engine/active_set.hpp as the reusable ActiveSet (every vertex-centric
// program needs the same machinery, not just BFS). BfsStatus composes one
// and forwards its legacy frontier API, so the kernels are unchanged
// clients; see active_set.hpp for the representation contract.
//
//  - Queue:  `frontier()` vector and `frontier_bitmap()` both valid —
//    what top-down steps need. Produced by set_next()/set_next_merged()
//    followed by advance().
//  - Bitmap: only `frontier_bitmap()` is valid; the queue is materialized
//    lazily by ensure_frontier_queue() when (and only when) a direction
//    switch back to top-down needs it. Produced by per-worker next
//    bitmaps (begin_bitmap_next() + worker_next()) merged word-wise by
//    advance().
//
// ## Claim memory-ordering contract
//
//  - claim(): multi-writer CAS (acq_rel). Top-down workers race for the
//    same destination vertex; exactly one wins, and the level/visited
//    writes of the winner are ordered behind the CAS.
//  - claim_bottom_up(): single-writer fast path — a plain release store
//    on the parent slot, no CAS. Valid ONLY under the bottom-up sweep's
//    ownership discipline: each unvisited vertex is swept by exactly one
//    worker per level, so there is nothing to race with. The visited bit
//    is still a relaxed fetch_or (neighbouring vertices in one word may
//    be claimed by different workers at chunk boundaries). Cross-thread
//    visibility of the claim is established by the level-ending
//    ThreadPool::run() join, NOT by the store itself: within the level no
//    other worker reads this vertex's parent/level/visited state, and
//    every later reader is ordered behind the join.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/active_set.hpp"
#include "graph/types.hpp"
#include "util/bitmap.hpp"

namespace sembfs {

class ThreadPool;

/// Which structure currently holds the frontier — the BFS-era name for the
/// ActiveSet representation (see engine/active_set.hpp).
using FrontierRep = engine::ActiveSetRep;

// ## Status-slot reuse contract
//
// A BfsStatus is sized once (the parent/level arrays and bitmaps are the
// dominant per-search allocation) and reused across searches: reset(root)
// restores every field to its post-construction state for a new root, so
// a pool of BfsStatus "slots" can serve an unbounded query stream with
// zero steady-state allocation (src/serve's StatusSlotPool). Reuse is
// only valid strictly one search at a time per slot — reset() is not
// thread-safe against a session still stepping on the same status, and a
// released slot must not be read again (its parent/level data belongs to
// the next query). The serving engine copies whatever it needs into the
// QueryResult before releasing the slot.
class BfsStatus {
 public:
  explicit BfsStatus(Vertex vertex_count);

  /// Re-initializes all state and seeds the frontier with `root` (see the
  /// status-slot reuse contract above).
  void reset(Vertex root);

  [[nodiscard]] Vertex vertex_count() const noexcept { return n_; }

  /// Attempts to claim w with parent v at `level`; true iff we won.
  /// Multi-writer safe (top-down workers race per destination).
  bool claim(Vertex w, Vertex v, std::int32_t level) noexcept {
    Vertex expected = kNoVertex;
    if (parent_[static_cast<std::size_t>(w)].compare_exchange_strong(
            expected, v, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      level_[static_cast<std::size_t>(w)] = level;
      visited_.set(static_cast<std::size_t>(w));
      return true;
    }
    return false;
  }

  /// Single-writer claim for the bottom-up sweep: plain release store, no
  /// CAS. The caller must guarantee w is swept by exactly this worker this
  /// level (see the memory-ordering contract in the file comment).
  void claim_bottom_up(Vertex w, Vertex v, std::int32_t level) noexcept {
    SEMBFS_ASSERT(parent_[static_cast<std::size_t>(w)].load(
                      std::memory_order_relaxed) == kNoVertex);
    level_[static_cast<std::size_t>(w)] = level;
    parent_[static_cast<std::size_t>(w)].store(v, std::memory_order_release);
    visited_.set(static_cast<std::size_t>(w));
  }

  [[nodiscard]] bool is_visited(Vertex w) const noexcept {
    return visited_.test(static_cast<std::size_t>(w));
  }
  [[nodiscard]] bool in_frontier(Vertex v) const noexcept {
    return active_.contains(v);
  }

  [[nodiscard]] Vertex parent(Vertex w) const noexcept {
    return parent_[static_cast<std::size_t>(w)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::int32_t level(Vertex w) const noexcept {
    return level_[static_cast<std::size_t>(w)];
  }

  /// The frontier as a reusable engine ActiveSet — what the vertex-program
  /// engine steps against when running BFS over this status block.
  [[nodiscard]] engine::ActiveSet& active_set() noexcept { return active_; }
  [[nodiscard]] const engine::ActiveSet& active_set() const noexcept {
    return active_;
  }

  /// Current representation of the frontier.
  [[nodiscard]] FrontierRep frontier_rep() const noexcept {
    return active_.rep();
  }

  /// The frontier vertex queue. Only valid in FrontierRep::Queue — call
  /// ensure_frontier_queue() first after a bitmap-producing level.
  [[nodiscard]] const std::vector<Vertex>& frontier() const noexcept {
    return active_.queue();
  }
  /// Frontier membership bitmap. Valid in BOTH representations.
  [[nodiscard]] const Bitmap& frontier_bitmap() const noexcept {
    return active_.bitmap();
  }
  /// The visited bitmap, exposed for the word-skip sweep (word() loads).
  [[nodiscard]] const AtomicBitmap& visited_bitmap() const noexcept {
    return visited_;
  }
  [[nodiscard]] std::int64_t frontier_size() const noexcept {
    return active_.size();
  }

  /// Materializes the frontier queue from the bitmap (no-op in Queue
  /// rep). The queue comes out sorted by vertex id. Returns true iff a
  /// conversion actually happened.
  bool ensure_frontier_queue(ThreadPool& pool) {
    return active_.ensure_queue(pool);
  }
  /// Serial variant for pool-free callers (tests, small graphs).
  bool ensure_frontier_queue() { return active_.ensure_queue(); }

  /// Appends the merged next-frontier vertices (driver-side, serial).
  void set_next(std::vector<Vertex> next) {
    active_.set_next(std::move(next));
  }
  [[nodiscard]] std::vector<Vertex>& next() noexcept {
    return active_.next();
  }

  /// Parallel concat of per-worker next buffers: serial prefix-sum of the
  /// buffer sizes, then the pool scatters each buffer at its offset.
  /// Replaces the serial driver-thread insert loop the steps used to run.
  void set_next_merged(std::vector<std::vector<Vertex>>& buffers,
                       ThreadPool& pool) {
    active_.set_next_merged(buffers, pool);
  }

  /// Declares that this level's next frontier will be produced as
  /// per-worker bitmaps (bottom-up bitmap mode). Allocates/readies
  /// `workers` bitmaps of vertex_count() bits; bits are cleared lazily by
  /// advance()'s merge, so this is O(1) after the first level.
  void begin_bitmap_next(std::size_t workers) {
    active_.begin_bitmap_next(workers);
  }
  /// Worker w's private next-frontier bitmap (plain set(), no atomics —
  /// single writer by construction).
  [[nodiscard]] Bitmap& worker_next(std::size_t w) noexcept {
    return active_.worker_next(w);
  }

  /// Promotes next -> frontier. Queue-pending levels swap the queue and
  /// rebuild the membership bitmap; bitmap-pending levels OR-merge the
  /// per-worker bitmaps word-wise (clearing them for reuse) and leave the
  /// queue unmaterialized. The pool overload parallelizes both paths.
  void advance() { active_.advance(); }
  void advance(ThreadPool& pool) { active_.advance(pool); }

  /// Copies the parent array into a plain vector.
  [[nodiscard]] std::vector<Vertex> parent_snapshot() const;
  /// Copies the level array.
  [[nodiscard]] const std::vector<std::int32_t>& levels() const noexcept {
    return level_;
  }

  [[nodiscard]] std::int64_t visited_count() const noexcept {
    return static_cast<std::int64_t>(visited_.count());
  }

  /// DRAM footprint of all status structures, in bytes.
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

 private:
  Vertex n_ = 0;
  std::vector<std::atomic<Vertex>> parent_;
  std::vector<std::int32_t> level_;
  AtomicBitmap visited_;
  engine::ActiveSet active_;
};

}  // namespace sembfs
