// BFS status data (paper Step 3: "queues, bitmaps for BFS status memories,
// and trees for search results").
//
//  - parent: the BFS tree, -1 = unvisited (Graph500 convention). Claimed
//    exactly once per vertex via CAS.
//  - level:  depth at which each vertex was claimed (validation needs it).
//  - visited bitmap: fast unvisited sweep for the bottom-up step.
//  - frontier: the current level's vertex queue plus a membership bitmap
//    (queue drives top-down; bitmap answers bottom-up's "v in frontier?").
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/bitmap.hpp"

namespace sembfs {

class BfsStatus {
 public:
  explicit BfsStatus(Vertex vertex_count);

  /// Re-initializes all state and seeds the frontier with `root`.
  void reset(Vertex root);

  [[nodiscard]] Vertex vertex_count() const noexcept { return n_; }

  /// Attempts to claim w with parent v at `level`; true iff we won.
  bool claim(Vertex w, Vertex v, std::int32_t level) noexcept {
    Vertex expected = kNoVertex;
    if (parent_[static_cast<std::size_t>(w)].compare_exchange_strong(
            expected, v, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      level_[static_cast<std::size_t>(w)] = level;
      visited_.set(static_cast<std::size_t>(w));
      return true;
    }
    return false;
  }

  [[nodiscard]] bool is_visited(Vertex w) const noexcept {
    return visited_.test(static_cast<std::size_t>(w));
  }
  [[nodiscard]] bool in_frontier(Vertex v) const noexcept {
    return frontier_bits_.test(static_cast<std::size_t>(v));
  }

  [[nodiscard]] Vertex parent(Vertex w) const noexcept {
    return parent_[static_cast<std::size_t>(w)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::int32_t level(Vertex w) const noexcept {
    return level_[static_cast<std::size_t>(w)];
  }

  [[nodiscard]] const std::vector<Vertex>& frontier() const noexcept {
    return frontier_;
  }
  [[nodiscard]] std::int64_t frontier_size() const noexcept {
    return static_cast<std::int64_t>(frontier_.size());
  }

  /// Appends the merged next-frontier vertices (driver-side, serial).
  void set_next(std::vector<Vertex> next) { next_ = std::move(next); }
  [[nodiscard]] std::vector<Vertex>& next() noexcept { return next_; }

  /// Promotes next -> frontier and rebuilds the frontier bitmap.
  void advance();

  /// Copies the parent array into a plain vector.
  [[nodiscard]] std::vector<Vertex> parent_snapshot() const;
  /// Copies the level array.
  [[nodiscard]] const std::vector<std::int32_t>& levels() const noexcept {
    return level_;
  }

  [[nodiscard]] std::int64_t visited_count() const noexcept {
    return static_cast<std::int64_t>(visited_.count());
  }

  /// DRAM footprint of all status structures, in bytes.
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

 private:
  Vertex n_ = 0;
  std::vector<std::atomic<Vertex>> parent_;
  std::vector<std::int32_t> level_;
  AtomicBitmap visited_;
  Bitmap frontier_bits_;
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
};

}  // namespace sembfs
