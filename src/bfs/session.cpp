#include "bfs/session.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

BfsSession::BfsSession(GraphStorage storage, const NumaTopology& topology,
                       ThreadPool& pool, BfsStatus& status, Vertex root,
                       const BfsConfig& config)
    : storage_(storage),
      topology_(topology),
      pool_(pool),
      status_(&status),
      config_(config),
      root_(root),
      obs_levels_(&obs::metrics().counter("bfs.levels")),
      obs_top_down_levels_(&obs::metrics().counter("bfs.top_down_levels")),
      obs_bottom_up_levels_(&obs::metrics().counter("bfs.bottom_up_levels")),
      obs_degraded_levels_(&obs::metrics().counter("bfs.degraded_levels")),
      obs_direction_switches_(
          &obs::metrics().counter("bfs.direction_switches")),
      obs_io_failures_(&obs::metrics().counter("bfs.io_failures")),
      obs_frontier_conversions_(
          &obs::metrics().counter("bfs.frontier_conversions")),
      obs_bitmap_levels_(
          &obs::metrics().counter("bfs.bitmap_frontier_levels")),
      obs_level_us_(&obs::metrics().histogram("bfs.level_us")) {
  const Vertex n = storage_.vertex_count();
  SEMBFS_EXPECTS(root >= 0 && root < n);
  if (config_.trace != nullptr) trace_run_ = config_.trace->begin_run(root);
  if (obs::enabled()) {
    // Label pool workers with their emulated NUMA nodes so parallel-region
    // step times land in per-node histograms (pool.node<k>.step_us).
    std::vector<std::size_t> nodes(pool_.size());
    for (std::size_t w = 0; w < nodes.size(); ++w)
      nodes[w] = std::min(topology_.node_of_worker(w),
                          topology_.node_count() - 1);
    pool_.set_worker_nodes(nodes);
  }
  status_->reset(root);
  direction_ = config_.mode == BfsMode::BottomUpOnly ? Direction::BottomUp
                                                     : Direction::TopDown;
  frontier_edges_ = storage_.degree(root);
  if (config_.policy.kind == PolicyKind::EdgeRatio) {
    unvisited_edges_ = parallel_reduce<std::int64_t>(
        pool_, 0, n, 0,
        [&](std::int64_t& acc, std::int64_t v) {
          acc += storage_.degree(v);
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    unvisited_edges_ -= frontier_edges_;
  }
}

bool BfsSession::step() {
  if (done_) return false;
  if (config_.cancel != nullptr) {
    // Level granularity is the preemption point of the level-synchronous
    // driver; the partial tree stays valid for snapshot_result().
    const StopReason stop = config_.cancel->should_stop();
    if (stop != StopReason::None) {
      stop_reason_ = stop;
      done_ = true;
      return false;
    }
  }
  if (status_->frontier_size() == 0) {
    done_ = true;
    return false;
  }

  const std::int64_t cur_frontier = status_->frontier_size();
  obs::TraceLog* const trace = config_.trace;
  const double span_start =
      trace != nullptr ? trace->seconds_since_epoch() : 0.0;
  Timer level_timer;
  StepResult step_result;
  bool level_degraded = false;
  if (direction_ == Direction::TopDown) {
    // The last level may have produced a bitmap frontier (bottom-up in
    // bitmap mode); top-down steps dequeue, so materialize the queue now.
    // This is the bitmap->queue conversion point — by construction it sits
    // on a direction switch, where the frontier has already thinned.
    if (status_->ensure_frontier_queue(pool_) && obs::enabled())
      obs_frontier_conversions_->add(1);
    if (storage_.forward_dram != nullptr) {
      step_result = top_down_step(*storage_.forward_dram, *status_, level_,
                                  topology_, pool_, config_.batch_size,
                                  storage_.delta);
    } else if (storage_.forward_tiered != nullptr) {
      step_result =
          top_down_step_tiered(*storage_.forward_tiered, *status_, level_,
                               topology_, pool_, config_.batch_size,
                               storage_.delta);
    } else {
      ExternalForwardGraph& external = *storage_.forward_external;
      prepare_external_storage(external, config_);
      ExternalTopDownOptions options =
          external_step_options(external, config_);
      options.delta = storage_.delta;
      step_result = top_down_step_external(external, *status_, level_,
                                           topology_, pool_, options);
    }
    scanned_top_down_ += step_result.scanned_edges;
    io_failures_ += step_result.io_failures;
    if (step_result.io_failed()) {
      // Graceful degradation: the top-down step skipped expansions, so the
      // level is incomplete. Redo it with the DRAM bottom-up direction
      // (which needs no forward-graph I/O), keeping the partial claims.
      const StepResult redo = degrade_level();
      step_result.claimed += redo.claimed;
      step_result.scanned_edges += redo.scanned_edges;
      step_result.nvm_requests += redo.nvm_requests;
      scanned_bottom_up_ += redo.scanned_edges;
      ++degraded_levels_;
      level_degraded = true;
    }
  } else {
    const BottomUpOutput output = bottom_up_output(cur_frontier);
    if (output == BottomUpOutput::Bitmap && obs::enabled())
      obs_bitmap_levels_->add(1);
    if (storage_.backward_dram != nullptr) {
      step_result =
          bottom_up_step(*storage_.backward_dram, *status_, level_,
                         topology_, pool_, config_.bottom_up_chunk, output,
                         storage_.delta);
    } else {
      step_result = bottom_up_step_hybrid(
          *storage_.backward_hybrid, *status_, level_, topology_, pool_,
          config_.bottom_up_chunk, output, storage_.delta);
    }
    scanned_bottom_up_ += step_result.scanned_edges;
  }
  const double seconds = level_timer.seconds();
  elapsed_seconds_ += seconds;
  nvm_requests_ += step_result.nvm_requests;

  LevelStats stats;
  stats.level = level_;
  stats.direction = direction_;
  stats.frontier_vertices = cur_frontier;
  stats.claimed_vertices = step_result.claimed;
  stats.scanned_edges = step_result.scanned_edges;
  stats.seconds = seconds;
  stats.avg_degree =
      cur_frontier > 0 ? static_cast<double>(step_result.scanned_edges) /
                             static_cast<double>(cur_frontier)
                       : 0.0;
  stats.nvm_requests = step_result.nvm_requests;
  stats.io_failures = step_result.io_failures;
  stats.degraded = level_degraded;
  level_stats_.push_back(stats);

  status_->advance(pool_);
  const std::int64_t next_frontier = status_->frontier_size();

  if (config_.policy.kind == PolicyKind::EdgeRatio) {
    // Degree sum over the next frontier — the same reduction the
    // constructor runs over all vertices; a serial loop here dominated
    // level time on wide frontiers.
    if (status_->frontier_rep() == FrontierRep::Bitmap) {
      // Bitmap frontier: no queue to walk, so reduce over bitmap words and
      // expand set bits in place (the frontier is dense here, so nearly
      // every word contributes).
      const std::span<const std::uint64_t> words =
          status_->frontier_bitmap().words();
      frontier_edges_ = parallel_reduce<std::int64_t>(
          pool_, 0, static_cast<std::int64_t>(words.size()), 0,
          [&](std::int64_t& acc, std::int64_t w) {
            for_each_set_in_word(words[static_cast<std::size_t>(w)],
                                 static_cast<std::size_t>(w) * 64,
                                 [&](std::size_t v) {
                                   acc += storage_.degree(
                                       static_cast<Vertex>(v));
                                 });
          },
          [](std::int64_t a, std::int64_t b) { return a + b; });
    } else {
      const auto& frontier = status_->frontier();
      frontier_edges_ = parallel_reduce<std::int64_t>(
          pool_, 0, static_cast<std::int64_t>(frontier.size()), 0,
          [&](std::int64_t& acc, std::int64_t i) {
            acc += storage_.degree(frontier[static_cast<std::size_t>(i)]);
          },
          [](std::int64_t a, std::int64_t b) { return a + b; });
    }
    unvisited_edges_ -= frontier_edges_;
  }

  // Built unconditionally: forced modes skip the decision but the trace
  // still records what the policy WOULD have been shown.
  PolicyInput in;
  in.current = stats.direction;
  in.n_all = storage_.vertex_count();
  in.prev_frontier = cur_frontier;
  in.cur_frontier = next_frontier;
  in.frontier_edges = frontier_edges_;
  in.unvisited_edges = unvisited_edges_;
  const bool policy_evaluated = config_.mode == BfsMode::Hybrid;
  if (policy_evaluated) direction_ = config_.policy.decide(in);

  if (obs::enabled()) {
    obs_levels_->add(1);
    (stats.direction == Direction::TopDown ? obs_top_down_levels_
                                           : obs_bottom_up_levels_)
        ->add(1);
    if (level_degraded) obs_degraded_levels_->add(1);
    if (stats.io_failures != 0) obs_io_failures_->add(stats.io_failures);
    if (direction_ != stats.direction) obs_direction_switches_->add(1);
    obs_level_us_->record(
        seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6));
  }
  if (trace != nullptr) {
    obs::TraceSpan span;
    span.run = trace_run_;
    span.root = root_;
    span.level = stats.level;
    span.direction = stats.direction;
    span.start_seconds = span_start;
    span.duration_seconds = trace->seconds_since_epoch() - span_start;
    span.stats = stats;
    span.policy_input = in;
    span.decision = direction_;
    span.policy_evaluated = policy_evaluated;
    trace->record(span);
  }

  ++level_;
  if (next_frontier == 0) done_ = true;
  return !done_;
}

BottomUpOutput BfsSession::bottom_up_output(
    std::int64_t cur_frontier) const noexcept {
  switch (config_.frontier_mode) {
    case FrontierMode::ForceQueue:
      return BottomUpOutput::Queue;
    case FrontierMode::ForceBitmap:
      return BottomUpOutput::Bitmap;
    case FrontierMode::Auto:
      break;
  }
  // Density proxy: the current frontier averages >= 1 vertex per visited
  // word, so the next one (typically wider or comparable mid-search) is
  // worth the O(n/64)-per-worker merge.
  return cur_frontier >= storage_.vertex_count() / 64
             ? BottomUpOutput::Bitmap
             : BottomUpOutput::Queue;
}

StepResult BfsSession::degrade_level() {
  if (storage_.backward_dram == nullptr && storage_.backward_hybrid == nullptr) {
    throw NvmIoError(
        "top-down level " + std::to_string(level_) +
        " exceeded its I/O error budget and no backward graph is attached "
        "for a degraded bottom-up retry");
  }
  // The partial top-down claims are valid (each vertex was CAS-claimed
  // with a correct parent at this level); the bottom-up sweep skips them
  // via the visited bitmap and claims the rest. The redo stays on Queue
  // output (regardless of frontier_mode) so its next list can be merged
  // with the partial top-down list saved here.
  std::vector<Vertex> partial = std::move(status_->next());
  status_->set_next({});
  StepResult redo;
  if (storage_.backward_dram != nullptr) {
    redo = bottom_up_step(*storage_.backward_dram, *status_, level_,
                          topology_, pool_, config_.bottom_up_chunk,
                          BottomUpOutput::Queue, storage_.delta);
  } else {
    redo = bottom_up_step_hybrid(*storage_.backward_hybrid, *status_, level_,
                                 topology_, pool_, config_.bottom_up_chunk,
                                 BottomUpOutput::Queue, storage_.delta);
  }
  std::vector<Vertex>& next = status_->next();
  next.insert(next.end(), partial.begin(), partial.end());
  return redo;
}

BfsResult BfsSession::snapshot_result() const {
  BfsResult result;
  result.root = root_;
  result.seconds = elapsed_seconds_;
  result.depth = level_ - 1;
  result.visited = status_->visited_count();
  result.scanned_edges_top_down = scanned_top_down_;
  result.scanned_edges_bottom_up = scanned_bottom_up_;
  result.nvm_requests = nvm_requests_;
  result.io_failures = io_failures_;
  result.degraded_levels = degraded_levels_;
  result.degraded = degraded_levels_ > 0;
  result.levels = level_stats_;
  result.parent = status_->parent_snapshot();
  result.level = status_->levels();

  result.teps_edge_count =
      parallel_reduce<std::int64_t>(
          pool_, 0, storage_.vertex_count(), 0,
          [&](std::int64_t& acc, std::int64_t v) {
            if (status_->is_visited(v)) acc += storage_.degree(v);
          },
          [](std::int64_t a, std::int64_t b) { return a + b; }) /
      2;
  result.teps = result.seconds > 0.0
                    ? static_cast<double>(result.teps_edge_count) /
                          result.seconds
                    : 0.0;
  return result;
}

}  // namespace sembfs
