// The word-skip unvisited sweep shared by every bottom-up-shaped kernel
// (single-search bottom_up_step/_hybrid and the serving layer's batched
// MS-BFS). Workers load 64 vertices' "done" bits at a time and skip
// saturated words outright — on late levels nearly every word is
// saturated, so most of a vertex range costs one load + compare per 64
// vertices — iterating survivors via countr_zero.
#pragma once

#include <cstdint>
#include <utility>

#include "graph/types.hpp"
#include "util/bitmap.hpp"

namespace sembfs {

/// Calls scan(vtx) for every vertex in [abs_lo, abs_hi) whose bit in
/// `done` is clear, loading the bitmap one word at a time and skipping
/// words with no survivors. `done` is the kernel's saturation bitmap: the
/// visited bitmap for single-search bottom-up, the all-queries-covered
/// bitmap for MS-BFS. Concurrent set()s may or may not be reflected;
/// callers must tolerate stale zeros (a vertex never reads as done before
/// its claim). Returns {words swept, words skipped}.
template <typename ScanFn>
std::pair<std::uint64_t, std::uint64_t> sweep_unvisited(
    const AtomicBitmap& done, std::int64_t abs_lo, std::int64_t abs_hi,
    ScanFn&& scan) {
  std::uint64_t swept = 0;
  std::uint64_t skipped = 0;
  const auto lo = static_cast<std::size_t>(abs_lo);
  const auto hi = static_cast<std::size_t>(abs_hi);
  const std::size_t w0 = lo >> 6;
  const std::size_t w1 = (hi + 63) >> 6;
  for (std::size_t w = w0; w < w1; ++w) {
    // Mask the word down to [abs_lo, abs_hi): chunk and node-range
    // boundaries are not word-aligned, and bits outside the range belong
    // to another worker's chunk (or another node's partition).
    std::uint64_t mask = ~std::uint64_t{0};
    if (w == w0) mask &= ~std::uint64_t{0} << (lo & 63);
    if (const std::size_t word_end = (w + 1) * 64; word_end > hi)
      mask &= bitmap_tail_mask(64 - (word_end - hi));
    ++swept;
    std::uint64_t pending = ~done.word(w) & mask;
    if (pending == 0) {
      // Fully-done (or fully out-of-range) word: 64 vertices for one
      // load — the common case on late levels.
      ++skipped;
      continue;
    }
    for_each_set_in_word(pending, w * 64, [&](std::size_t vtx) {
      scan(static_cast<Vertex>(vtx));
    });
  }
  return {swept, skipped};
}

}  // namespace sembfs
