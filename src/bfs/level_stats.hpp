// Per-level instrumentation record (feeds Figures 10 and 11).
#pragma once

#include <cstdint>

namespace sembfs {

enum class Direction { TopDown, BottomUp };

[[nodiscard]] constexpr const char* direction_name(Direction d) noexcept {
  return d == Direction::TopDown ? "top-down" : "bottom-up";
}

struct LevelStats {
  int level = 0;
  Direction direction = Direction::TopDown;
  std::int64_t frontier_vertices = 0;  ///< vertices searched this level
  std::int64_t claimed_vertices = 0;   ///< newly visited this level
  std::int64_t scanned_edges = 0;      ///< adjacency entries examined
  double seconds = 0.0;
  double avg_degree = 0.0;             ///< scanned_edges / frontier_vertices
  std::uint64_t nvm_requests = 0;      ///< simulated device requests issued
  std::uint64_t io_failures = 0;       ///< contained adjacency-fetch failures
  /// The top-down step exceeded its I/O error budget and the level was
  /// completed via the DRAM bottom-up direction instead.
  bool degraded = false;
};

}  // namespace sembfs
