#include "bfs/hybrid_bfs.hpp"

#include "bfs/session.hpp"
#include "util/contracts.hpp"

namespace sembfs {

Vertex GraphStorage::vertex_count() const noexcept {
  if (backward_dram != nullptr) return backward_dram->vertex_count();
  if (backward_hybrid != nullptr) return backward_hybrid->vertex_count();
  if (forward_dram != nullptr) return forward_dram->vertex_count();
  if (forward_external != nullptr) return forward_external->vertex_count();
  if (forward_tiered != nullptr) return forward_tiered->vertex_count();
  return 0;
}

std::int64_t GraphStorage::degree(Vertex v) const noexcept {
  if (backward_dram != nullptr)
    return backward_dram->neighbors(v).size();
  SEMBFS_ASSERT(backward_hybrid != nullptr);
  return backward_hybrid->degree(v);
}

HybridBfsRunner::HybridBfsRunner(GraphStorage storage, NumaTopology topology,
                                 ThreadPool& pool)
    : storage_(storage),
      topology_(topology),
      pool_(pool),
      status_(storage.vertex_count()) {
  const int forwards = (storage_.forward_dram != nullptr) +
                       (storage_.forward_external != nullptr) +
                       (storage_.forward_tiered != nullptr);
  const bool one_backward = (storage_.backward_dram != nullptr) !=
                            (storage_.backward_hybrid != nullptr);
  SEMBFS_EXPECTS(forwards == 1 && one_backward);
}

BfsResult HybridBfsRunner::run(Vertex root, const BfsConfig& config) {
  BfsSession session{storage_, topology_, pool_, status_, root, config};
  while (session.step()) {
  }
  return session.snapshot_result();
}

}  // namespace sembfs
