#include "bfs/hybrid_bfs.hpp"

#include <cstdio>

#include "bfs/session.hpp"
#include "util/contracts.hpp"

namespace sembfs {

Vertex GraphStorage::vertex_count() const noexcept {
  if (backward_dram != nullptr) return backward_dram->vertex_count();
  if (backward_hybrid != nullptr) return backward_hybrid->vertex_count();
  if (forward_dram != nullptr) return forward_dram->vertex_count();
  if (forward_external != nullptr) return forward_external->vertex_count();
  if (forward_tiered != nullptr) return forward_tiered->vertex_count();
  return 0;
}

std::int64_t GraphStorage::degree(Vertex v) const {
  // The delta's correction (inserted copies minus tombstone-hidden base
  // copies) applies uniformly: every backend below reports base entries.
  const std::int64_t adjust =
      delta != nullptr ? delta->degree_adjustment(v) : 0;
  if (backward_dram != nullptr)
    return adjust +
           static_cast<std::int64_t>(backward_dram->neighbors(v).size());
  if (backward_hybrid != nullptr) return adjust + backward_hybrid->degree(v);
  // Forward-only storage: every forward partition is destination-filtered,
  // so the full degree is the sum over partitions.
  if (forward_dram != nullptr) {
    std::int64_t total = 0;
    for (std::size_t k = 0; k < forward_dram->node_count(); ++k) {
      total += static_cast<std::int64_t>(
          forward_dram->partition(k).neighbors(v).size());
    }
    return adjust + total;
  }
  if (forward_external != nullptr) {
    std::int64_t total = 0;
    for (std::size_t k = 0; k < forward_external->node_count(); ++k)
      total += forward_external->partition(k).degree(v);
    return adjust + total;
  }
  if (forward_tiered != nullptr) {
    std::int64_t total = 0;
    std::vector<Vertex> scratch;
    for (std::size_t k = 0; k < forward_tiered->node_count(); ++k) {
      forward_tiered->partition(k).fetch_neighbors(v, scratch);
      total += static_cast<std::int64_t>(scratch.size());
    }
    return adjust + total;
  }
  SEMBFS_ASSERT(!"GraphStorage::degree: no graph attached");
  return 0;
}

void prepare_external_storage(ExternalForwardGraph& external,
                              const BfsConfig& config) {
  if (config.chunk_cache_bytes != 0) {
    external.enable_chunk_cache(config.chunk_cache_bytes);
    if (config.verify_chunk_checksums)
      external.enable_checksum_verification();
  }
  if (config.io_queue_depth != 0) {
    IoSchedulerConfig sched_config;
    sched_config.retry = config.io_retry;
    IoScheduler& scheduler =
        external.enable_io_scheduler(config.io_queue_depth, sched_config);
    // A previous level's failures must not poison this one.
    scheduler.reset_error_budget();
  }
}

ExternalTopDownOptions external_step_options(ExternalForwardGraph& external,
                                             const BfsConfig& config) {
  ExternalTopDownOptions options;
  options.batch_size = config.batch_size;
  options.aggregate_io = config.aggregate_io;
  options.merge_gap_bytes = config.aggregate_merge_gap;
  options.max_request_bytes = config.aggregate_max_request;
  options.scheduler = external.io_scheduler();
  options.io_error_budget = config.io_error_budget;
  return options;
}

HybridBfsRunner::HybridBfsRunner(GraphStorage storage, NumaTopology topology,
                                 ThreadPool& pool)
    : storage_(storage),
      topology_(topology),
      pool_(pool),
      status_(storage.vertex_count()) {
  const int forwards = (storage_.forward_dram != nullptr) +
                       (storage_.forward_external != nullptr) +
                       (storage_.forward_tiered != nullptr);
  const bool one_backward = (storage_.backward_dram != nullptr) !=
                            (storage_.backward_hybrid != nullptr);
  if (forwards != 1 || !one_backward) {
    std::fprintf(
        stderr,
        "HybridBfsRunner: storage must name exactly one forward and one "
        "backward graph; got forward_dram=%d forward_external=%d "
        "forward_tiered=%d backward_dram=%d backward_hybrid=%d\n",
        storage_.forward_dram != nullptr, storage_.forward_external != nullptr,
        storage_.forward_tiered != nullptr, storage_.backward_dram != nullptr,
        storage_.backward_hybrid != nullptr);
  }
  SEMBFS_EXPECTS(forwards == 1 && one_backward);
}

BfsResult HybridBfsRunner::run(Vertex root, const BfsConfig& config) {
  BfsSession session{storage_, topology_, pool_, status_, root, config};
  while (session.step()) {
  }
  return session.snapshot_result();
}

}  // namespace sembfs
