#include "bfs/baselines_external.hpp"

#include <atomic>

#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

namespace {

// Shared post-processing: visited count + TEPS numerator from degrees.
void finalize(ExternalBfsResult& result,
              const std::vector<std::int64_t>& degrees) {
  result.visited = 0;
  std::int64_t degree_sum = 0;
  for (std::size_t v = 0; v < result.parent.size(); ++v) {
    if (result.parent[v] != kNoVertex) {
      ++result.visited;
      degree_sum += degrees[v];
    }
  }
  result.teps_edge_count = degree_sum / 2;
  result.teps = result.seconds > 0.0
                    ? static_cast<double>(result.teps_edge_count) /
                          result.seconds
                    : 0.0;
}

}  // namespace

ExternalBfsResult pearce_async_bfs(ExternalCsrPartition& graph,
                                   Vertex vertex_count, Vertex root,
                                   ThreadPool& pool,
                                   const PearceBfsConfig& config) {
  SEMBFS_EXPECTS(graph.source_range().begin == 0 &&
                 graph.source_range().end == vertex_count);
  SEMBFS_EXPECTS(root >= 0 && root < vertex_count);
  SEMBFS_EXPECTS(config.batch_size >= 1);

  ExternalBfsResult result;
  result.root = root;

  std::vector<std::atomic<Vertex>> parent(
      static_cast<std::size_t>(vertex_count));
  std::vector<std::atomic<std::int32_t>> level(
      static_cast<std::size_t>(vertex_count));
  for (auto& p : parent) p.store(kNoVertex, std::memory_order_relaxed);
  for (auto& l : level) l.store(-1, std::memory_order_relaxed);
  parent[static_cast<std::size_t>(root)].store(root,
                                               std::memory_order_relaxed);
  level[static_cast<std::size_t>(root)].store(0, std::memory_order_relaxed);

  std::atomic<std::int64_t> scanned{0};
  std::atomic<std::uint64_t> requests{0};
  // Written concurrently (a requeued vertex may be expanded by two workers
  // in different rounds); atomic relaxed stores of identical values.
  std::vector<std::atomic<std::int64_t>> degrees_atomic(
      static_cast<std::size_t>(vertex_count));
  for (auto& d : degrees_atomic) d.store(0, std::memory_order_relaxed);

  Timer timer;
  // Level-asynchronous label correcting: a shared work list per round;
  // workers grab batches, fetch adjacency from NVM, relax neighbors with
  // atomic level-min. A vertex whose level improves is requeued, so late
  // better labels propagate (the label-correcting part).
  std::vector<Vertex> work = {root};
  while (!work.empty()) {
    std::atomic<std::int64_t> cursor{0};
    std::vector<std::vector<Vertex>> next_local(pool.size());
    const auto total = static_cast<std::int64_t>(work.size());

    pool.run([&](std::size_t w) {
      std::vector<Vertex> adjacency;
      auto& next = next_local[w];
      std::int64_t local_scanned = 0;
      std::uint64_t local_requests = 0;
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(config.batch_size, std::memory_order_relaxed);
        if (lo >= total) break;
        const std::int64_t hi =
            std::min<std::int64_t>(total, lo + config.batch_size);
        for (std::int64_t i = lo; i < hi; ++i) {
          const Vertex v = work[static_cast<std::size_t>(i)];
          const std::int32_t lv =
              level[static_cast<std::size_t>(v)].load(
                  std::memory_order_acquire);
          local_requests += graph.fetch_neighbors(v, adjacency);
          degrees_atomic[static_cast<std::size_t>(v)].store(
              static_cast<std::int64_t>(adjacency.size()),
              std::memory_order_relaxed);
          for (const Vertex u : adjacency) {
            ++local_scanned;
            std::int32_t lu = level[static_cast<std::size_t>(u)].load(
                std::memory_order_relaxed);
            const std::int32_t candidate = lv + 1;
            while (lu == -1 || candidate < lu) {
              if (level[static_cast<std::size_t>(u)]
                      .compare_exchange_weak(lu, candidate,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
                parent[static_cast<std::size_t>(u)].store(
                    v, std::memory_order_relaxed);
                next.push_back(u);
                break;
              }
            }
          }
        }
      }
      scanned.fetch_add(local_scanned, std::memory_order_relaxed);
      requests.fetch_add(local_requests, std::memory_order_relaxed);
    });

    work.clear();
    for (auto& local : next_local)
      work.insert(work.end(), local.begin(), local.end());
  }
  result.seconds = timer.seconds();
  result.scanned_edges = scanned.load();
  result.nvm_requests = requests.load();

  result.parent.resize(static_cast<std::size_t>(vertex_count));
  result.level.resize(static_cast<std::size_t>(vertex_count));
  for (Vertex v = 0; v < vertex_count; ++v) {
    result.parent[static_cast<std::size_t>(v)] =
        parent[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    result.level[static_cast<std::size_t>(v)] =
        level[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
  }
  // Degrees of never-expanded vertices (unreached) are 0 — they do not
  // contribute to the TEPS numerator anyway. Visited vertices were all
  // expanded at least once, so their degrees are recorded.
  std::vector<std::int64_t> degrees(static_cast<std::size_t>(vertex_count));
  for (Vertex v = 0; v < vertex_count; ++v)
    degrees[static_cast<std::size_t>(v)] =
        degrees_atomic[static_cast<std::size_t>(v)].load(
            std::memory_order_relaxed);
  finalize(result, degrees);
  return result;
}

ExternalBfsResult streaming_scan_bfs(ExternalEdgeList& edges, Vertex root,
                                     std::size_t batch_edges) {
  const Vertex n = edges.vertex_count();
  SEMBFS_EXPECTS(root >= 0 && root < n);

  ExternalBfsResult result;
  result.root = root;
  result.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  result.level.assign(static_cast<std::size_t>(n), -1);
  result.parent[static_cast<std::size_t>(root)] = root;
  result.level[static_cast<std::size_t>(root)] = 0;

  std::vector<std::int64_t> degrees(static_cast<std::size_t>(n), 0);
  bool degrees_known = false;

  Timer timer;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.sweeps;
    edges.for_each_batch(batch_edges, [&](std::span<const Edge> batch) {
      for (const Edge& e : batch) {
        if (!degrees_known && e.u != e.v) {
          ++degrees[static_cast<std::size_t>(e.u)];
          ++degrees[static_cast<std::size_t>(e.v)];
        }
        if (e.u == e.v) continue;
        result.scanned_edges += 2;  // both directions considered
        const std::int32_t lu = result.level[static_cast<std::size_t>(e.u)];
        const std::int32_t lv = result.level[static_cast<std::size_t>(e.v)];
        if (lu != -1 && (lv == -1 || lu + 1 < lv)) {
          result.level[static_cast<std::size_t>(e.v)] = lu + 1;
          result.parent[static_cast<std::size_t>(e.v)] = e.u;
          changed = true;
        } else if (lv != -1 && (lu == -1 || lv + 1 < lu)) {
          result.parent[static_cast<std::size_t>(e.u)] = e.v;
          result.level[static_cast<std::size_t>(e.u)] = lv + 1;
          changed = true;
        }
      }
    });
    degrees_known = true;
  }
  result.seconds = timer.seconds();
  result.nvm_requests =
      static_cast<std::uint64_t>(result.sweeps) *
      ((edges.edge_count() * sizeof(PackedEdge) + batch_edges * 12 - 1) /
       (batch_edges * 12));
  finalize(result, degrees);
  return result;
}

}  // namespace sembfs
