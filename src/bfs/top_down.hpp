// Top-down BFS steps (paper Figure 1), NUMA-aware.
//
// Every emulated NUMA node runs a thread team over the *whole* frontier
// against its destination-filtered forward partition; because partition k
// only contains destinations owned by node k, all claims and next-frontier
// writes stay node-local (NETAL's delegation scheme). Threads dequeue
// frontier vertices in fixed batches (64 in the paper) from a per-node
// cursor.
//
// Two variants share the skeleton:
//  - top_down_step:          forward graph in DRAM
//  - top_down_step_external: forward graph on simulated NVM; per frontier
//    vertex one 16-byte index read plus <= 4 KiB value-chunk reads.
#pragma once

#include "bfs/bfs_status.hpp"
#include "bfs/level_stats.hpp"
#include "graph/delta_buffer.hpp"
#include "graph/external_csr.hpp"
#include "graph/forward_graph.hpp"
#include "graph/tiered_forward.hpp"
#include "numa/topology.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct StepResult {
  std::int64_t claimed = 0;        ///< vertices newly added to the tree
  std::int64_t scanned_edges = 0;  ///< adjacency entries examined
  std::uint64_t nvm_requests = 0;  ///< device requests issued (external only)
  std::uint64_t io_failures = 0;   ///< adjacency fetches that failed for good
  bool aborted = false;            ///< workers stopped early: budget exceeded

  /// True when this step may have skipped frontier expansions — the level
  /// is then incomplete and must be redone (the session falls back to the
  /// DRAM bottom-up direction).
  [[nodiscard]] bool io_failed() const noexcept {
    return io_failures > 0 || aborted;
  }
};

StepResult top_down_step(const ForwardGraph& forward, BfsStatus& status,
                         std::int32_t level, const NumaTopology& topology,
                         ThreadPool& pool, int batch_size = 64,
                         const DeltaBuffer* delta = nullptr);

struct ExternalTopDownOptions {
  int batch_size = 64;
  /// Merge the whole dequeue batch's reads into few large device requests
  /// (libaio-style aggregation, paper Figure 13's conclusion).
  bool aggregate_io = false;
  std::uint32_t merge_gap_bytes = 4096;
  std::uint32_t max_request_bytes = 1 << 20;
  /// When set (and aggregate_io is on), workers double-buffer: batch k+1's
  /// merged value reads are posted to this scheduler while batch k's edges
  /// are processed, overlapping device I/O with claim work. nullptr keeps
  /// the synchronous path.
  IoScheduler* scheduler = nullptr;
  /// Failed adjacency fetches (after the scheduler's own retries) the step
  /// tolerates before every worker stops claiming batches. A failure never
  /// propagates as an exception — it is contained, counted in
  /// StepResult::io_failures, and the affected vertices are simply not
  /// expanded, leaving the level incomplete (StepResult::io_failed()).
  /// 0 = abort the level on the first hard failure.
  std::uint64_t io_error_budget = 0;
  /// Merged-view overlay: when non-null, every expanded vertex reads its
  /// adjacency through the delta buffer (tombstoned base entries hidden,
  /// destination-filtered inserts appended). nullptr = sealed base graph.
  const DeltaBuffer* delta = nullptr;
};

StepResult top_down_step_external(ExternalForwardGraph& forward,
                                  BfsStatus& status, std::int32_t level,
                                  const NumaTopology& topology,
                                  ThreadPool& pool,
                                  const ExternalTopDownOptions& options = {});

/// Top-down over the degree-tiered forward graph (small-degree adjacency
/// in DRAM, hubs on NVM — paper future work).
StepResult top_down_step_tiered(TieredForwardGraph& forward,
                                BfsStatus& status, std::int32_t level,
                                const NumaTopology& topology,
                                ThreadPool& pool, int batch_size = 64,
                                const DeltaBuffer* delta = nullptr);

}  // namespace sembfs
