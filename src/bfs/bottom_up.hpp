// Bottom-up BFS steps (paper Figure 2), NUMA-aware.
//
// Each emulated NUMA node's team sweeps the *unvisited* vertices of its own
// vertex range against its backward partition (complete adjacency lists),
// terminating each vertex's scan at the first neighbor found in the
// frontier — the early-exit that makes the bottom-up direction cheap when
// the frontier is large.
//
// Two variants:
//  - bottom_up_step:        backward graph fully in DRAM
//  - bottom_up_step_hybrid: first-k-edges in DRAM, remainder streamed from
//    simulated NVM (paper Section VI-E / Figure 14)
#pragma once

#include "bfs/bfs_status.hpp"
#include "bfs/top_down.hpp"  // StepResult
#include "graph/backward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "numa/topology.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

StepResult bottom_up_step(const BackwardGraph& backward, BfsStatus& status,
                          std::int32_t level, const NumaTopology& topology,
                          ThreadPool& pool, std::int64_t chunk = 1024);

StepResult bottom_up_step_hybrid(HybridBackwardGraph& backward,
                                 BfsStatus& status, std::int32_t level,
                                 const NumaTopology& topology,
                                 ThreadPool& pool, std::int64_t chunk = 1024);

}  // namespace sembfs
