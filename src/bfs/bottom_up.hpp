// Bottom-up BFS steps (paper Figure 2), NUMA-aware and word-parallel.
//
// Each emulated NUMA node's team sweeps the *unvisited* vertices of its own
// vertex range against its backward partition (complete adjacency lists),
// terminating each vertex's scan at the first neighbor found in the
// frontier — the early-exit that makes the bottom-up direction cheap when
// the frontier is large.
//
// The unvisited sweep is word-parallel: workers load 64 vertices' visited
// bits at a time and skip fully-visited words outright (on late levels
// nearly every word is saturated, so most of the vertex range costs one
// load + compare per 64 vertices), iterating survivors via countr_zero.
// Claims use BfsStatus::claim_bottom_up — a single-writer release store,
// no CAS — because each unvisited vertex is swept by exactly one worker
// per level.
//
// Two variants:
//  - bottom_up_step:        backward graph fully in DRAM
//  - bottom_up_step_hybrid: first-k-edges in DRAM, remainder streamed from
//    simulated NVM (paper Section VI-E / Figure 14)
//
// Both emit the next frontier in either representation (see
// bfs_status.hpp): Queue (per-worker vectors, merged) or Bitmap
// (per-worker bitmaps, OR-merged word-wise by advance()). The session
// picks per level; Bitmap avoids the queue round-trip entirely on the
// wide steady-state levels that dominate hybrid BFS time.
#pragma once

#include "bfs/bfs_status.hpp"
#include "bfs/top_down.hpp"  // StepResult
#include "graph/backward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "numa/topology.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

/// How a bottom-up step writes the next frontier into BfsStatus.
enum class BottomUpOutput {
  Queue,   ///< per-worker vectors -> set_next_merged (legacy shape)
  Bitmap,  ///< per-worker bitmaps -> word-wise merge in advance()
};

StepResult bottom_up_step(const BackwardGraph& backward, BfsStatus& status,
                          std::int32_t level, const NumaTopology& topology,
                          ThreadPool& pool, std::int64_t chunk = 1024,
                          BottomUpOutput output = BottomUpOutput::Queue,
                          const DeltaBuffer* delta = nullptr);

StepResult bottom_up_step_hybrid(HybridBackwardGraph& backward,
                                 BfsStatus& status, std::int32_t level,
                                 const NumaTopology& topology,
                                 ThreadPool& pool, std::int64_t chunk = 1024,
                                 BottomUpOutput output = BottomUpOutput::Queue,
                                 const DeltaBuffer* delta = nullptr);

}  // namespace sembfs
